// load_driver — open-loop workload client for retina_serve.
//
//   load_driver --connect URI [--qps 20,40,80] [--requests N]
//               [--connections C] [--users-per-request K] [--seed S]
//               [--hot-set K] [--skew S]
//               [--out BENCH_serve.json] [--metrics-out FILE]
//               [--timeout-secs T] [--smoke]
//
// --connect takes "unix:PATH", "tcp:HOST:PORT", or a bare filesystem
// path (treated as unix:); --socket PATH survives as an alias for the
// unix form. For each target QPS the driver opens C connections; each
// connection runs a sender thread that fires score requests on a
// deterministic exponential arrival schedule (Rng::Stream(seed, conn) —
// open loop: the sender never waits for responses, so server latency
// cannot throttle offered load the way a closed-loop bench does) and a
// receiver thread that matches responses by request id and records
// client-side latency into retina::obs histograms. Request content
// replays the generated world's cascade shape: tweet ids uniform over
// the world, candidate users Zipf-flavored (80% from a hot pool of
// num_users/4, like bench_serving's request stream). --hot-set K
// concentrates tweet ids on K hot tweets drawn Zipf(--skew) — the
// paper's cascade-storm shape, and the workload the server's same-tweet
// coalescing is built for.
//
// The sweep emits BENCH_serve.json: one point per target QPS with
// achieved throughput, p50/p95/p99 latency (from the obs histogram, so
// quantiles are log2-bucket upper bounds), client-side ok/shed/error/
// dropped counts, and the server's own shed / queue-depth-peak /
// coalescing deltas fetched over the kStats protocol message.
// check_bench.py gates the shape of this curve (p99 finite, zero shed
// below capacity) and the batched-vs-unbatched hot-set throughput
// ratio, never absolute latency.

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/obs.h"
#include "common/rng.h"
#include "common/run_export.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "serve/handler.h"
#include "serve/protocol.h"

namespace {

using namespace retina;

/// Where to connect: a Unix-domain socket path or a TCP host:port, as
/// parsed from --connect / --socket.
struct Target {
  bool tcp = false;
  std::string path;  ///< unix socket path (tcp == false)
  std::string host;  ///< tcp host (tcp == true)
  std::string port;  ///< tcp port (tcp == true)

  std::string Describe() const {
    return tcp ? "tcp:" + host + ":" + port : "unix:" + path;
  }
};

struct Args {
  Target target;
  std::string out = "BENCH_serve.json";
  std::string metrics_out;
  std::string trace_out;
  std::string verify_data;
  std::string verify_model;
  std::vector<double> qps = {20.0, 40.0, 80.0};
  size_t requests = 240;  ///< per point, across all connections
  size_t connections = 4;
  size_t users_per_request = 8;
  size_t warmup = 32;
  size_t hot_set = 0;  ///< 0 = uniform tweets; K = Zipf over K hot tweets
  double skew = 1.0;   ///< Zipf exponent for --hot-set
  uint64_t seed = 7;
  double timeout_secs = 60.0;
  bool smoke = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: load_driver --connect URI [options]\n"
      "  --connect URI          unix:PATH, tcp:HOST:PORT, or a bare\n"
      "                         filesystem path (treated as unix:)\n"
      "  --socket PATH          alias for --connect unix:PATH\n"
      "  --qps LIST             comma-separated target QPS sweep\n"
      "                         (default 20,40,80; >= 3 points for the\n"
      "                         throughput-vs-latency curve)\n"
      "  --requests N           requests per point across all connections\n"
      "  --connections C        concurrent client connections (default 4)\n"
      "  --users-per-request K  candidate users per score request\n"
      "  --hot-set K            concentrate tweet ids on K hot tweets\n"
      "                         drawn Zipf(--skew) instead of uniform —\n"
      "                         the cascade-storm workload coalescing\n"
      "                         feeds on (default 0 = uniform)\n"
      "  --skew S               Zipf exponent for --hot-set (default 1.0)\n"
      "  --seed S               arrival/content seed (deterministic)\n"
      "  --out FILE             BENCH json (default BENCH_serve.json)\n"
      "  --metrics-out FILE     dump the driver's obs registry as JSON\n"
      "  --trace-out FILE       record the driver's own timeline trace;\n"
      "                         also mints a per-request trace id carried\n"
      "                         on the wire so the daemon's --trace-out\n"
      "                         spans join the driver's (tools/report.py\n"
      "                         --client-trace merges the two files)\n"
      "  --verify-data DIR      with --verify-model: load the same bundle\n"
      "  --verify-model DIR     in-process and require the daemon's scores\n"
      "                         to be byte-identical before the sweep\n"
      "  --timeout-secs T       per-point response deadline slack\n"
      "  --smoke                CI-sized sweep (fewer requests)\n");
  return 2;
}

/// Parses "unix:PATH" / "tcp:HOST:PORT" / bare path into a Target.
bool ParseTarget(const std::string& uri, Target* target) {
  if (uri.rfind("unix:", 0) == 0) {
    target->tcp = false;
    target->path = uri.substr(5);
    return !target->path.empty();
  }
  if (uri.rfind("tcp:", 0) == 0) {
    const std::string rest = uri.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    target->tcp = true;
    target->host = rest.substr(0, colon);
    target->port = rest.substr(colon + 1);
    if (target->host.empty()) target->host = "127.0.0.1";
    return !target->port.empty();
  }
  target->tcp = false;
  target->path = uri;
  return !target->path.empty();
}

int UnknownFlag(const std::string& arg) {
  std::fprintf(stderr, "%s\n",
               Status::InvalidArgument("unknown flag '" + arg +
                                       "' (run 'load_driver' for usage)")
                   .ToString()
                   .c_str());
  return 2;
}

bool ParseQpsList(const std::string& list, std::vector<double>* out) {
  out->clear();
  for (const std::string& part : Split(list, ',')) {
    const double v = std::atof(part.c_str());
    if (v <= 0.0) return false;
    out->push_back(v);
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, Args* args, int* rc) {
  *rc = 0;
  std::string qps_list;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto take = [&](const char* name, std::string* out) -> bool {
      if (arg == name) {
        const char* v = next();
        if (v == nullptr) return false;
        *out = v;
        return true;
      }
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string value;
    if (take("--out", &args->out) ||
        take("--metrics-out", &args->metrics_out) ||
        take("--trace-out", &args->trace_out) ||
        take("--verify-data", &args->verify_data) ||
        take("--verify-model", &args->verify_model)) {
      continue;
    }
    if (take("--connect", &value) || take("--socket", &value)) {
      if (!ParseTarget(value, &args->target)) {
        std::fprintf(stderr, "bad --connect target: %s\n", value.c_str());
        *rc = 2;
        return false;
      }
      continue;
    }
    if (take("--qps", &qps_list)) continue;
    if (take("--requests", &value)) {
      args->requests = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--connections", &value)) {
      args->connections = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--users-per-request", &value)) {
      args->users_per_request = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--hot-set", &value)) {
      args->hot_set = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--skew", &value)) {
      args->skew = std::atof(value.c_str());
      continue;
    }
    if (take("--seed", &value)) {
      args->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--timeout-secs", &value)) {
      args->timeout_secs = std::atof(value.c_str());
      continue;
    }
    if (arg == "--smoke") {
      args->smoke = true;
      continue;
    }
    *rc = UnknownFlag(arg);
    return false;
  }
  if (!qps_list.empty() && !ParseQpsList(qps_list, &args->qps)) {
    std::fprintf(stderr, "bad --qps list: %s\n", qps_list.c_str());
    *rc = 2;
    return false;
  }
  if (args->smoke) {
    args->requests = std::min<size_t>(args->requests, 48);
    args->warmup = std::min<size_t>(args->warmup, 16);
  }
  if (args->target.path.empty() && args->target.host.empty()) {
    *rc = Usage();
    return false;
  }
  if (args->connections == 0) args->connections = 1;
  if (args->users_per_request == 0) args->users_per_request = 1;
  if (args->skew < 0.0) args->skew = 0.0;
  return true;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Result<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError("connect " + path +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, const std::string& port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve tcp:" + host + ":" + port +
                                   ": " + ::gai_strerror(gai));
  }
  Status st = Status::IOError("no usable address for tcp:" + host + ":" + port);
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Frames are whole messages; don't let Nagle sit on them.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      st = Status::OK();
      break;
    }
    st = Status::IOError("connect tcp:" + host + ":" + port +
                         " failed: " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (!st.ok()) return st;
  return fd;
}

Result<int> Connect(const Target& target) {
  return target.tcp ? ConnectTcp(target.host, target.port)
                    : ConnectUnix(target.path);
}

/// One kStats round trip on a fresh connection.
Status QueryStats(const Target& target,
                  std::map<std::string, uint64_t>* stats) {
  auto fd_result = Connect(target);
  if (!fd_result.ok()) return fd_result.status();
  const int fd = fd_result.ValueOrDie();
  serve::StatsRequest req;
  req.request_id = 1;
  Status st = serve::WriteFrame(fd, serve::EncodeStatsRequest(req));
  if (st.ok()) {
    std::string payload;
    bool eof = false;
    st = serve::ReadFrame(fd, &payload, &eof);
    if (st.ok() && eof) st = Status::IOError("server closed during stats");
    if (st.ok()) {
      serve::StatsResponse resp;
      st = serve::DecodeStatsResponse(payload, &resp);
      if (st.ok()) *stats = std::move(resp.stats);
    }
  }
  ::close(fd);
  return st;
}

uint64_t StatOr(const std::map<std::string, uint64_t>& stats,
                const std::string& key, uint64_t fallback) {
  const auto it = stats.find(key);
  return it == stats.end() ? fallback : it->second;
}

/// Sends one score request, stamping it with a freshly minted client trace
/// context when a trace session is active (--trace-out): the request rides
/// the wire with trace_id plus the id of the "driver.send" span emitted
/// around the write, so the daemon's serve.handle span parents under this
/// client span and report.py can pair the two files into one cross-process
/// timeline. With tracing off the trace fields stay zero — old daemons and
/// the byte-identity pin see the same scores either way.
Status SendScoreRequest(int fd, serve::ScoreRequest req) {
  if (!obs::TraceEnabled()) {
    return serve::WriteFrame(fd, serve::EncodeScoreRequest(req));
  }
  const obs::TraceContext saved = obs::CurrentTraceContext();
  obs::TraceContext minted;
  minted.trace_id = obs::MintTraceId();
  obs::SetCurrentTraceContext(minted);
  Status st;
  {
    obs::TraceSpan span("driver.send");
    const obs::TraceContext inner = obs::CurrentTraceContext();
    req.trace_id = inner.trace_id;
    req.span_id = inner.span_id;  // the driver.send span itself
    st = serve::WriteFrame(fd, serve::EncodeScoreRequest(req));
  }
  obs::SetCurrentTraceContext(saved);
  return st;
}

/// Deterministic request-content sampler: tweet ids either uniform over
/// the world or Zipf-concentrated on a hot set (--hot-set/--skew), user
/// ids Zipf-flavored (80% from a hot pool of num_users/4). One Workload
/// is shared read-only by every sender thread.
class Workload {
 public:
  Workload(uint64_t num_tweets, uint64_t num_users, size_t users_per_request,
           size_t hot_set, double skew)
      : num_tweets_(num_tweets),
        num_users_(num_users),
        users_per_request_(users_per_request) {
    if (hot_set == 0) return;
    const size_t k = std::min<size_t>(hot_set, num_tweets);
    // Zipf over ranks: weight(r) = 1/(r+1)^skew, precomputed as a CDF so
    // each draw is one Uniform() + binary search. Rank r maps to tweet
    // id (r*num_tweets)/k — hot tweets spread across the id space, so a
    // hot-set workload still touches distinct tweet-side contexts.
    cdf_.reserve(k);
    double total = 0.0;
    for (size_t r = 0; r < k; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_.push_back(total);
    }
    for (double& v : cdf_) v /= total;
    hot_ids_.reserve(k);
    for (size_t r = 0; r < k; ++r) {
      hot_ids_.push_back(r * num_tweets / k);
    }
  }

  serve::ScoreRequest MakeRequest(Rng* rng, uint64_t request_id) const {
    serve::ScoreRequest req;
    req.request_id = request_id;
    if (cdf_.empty()) {
      req.tweet_id = rng->UniformInt(num_tweets_);
    } else {
      const double u = rng->Uniform();
      const size_t rank = static_cast<size_t>(
          std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
      req.tweet_id = hot_ids_[std::min(rank, hot_ids_.size() - 1)];
    }
    const uint64_t hot_users = std::max<uint64_t>(1, num_users_ / 4);
    req.users.reserve(users_per_request_);
    for (size_t k = 0; k < users_per_request_; ++k) {
      const uint64_t limit = rng->Bernoulli(0.8) ? hot_users : num_users_;
      req.users.push_back(static_cast<uint32_t>(rng->UniformInt(limit)));
    }
    return req;
  }

 private:
  const uint64_t num_tweets_;
  const uint64_t num_users_;
  const size_t users_per_request_;
  std::vector<double> cdf_;       ///< Zipf CDF over hot ranks (may be empty)
  std::vector<uint64_t> hot_ids_; ///< rank -> tweet id
};

/// Cross-process determinism pin (--verify-data/--verify-model): replays a
/// deterministic request stream against the daemon and against the same
/// bundle loaded in-process, requiring every score's f64 bit pattern to
/// match — the serve e2e's byte-identity acceptance gate.
Status VerifyByteIdentity(const Args& args, const Workload& workload) {
  auto handler_result =
      serve::RequestHandler::Open(args.verify_data, args.verify_model, {});
  RETINA_RETURN_NOT_OK(handler_result.status());
  const auto handler = std::move(handler_result).ValueOrDie();
  auto fd_result = Connect(args.target);
  RETINA_RETURN_NOT_OK(fd_result.status());
  const int fd = fd_result.ValueOrDie();
  Rng rng = Rng::Stream(args.seed ^ 0xBEEFULL, 0);
  Status st;
  constexpr size_t kVerifyRequests = 32;
  size_t checked = 0;
  for (size_t i = 0; i < kVerifyRequests && st.ok(); ++i) {
    const serve::ScoreRequest req = workload.MakeRequest(&rng, i);
    st = SendScoreRequest(fd, req);
    if (!st.ok()) break;
    std::string payload;
    bool eof = false;
    st = serve::ReadFrame(fd, &payload, &eof);
    if (st.ok() && eof) st = Status::IOError("server closed during verify");
    if (!st.ok()) break;
    serve::ScoreResponse remote;
    st = serve::DecodeScoreResponse(payload, &remote);
    if (!st.ok()) break;
    if (remote.code != serve::ResponseCode::kOk) {
      st = Status::Internal("verify request " + std::to_string(i) +
                            " rejected: " + remote.message);
      break;
    }
    serve::ScoreResponse local;
    handler->HandleScore(0, req, &local);
    if (local.code != serve::ResponseCode::kOk ||
        local.scores.size() != remote.scores.size()) {
      st = Status::Internal("verify request " + std::to_string(i) +
                            ": local/remote response shape mismatch");
      break;
    }
    for (size_t k = 0; k < local.scores.size() && st.ok(); ++k) {
      if (std::memcmp(&local.scores[k], &remote.scores[k],
                      sizeof(double)) != 0) {
        st = Status::Internal(
            "verify request " + std::to_string(i) + " score " +
            std::to_string(k) +
            ": daemon diverged from the in-process engine");
      }
    }
    checked += local.scores.size();
  }
  ::close(fd);
  RETINA_RETURN_NOT_OK(st);
  std::printf(
      "verify: %zu requests, %zu scores byte-identical to the in-process "
      "engine\n",
      kVerifyRequests, checked);
  return Status::OK();
}

struct PointResult {
  double target_qps = 0.0;
  double achieved_qps = 0.0;
  double elapsed_s = 0.0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t dropped = 0;  ///< sent but never answered before the deadline
  double latency_mean_ns = 0.0;
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p95_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t server_shed_delta = 0;
  uint64_t server_requests_delta = 0;
  uint64_t server_responses_delta = 0;
  uint64_t server_queue_depth_peak = 0;
  uint64_t coalesce_batches_delta = 0;
  uint64_t coalesce_batched_requests_delta = 0;
};

/// Per-connection receive-side tallies, written by the receiver thread.
struct ConnTally {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t last_response_ns = 0;
  Status error_status;  ///< first transport/protocol error, if any
};

struct DriverHooks {
  obs::Counter* sent;
  obs::Counter* ok;
  obs::Counter* shed;
  obs::Counter* errors;
  obs::Histogram* latency_ns;

  static DriverHooks Resolve() {
    obs::Registry& reg = obs::Registry::Global();
    DriverHooks h;
    h.sent = reg.GetCounter("driver.sent");
    h.ok = reg.GetCounter("driver.ok");
    h.shed = reg.GetCounter("driver.shed");
    h.errors = reg.GetCounter("driver.errors");
    h.latency_ns = reg.GetHistogram("driver.latency_ns");
    return h;
  }
};

/// Runs one open-loop point at `target_qps`. Returns an error only for
/// setup failures; per-connection transport errors surface as dropped
/// requests in the result.
Status RunPoint(const Args& args, size_t point_idx, double target_qps,
                const Workload& workload, const DriverHooks& hooks,
                PointResult* result) {
  const size_t conns = args.connections;
  result->target_qps = target_qps;

  std::map<std::string, uint64_t> before;
  RETINA_RETURN_NOT_OK(QueryStats(args.target, &before));

  std::vector<int> fds(conns, -1);
  for (size_t c = 0; c < conns; ++c) {
    auto fd_result = Connect(args.target);
    if (!fd_result.ok()) {
      for (int fd : fds) {
        if (fd >= 0) ::close(fd);
      }
      return fd_result.status();
    }
    fds[c] = fd_result.ValueOrDie();
  }

  // Request counts per connection (the remainder spreads over the first
  // connections) and the per-request send timestamps the receivers match
  // latencies against. Timestamp slots are atomics because sender and
  // receiver are different threads; the socket round trip orders the
  // accesses causally but the memory model still wants the handshake.
  std::vector<size_t> per_conn(conns, args.requests / conns);
  for (size_t c = 0; c < args.requests % conns; ++c) per_conn[c]++;
  std::vector<std::unique_ptr<std::atomic<uint64_t>[]>> send_ns(conns);
  for (size_t c = 0; c < conns; ++c) {
    send_ns[c] = std::make_unique<std::atomic<uint64_t>[]>(
        per_conn[c] == 0 ? 1 : per_conn[c]);
  }

  const double per_conn_qps = target_qps / static_cast<double>(conns);
  const auto point_start = std::chrono::steady_clock::now();
  const uint64_t point_start_ns = NowNs();
  const double expected_span_s =
      static_cast<double>(args.requests) / target_qps;
  const auto deadline =
      point_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(expected_span_s +
                                                      args.timeout_secs));

  std::vector<ConnTally> tallies(conns);
  std::vector<std::thread> senders;
  std::vector<std::thread> receivers;
  senders.reserve(conns);
  receivers.reserve(conns);

  for (size_t c = 0; c < conns; ++c) {
    // Open loop: the schedule is laid out in absolute time from the point
    // start; a slow server delays responses, never the next send.
    senders.emplace_back([&, c]() {
      Rng rng = Rng::Stream(args.seed + 7919 * point_idx, c);
      double t = 0.0;
      for (size_t i = 0; i < per_conn[c]; ++i) {
        t += rng.Exponential(per_conn_qps);
        std::this_thread::sleep_until(
            point_start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(t)));
        const uint64_t rid = (static_cast<uint64_t>(c) << 32) | i;
        const serve::ScoreRequest req = workload.MakeRequest(&rng, rid);
        send_ns[c][i].store(NowNs(), std::memory_order_release);
        const Status st = SendScoreRequest(fds[c], req);
        if (!st.ok()) return;  // receiver sees the broken stream too
        hooks.sent->Add();
      }
    });
    receivers.emplace_back([&, c]() {
      ConnTally& tally = tallies[c];
      std::string payload;
      size_t received = 0;
      while (received < per_conn[c]) {
        if (std::chrono::steady_clock::now() >= deadline) return;
        bool eof = false;
        const Status st = serve::ReadFrame(fds[c], &payload, &eof);
        if (!st.ok() || eof) {
          if (!st.ok()) tally.error_status = st;
          return;
        }
        serve::ScoreResponse resp;
        const Status dst = serve::DecodeScoreResponse(payload, &resp);
        if (!dst.ok()) {
          tally.error_status = dst;
          return;
        }
        const uint64_t recv_ns = NowNs();
        received++;
        tally.last_response_ns = recv_ns;
        const size_t idx = static_cast<size_t>(resp.request_id & 0xFFFFFFFF);
        switch (resp.code) {
          case serve::ResponseCode::kOk: {
            tally.ok++;
            hooks.ok->Add();
            if (idx < per_conn[c]) {
              const uint64_t sent_at =
                  send_ns[c][idx].load(std::memory_order_acquire);
              if (sent_at != 0 && recv_ns > sent_at) {
                hooks.latency_ns->Record(recv_ns - sent_at);
              }
            }
            break;
          }
          case serve::ResponseCode::kShed:
            tally.shed++;
            hooks.shed->Add();
            break;
          case serve::ResponseCode::kError:
            tally.errors++;
            hooks.errors->Add();
            break;
        }
      }
    });
  }
  for (std::thread& t : senders) t.join();
  for (std::thread& t : receivers) t.join();
  uint64_t last_response_ns = point_start_ns;
  for (size_t c = 0; c < conns; ++c) {
    const ConnTally& tally = tallies[c];
    result->ok += tally.ok;
    result->shed += tally.shed;
    result->errors += tally.errors;
    last_response_ns = std::max(last_response_ns, tally.last_response_ns);
    if (!tally.error_status.ok()) {
      std::fprintf(stderr, "connection %zu: %s\n", c,
                   tally.error_status.ToString().c_str());
    }
  }
  for (int fd : fds) ::close(fd);

  result->sent = args.requests;
  const uint64_t answered = result->ok + result->shed + result->errors;
  result->dropped = result->sent > answered ? result->sent - answered : 0;
  result->elapsed_s =
      static_cast<double>(last_response_ns - point_start_ns) / 1e9;
  if (result->elapsed_s > 0.0) {
    result->achieved_qps =
        static_cast<double>(answered) / result->elapsed_s;
  }
  result->latency_mean_ns = hooks.latency_ns->Mean();
  result->latency_p50_ns = hooks.latency_ns->Quantile(0.50);
  result->latency_p95_ns = hooks.latency_ns->Quantile(0.95);
  result->latency_p99_ns = hooks.latency_ns->Quantile(0.99);

  std::map<std::string, uint64_t> after;
  RETINA_RETURN_NOT_OK(QueryStats(args.target, &after));
  result->server_shed_delta =
      StatOr(after, "serve.shed", 0) - StatOr(before, "serve.shed", 0);
  result->server_requests_delta = StatOr(after, "serve.requests", 0) -
                                  StatOr(before, "serve.requests", 0);
  result->server_responses_delta = StatOr(after, "serve.responses", 0) -
                                   StatOr(before, "serve.responses", 0);
  result->server_queue_depth_peak = StatOr(after, "serve.queue_depth_peak", 0);
  result->coalesce_batches_delta =
      StatOr(after, "serve.coalesce.batches", 0) -
      StatOr(before, "serve.coalesce.batches", 0);
  result->coalesce_batched_requests_delta =
      StatOr(after, "serve.coalesce.batched_requests", 0) -
      StatOr(before, "serve.coalesce.batched_requests", 0);
  return Status::OK();
}

Status WriteBenchJson(const Args& args,
                      const std::map<std::string, uint64_t>& server_stats,
                      const std::vector<PointResult>& points) {
  FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + args.out + " for writing");
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_open_loop\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", args.smoke ? "true" : "false");
  std::fprintf(f, "  \"obs_compiled_in\": %s,\n",
               obs::kCompiledIn ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"connections\": %zu,\n", args.connections);
  std::fprintf(f, "  \"requests_per_point\": %zu,\n", args.requests);
  std::fprintf(f, "  \"users_per_request\": %zu,\n", args.users_per_request);
  std::fprintf(f, "  \"transport\": \"%s\",\n",
               args.target.tcp ? "tcp" : "unix");
  std::fprintf(f, "  \"hot_set\": %zu,\n", args.hot_set);
  std::fprintf(f, "  \"skew\": %g,\n", args.skew);
  std::fprintf(f, "  \"coalesce_max_batch\": %llu,\n",
               static_cast<unsigned long long>(
                   StatOr(server_stats, "serve.coalesce.max_batch", 1)));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"workers\": %llu,\n",
               static_cast<unsigned long long>(
                   StatOr(server_stats, "serve.workers", 0)));
  std::fprintf(f, "  \"queue_capacity\": %llu,\n",
               static_cast<unsigned long long>(
                   StatOr(server_stats, "serve.queue_capacity", 0)));
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"target_qps\": %g,\n", p.target_qps);
    std::fprintf(f, "      \"achieved_qps\": %g,\n", p.achieved_qps);
    std::fprintf(f, "      \"elapsed_s\": %g,\n", p.elapsed_s);
    std::fprintf(f, "      \"sent\": %llu,\n",
                 static_cast<unsigned long long>(p.sent));
    std::fprintf(f, "      \"ok\": %llu,\n",
                 static_cast<unsigned long long>(p.ok));
    std::fprintf(f, "      \"shed\": %llu,\n",
                 static_cast<unsigned long long>(p.shed));
    std::fprintf(f, "      \"errors\": %llu,\n",
                 static_cast<unsigned long long>(p.errors));
    std::fprintf(f, "      \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(p.dropped));
    std::fprintf(f, "      \"latency_ns\": {\n");
    std::fprintf(f, "        \"mean\": %g,\n", p.latency_mean_ns);
    std::fprintf(f, "        \"p50\": %llu,\n",
                 static_cast<unsigned long long>(p.latency_p50_ns));
    std::fprintf(f, "        \"p95\": %llu,\n",
                 static_cast<unsigned long long>(p.latency_p95_ns));
    std::fprintf(f, "        \"p99\": %llu\n",
                 static_cast<unsigned long long>(p.latency_p99_ns));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"server_shed_delta\": %llu,\n",
                 static_cast<unsigned long long>(p.server_shed_delta));
    std::fprintf(f, "      \"server_requests_delta\": %llu,\n",
                 static_cast<unsigned long long>(p.server_requests_delta));
    std::fprintf(f, "      \"server_responses_delta\": %llu,\n",
                 static_cast<unsigned long long>(p.server_responses_delta));
    std::fprintf(f, "      \"server_queue_depth_peak\": %llu,\n",
                 static_cast<unsigned long long>(p.server_queue_depth_peak));
    const double avg_batch =
        p.coalesce_batches_delta > 0
            ? static_cast<double>(p.coalesce_batched_requests_delta) /
                  static_cast<double>(p.coalesce_batches_delta)
            : 0.0;
    std::fprintf(f, "      \"coalesce\": {\n");
    std::fprintf(f, "        \"batches\": %llu,\n",
                 static_cast<unsigned long long>(p.coalesce_batches_delta));
    std::fprintf(
        f, "        \"batched_requests\": %llu,\n",
        static_cast<unsigned long long>(p.coalesce_batched_requests_delta));
    std::fprintf(f, "        \"avg_batch\": %g\n", avg_batch);
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  if (std::fclose(f) != 0) {
    return Status::IOError("short write to " + args.out);
  }
  return Status::OK();
}

int Fail(const Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  int rc = 0;
  if (!ParseArgs(argc, argv, &args, &rc)) return rc;
  if (!args.trace_out.empty()) obs::StartTracing();

  // Learn the dataset shape from the daemon instead of loading the world:
  // the driver stays a pure protocol client.
  std::map<std::string, uint64_t> stats;
  Status st = QueryStats(args.target, &stats);
  if (!st.ok()) return Fail(st);
  const uint64_t num_tweets = StatOr(stats, "handler.num_tweets", 0);
  const uint64_t num_users = StatOr(stats, "handler.num_users", 0);
  if (num_tweets == 0 || num_users == 0) {
    return Fail(Status::FailedPrecondition(
        "server stats did not report handler.num_tweets/num_users"));
  }
  std::printf("server at %s: %llu tweets, %llu users, %llu workers, "
              "queue capacity %llu, coalesce max batch %llu\n",
              args.target.Describe().c_str(),
              static_cast<unsigned long long>(num_tweets),
              static_cast<unsigned long long>(num_users),
              static_cast<unsigned long long>(
                  StatOr(stats, "serve.workers", 0)),
              static_cast<unsigned long long>(
                  StatOr(stats, "serve.queue_capacity", 0)),
              static_cast<unsigned long long>(
                  StatOr(stats, "serve.coalesce.max_batch", 1)));

  const Workload workload(num_tweets, num_users, args.users_per_request,
                          args.hot_set, args.skew);

  if (!args.verify_data.empty() || !args.verify_model.empty()) {
    if (args.verify_data.empty() || args.verify_model.empty()) {
      return Fail(Status::InvalidArgument(
          "--verify-data and --verify-model must be given together"));
    }
    st = VerifyByteIdentity(args, workload);
    if (!st.ok()) return Fail(st);
  }

  const DriverHooks hooks = DriverHooks::Resolve();

  // Closed-loop warmup so the first measured point does not pay the
  // engine's cold caches.
  if (args.warmup > 0) {
    auto fd_result = Connect(args.target);
    if (!fd_result.ok()) return Fail(fd_result.status());
    const int fd = fd_result.ValueOrDie();
    Rng rng = Rng::Stream(args.seed ^ 0x57A7ULL, 0);
    for (size_t i = 0; i < args.warmup; ++i) {
      const serve::ScoreRequest req = workload.MakeRequest(&rng, i);
      st = SendScoreRequest(fd, req);
      if (st.ok()) {
        std::string payload;
        bool eof = false;
        st = serve::ReadFrame(fd, &payload, &eof);
        if (st.ok() && eof) st = Status::IOError("server closed in warmup");
      }
      if (!st.ok()) {
        ::close(fd);
        return Fail(st);
      }
    }
    ::close(fd);
  }

  std::vector<PointResult> points;
  points.reserve(args.qps.size());
  for (size_t p = 0; p < args.qps.size(); ++p) {
    // Fresh instruments per point so the histogram quantiles are the
    // point's own (registered pointers survive the reset).
    obs::Registry::Global().Reset();
    PointResult result;
    st = RunPoint(args, p, args.qps[p], workload, hooks, &result);
    if (!st.ok()) return Fail(st);
    points.push_back(result);
    std::printf(
        "qps %7.1f -> achieved %7.1f  ok %llu shed %llu err %llu drop %llu  "
        "p50 %.3fms p95 %.3fms p99 %.3fms\n",
        result.target_qps, result.achieved_qps,
        static_cast<unsigned long long>(result.ok),
        static_cast<unsigned long long>(result.shed),
        static_cast<unsigned long long>(result.errors),
        static_cast<unsigned long long>(result.dropped),
        static_cast<double>(result.latency_p50_ns) / 1e6,
        static_cast<double>(result.latency_p95_ns) / 1e6,
        static_cast<double>(result.latency_p99_ns) / 1e6);
  }

  std::map<std::string, uint64_t> final_stats;
  st = QueryStats(args.target, &final_stats);
  if (!st.ok()) return Fail(st);
  st = WriteBenchJson(args, final_stats, points);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%zu points)\n", args.out.c_str(), points.size());

  st = obs::ExportMetricsJson(args.metrics_out);
  if (!st.ok()) return Fail(st);
  st = obs::ExportChromeTrace(args.trace_out);
  if (!st.ok()) return Fail(st);
  return 0;
}
