#!/usr/bin/env python3
"""Checks for the check_bench.py bench regression gate.

Runs the gate as a subprocess against synthetic BENCH files and asserts
its contract: pass/fail exit codes on floor comparisons, and one-line
errors — never tracebacks — on missing required files, malformed JSON,
and floors files missing a section key.

pytest-style test_* functions, but runnable standalone:
  python3 tools/check_bench_test.py
"""

import json
import os
import subprocess
import sys
import tempfile

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_bench.py")

FLOORS = {
    "serving": {
        "batched_min_speedup": 1.1,
        "batched_cached_min_speedup": 1.5,
    },
    "parallel": {
        "min_speedup_per_thread_count": 1.15,
        "oversubscribed_min_speedup": 0.25,
    },
    "store": {
        "warm_min_speedup_vs_cold": 1.5,
        "absent_min_speedup_vs_cold": 5.0,
    },
    "kernels": {
        "min_work_size": 256,
        "min_speedup": {"dot": 2.0},
    },
    "serve": {
        "min_points": 3,
        "max_p99_ns": 5000000000,
        "hot_set_min_batched_speedup": 1.3,
    },
}

STORE_BENCH = {
    "hardware_concurrency": 4,
    "warm_speedup_vs_cold": 60.0,
    "absent_speedup_vs_cold": 19.0,
    "bloom": {"skips": 1000, "false_positives": 5, "fp_rate": 0.005},
}


def serve_point(qps, ok, shed=0, dropped=0, p99=2_000_000, elapsed=1.0,
                batches=0, batched_requests=0):
    return {
        "target_qps": qps, "achieved_qps": qps, "elapsed_s": elapsed,
        "ok": ok, "shed": shed,
        "errors": 0, "dropped": dropped,
        "latency_ns": {"mean": p99 / 3, "p50": p99 / 4, "p95": p99 / 1.3,
                       "p99": p99},
        "server_shed_delta": shed, "server_queue_depth_peak": 1,
        "coalesce": {
            "batches": batches, "batched_requests": batched_requests,
            "avg_batch": batched_requests / batches if batches else 0,
        },
    }


SERVE_BENCH = {
    "bench": "serve_open_loop",
    "obs_compiled_in": True,
    "connections": 4,
    "workers": 4,
    "points": [serve_point(20, 240), serve_point(40, 240),
               serve_point(80, 231, shed=9)],
}


def hot_set_bench(last_ok, last_shed, batches=0, batched_requests=0,
                  hot_set=4, transport="unix"):
    """A 3-point hot-set sweep whose last point saturates."""
    return {
        "bench": "serve_open_loop",
        "obs_compiled_in": True,
        "connections": 8,
        "workers": 2,
        "transport": transport,
        "hot_set": hot_set,
        "skew": 1.2,
        "points": [
            serve_point(1500, 300), serve_point(6000, 300),
            serve_point(24000, last_ok, shed=last_shed, batches=batches,
                        batched_requests=batched_requests),
        ],
    }


def run_gate(tmp, *extra_args, floors=FLOORS, env_extra=None):
    """Runs check_bench.py in `tmp` with only the named bench files."""
    floors_path = os.path.join(tmp, "floors.json")
    with open(floors_path, "w") as f:
        json.dump(floors, f)
    env = dict(os.environ)
    env.pop("RETINA_BENCH_GATE", None)
    if env_extra:
        env.update(env_extra)
    # Point every section at a file name local to tmp so leftover BENCH
    # files in the repo root can't leak into the run.
    args = [
        sys.executable, CHECK_BENCH, "--floors", floors_path,
        "--serving", "serving.json", "--parallel", "parallel.json",
        "--kernels", "kernels.json", "--store", "store.json",
        "--serve", "serve.json", "--serve-tcp", "serve_tcp.json",
        "--serve-unbatched", "serve_unbatched.json",
    ]
    args += list(extra_args)
    return subprocess.run(args, cwd=tmp, env=env,
                          capture_output=True, text=True)


def write(tmp, name, payload):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        if isinstance(payload, str):
            f.write(payload)
        else:
            json.dump(payload, f)
    return path


def assert_one_line_error(proc, expect_code=2):
    assert proc.returncode == expect_code, (proc.returncode, proc.stdout,
                                            proc.stderr)
    assert "Traceback" not in proc.stdout + proc.stderr, proc.stderr
    fails = [ln for ln in proc.stdout.splitlines() if ln.startswith("FAIL:")]
    assert len(fails) == 1, proc.stdout


def test_store_pass():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "store.json", STORE_BENCH)
        proc = run_gate(tmp)
        assert proc.returncode == 0, proc.stdout
        assert "bench regression gate passed" in proc.stdout


def test_store_floor_violation():
    with tempfile.TemporaryDirectory() as tmp:
        bench = dict(STORE_BENCH)
        bench["absent_speedup_vs_cold"] = 1.01  # Bloom skip broke
        write(tmp, "store.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "absent_speedup_vs_cold" in proc.stdout


def test_warn_mode_reports_without_failing():
    with tempfile.TemporaryDirectory() as tmp:
        bench = dict(STORE_BENCH)
        bench["warm_speedup_vs_cold"] = 0.5
        write(tmp, "store.json", bench)
        proc = run_gate(tmp, env_extra={"RETINA_BENCH_GATE": "warn"})
        assert proc.returncode == 0, proc.stdout
        assert "reporting only" in proc.stdout


def test_missing_required_file_is_one_line_error():
    with tempfile.TemporaryDirectory() as tmp:
        proc = run_gate(tmp, "--require", "store")
        assert_one_line_error(proc)
        assert "store.json" in proc.stdout


def test_missing_optional_file_is_skipped():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "store.json", STORE_BENCH)
        # serving.json does not exist but is not required -> still passes.
        proc = run_gate(tmp, "--require", "store")
        assert proc.returncode == 0, proc.stdout


def test_malformed_json_is_one_line_error():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "store.json", "{not json")
        proc = run_gate(tmp)
        assert_one_line_error(proc)
        assert "store.json" in proc.stdout


def test_missing_floors_key_is_one_line_error():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "store.json", STORE_BENCH)
        floors = {k: v for k, v in FLOORS.items() if k != "store"}
        proc = run_gate(tmp, floors=floors)
        assert_one_line_error(proc)
        assert "store" in proc.stdout


def test_serve_pass():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "serve.json", SERVE_BENCH)
        proc = run_gate(tmp, "--require", "serve")
        assert proc.returncode == 0, proc.stdout
        assert "zero shed below capacity" in proc.stdout


def test_serve_dropped_request_fails():
    with tempfile.TemporaryDirectory() as tmp:
        bench = json.loads(json.dumps(SERVE_BENCH))
        bench["points"][1]["dropped"] = 2
        write(tmp, "serve.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "neither answered nor shed" in proc.stdout


def test_serve_shed_below_capacity_fails():
    with tempfile.TemporaryDirectory() as tmp:
        bench = json.loads(json.dumps(SERVE_BENCH))
        bench["points"][0]["shed"] = 3
        bench["points"][0]["server_shed_delta"] = 3
        write(tmp, "serve.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "below capacity" in proc.stdout


def test_serve_too_few_points_fails():
    with tempfile.TemporaryDirectory() as tmp:
        bench = json.loads(json.dumps(SERVE_BENCH))
        bench["points"] = bench["points"][:2]
        write(tmp, "serve.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "sweep points" in proc.stdout


def test_serve_p99_gate_respects_obs_compiled_out():
    # With obs compiled out the driver's histograms never count, so a
    # zero p99 is expected and must not trip the ceiling; the same zero
    # with obs compiled in means the histogram path broke.
    with tempfile.TemporaryDirectory() as tmp:
        bench = json.loads(json.dumps(SERVE_BENCH))
        for p in bench["points"]:
            p["latency_ns"] = {"mean": 0, "p50": 0, "p95": 0, "p99": 0}
        bench["obs_compiled_in"] = False
        write(tmp, "serve.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 0, proc.stdout
        assert "obs compiled out" in proc.stdout
        bench["obs_compiled_in"] = True
        write(tmp, "serve.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "p99" in proc.stdout


def test_serve_tcp_shape_pass_and_wrong_transport_fails():
    with tempfile.TemporaryDirectory() as tmp:
        bench = json.loads(json.dumps(SERVE_BENCH))
        bench["transport"] = "tcp"
        write(tmp, "serve_tcp.json", bench)
        proc = run_gate(tmp, "--require", "serve_tcp")
        assert proc.returncode == 0, proc.stdout
        assert "serve_tcp lowest-QPS point" in proc.stdout
        # A unix-transport sweep wired into the TCP slot is a CI bug.
        bench["transport"] = "unix"
        write(tmp, "serve_tcp.json", bench)
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "transport=tcp" in proc.stdout


def test_serve_tcp_required_but_missing():
    with tempfile.TemporaryDirectory() as tmp:
        proc = run_gate(tmp, "--require", "serve_tcp")
        assert_one_line_error(proc)
        assert "serve_tcp.json" in proc.stdout


def test_coalesce_ratio_pass():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "serve.json",
              hot_set_bench(450, 50, batches=90, batched_requests=430))
        write(tmp, "serve_unbatched.json", hot_set_bench(300, 200))
        proc = run_gate(tmp, "--require", "serve", "serve_unbatched")
        assert proc.returncode == 0, proc.stdout
        assert "coalesce hot-set ratio" in proc.stdout
        assert "1.50x" in proc.stdout


def test_coalesce_ratio_below_floor_fails():
    with tempfile.TemporaryDirectory() as tmp:
        # 310/300 = 1.03x < 1.3x floor: coalescing stopped paying off.
        write(tmp, "serve.json",
              hot_set_bench(310, 190, batches=90, batched_requests=430))
        write(tmp, "serve_unbatched.json", hot_set_bench(300, 200))
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "coalesce hot-set ratio" in proc.stdout


def test_coalesce_batched_sheds_more_fails():
    with tempfile.TemporaryDirectory() as tmp:
        # Throughput ratio holds but the batched daemon sheds MORE — the
        # "same shed rate" half of the claim broke.
        write(tmp, "serve.json",
              hot_set_bench(450, 300, batches=90, batched_requests=430))
        write(tmp, "serve_unbatched.json", hot_set_bench(300, 200))
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "shed more" in proc.stdout


def test_coalesce_unsaturated_sweep_fails():
    with tempfile.TemporaryDirectory() as tmp:
        # The unbatched daemon never shed: the sweep compared two idle
        # daemons, which proves nothing about capacity.
        write(tmp, "serve.json",
              hot_set_bench(450, 0, batches=90, batched_requests=430))
        write(tmp, "serve_unbatched.json", hot_set_bench(450, 0))
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "never saturated" in proc.stdout


def test_coalesce_requires_hot_set_workload():
    with tempfile.TemporaryDirectory() as tmp:
        write(tmp, "serve.json",
              hot_set_bench(450, 50, batches=90, batched_requests=430,
                            hot_set=0))
        write(tmp, "serve_unbatched.json", hot_set_bench(300, 200))
        proc = run_gate(tmp)
        assert proc.returncode == 1, proc.stdout
        assert "--hot-set" in proc.stdout


def test_no_bench_files_at_all():
    with tempfile.TemporaryDirectory() as tmp:
        proc = run_gate(tmp)
        assert_one_line_error(proc)


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
