#!/usr/bin/env python3
"""Bench regression gate for CI.

Reads the BENCH_*.json files emitted by bench_serving / bench_parallel
(both support --smoke for CI-sized runs) and fails the build when the
speedup ratios that justify the serving and parallelism layers regress
below checked-in floors (tools/bench_floors.json).

Ratios, not absolute times, are gated: candidates/sec varies wildly
across runner hardware, but "batched scoring beats per-candidate
scoring" and "the warm feature cache beats the cold path" are
hardware-independent claims — if either ratio collapses, someone broke
the batching or caching layer, not the runner.

Hardware escape hatch: each BENCH file records hardware_concurrency.
Parallel speedup-vs-threads floors only apply to thread counts the
machine can actually run concurrently; on an N-core runner, legs with
more than N threads are held to a loose "oversubscription must not be
catastrophic" floor instead of a scaling floor. Set RETINA_BENCH_GATE=warn
to report violations without failing (for quarantining a flaky runner).

SIMD kernel floors (BENCH_kernels.json, emitted by bench_perf_micro)
gate the SIMD-vs-scalar speedup per kernel at the work sizes where
vectorization must pay off. The gate self-disables when the report says
dispatch is "scalar" (scalar-only hardware, or a RETINA_SIMD=scalar
leg — a 1x ratio there is correct, not a regression) and in smoke mode
(timings too short to be stable).

Tiered-store floors (BENCH_store.json, emitted by bench_store) gate the
warm-LRU and absent-user (Bloom skip) lookup speedups against a cold
store pass. The absent floor is the Bloom filter's contract: a lookup
for a user the store does not hold must resolve without touching block
bytes, which is only visible as a large ratio over the cold path.

Serve-sweep floors (BENCH_serve.json, emitted by tools/load_driver) gate
shape, not speed: every sweep point must answer requests and drop none
(answered-or-shed, never lost), the lowest-QPS point must run entirely
unshed, and p99 must stay finite under a loose ceiling when the driver's
obs histograms counted. --serve-tcp holds a TCP-transport sweep to the
same shape floors; --serve-unbatched (a sweep against a daemon run with
--coalesce-max-batch=1) additionally arms the coalescing ratio gate:
at the last (highest-QPS, saturated) sweep point, the batched daemon's
ok-throughput must beat the unbatched daemon's by
hot_set_min_batched_speedup while shedding no more than it — the
same-tweet coalescing dispatcher's reason to exist, stated as a
hardware-independent ratio.

Usage:
  check_bench.py [--floors tools/bench_floors.json]
                 [--serving BENCH_serving.json]
                 [--parallel BENCH_parallel.json]
                 [--kernels BENCH_kernels.json]
                 [--store BENCH_store.json]
                 [--serve BENCH_serve.json]
                 [--serve-tcp BENCH_serve_tcp.json]
                 [--serve-unbatched BENCH_serve_unbatched.json]
                 [--require SECTION ...]

At least one of the bench files must exist; missing files are skipped
unless their section is named in --require, in which case the gate fails
with a one-line error. Malformed JSON and missing floor keys also fail
with a one-line error, never a traceback.
"""

import argparse
import json
import os
import sys


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {what} from {path}: {e}")
        sys.exit(2)


def check_serving(bench, floors, violations):
    """Batched and warm-cache speedups vs per-candidate scoring."""
    modes = bench.get("modes", {})
    pool_sizes = bench.get("pool_sizes", [])
    checks = [
        ("batched", floors["batched_min_speedup"]),
        ("batched_cached", floors["batched_cached_min_speedup"]),
    ]
    for mode, floor in checks:
        speedups = modes.get(mode, {}).get("speedup_vs_per_candidate")
        if not speedups:
            violations.append(f"serving: mode '{mode}' missing from bench output")
            continue
        # Gate the best pool size: small pools can legitimately sit near 1x,
        # but if even the best configuration is below floor, the layer broke.
        best = max(speedups)
        tag = ", ".join(
            f"pool={p}: {s:g}x" for p, s in zip(pool_sizes, speedups)
        )
        line = f"serving {mode:>16}: best {best:g}x (floor {floor:g}x) [{tag}]"
        if best < floor:
            violations.append(line)
        else:
            print(f"  ok   {line}")


def check_parallel(bench, floors, violations):
    """Speedup-vs-1-thread per workload, gated on real core count."""
    hw = int(bench.get("hardware_concurrency", 0))
    thread_counts = bench.get("thread_counts", [])
    scaling_floor = floors["min_speedup_per_thread_count"]
    oversub_floor = floors["oversubscribed_min_speedup"]
    if hw <= 1:
        print(
            f"  skip parallel scaling floors: hardware_concurrency={hw} "
            "(single-core runner cannot demonstrate scaling); "
            f"applying only the oversubscription floor {oversub_floor:g}x"
        )
    for name, wl in bench.get("workloads", {}).items():
        speedups = wl.get("speedup_vs_1", [])
        for threads, s in zip(thread_counts, speedups):
            if threads <= 1:
                continue
            if hw > 1 and threads <= hw:
                floor, kind = scaling_floor, "scaling"
            else:
                # More threads than cores (or an unknown/1-core machine):
                # scaling is physically impossible, only demand that
                # oversubscription doesn't collapse into lock convoy.
                floor, kind = oversub_floor, "oversubscribed"
            line = (
                f"parallel {name}: {s:g}x at {threads} threads "
                f"({kind} floor {floor:g}x, {hw} cores)"
            )
            if s < floor:
                violations.append(line)
            else:
                print(f"  ok   {line}")


def check_kernels(bench, floors, violations):
    """SIMD-vs-scalar speedup per kernel at gated work sizes."""
    dispatch = bench.get("dispatch", "scalar")
    if dispatch == "scalar":
        print(
            "  skip kernel floors: dispatch is 'scalar' "
            "(no SIMD backend active; 1x vs scalar is correct)"
        )
        return
    if bench.get("smoke"):
        print("  skip kernel floors: smoke-mode timings are not stable")
        return
    min_work = floors["min_work_size"]
    for name, floor in floors["min_speedup"].items():
        kern = bench.get("kernels", {}).get(name)
        if not kern:
            violations.append(f"kernels: '{name}' missing from bench output")
            continue
        # "work" is the effective per-call work (nnz for sparse kernels);
        # older reports without it fall back to the dense size.
        works = kern.get("work", kern.get("sizes", []))
        gated = [
            (w, s)
            for w, s in zip(works, kern.get("speedup", []))
            if w >= min_work
        ]
        if not gated:
            violations.append(
                f"kernels: '{name}' has no case with work >= {min_work}"
            )
            continue
        for work, speedup in gated:
            line = (
                f"kernel {name}: {speedup:g}x vs scalar at work={work} "
                f"(floor {floor:g}x, dispatch {dispatch})"
            )
            if speedup < floor:
                violations.append(line)
            else:
                print(f"  ok   {line}")


def check_store(bench, floors, violations):
    """Warm-LRU and absent-user (Bloom skip) speedups vs a cold store pass."""
    checks = [
        ("warm_speedup_vs_cold", floors["warm_min_speedup_vs_cold"]),
        ("absent_speedup_vs_cold", floors["absent_min_speedup_vs_cold"]),
    ]
    for key, floor in checks:
        speedup = bench.get(key)
        if speedup is None:
            violations.append(f"store: '{key}' missing from bench output")
            continue
        line = f"store {key}: {speedup:g}x (floor {floor:g}x)"
        if speedup < floor:
            violations.append(line)
        else:
            print(f"  ok   {line}")
    fp_rate = bench.get("bloom", {}).get("fp_rate")
    if fp_rate is not None:
        # Informational: the FP-rate pin lives in the C++ store tests.
        print(f"  info store bloom fp_rate: {fp_rate:g}")


def check_serve(bench, floors, violations, label="serve"):
    """Shape of the open-loop daemon sweep (BENCH_serve.json).

    Absolute throughput and latency vary with the runner, so the gate
    holds only the hardware-independent contract: every sweep point
    answers something and loses nothing (a request is answered or shed
    at admission, never silently dropped), the lowest-QPS point runs
    entirely unshed (the daemon must not shed below capacity), and —
    when obs is compiled in so the driver's histograms counted — p99 at
    every point stays finite and under a very loose ceiling.
    """
    points = bench.get("points", [])
    min_points = floors["min_points"]
    if len(points) < min_points:
        violations.append(
            f"{label}: {len(points)} sweep points, floor {min_points}")
        return
    max_p99 = floors["max_p99_ns"]
    obs_in = bench.get("obs_compiled_in", True)
    if not obs_in:
        print(f"  skip {label} p99 ceiling: obs compiled out "
              "(driver histograms did not count)")
    for i, p in enumerate(points):
        tag = f"point {i} ({p.get('target_qps', '?')} qps)"
        dropped = p.get("dropped", 0)
        if dropped:
            violations.append(
                f"{label} {tag}: {dropped} requests neither answered nor shed")
            continue
        if p.get("ok", 0) <= 0:
            violations.append(f"{label} {tag}: answered nothing")
            continue
        line = (f"{label} {tag}: ok={p['ok']} shed={p.get('shed', 0)} "
                "dropped=0")
        if obs_in:
            p99 = p.get("latency_ns", {}).get("p99", 0)
            if not 0 < p99 <= max_p99:
                violations.append(
                    f"{label} {tag}: p99={p99}ns outside (0, {max_p99:g}]")
                continue
            line += f" p99={p99 / 1e6:.3f}ms"
        print(f"  ok   {line}")
    first = points[0]
    first_shed = first.get("shed", 0) + first.get("server_shed_delta", 0)
    if first_shed:
        violations.append(
            f"{label}: lowest-QPS point shed "
            f"{first_shed} requests below capacity")
    else:
        print(f"  ok   {label} lowest-QPS point: zero shed below capacity")


def check_serve_tcp(bench, floors, violations):
    """The TCP-transport sweep answers to the same shape floors."""
    if bench.get("transport") != "tcp":
        violations.append(
            "serve_tcp: bench file does not record transport=tcp "
            f"(got {bench.get('transport')!r}); wrong file wired into CI?")
        return
    check_serve(bench, floors, violations, label="serve_tcp")


def _last_point_throughput(bench):
    """ok-throughput (answered ok / elapsed) of the last sweep point."""
    points = bench.get("points", [])
    if not points:
        return None, None
    p = points[-1]
    elapsed = p.get("elapsed_s", 0)
    if not elapsed:
        return None, p
    return p.get("ok", 0) / elapsed, p


def check_coalesce_ratio(batched, unbatched, floors, violations):
    """Batched-vs-unbatched hot-set ratio at the saturated last point.

    The claim coalescing exists for: against the same hot-set workload,
    at an offered load past the unbatched daemon's capacity, the batched
    daemon answers >= hot_set_min_batched_speedup times as many requests
    per second while shedding no more. Both sweeps must saturate the
    unbatched daemon (its last point must shed) — an unsaturated sweep
    would compare two idle daemons at ratio ~1 and tell us nothing.
    """
    floor = floors["hot_set_min_batched_speedup"]
    b_tput, b_last = _last_point_throughput(batched)
    u_tput, u_last = _last_point_throughput(unbatched)
    if b_tput is None or u_tput is None or u_tput == 0:
        violations.append(
            "coalesce: cannot compute last-point ok-throughput "
            "(empty sweep or zero elapsed time)")
        return
    if batched.get("hot_set", 0) <= 0 or unbatched.get("hot_set", 0) <= 0:
        violations.append(
            "coalesce: ratio gate needs --hot-set sweeps on both daemons "
            f"(batched hot_set={batched.get('hot_set')}, "
            f"unbatched hot_set={unbatched.get('hot_set')})")
        return
    u_shed = u_last.get("shed", 0) + u_last.get("server_shed_delta", 0)
    b_shed = b_last.get("shed", 0) + b_last.get("server_shed_delta", 0)
    if u_shed == 0:
        violations.append(
            "coalesce: unbatched sweep never saturated (last point shed 0) "
            "— raise the top --qps so the ratio measures capacity")
        return
    ratio = b_tput / u_tput
    avg_batch = b_last.get("coalesce", {}).get("avg_batch", 0)
    line = (f"coalesce hot-set ratio: batched {b_tput:.0f} ok/s vs "
            f"unbatched {u_tput:.0f} ok/s = {ratio:.2f}x "
            f"(floor {floor:g}x, avg_batch {avg_batch:g}, "
            f"shed {b_shed} vs {u_shed})")
    if ratio < floor:
        violations.append(line)
    elif b_shed > u_shed:
        violations.append(
            f"coalesce: batched daemon shed more ({b_shed} > {u_shed}) "
            "at the same offered load")
    else:
        print(f"  ok   {line}")


SECTIONS = ("serving", "parallel", "kernels", "store", "serve",
            "serve_tcp", "serve_unbatched")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--floors", default="tools/bench_floors.json")
    ap.add_argument("--serving", default="BENCH_serving.json")
    ap.add_argument("--parallel", default="BENCH_parallel.json")
    ap.add_argument("--kernels", default="BENCH_kernels.json")
    ap.add_argument("--store", default="BENCH_store.json")
    ap.add_argument("--serve", default="BENCH_serve.json")
    ap.add_argument("--serve-tcp", default="BENCH_serve_tcp.json")
    ap.add_argument("--serve-unbatched", default="BENCH_serve_unbatched.json")
    ap.add_argument(
        "--require", nargs="*", default=[], choices=SECTIONS, metavar="SECTION",
        help="sections whose bench file must exist (missing -> exit 2)")
    args = ap.parse_args()

    floors = load_json(args.floors, "floors")
    violations = []
    checked_any = False

    def check_serve_unbatched(bench, section_floors, out):
        check_serve(bench, section_floors, out, label="serve_unbatched")

    # (section name, path, checker, description, floors key) — the three
    # serve sweeps share the "serve" floors block.
    sections = [
        ("serving", args.serving, check_serving, "serving bench", "serving"),
        ("parallel", args.parallel, check_parallel, "parallel bench",
         "parallel"),
        ("kernels", args.kernels, check_kernels, "kernel bench", "kernels"),
        ("store", args.store, check_store, "store bench", "store"),
        ("serve", args.serve, check_serve, "serve bench", "serve"),
        ("serve_tcp", args.serve_tcp, check_serve_tcp, "serve TCP bench",
         "serve"),
        ("serve_unbatched", args.serve_unbatched, check_serve_unbatched,
         "serve unbatched bench", "serve"),
    ]
    for name, path, check, what, floors_key in sections:
        if not os.path.exists(path):
            if name in args.require:
                print(f"FAIL: required {what} output {path} is missing")
                return 2
            continue
        print(f"checking {path}")
        bench = load_json(path, what)
        try:
            section_floors = floors[floors_key]
            check(bench, section_floors, violations)
        except KeyError as e:
            print(f"FAIL: floors file {args.floors} is missing key {e} "
                  f"for section '{name}'")
            return 2
        checked_any = True

    # The coalescing ratio gate arms itself when both the batched and the
    # unbatched hot-set sweeps are present.
    if os.path.exists(args.serve) and os.path.exists(args.serve_unbatched):
        print("checking coalescing ratio "
              f"({args.serve} vs {args.serve_unbatched})")
        batched = load_json(args.serve, "serve bench")
        unbatched = load_json(args.serve_unbatched, "serve unbatched bench")
        try:
            check_coalesce_ratio(batched, unbatched, floors["serve"],
                                 violations)
        except KeyError as e:
            print(f"FAIL: floors file {args.floors} is missing key {e} "
                  "for section 'serve'")
            return 2

    if not checked_any:
        print("FAIL: no bench output file exists "
              f"({args.serving}, {args.parallel}, {args.kernels}, "
              f"{args.store}, {args.serve})")
        return 2

    if violations:
        print()
        for v in violations:
            print(f"  FAIL {v}")
        if os.environ.get("RETINA_BENCH_GATE") == "warn":
            print("\nRETINA_BENCH_GATE=warn: reporting only, not failing.")
            return 0
        print("\nbench regression gate FAILED "
              "(set RETINA_BENCH_GATE=warn to quarantine a flaky runner)")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
