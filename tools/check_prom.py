#!/usr/bin/env python3
"""Validator for the daemon's --prom-out Prometheus text exposition.

Checks the format invariants obs::Registry::ToPrometheus() promises, the
ones a real scraper would choke on if they broke:

  - every sample line belongs to a family announced by a preceding
    `# TYPE <family> <counter|gauge|histogram>` line
  - family names are `retina_`-prefixed, `[a-zA-Z_:][a-zA-Z0-9_:]*`, and
    each family is announced exactly once, in sorted order (the file is
    written from sorted maps, so an unsorted file means a writer bug)
  - sample values parse as numbers
  - histogram families carry `_bucket{le="..."}` samples with
    non-decreasing upper bounds and non-decreasing cumulative counts,
    ending in an `le="+Inf"` bucket whose count equals `_sum`'s sibling
    `_count` sample

Usage:
  tools/check_prom.py FILE [--require-family NAME]...

--require-family asserts a family is present (e.g. the serve e2e requires
retina_serve_handle_ns after driving load). Exits nonzero with a message
on the first violation. Stdlib only.
"""

import argparse
import math
import re
import sys

FAMILY_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$")


def fail(lineno, message):
    sys.exit(f"check_prom: line {lineno}: {message}")


def parse_value(lineno, text):
    try:
        return float(text)
    except ValueError:
        fail(lineno, f"sample value {text!r} is not a number")


def family_of(sample_name):
    """Strips the histogram-sample suffix to recover the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def le_bound(lineno, labels):
    m = re.match(r'^le="([^"]*)"$', labels or "")
    if not m:
        fail(lineno, f"bucket labels {labels!r} are not a single le=\"...\"")
    raw = m.group(1)
    if raw == "+Inf":
        return math.inf
    return parse_value(lineno, raw)


def check(path, require_families):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    types = {}          # family -> type string
    announced = []      # families in file order
    histograms = {}     # family -> {"buckets": [(le, count)], "sum": v,
                        #            "count": v, "lines": [...]}
    samples = 0

    current_family = None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(lineno, f"malformed TYPE line: {line!r}")
            _, _, family, kind = parts
            if not FAMILY_RE.match(family):
                fail(lineno, f"bad family name {family!r}")
            if not family.startswith("retina_"):
                fail(lineno, f"family {family!r} lacks the retina_ prefix")
            if kind not in ("counter", "gauge", "histogram"):
                fail(lineno, f"unknown family type {kind!r}")
            if family in types:
                fail(lineno, f"family {family!r} announced twice")
            types[family] = kind
            announced.append(family)
            current_family = family
            if kind == "histogram":
                histograms[family] = {"buckets": [], "sum": None,
                                      "count": None}
            continue
        if line.startswith("#"):
            continue  # other comments are legal exposition
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample line: {line!r}")
        name = m.group("name")
        family = family_of(name)
        if family not in types:
            fail(lineno, f"sample {name!r} has no preceding # TYPE line")
        if family != current_family:
            fail(lineno, f"sample {name!r} is separated from its family "
                         f"block (current family is {current_family!r})")
        value = parse_value(lineno, m.group("value"))
        samples += 1
        if types[family] == "histogram":
            h = histograms[family]
            if name.endswith("_bucket"):
                h["buckets"].append(
                    (le_bound(lineno, m.group("labels")), value, lineno))
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value
            else:
                fail(lineno, f"histogram family {family!r} has a bare "
                             f"sample {name!r}")
        elif m.group("labels"):
            fail(lineno, f"{types[family]} sample {name!r} carries labels")

    if announced != sorted(announced):
        sys.exit("check_prom: families are not in sorted order "
                 "(writer emits sorted maps, so this is a bug)")

    for family, h in sorted(histograms.items()):
        if not h["buckets"]:
            sys.exit(f"check_prom: histogram {family} has no _bucket lines")
        prev_le, prev_count = -math.inf, -1.0
        for le, count, lineno in h["buckets"]:
            if le <= prev_le:
                fail(lineno, f"{family} bucket bounds not increasing "
                             f"({le} after {prev_le})")
            if count < prev_count:
                fail(lineno, f"{family} cumulative bucket counts decreased "
                             f"({count} after {prev_count})")
            prev_le, prev_count = le, count
        last_le, last_count, last_line = h["buckets"][-1]
        if last_le != math.inf:
            fail(last_line, f"{family} buckets do not end in le=\"+Inf\"")
        if h["count"] is None or h["sum"] is None:
            sys.exit(f"check_prom: histogram {family} lacks _count/_sum")
        if last_count != h["count"]:
            sys.exit(f"check_prom: {family} +Inf bucket ({last_count:g}) "
                     f"!= _count ({h['count']:g})")

    missing = [f for f in require_families if f not in types]
    if missing:
        sys.exit(f"check_prom: required families missing: "
                 f"{', '.join(missing)} (have {len(types)})")

    print(f"check_prom: {path} OK — {len(types)} families, "
          f"{samples} samples, {len(histograms)} histograms")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="Prometheus exposition file (--prom-out)")
    ap.add_argument("--require-family", action="append", default=[],
                    help="fail unless this family is present (repeatable)")
    args = ap.parse_args()
    check(args.file, args.require_family)


if __name__ == "__main__":
    main()
