// retina — command-line front end for the library.
//
//   retina generate  --out DIR [--scale F] [--users N] [--seed N]
//       Generate a synthetic world and export it as CSV.
//   retina stats     --data DIR
//       Print per-hashtag dataset statistics (Table II view) of a world.
//   retina annotate  --data DIR [--seed N]
//       Run the Section VI-B annotation pipeline in place (rewrites
//       tweets.csv machine labels) and print the reliability report.
//   retina train-hategen --data DIR [--seed N]
//       Train the best hate-generation model (decision tree + DS) and
//       print gold-test metrics.
//   retina train-retweet --data DIR [--dynamic] [--no-exo] [--seed N]
//                        [--save-model DIR]
//       Train RETINA on the retweeter-prediction task and print metrics.
//       With --save-model, write the trained model + feature pipeline as
//       a versioned checkpoint bundle for later serving.
//   retina eval --data DIR --model DIR
//       Load a saved bundle, rebuild the training-time task split from the
//       bundled seed, and evaluate — bit-identical to the metrics printed
//       by the train-retweet run that saved it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/obs.h"
#include "common/run_export.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "core/model_store.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "datagen/serialize.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace {

using namespace retina;

struct Args {
  std::string command;
  std::string data;
  std::string out;
  std::string save_model;
  std::string model;
  std::string store_dir;
  std::string metrics_out;
  std::string trace_out;
  std::string log_level;
  std::string simd;
  double scale = 0.1;
  size_t users = 2500;
  uint64_t seed = 7;
  bool dynamic = false;
  bool no_exo = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: retina <generate|stats|annotate|train-hategen|train-retweet|"
      "eval>\n"
      "  generate      --out DIR [--scale F] [--users N] [--seed N]\n"
      "  stats         --data DIR\n"
      "  annotate      --data DIR [--seed N]\n"
      "  train-hategen --data DIR [--seed N]\n"
      "  train-retweet --data DIR [--dynamic] [--no-exo] [--seed N]"
      " [--save-model DIR]\n"
      "  eval          --data DIR --model DIR [--store-dir DIR]\n"
      "every command also accepts:\n"
      "  --store-dir=DIR     eval: serve user history features through the\n"
      "                      disk-backed tiered store (built on first use)\n"
      "  --metrics-out=FILE  dump the run's observability registry\n"
      "                      (counters, latency histograms, trace spans,\n"
      "                      training series, peak RSS) as JSON to FILE and\n"
      "                      print a summary table\n"
      "  --trace-out=FILE    record a per-thread event timeline for the\n"
      "                      whole run and write it as Chrome trace JSON\n"
      "                      (open in chrome://tracing or Perfetto; feed\n"
      "                      with --metrics-out into tools/report.py)\n"
      "  --log-level=LEVEL   stderr log threshold: debug|info|warn|error\n"
      "  --simd=BACKEND      kernel dispatch: auto|avx2|neon|scalar\n"
      "                      (overrides the RETINA_SIMD environment\n"
      "                      variable; scalar reproduces pre-SIMD results\n"
      "                      bit-for-bit)\n");
  return 2;
}

/// One-line Status rejection on stderr. Scripts get a stable nonzero exit
/// and the actual mistake stays visible instead of drowning in the usage
/// text (bare `retina` still prints the full usage).
int RejectArg(const std::string& what) {
  std::fprintf(stderr, "%s\n",
               Status::InvalidArgument(what + " (run 'retina' for usage)")
                   .ToString()
                   .c_str());
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args, int* rc) {
  *rc = 0;
  if (argc < 2) {
    *rc = Usage();
    return false;
  }
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->out = v;
    } else if (arg == "--data") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->data = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->scale = std::atof(v);
    } else if (arg == "--users") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->users = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--save-model") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->save_model = v;
    } else if (arg == "--store-dir") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->store_dir = v;
    } else if (arg.rfind("--store-dir=", 0) == 0) {
      args->store_dir = arg.substr(std::strlen("--store-dir="));
    } else if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->model = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->metrics_out = v;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      args->metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->trace_out = v;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      args->trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--log-level") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->log_level = v;
    } else if (arg.rfind("--log-level=", 0) == 0) {
      args->log_level = arg.substr(std::strlen("--log-level="));
    } else if (arg == "--simd") {
      const char* v = next();
      if (v == nullptr) {
        *rc = RejectArg("flag '" + arg + "' requires a value");
        return false;
      }
      args->simd = v;
    } else if (arg.rfind("--simd=", 0) == 0) {
      args->simd = arg.substr(std::strlen("--simd="));
    } else if (arg == "--dynamic") {
      args->dynamic = true;
    } else if (arg == "--no-exo") {
      args->no_exo = true;
    } else {
      *rc = RejectArg("unknown flag '" + arg + "'");
      return false;
    }
  }
  return true;
}

Result<datagen::SyntheticWorld> LoadWorld(const Args& args) {
  if (args.data.empty()) {
    return Status::InvalidArgument("--data DIR is required");
  }
  return datagen::ImportWorldCsv(args.data);
}

Result<core::FeatureExtractor> BuildFeatures(
    const datagen::SyntheticWorld& world, uint64_t seed) {
  core::FeatureConfig fc;
  fc.history_tfidf_dim = 200;
  fc.news_tfidf_dim = 200;
  fc.tweet_tfidf_dim = 200;
  fc.news_window = 60;
  fc.seed = seed;
  return core::FeatureExtractor::Build(world, fc);
}

int CmdGenerate(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "generate requires --out DIR\n");
    return 2;
  }
  Stopwatch timer;
  datagen::WorldConfig config;
  config.scale = args.scale;
  config.num_users = args.users;
  const auto world = datagen::SyntheticWorld::Generate(config, args.seed);
  std::printf("generated %zu tweets, %zu users, %zu headlines (%.1fs)\n",
              world.tweets().size(), world.NumUsers(),
              world.news().articles().size(), timer.ElapsedSeconds());
  const Status st = datagen::ExportWorldCsv(world, args.out);
  if (!st.ok()) {
    std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("exported to %s\n", args.out.c_str());
  return 0;
}

int CmdStats(const Args& args) {
  auto world_result = LoadWorld(args);
  if (!world_result.ok()) {
    std::fprintf(stderr, "%s\n", world_result.status().ToString().c_str());
    return 1;
  }
  const auto& world = world_result.ValueOrDie();
  const auto stats = world.ComputeHashtagStats();
  TableWriter table("", {"hashtag", "tweets", "avg RT", "users",
                         "users-all", "%hate"});
  for (size_t h = 0; h < stats.size(); ++h) {
    table.AddRow({world.hashtags()[h].tag, std::to_string(stats[h].tweets),
                  FormatDouble(stats[h].avg_retweets, 2),
                  std::to_string(stats[h].unique_authors),
                  std::to_string(stats[h].users_all),
                  FormatDouble(stats[h].pct_hate, 2)});
  }
  table.Print();
  return 0;
}

int CmdAnnotate(const Args& args) {
  auto world_result = LoadWorld(args);
  if (!world_result.ok()) {
    std::fprintf(stderr, "%s\n", world_result.status().ToString().c_str());
    return 1;
  }
  auto world = std::move(world_result).ValueOrDie();
  hatedetect::AnnotationOptions opts;
  opts.seed = args.seed;
  auto report = hatedetect::AnnotateWorld(&world, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const auto& r = report.ValueOrDie();
  std::printf("gold tweets:        %zu\n", r.gold_tweets);
  std::printf("krippendorff alpha: %.3f\n", r.krippendorff_alpha);
  std::printf("fine-tuned:         AUC %.3f  macro-F1 %.3f\n",
              r.finetuned_auc, r.finetuned_macro_f1);
  std::printf("pre-trained:        AUC %.3f  macro-F1 %.3f\n",
              r.pretrained_auc, r.pretrained_macro_f1);
  const Status st = datagen::ExportWorldCsv(world, args.data);
  if (!st.ok()) {
    std::fprintf(stderr, "re-export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("machine labels written back to %s\n", args.data.c_str());
  return 0;
}

int CmdTrainHateGen(const Args& args) {
  auto world_result = LoadWorld(args);
  if (!world_result.ok()) {
    std::fprintf(stderr, "%s\n", world_result.status().ToString().c_str());
    return 1;
  }
  const auto& world = world_result.ValueOrDie();
  auto fx = BuildFeatures(world, args.seed);
  if (!fx.ok()) {
    std::fprintf(stderr, "%s\n", fx.status().ToString().c_str());
    return 1;
  }
  core::HateGenTaskOptions opts;
  opts.seed = args.seed;
  auto task = core::BuildHateGenTask(fx.ValueOrDie(), opts);
  if (!task.ok()) {
    std::fprintf(stderr, "%s\n", task.status().ToString().c_str());
    return 1;
  }
  ml::DecisionTreeOptions topts;
  topts.max_depth = 5;
  ml::DecisionTree tree(topts);
  auto result = core::RunHateGenPipeline(task.ValueOrDie(), &tree,
                                         core::ProcVariant::kDownsample,
                                         args.seed);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.ValueOrDie();
  std::printf("hate generation (Dec-Tree + DS): macro-F1 %.3f  ACC %.3f  "
              "AUC %.3f\n",
              r.macro_f1, r.accuracy, r.auc);
  return 0;
}

int CmdTrainRetweet(const Args& args) {
  auto world_result = LoadWorld(args);
  if (!world_result.ok()) {
    std::fprintf(stderr, "%s\n", world_result.status().ToString().c_str());
    return 1;
  }
  const auto& world = world_result.ValueOrDie();
  auto fx = BuildFeatures(world, args.seed);
  if (!fx.ok()) {
    std::fprintf(stderr, "%s\n", fx.status().ToString().c_str());
    return 1;
  }
  core::RetweetTaskOptions opts;
  opts.seed = args.seed;
  auto task_result = core::BuildRetweetTask(fx.ValueOrDie(), opts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "%s\n", task_result.status().ToString().c_str());
    return 1;
  }
  const auto& task = task_result.ValueOrDie();

  core::RetinaOptions ropts;
  ropts.dynamic = args.dynamic;
  ropts.use_exogenous = !args.no_exo;
  ropts.epochs = 4;
  if (args.dynamic) {
    ropts.use_adam = false;
    ropts.learning_rate = 1e-3;
    ropts.lambda = 2.5;
  }
  ropts.seed = args.seed;
  Stopwatch timer;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), ropts);
  const Status st = model.Train(task);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Score the test split through the serving engine: batched GEMM forward
  // with per-user feature caching, bit-identical to per-candidate scoring.
  core::ScoringEngine engine(&model, &fx.ValueOrDie());
  const Vec scores = engine.ScoreCandidates(task, task.test);
  const auto eval = core::EvaluateBinary(task.test, scores);
  const auto queries = core::MakeRankingQueries(task, task.test, scores);
  const auto& st_eng = engine.stats();
  std::printf(
      "RETINA-%s%s: macro-F1 %.3f  ACC %.3f  AUC %.3f  MAP@20 %.3f  "
      "HITS@20 %.3f  (train %.1fs)\n",
      args.dynamic ? "D" : "S", args.no_exo ? " [no-exo]" : "",
      eval.macro_f1, eval.accuracy, eval.auc,
      ml::MeanAveragePrecisionAtK(queries, 20), ml::HitsAtK(queries, 20),
      timer.ElapsedSeconds());
  std::printf(
      "  serving: %llu requests, %llu candidates, user cache %llu/%llu "
      "hits (%llu evictions)\n",
      static_cast<unsigned long long>(st_eng.requests),
      static_cast<unsigned long long>(st_eng.candidates),
      static_cast<unsigned long long>(st_eng.user_hits),
      static_cast<unsigned long long>(st_eng.user_hits +
                                      st_eng.user_misses),
      static_cast<unsigned long long>(st_eng.user_evictions));
  if (!args.save_model.empty()) {
    core::ScoringBundleMeta meta;
    meta.task_seed = args.seed;
    const Status save_st = core::SaveScoringBundle(args.save_model, model,
                                                   fx.ValueOrDie(), meta);
    if (!save_st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", save_st.ToString().c_str());
      return 1;
    }
    std::printf("model saved to %s/%s\n", args.save_model.c_str(),
                core::kModelCheckpointFile);
  }
  return 0;
}

int CmdEval(const Args& args) {
  if (args.model.empty()) {
    std::fprintf(stderr, "eval requires --model DIR\n");
    return 2;
  }
  auto world_result = LoadWorld(args);
  if (!world_result.ok()) {
    std::fprintf(stderr, "%s\n", world_result.status().ToString().c_str());
    return 1;
  }
  const auto& world = world_result.ValueOrDie();
  Stopwatch timer;
  auto bundle_result = core::LoadScoringBundle(args.model, world);
  if (!bundle_result.ok()) {
    std::fprintf(stderr, "%s\n", bundle_result.status().ToString().c_str());
    return 1;
  }
  const auto& bundle = bundle_result.ValueOrDie();
  std::printf("loaded %s/%s (%.1fs)\n", args.model.c_str(),
              core::kModelCheckpointFile, timer.ElapsedSeconds());

  // Rebuild the training-time split from the bundled seed so the test set
  // is the one the saved metrics were computed on.
  core::RetweetTaskOptions opts;
  opts.seed = bundle.meta.task_seed;
  auto task_result = core::BuildRetweetTask(*bundle.extractor, opts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "%s\n", task_result.status().ToString().c_str());
    return 1;
  }
  const auto& task = task_result.ValueOrDie();

  core::ScoringEngine engine(bundle.model.get(), bundle.extractor.get());
  if (!args.store_dir.empty()) {
    // Serve user history blocks through the disk-backed tiered store,
    // building it on first use. Scores are bit-identical with or without
    // the store (the blocks round-trip as f64 bit patterns).
    Status attach = engine.AttachStore(args.store_dir);
    if (!attach.ok()) {
      Stopwatch build_timer;
      Status built = core::ScoringEngine::BuildStore(*bundle.extractor,
                                                     args.store_dir);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.ToString().c_str());
        return 1;
      }
      attach = engine.AttachStore(args.store_dir);
      if (!attach.ok()) {
        std::fprintf(stderr, "%s\n", attach.ToString().c_str());
        return 1;
      }
      std::printf("built user store %s (%.1fs)\n", args.store_dir.c_str(),
                  build_timer.ElapsedSeconds());
    }
    std::printf("user store: %zu users in %zu blocks\n",
                engine.store()->num_entries(), engine.store()->num_blocks());
  }
  const Vec scores = engine.ScoreCandidates(task, task.test);
  const auto eval = core::EvaluateBinary(task.test, scores);
  const auto queries = core::MakeRankingQueries(task, task.test, scores);
  std::printf(
      "RETINA-%s%s (loaded): macro-F1 %.3f  ACC %.3f  AUC %.3f  "
      "MAP@20 %.3f  HITS@20 %.3f\n",
      bundle.model->options().dynamic ? "D" : "S",
      bundle.model->options().use_exogenous ? "" : " [no-exo]",
      eval.macro_f1, eval.accuracy, eval.auc,
      ml::MeanAveragePrecisionAtK(queries, 20), ml::HitsAtK(queries, 20));
  return 0;
}

int RunCommand(const Args& args) {
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "annotate") return CmdAnnotate(args);
  if (args.command == "train-hategen") return CmdTrainHateGen(args);
  if (args.command == "train-retweet") return CmdTrainRetweet(args);
  if (args.command == "eval") return CmdEval(args);
  return RejectArg("unknown command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  int parse_rc = 0;
  if (!ParseArgs(argc, argv, &args, &parse_rc)) return parse_rc;
  if (!args.log_level.empty()) {
    retina::LogLevel level;
    if (!retina::ParseLogLevel(args.log_level, &level)) {
      std::fprintf(stderr, "bad --log-level: %s (want debug|info|warn|error)\n",
                   args.log_level.c_str());
      return 2;
    }
    retina::SetLogLevel(level);
  }
  if (!args.simd.empty()) {
    simd::Backend backend;
    if (!simd::ParseBackend(args.simd, &backend)) {
      std::fprintf(stderr, "bad --simd: %s (want auto|avx2|neon|scalar)\n",
                   args.simd.c_str());
      return 2;
    }
    const Status forced = simd::ForceBackend(backend);
    if (!forced.ok()) {
      std::fprintf(stderr, "--simd=%s: %s\n", args.simd.c_str(),
                   forced.ToString().c_str());
      return 2;
    }
  }
  if (!args.trace_out.empty()) obs::StartTracing();
  const int rc = RunCommand(args);
  if (rc != 0) return rc;
  // End-of-run observability exports (shared with retina_serve and
  // load_driver): registry JSON + summary table, then the Chrome trace of
  // the whole run. No-ops when the flags are unset.
  const Status metrics_st = obs::ExportMetricsJson(args.metrics_out);
  if (!metrics_st.ok()) {
    std::fprintf(stderr, "%s\n", metrics_st.ToString().c_str());
    return 1;
  }
  const Status trace_st = obs::ExportChromeTrace(args.trace_out);
  if (!trace_st.ok()) {
    std::fprintf(stderr, "%s\n", trace_st.ToString().c_str());
    return 1;
  }
  return 0;
}
