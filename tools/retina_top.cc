// retina_top — a terminal monitor for a live retina_serve daemon.
//
//   retina_top --connect URI [--interval SECS] [--once] [--window N]
//
// Polls the daemon's kMetricsRequest wire command (a typed snapshot of
// the obs registry with the server's authoritative traffic counters
// overlaid) on a fresh connection each interval — exactly the way a
// human would run `top`: no agent, no sidecar, just the wire protocol
// the daemon already speaks. Rates (QPS, shed/s) are deltas between two
// consecutive snapshots divided by the poll interval; windowed
// p50/p95/p99 come straight from the daemon's windowed histograms, so
// they describe the recent past (the last few metrics-cadence ticks),
// not the whole run.
//
// Interactive mode redraws a plain-ANSI table each interval (no
// ncurses; works in any terminal and in CI logs). --once takes exactly
// two samples one interval apart and prints "key value" lines for
// scripting — the serve e2e asserts on its qps line.
//
// The monitor is an observer with the same contract as the rest of
// retina::obs: it sends read-only metrics frames and never perturbs
// scoring. With obs compiled out the daemon still answers (server-owned
// stats), so qps/shed/queue rows stay live; cache and quantile rows
// degrade to "-".

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/status.h"
#include "serve/protocol.h"

namespace {

using namespace retina;

/// Where to connect: a Unix-domain socket path or a TCP host:port, as
/// parsed from --connect / --socket (same grammar as load_driver).
struct Target {
  bool tcp = false;
  std::string path;
  std::string host;
  std::string port;

  std::string Describe() const {
    return tcp ? "tcp:" + host + ":" + port : "unix:" + path;
  }
};

struct Args {
  Target target;
  double interval = 1.0;
  bool once = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: retina_top --connect URI [options]\n"
      "  --connect URI     unix:PATH, tcp:HOST:PORT, or a bare filesystem\n"
      "                    path (treated as unix:)\n"
      "  --socket PATH     alias for --connect unix:PATH\n"
      "  --interval SECS   poll interval (default 1.0, min 0.05)\n"
      "  --once            take two samples one interval apart, print\n"
      "                    plain 'key value' lines, and exit (scripting)\n");
  return 2;
}

bool ParseTarget(const std::string& uri, Target* target) {
  if (uri.rfind("unix:", 0) == 0) {
    target->tcp = false;
    target->path = uri.substr(5);
    return !target->path.empty();
  }
  if (uri.rfind("tcp:", 0) == 0) {
    const std::string rest = uri.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    target->tcp = true;
    target->host = rest.substr(0, colon);
    target->port = rest.substr(colon + 1);
    if (target->host.empty()) target->host = "127.0.0.1";
    return !target->port.empty();
  }
  target->tcp = false;
  target->path = uri;
  return !target->path.empty();
}

bool ParseArgs(int argc, char** argv, Args* args, int* rc) {
  *rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto take = [&](const char* name, std::string* out) -> bool {
      if (arg == name) {
        const char* v = next();
        if (v == nullptr) return false;
        *out = v;
        return true;
      }
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string value;
    if (take("--connect", &value)) {
      if (!ParseTarget(value, &args->target)) {
        std::fprintf(stderr, "bad --connect: %s\n", value.c_str());
        *rc = 2;
        return false;
      }
      continue;
    }
    if (take("--socket", &value)) {
      args->target = Target{};
      args->target.path = value;
      continue;
    }
    if (take("--interval", &value)) {
      args->interval = std::atof(value.c_str());
      continue;
    }
    if (arg == "--once") {
      args->once = true;
      continue;
    }
    std::fprintf(stderr, "%s\n",
                 Status::InvalidArgument("unknown flag '" + arg +
                                         "' (run 'retina_top' for usage)")
                     .ToString()
                     .c_str());
    *rc = 2;
    return false;
  }
  if (args->target.path.empty() && args->target.host.empty()) {
    *rc = Usage();
    return false;
  }
  if (args->interval < 0.05) args->interval = 0.05;
  return true;
}

Result<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError("connect " + path +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, const std::string& port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve tcp:" + host + ":" + port +
                                   ": " + ::gai_strerror(gai));
  }
  Status st = Status::IOError("no usable address for tcp:" + host + ":" + port);
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      st = Status::OK();
      break;
    }
    st = Status::IOError("connect tcp:" + host + ":" + port +
                         " failed: " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (!st.ok()) return st;
  return fd;
}

/// One kMetrics round trip on a fresh connection, like load_driver's
/// QueryStats — a monitor should exercise the same connect path clients
/// do, and a per-poll connection can never wedge the daemon's readers.
Status QueryMetrics(const Target& target, uint64_t request_id,
                    serve::MetricsResponse* out) {
  auto fd_result = target.tcp ? ConnectTcp(target.host, target.port)
                              : ConnectUnix(target.path);
  if (!fd_result.ok()) return fd_result.status();
  const int fd = fd_result.ValueOrDie();
  serve::MetricsRequest req;
  req.request_id = request_id;
  Status st = serve::WriteFrame(fd, serve::EncodeMetricsRequest(req));
  if (st.ok()) {
    std::string payload;
    bool eof = false;
    st = serve::ReadFrame(fd, &payload, &eof);
    if (st.ok() && eof) st = Status::IOError("server closed during metrics");
    if (st.ok()) st = serve::DecodeMetricsResponse(payload, out);
  }
  ::close(fd);
  return st;
}

/// One polled sample: wall time plus the daemon's registry snapshot.
struct Sample {
  std::chrono::steady_clock::time_point when;
  obs::RegistrySnapshot snap;
};

uint64_t CounterOr(const obs::RegistrySnapshot& s, const std::string& key,
                   uint64_t fallback) {
  const auto it = s.counters.find(key);
  return it == s.counters.end() ? fallback : it->second;
}

/// Everything one screen/record needs, derived from two samples.
struct Derived {
  double dt = 0.0;
  double qps = 0.0;
  double shed_per_sec = 0.0;
  uint64_t responses = 0;
  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t connections = 0;
  uint64_t queue_depth_peak = 0;
  uint64_t queue_capacity = 0;
  uint64_t workers = 0;
  bool draining = false;
  double coalesce_avg_batch = 0.0;
  bool has_user_cache = false;
  double user_cache_hit = 0.0;
  bool has_tweet_cache = false;
  double tweet_cache_hit = 0.0;
  bool has_windows = false;
  obs::WindowSnapshot handle;
  obs::WindowSnapshot queue_wait;
};

Derived Derive(const Sample& prev, const Sample& cur) {
  Derived d;
  d.dt = std::chrono::duration<double>(cur.when - prev.when).count();
  if (d.dt <= 0.0) d.dt = 1e-9;
  const obs::RegistrySnapshot& s = cur.snap;
  d.responses = CounterOr(s, "serve.responses", 0);
  d.requests = CounterOr(s, "serve.requests", 0);
  d.shed = CounterOr(s, "serve.shed", 0);
  d.errors = CounterOr(s, "serve.errors", 0);
  d.connections = CounterOr(s, "serve.connections", 0);
  d.queue_depth_peak = CounterOr(s, "serve.queue_depth_peak", 0);
  d.queue_capacity = CounterOr(s, "serve.queue_capacity", 0);
  d.workers = CounterOr(s, "serve.workers", 0);
  d.draining = CounterOr(s, "serve.draining", 0) != 0;
  const uint64_t prev_resp = CounterOr(prev.snap, "serve.responses", 0);
  const uint64_t prev_shed = CounterOr(prev.snap, "serve.shed", 0);
  d.qps = d.responses >= prev_resp ? (d.responses - prev_resp) / d.dt : 0.0;
  d.shed_per_sec = d.shed >= prev_shed ? (d.shed - prev_shed) / d.dt : 0.0;
  const uint64_t batches = CounterOr(s, "serve.coalesce.batches", 0);
  const uint64_t fused = CounterOr(s, "serve.coalesce.batched_requests", 0);
  d.coalesce_avg_batch =
      batches == 0 ? 0.0 : static_cast<double>(fused) / batches;
  const uint64_t uh = CounterOr(s, "serving.user_cache.hits", 0);
  const uint64_t um = CounterOr(s, "serving.user_cache.misses", 0);
  if (uh + um > 0) {
    d.has_user_cache = true;
    d.user_cache_hit = static_cast<double>(uh) / (uh + um);
  }
  const uint64_t th = CounterOr(s, "serving.tweet_cache.hits", 0);
  const uint64_t tm = CounterOr(s, "serving.tweet_cache.misses", 0);
  if (th + tm > 0) {
    d.has_tweet_cache = true;
    d.tweet_cache_hit = static_cast<double>(th) / (th + tm);
  }
  const auto hw = s.windows.find("serve.handle_ns");
  const auto qw = s.windows.find("serve.queue_wait_ns");
  if (hw != s.windows.end() || qw != s.windows.end()) {
    d.has_windows = true;
    if (hw != s.windows.end()) d.handle = hw->second;
    if (qw != s.windows.end()) d.queue_wait = qw->second;
  }
  return d;
}

std::string FmtNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

/// Interactive frame: home the cursor and repaint (plain ANSI; no
/// ncurses dependency, degrades to append-only output in dumb logs).
void RenderScreen(const Args& args, const Derived& d) {
  std::printf("\x1b[H\x1b[2J");
  std::printf("retina_top — %s   (poll %.2fs%s)\n\n",
              args.target.Describe().c_str(), args.interval,
              d.draining ? ", DRAINING" : "");
  std::printf("  %-14s %10.1f   %-14s %10.1f\n", "qps", d.qps, "shed/s",
              d.shed_per_sec);
  std::printf("  %-14s %10llu   %-14s %10llu\n", "responses",
              static_cast<unsigned long long>(d.responses), "requests",
              static_cast<unsigned long long>(d.requests));
  std::printf("  %-14s %10llu   %-14s %10llu\n", "shed",
              static_cast<unsigned long long>(d.shed), "errors",
              static_cast<unsigned long long>(d.errors));
  std::printf("  %-14s %10llu   %-14s %6llu/%llu\n", "connections",
              static_cast<unsigned long long>(d.connections), "queue peak",
              static_cast<unsigned long long>(d.queue_depth_peak),
              static_cast<unsigned long long>(d.queue_capacity));
  std::printf("  %-14s %10llu   %-14s %10.2f\n", "workers",
              static_cast<unsigned long long>(d.workers), "coalesce avg",
              d.coalesce_avg_batch);
  if (d.has_user_cache || d.has_tweet_cache) {
    std::printf("  %-14s %9.1f%%   %-14s %9.1f%%\n", "user cache",
                d.has_user_cache ? 100.0 * d.user_cache_hit : 0.0,
                "tweet cache",
                d.has_tweet_cache ? 100.0 * d.tweet_cache_hit : 0.0);
  } else {
    std::printf("  %-14s %10s   %-14s %10s\n", "user cache", "-",
                "tweet cache", "-");
  }
  std::printf("\n  windowed latency (last %llu ticks of the daemon's "
              "metrics cadence)\n",
              static_cast<unsigned long long>(
                  d.has_windows ? d.handle.slots : 0));
  if (d.has_windows) {
    std::printf("  %-14s p50 %8s  p95 %8s  p99 %8s  (n=%llu)\n", "handle",
                FmtNs(d.handle.window.p50).c_str(),
                FmtNs(d.handle.window.p95).c_str(),
                FmtNs(d.handle.window.p99).c_str(),
                static_cast<unsigned long long>(d.handle.window.count));
    std::printf("  %-14s p50 %8s  p95 %8s  p99 %8s  (n=%llu)\n", "queue wait",
                FmtNs(d.queue_wait.window.p50).c_str(),
                FmtNs(d.queue_wait.window.p95).c_str(),
                FmtNs(d.queue_wait.window.p99).c_str(),
                static_cast<unsigned long long>(d.queue_wait.window.count));
  } else {
    std::printf("  (not recorded — daemon built with obs disabled)\n");
  }
  std::fflush(stdout);
}

/// --once output: stable machine-readable "key value" lines. The serve
/// e2e greps the qps line; keep keys append-only.
void RenderOnce(const Derived& d) {
  std::printf("qps %.3f\n", d.qps);
  std::printf("shed_per_sec %.3f\n", d.shed_per_sec);
  std::printf("responses %llu\n", static_cast<unsigned long long>(d.responses));
  std::printf("requests %llu\n", static_cast<unsigned long long>(d.requests));
  std::printf("shed %llu\n", static_cast<unsigned long long>(d.shed));
  std::printf("errors %llu\n", static_cast<unsigned long long>(d.errors));
  std::printf("queue_depth_peak %llu\n",
              static_cast<unsigned long long>(d.queue_depth_peak));
  std::printf("coalesce_avg_batch %.3f\n", d.coalesce_avg_batch);
  std::printf("user_cache_hit_ratio %s\n",
              d.has_user_cache
                  ? std::to_string(d.user_cache_hit).c_str()
                  : "not_recorded");
  std::printf("tweet_cache_hit_ratio %s\n",
              d.has_tweet_cache
                  ? std::to_string(d.tweet_cache_hit).c_str()
                  : "not_recorded");
  if (d.has_windows) {
    std::printf("window_ticks %llu\n",
                static_cast<unsigned long long>(d.handle.ticks));
    std::printf("handle_ns_window_p50 %llu\n",
                static_cast<unsigned long long>(d.handle.window.p50));
    std::printf("handle_ns_window_p95 %llu\n",
                static_cast<unsigned long long>(d.handle.window.p95));
    std::printf("handle_ns_window_p99 %llu\n",
                static_cast<unsigned long long>(d.handle.window.p99));
    std::printf("queue_wait_ns_window_p50 %llu\n",
                static_cast<unsigned long long>(d.queue_wait.window.p50));
    std::printf("queue_wait_ns_window_p95 %llu\n",
                static_cast<unsigned long long>(d.queue_wait.window.p95));
    std::printf("queue_wait_ns_window_p99 %llu\n",
                static_cast<unsigned long long>(d.queue_wait.window.p99));
  } else {
    std::printf("window_ticks not_recorded\n");
  }
  std::fflush(stdout);
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  Args args;
  int rc = 0;
  if (!ParseArgs(argc, argv, &args, &rc)) return rc;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  uint64_t request_id = 1;
  auto poll = [&](Sample* out) -> Status {
    serve::MetricsResponse resp;
    const Status st = QueryMetrics(args.target, request_id++, &resp);
    if (!st.ok()) return st;
    out->when = std::chrono::steady_clock::now();
    out->snap = std::move(resp.snapshot);
    return Status::OK();
  };

  Sample prev;
  Status st = poll(&prev);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(args.interval));

  if (args.once) {
    std::this_thread::sleep_for(interval);
    Sample cur;
    st = poll(&cur);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    RenderOnce(Derive(prev, cur));
    return 0;
  }

  while (g_stop == 0) {
    std::this_thread::sleep_for(interval);
    Sample cur;
    st = poll(&cur);
    if (!st.ok()) {
      // The daemon drained (or the network blipped): say so once and
      // exit cleanly rather than spinning on a dead socket.
      std::printf("\nretina_top: %s\n", st.ToString().c_str());
      return 0;
    }
    RenderScreen(args, Derive(prev, cur));
    prev = std::move(cur);
  }
  return 0;
}
