#!/usr/bin/env python3
"""Checks for tools/report.py, focused on the "User store tiers" section.

Feeds synthetic --metrics-out payloads through build_report and asserts
the store section renders its tier counters and per-tier latency
percentiles when store metrics are present, and disappears entirely when
they are not (runs that never touched the store must not grow an empty
section).

pytest-style test_* functions, but runnable standalone:
  python3 tools/report_test.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import report  # noqa: E402


def hist(count, mean, p50, p95, p99):
    return {"count": count, "mean": mean, "p50": p50, "p95": p95, "p99": p99}


def store_metrics():
    return {
        "counters": {
            "serving.requests": 12,
            "serving.user_cache.hits": 340,
            "store.tier.hits": 55,
            "store.tier.misses": 7,
            "store.tier.promotes": 55,
            "store.tier.bloom_skips": 6,
            "store.tier.errors": 0,
        },
        "gauges": {},
        "histograms": {
            "store.lookup_warm_ns": hist(340, 60.0, 55.0, 90.0, 120.0),
            "store.lookup_store_ns": hist(55, 900.0, 700.0, 2000.0, 4000.0),
            "store.lookup_compute_ns": hist(
                7, 15000.0, 14000.0, 22000.0, 30000.0),
        },
    }


def serve_bench():
    def point(qps, ok, shed, p99):
        return {
            "target_qps": qps, "achieved_qps": qps * 0.98,
            "elapsed_s": 2.0, "sent": ok + shed, "ok": ok, "shed": shed,
            "errors": 0, "dropped": 0,
            "latency_ns": {"mean": p99 / 3.0, "p50": p99 / 4.0,
                           "p95": p99 / 1.3, "p99": p99},
            "server_shed_delta": shed, "server_requests_delta": ok,
            "server_responses_delta": ok, "server_queue_depth_peak": 3,
        }
    return {
        "bench": "serve_open_loop", "smoke": False, "obs_compiled_in": True,
        "connections": 4, "requests_per_point": 240, "users_per_request": 8,
        "seed": 7, "workers": 4, "queue_capacity": 128,
        "points": [point(20, 240, 0, 400_000),
                   point(40, 240, 0, 650_000),
                   point(80, 231, 9, 2_400_000)],
    }


def serve_daemon_metrics():
    return {
        "counters": {"serve.requests": 711, "serve.responses": 711,
                     "serve.shed": 9, "serve.errors": 0,
                     "serve.protocol_errors": 0},
        "gauges": {"serve.queue.depth_peak": 3, "serve.queue.capacity": 128,
                   "serve.workers": 4},
        "histograms": {
            "serve.queue_wait_ns": hist(711, 8000.0, 5000.0, 30000.0,
                                        64000.0),
            "serve.handle_ns": hist(711, 300000.0, 250000.0, 700000.0,
                                    1200000.0),
        },
    }


def window(ticks, slots, count, p50, p95, p99):
    return {"ticks": ticks, "slots": slots, "count": count, "sum": 0,
            "p50": p50, "p95": p95, "p99": p99}


def span(name, trace_id, span_id, parent, ts, dur):
    return {"ph": "X", "name": name, "cat": "retina", "ts": ts, "dur": dur,
            "pid": 1, "tid": 1,
            "args": {"trace_id": trace_id, "span_id": span_id,
                     "parent_span_id": parent}}


def trace_file(events):
    return {"traceEvents": events, "displayTimeUnit": "ns", "otherData": {}}


def render(metrics):
    return report.build_report(metrics, None, top_k=5).to_markdown()


def render_serve(bench, serve_metrics=None):
    return report.build_report(None, None, top_k=5, serve_bench=bench,
                               serve_metrics=serve_metrics).to_markdown()


def test_serve_section_renders_sweep_table():
    md = render_serve(serve_bench())
    assert "## Serving" in md
    # One row per sweep point, target and achieved QPS side by side.
    assert "| 20 | 19.6 |" in md
    assert "| 40 | 39.2 |" in md
    assert "| 80 | 78.4 |" in md
    # The overloaded point's shed count and p99 are visible.
    assert "| 9 |" in md
    assert "2.400 ms" in md
    assert "shed at admission" in md


def test_serve_section_warns_on_dropped_requests():
    bench = serve_bench()
    bench["points"][2]["dropped"] = 4
    md = render_serve(bench)
    assert "WARNING: 4 requests were never answered" in md


def test_serve_section_includes_daemon_metrics():
    md = render_serve(serve_bench(), serve_daemon_metrics())
    assert "serve.requests" in md
    assert "serve.queue.depth_peak" in md
    assert "queue wait" in md and "handle" in md
    # Zero-valued counters stay out of the table; gauges always render.
    assert "serve.errors" not in md


def test_serve_section_daemon_metrics_only():
    md = render_serve(None, serve_daemon_metrics())
    assert "## Serving" in md
    assert "serve.responses" in md
    assert "target qps" not in md


def test_serve_section_absent_without_inputs():
    md = render(store_metrics())
    assert "## Serving\n" not in md  # warm/cold section has its own title


def test_serve_section_renders_windowed_quantiles():
    metrics = serve_daemon_metrics()
    metrics["windows"] = {
        "serve.handle_ns": window(5, 5, 320, 262143, 524287, 1048575),
        "serve.queue_wait_ns": window(5, 5, 320, 8191, 32767, 65535),
    }
    md = render_serve(None, metrics)
    assert "Windowed quantiles cover only the last few" in md
    assert "| handle | 5 | 5 | 320 |" in md
    assert "1.049 ms" in md  # windowed handle p99
    assert "not recorded" not in md


def test_serve_section_degrades_without_windows():
    # A metrics file written before windowed histograms existed (or with
    # obs compiled out) must say so instead of silently dropping the row.
    md = render_serve(None, serve_daemon_metrics())
    assert "Windowed latency quantiles: not recorded" in md
    metrics = serve_daemon_metrics()
    metrics["histograms"] = {}
    md = render_serve(None, metrics)
    assert "Stage latency histograms: not recorded" in md


def test_cross_process_section_pairs_by_trace_id():
    client = trace_file([
        span("driver.send", 101, 1, 0, 10.0, 40.0),
        span("driver.send", 102, 2, 0, 60.0, 35.0),
    ])
    server = trace_file([
        span("serve.handle", 101, 7, 1, 5000.0, 900.0),
        span("serve.handle", 999, 8, 0, 6000.0, 100.0),
    ])
    md = report.build_report(None, server, top_k=5,
                             client_trace=client).to_markdown()
    assert "## Cross-process traces" in md
    assert "1 trace ids appear in both files" in md
    assert "1 are client-only" in md and "1 are server-only" in md
    # The paired row: driver's 40us send against the daemon's 900us
    # handle, parented under the send span the wire carried.
    assert "| 101 | 40.000 us | 900.000 us | 2 | yes |" in md


def test_cross_process_section_degrades_without_server_trace():
    client = trace_file([span("driver.send", 101, 1, 0, 10.0, 40.0)])
    md = report.build_report(None, None, top_k=5,
                             client_trace=client).to_markdown()
    assert "## Cross-process traces" in md
    assert "Daemon trace: not recorded" in md
    assert "1 driver.send spans" in md


def test_store_section_renders_counters_and_percentiles():
    md = render(store_metrics())
    assert "## User store tiers" in md
    for counter in ("store.tier.hits", "store.tier.misses",
                    "store.tier.promotes", "store.tier.bloom_skips"):
        assert counter in md, counter
    # One latency row per tier, with the histogram percentiles formatted.
    assert "warm (LRU hit)" in md
    assert "store (block read)" in md
    assert "compute (full rebuild)" in md
    assert "900 ns" in md       # store-tier mean
    assert "15.000 us" in md    # compute-tier mean


def test_store_section_absent_without_store_metrics():
    metrics = store_metrics()
    for name in list(metrics["counters"]):
        if name.startswith("store."):
            del metrics["counters"][name]
    metrics["histograms"] = {}
    md = render(metrics)
    assert "User store tiers" not in md


def test_store_section_counters_only():
    # A run with obs histograms compiled out still has the counters; the
    # section must render without the latency table.
    metrics = store_metrics()
    metrics["histograms"] = {}
    md = render(metrics)
    assert "## User store tiers" in md
    assert "store.tier.hits" in md
    assert "warm (LRU hit)" not in md


def test_store_section_zero_count_tier_renders_dash():
    metrics = store_metrics()
    metrics["histograms"]["store.lookup_compute_ns"] = hist(0, 0, 0, 0, 0)
    md = render(metrics)
    assert "| compute (full rebuild) | 0 | - | - | - | - |" in md


def test_html_rendering_includes_store_section():
    html_out = report.build_report(store_metrics(), None, top_k=5).to_html()
    assert "User store tiers" in html_out
    assert "store.tier.hits" in html_out


def check_e2e_metrics(path):
    """Renders a real --metrics-out export and checks section presence.

    With nonzero store.tier counters the "User store tiers" section must
    render; with all-zero counters (obs compiled out) it must not.
    """
    import json
    with open(path, encoding="utf-8") as f:
        metrics = json.load(f)
    md = render(metrics)
    served = any(v for k, v in metrics.get("counters", {}).items()
                 if k.startswith("store.tier."))
    if served:
        assert "## User store tiers" in md, \
            f"{path} has store.tier counters but no store section"
        print(f"PASS e2e metrics {path}: store section rendered")
    else:
        assert "User store tiers" not in md, \
            f"{path} has no store activity but grew a store section"
        print(f"PASS e2e metrics {path}: store section correctly absent")


def check_e2e_serve(bench_path, metrics_path):
    """Renders the real serve e2e artifacts and checks the Serving section.

    The sweep table must carry one row per BENCH_serve.json point; the
    daemon metrics table appears only when the export holds nonzero
    serve.* counters (it does not with obs compiled out).
    """
    import json
    with open(bench_path, encoding="utf-8") as f:
        bench = json.load(f)
    with open(metrics_path, encoding="utf-8") as f:
        serve_metrics = json.load(f)
    md = render_serve(bench, serve_metrics)
    assert "## Serving" in md, "no Serving section from real artifacts"
    for p in bench["points"]:
        assert f"| {p['target_qps']:g} |" in md, \
            f"sweep row for {p['target_qps']} qps missing"
    counted = any(v for k, v in serve_metrics.get("counters", {}).items()
                  if k.startswith("serve."))
    if counted:
        assert "serve.requests" in md, \
            f"{metrics_path} has serve counters but no daemon table"
    print(f"PASS e2e serve {bench_path}: {len(bench['points'])}-point "
          "sweep rendered")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--e2e-metrics":
        check_e2e_metrics(sys.argv[2])
        return 0
    if len(sys.argv) == 4 and sys.argv[1] == "--e2e-serve":
        check_e2e_serve(sys.argv[2], sys.argv[3])
        return 0
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
