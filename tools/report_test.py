#!/usr/bin/env python3
"""Checks for tools/report.py, focused on the "User store tiers" section.

Feeds synthetic --metrics-out payloads through build_report and asserts
the store section renders its tier counters and per-tier latency
percentiles when store metrics are present, and disappears entirely when
they are not (runs that never touched the store must not grow an empty
section).

pytest-style test_* functions, but runnable standalone:
  python3 tools/report_test.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import report  # noqa: E402


def hist(count, mean, p50, p95, p99):
    return {"count": count, "mean": mean, "p50": p50, "p95": p95, "p99": p99}


def store_metrics():
    return {
        "counters": {
            "serving.requests": 12,
            "serving.user_cache.hits": 340,
            "store.tier.hits": 55,
            "store.tier.misses": 7,
            "store.tier.promotes": 55,
            "store.tier.bloom_skips": 6,
            "store.tier.errors": 0,
        },
        "gauges": {},
        "histograms": {
            "store.lookup_warm_ns": hist(340, 60.0, 55.0, 90.0, 120.0),
            "store.lookup_store_ns": hist(55, 900.0, 700.0, 2000.0, 4000.0),
            "store.lookup_compute_ns": hist(
                7, 15000.0, 14000.0, 22000.0, 30000.0),
        },
    }


def render(metrics):
    return report.build_report(metrics, None, top_k=5).to_markdown()


def test_store_section_renders_counters_and_percentiles():
    md = render(store_metrics())
    assert "## User store tiers" in md
    for counter in ("store.tier.hits", "store.tier.misses",
                    "store.tier.promotes", "store.tier.bloom_skips"):
        assert counter in md, counter
    # One latency row per tier, with the histogram percentiles formatted.
    assert "warm (LRU hit)" in md
    assert "store (block read)" in md
    assert "compute (full rebuild)" in md
    assert "900 ns" in md       # store-tier mean
    assert "15.000 us" in md    # compute-tier mean


def test_store_section_absent_without_store_metrics():
    metrics = store_metrics()
    for name in list(metrics["counters"]):
        if name.startswith("store."):
            del metrics["counters"][name]
    metrics["histograms"] = {}
    md = render(metrics)
    assert "User store tiers" not in md


def test_store_section_counters_only():
    # A run with obs histograms compiled out still has the counters; the
    # section must render without the latency table.
    metrics = store_metrics()
    metrics["histograms"] = {}
    md = render(metrics)
    assert "## User store tiers" in md
    assert "store.tier.hits" in md
    assert "warm (LRU hit)" not in md


def test_store_section_zero_count_tier_renders_dash():
    metrics = store_metrics()
    metrics["histograms"]["store.lookup_compute_ns"] = hist(0, 0, 0, 0, 0)
    md = render(metrics)
    assert "| compute (full rebuild) | 0 | - | - | - | - |" in md


def test_html_rendering_includes_store_section():
    html_out = report.build_report(store_metrics(), None, top_k=5).to_html()
    assert "User store tiers" in html_out
    assert "store.tier.hits" in html_out


def check_e2e_metrics(path):
    """Renders a real --metrics-out export and checks section presence.

    With nonzero store.tier counters the "User store tiers" section must
    render; with all-zero counters (obs compiled out) it must not.
    """
    import json
    with open(path, encoding="utf-8") as f:
        metrics = json.load(f)
    md = render(metrics)
    served = any(v for k, v in metrics.get("counters", {}).items()
                 if k.startswith("store.tier."))
    if served:
        assert "## User store tiers" in md, \
            f"{path} has store.tier counters but no store section"
        print(f"PASS e2e metrics {path}: store section rendered")
    else:
        assert "User store tiers" not in md, \
            f"{path} has no store activity but grew a store section"
        print(f"PASS e2e metrics {path}: store section correctly absent")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--e2e-metrics":
        check_e2e_metrics(sys.argv[2])
        return 0
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
