#!/usr/bin/env python3
"""Run-report generator: merges a --metrics-out JSON and a --trace-out
Chrome trace JSON from one retina_cli run into a single markdown (or HTML)
report.

Sections:
  - run summary (counters, gauges incl. process.peak_rss_bytes)
  - per-scope self-time flame table (from the metrics `scopes` map)
  - per-epoch training curves (loss / grad-norm / seconds series)
  - warm-vs-cold serving latency breakdown (request histograms)
  - user store tiers (tier counters + per-tier lookup latency), present
    only when a run served features through the disk-backed store
  - timeline: per-event-name aggregates and the top-K slowest traces
    (grouped by the per-request/per-batch trace ids the tracer mints)
  - cross-process traces: when both the load driver's --trace-out
    (--client-trace) and the daemon's --trace-out (--trace) are given,
    driver.send spans are paired with serve.handle spans by the trace id
    the driver minted and carried on the wire

Stdlib only. Usage:
  tools/report.py --metrics train_metrics.json --trace trace.json \
      --out report.md [--html-out report.html] [--top-k 10]
Either input may be omitted; the corresponding sections are skipped.
Inputs that are present but missing newer fields degrade to explicit
"not recorded" lines rather than disappearing silently.
"""

import argparse
import html
import json
import sys
from collections import defaultdict

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    """Unicode sparkline of a numeric series (empty string when too short)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_CHARS[0] * len(values)
    span = hi - lo
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * (len(SPARK_CHARS) - 1)))]
        for v in values)


def fmt_ns(ns):
    """Human duration from nanoseconds."""
    ns = float(ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def fmt_us(us):
    return fmt_ns(us * 1e3)


def fmt_bytes(n):
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


class Report:
    """Ordered list of sections, each a heading plus paragraphs/tables."""

    def __init__(self, title):
        self.title = title
        self.sections = []  # (heading, [("p", text) | ("table", hdr, rows)])

    def section(self, heading):
        self.sections.append((heading, []))

    def para(self, text):
        self.sections[-1][1].append(("p", text))

    def table(self, header, rows):
        self.sections[-1][1].append(("table", header, rows))

    def to_markdown(self):
        out = [f"# {self.title}", ""]
        for heading, blocks in self.sections:
            out += [f"## {heading}", ""]
            for block in blocks:
                if block[0] == "p":
                    out += [block[1], ""]
                else:
                    _, header, rows = block
                    out.append("| " + " | ".join(header) + " |")
                    out.append("|" + "|".join("---" for _ in header) + "|")
                    for row in rows:
                        out.append("| " + " | ".join(str(c) for c in row) + " |")
                    out.append("")
        return "\n".join(out) + "\n"

    def to_html(self):
        out = [
            "<!doctype html>",
            "<html><head><meta charset=\"utf-8\">",
            f"<title>{html.escape(self.title)}</title>",
            "<style>",
            "body{font-family:sans-serif;margin:2em;max-width:70em}",
            "table{border-collapse:collapse;margin:1em 0}",
            "td,th{border:1px solid #bbb;padding:0.3em 0.7em;"
            "text-align:left;font-variant-numeric:tabular-nums}",
            "th{background:#eee}",
            "</style></head><body>",
            f"<h1>{html.escape(self.title)}</h1>",
        ]
        for heading, blocks in self.sections:
            out.append(f"<h2>{html.escape(heading)}</h2>")
            for block in blocks:
                if block[0] == "p":
                    out.append(f"<p>{html.escape(block[1])}</p>")
                else:
                    _, header, rows = block
                    out.append("<table><tr>" + "".join(
                        f"<th>{html.escape(str(h))}</th>" for h in header) +
                        "</tr>")
                    for row in rows:
                        out.append("<tr>" + "".join(
                            f"<td>{html.escape(str(c))}</td>" for c in row) +
                            "</tr>")
                    out.append("</table>")
        out.append("</body></html>")
        return "\n".join(out) + "\n"


# ---------------------------------------------------------------- metrics --

def add_summary_section(report, metrics):
    report.section("Run summary")
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    rows = [(name, value) for name, value in sorted(counters.items())
            if value != 0]
    for name, value in sorted(gauges.items()):
        if value == 0:
            continue
        pretty = fmt_bytes(value) if name.endswith("_bytes") else value
        rows.append((name, pretty))
    if not rows:
        report.para("No nonzero counters or gauges were recorded.")
        return
    report.table(["metric", "value"], rows)


def add_flame_section(report, metrics):
    report.section("Per-scope self time")
    scopes = metrics.get("scopes", {})
    rows = [(name, s) for name, s in scopes.items() if s.get("count", 0) > 0]
    if not rows:
        report.para("No trace scopes were recorded.")
        return
    total_self = sum(s["self_ms"] for _, s in rows) or 1.0
    rows.sort(key=lambda kv: kv[1]["self_ms"], reverse=True)
    report.para("Self time excludes child spans opened on the same thread; "
                "the bar is each scope's share of all recorded self time.")
    table = []
    for name, s in rows:
        share = s["self_ms"] / total_self
        bar = "#" * max(1, int(share * 30)) if s["self_ms"] > 0 else ""
        table.append((name, s["count"], f"{s['total_ms']:.3f}",
                      f"{s['self_ms']:.3f}", f"{100 * share:.1f}% {bar}"))
    report.table(["scope", "count", "total ms", "self ms", "self share"],
                 table)


def add_training_section(report, metrics):
    series = metrics.get("series", {})
    curves = [(name, values) for name, values in sorted(series.items())
              if values]
    if not curves:
        return
    report.section("Training curves")
    report.table(
        ["series", "points", "first", "last", "min", "max", "trend"],
        [(name, len(v), f"{v[0]:.6g}", f"{v[-1]:.6g}", f"{min(v):.6g}",
          f"{max(v):.6g}", sparkline(v)) for name, v in curves])
    loss = series.get("train.epoch_loss") or []
    if len(loss) >= 2:
        delta = loss[-1] - loss[0]
        report.para(f"Loss moved {delta:+.6g} over {len(loss)} epochs "
                    f"({loss[0]:.6g} → {loss[-1]:.6g}).")


def add_serving_section(report, metrics):
    hists = metrics.get("histograms", {})
    warm = hists.get("serving.request_warm_ns")
    cold = hists.get("serving.request_cold_ns")
    if not warm and not cold:
        return
    report.section("Serving latency: warm vs cold")
    report.para("A request is warm when every per-user and per-tweet "
                "invariant was served from cache; any recomputation makes "
                "it cold. Quantiles resolve to log2 bucket upper bounds "
                "(within 2x).")
    rows = []
    for label, h in (("warm", warm), ("cold", cold)):
        if not h or h.get("count", 0) == 0:
            rows.append((label, 0, "-", "-", "-", "-"))
            continue
        rows.append((label, h["count"], fmt_ns(h["mean"]), fmt_ns(h["p50"]),
                     fmt_ns(h["p95"]), fmt_ns(h["p99"])))
    report.table(["path", "requests", "mean", "p50", "p95", "p99"], rows)
    counters = metrics.get("counters", {})
    hits = counters.get("serving.user_cache.hits", 0)
    misses = counters.get("serving.user_cache.misses", 0)
    if hits + misses:
        report.para(f"User-block cache: {hits} hits / {hits + misses} "
                    f"lookups ({100.0 * hits / (hits + misses):.1f}% hit "
                    "rate).")


def add_store_section(report, metrics):
    """Tiered user store: tier counters and per-tier lookup latency."""
    counters = metrics.get("counters", {})
    hists = metrics.get("histograms", {})
    tier_counters = [
        ("store.tier.hits", "store hits (block decoded)"),
        ("store.tier.misses", "store misses (recomputed)"),
        ("store.tier.promotes", "promotions into the LRU"),
        ("store.tier.bloom_skips", "absent, skipped without block I/O"),
        ("store.tier.errors", "corrupt reads (fell back to compute)"),
    ]
    tier_hists = [
        ("warm (LRU hit)", "store.lookup_warm_ns"),
        ("store (block read)", "store.lookup_store_ns"),
        ("compute (full rebuild)", "store.lookup_compute_ns"),
    ]
    have_counters = any(counters.get(name, 0) for name, _ in tier_counters)
    have_hists = any(
        hists.get(name, {}).get("count", 0) for _, name in tier_hists)
    if not have_counters and not have_hists:
        return
    report.section("User store tiers")
    report.para("Per-user history blocks resolve through warm LRU -> "
                "disk store -> recompute; all three tiers return "
                "bit-identical features, so the split below is purely a "
                "cost profile.")
    if have_counters:
        rows = [(name, counters.get(name, 0), what)
                for name, what in tier_counters]
        rows.append(("serving.user_cache.hits",
                     counters.get("serving.user_cache.hits", 0),
                     "warm-tier hits in front of the store"))
        report.table(["counter", "value", "meaning"], rows)
    if have_hists:
        rows = []
        for label, name in tier_hists:
            h = hists.get(name)
            if not h or h.get("count", 0) == 0:
                rows.append((label, 0, "-", "-", "-", "-"))
                continue
            rows.append((label, h["count"], fmt_ns(h["mean"]),
                         fmt_ns(h["p50"]), fmt_ns(h["p95"]),
                         fmt_ns(h["p99"])))
        report.table(["tier", "lookups", "mean", "p50", "p95", "p99"], rows)


def add_serve_section(report, bench, serve_metrics):
    """Serving: the load driver's throughput-vs-latency sweep plus the
    daemon's own admission counters."""
    if bench is None and serve_metrics is None:
        return
    report.section("Serving")
    if bench is not None:
        points = bench.get("points", [])
        if points:
            report.para(
                f"Open-loop sweep: {bench.get('connections', '?')} "
                f"connections, {bench.get('requests_per_point', '?')} "
                f"requests per point, against {bench.get('workers', '?')} "
                "workers (queue capacity "
                f"{bench.get('queue_capacity', '?')}). Latency is "
                "client-side; quantiles resolve to log2 bucket upper "
                "bounds (within 2x).")
            rows = []
            for p in points:
                lat = p.get("latency_ns", {})
                coal = p.get("coalesce", {})
                rows.append((
                    f"{p.get('target_qps', 0):g}",
                    f"{p.get('achieved_qps', 0):.1f}",
                    p.get("ok", 0), p.get("shed", 0), p.get("errors", 0),
                    p.get("dropped", 0),
                    fmt_ns(lat.get("p50", 0)), fmt_ns(lat.get("p95", 0)),
                    fmt_ns(lat.get("p99", 0)),
                    p.get("server_queue_depth_peak", 0),
                    f"{coal.get('avg_batch', 0):.2f}"
                    if coal.get("batches", 0) else "-"))
            report.table(
                ["target qps", "achieved", "ok", "shed", "errors",
                 "dropped", "p50", "p95", "p99", "queue peak",
                 "avg batch"], rows)
            hot_set = bench.get("hot_set", 0)
            if hot_set:
                report.para(
                    f"Hot-set workload: tweet ids Zipf(s="
                    f"{bench.get('skew', 0):g}) over {hot_set} hot tweets "
                    f"({bench.get('transport', 'unix')} transport, coalesce "
                    f"max batch {bench.get('coalesce_max_batch', 1)}). "
                    "'avg batch' is batched_requests/batches of same-tweet "
                    "requests fused per handler call at that point.")
            p99s = [p.get("latency_ns", {}).get("p99", 0) for p in points]
            spark = sparkline(p99s)
            if spark:
                report.para(f"p99 across the sweep: {spark} "
                            f"({fmt_ns(min(p99s))} → {fmt_ns(max(p99s))}).")
            total_shed = sum(p.get("shed", 0) for p in points)
            total_dropped = sum(p.get("dropped", 0) for p in points)
            if total_dropped:
                report.para(f"WARNING: {total_dropped} requests were never "
                            "answered — a drain or transport bug, not load "
                            "shedding.")
            elif total_shed:
                report.para(f"{total_shed} requests shed at admission "
                            "(immediate kShed replies under overload); "
                            "everything else was answered.")
        else:
            report.para("BENCH_serve.json holds no sweep points.")
    if serve_metrics is not None:
        counters = serve_metrics.get("counters", {})
        gauges = serve_metrics.get("gauges", {})
        serve_counters = [(k, v) for k, v in sorted(counters.items())
                          if k.startswith("serve.") and v != 0]
        serve_counters += [(k, v) for k, v in sorted(gauges.items())
                           if k.startswith("serve.")]
        if serve_counters:
            report.para("Daemon-side admission counters "
                        "(from retina_serve --metrics-out):")
            report.table(["counter", "value"], serve_counters)
        hists = serve_metrics.get("histograms", {})
        rows = []
        for label, name in (("queue wait", "serve.queue_wait_ns"),
                            ("handle", "serve.handle_ns")):
            h = hists.get(name)
            if not h or h.get("count", 0) == 0:
                continue
            rows.append((label, h["count"], fmt_ns(h.get("mean", 0)),
                         fmt_ns(h.get("p50", 0)), fmt_ns(h.get("p95", 0)),
                         fmt_ns(h.get("p99", 0))))
        if rows:
            report.table(["stage", "requests", "mean", "p50", "p95", "p99"],
                         rows)
        else:
            report.para("Stage latency histograms: not recorded (daemon "
                        "built with obs disabled, or it served no "
                        "requests).")
        windows = serve_metrics.get("windows", {})
        rows = []
        for label, name in (("queue wait", "serve.queue_wait_ns"),
                            ("handle", "serve.handle_ns")):
            w = windows.get(name)
            if not w or w.get("count", 0) == 0:
                continue
            rows.append((label, w.get("ticks", 0), w.get("slots", 0),
                         w["count"], fmt_ns(w.get("p50", 0)),
                         fmt_ns(w.get("p95", 0)), fmt_ns(w.get("p99", 0))))
        if rows:
            report.para("Windowed quantiles cover only the last few "
                        "metrics-cadence ticks before drain — the recent "
                        "past, not the whole run.")
            report.table(
                ["stage", "ticks", "slots", "requests", "p50", "p95", "p99"],
                rows)
        else:
            report.para("Windowed latency quantiles: not recorded (metrics "
                        "file predates windowed histograms, obs was "
                        "disabled, or the cadence never ticked).")


SIMD_BACKEND_NAMES = {0: "unresolved", 1: "scalar", 2: "avx2", 3: "neon"}


def add_kernel_section(report, metrics):
    """SIMD dispatch choice and scoring-path memory telemetry."""
    gauges = metrics.get("gauges", {})
    counters = metrics.get("counters", {})
    dispatch = gauges.get("simd.dispatch")
    reserved = gauges.get("arena.bytes_reserved", 0)
    high_water = gauges.get("arena.high_water_bytes", 0)
    alloc_bytes = counters.get("score.alloc_bytes", 0)
    if dispatch is None and not (reserved or high_water or alloc_bytes):
        return
    report.section("Kernel dispatch + scratch memory")
    if dispatch is not None:
        name = SIMD_BACKEND_NAMES.get(dispatch, f"unknown({dispatch})")
        report.para(f"SIMD kernel dispatch: **{name}** "
                    "(RETINA_SIMD / --simd= override; scalar reproduces "
                    "pre-dispatch results bit-for-bit).")
    if reserved or high_water or alloc_bytes:
        report.table(
            ["metric", "value"],
            [("arena.bytes_reserved", fmt_bytes(reserved)),
             ("arena.high_water_bytes", fmt_bytes(high_water)),
             ("score.alloc_bytes (cumulative)", fmt_bytes(alloc_bytes))])
        report.para("Warm batched requests bump-allocate every scratch "
                    "buffer from the per-thread arena; bytes_reserved at "
                    "the high-water mark with a steady alloc rate means "
                    "the zero-heap-allocation contract is holding.")


# ------------------------------------------------------------------ trace --

def add_trace_sections(report, trace, top_k):
    events = trace.get("traceEvents", [])
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    other = trace.get("otherData", {})

    report.section("Timeline overview")
    dropped = other.get("dropped_events", 0)
    report.para(f"{len(complete)} complete spans, {len(instants)} instant "
                f"events, {dropped} dropped on full buffers "
                f"(capacity {other.get('buffer_capacity', '?')} "
                "events/thread). Load the trace file in chrome://tracing "
                "or https://ui.perfetto.dev to browse it interactively.")
    if dropped:
        report.para("WARNING: events were dropped; per-name totals and "
                    "trace durations below undercount the truncated tail.")

    # Per-name aggregates with self time (duration minus same-parent
    # children) computed from the span tree.
    children_dur = defaultdict(float)
    for e in complete:
        parent = e["args"].get("parent_span_id", 0)
        if parent:
            children_dur[parent] += e["dur"]
    by_name = defaultdict(lambda: [0, 0.0, 0.0, 0.0])  # count,total,self,max
    for e in complete:
        span_id = e["args"].get("span_id", 0)
        self_dur = max(0.0, e["dur"] - children_dur.get(span_id, 0.0))
        agg = by_name[e["name"]]
        agg[0] += 1
        agg[1] += e["dur"]
        agg[2] += self_dur
        agg[3] = max(agg[3], e["dur"])
    for e in instants:
        by_name[e["name"]][0] += 1
    if by_name:
        rows = sorted(by_name.items(), key=lambda kv: kv[1][2], reverse=True)
        report.table(
            ["event", "count", "total", "self", "max"],
            [(name, c, fmt_us(tot) if tot else "-",
              fmt_us(self_) if tot else "-", fmt_us(mx) if tot else "-")
             for name, (c, tot, self_, mx) in rows])

    # Top-K slowest traces: group complete events by minted trace id; a
    # trace's roots are spans whose parent is not part of the same trace.
    traces = defaultdict(list)
    for e in complete:
        tid = e["args"].get("trace_id", 0)
        if tid:
            traces[tid].append(e)
    report.section(f"Top {top_k} slowest traces")
    if not traces:
        report.para("No trace ids were recorded (nothing minted a "
                    "request/batch id while tracing was on).")
        return
    summary = []
    for tid, evs in traces.items():
        span_ids = {e["args"]["span_id"] for e in evs}
        roots = [e for e in evs
                 if e["args"].get("parent_span_id", 0) not in span_ids]
        root = max(roots or evs, key=lambda e: e["dur"])
        start = min(e["ts"] for e in evs)
        end = max(e["ts"] + e["dur"] for e in evs)
        slowest_child = max(
            (e for e in evs if e is not root), key=lambda e: e["dur"],
            default=None)
        summary.append((end - start, tid, root, len(evs), start,
                        slowest_child))
    summary.sort(reverse=True, key=lambda row: row[0])
    report.table(
        ["trace id", "root span", "start", "duration", "spans",
         "slowest inner span"],
        [(tid, root["name"], fmt_us(start), fmt_us(dur), n,
          f"{child['name']} ({fmt_us(child['dur'])})" if child else "-")
         for dur, tid, root, n, start, child in summary[:top_k]])


def _spans_by_trace(trace, name):
    """trace_id -> [complete spans called `name`] (ids of 0 mean the span
    was not part of a minted trace and cannot be paired)."""
    out = defaultdict(list)
    for e in trace.get("traceEvents", []):
        if e.get("ph") != "X" or e.get("name") != name:
            continue
        tid = e.get("args", {}).get("trace_id", 0)
        if tid:
            out[tid].append(e)
    return out


def add_cross_process_section(report, client_trace, server_trace, top_k):
    """Pairs the driver's send spans with the daemon's handle spans.

    The load driver stamps every score request with a minted trace id and
    the id of the driver.send span around the write; the daemon's reader
    adopts both, so its serve.handle span lands in the same trace. The two
    files come from different processes with unrelated clocks — only the
    pairing and each side's own durations are meaningful, never
    cross-process timestamp deltas."""
    if client_trace is None:
        return
    report.section("Cross-process traces (driver → daemon)")
    sends = _spans_by_trace(client_trace, "driver.send")
    if server_trace is None:
        report.para("Daemon trace: not recorded — run retina_serve with "
                    "--trace-out and pass it as --trace to pair its "
                    "serve.handle spans with the driver's.")
        report.para(f"The driver recorded {sum(map(len, sends.values()))} "
                    "driver.send spans.")
        return
    if not sends:
        report.para("The client trace holds no driver.send spans — run "
                    "load_driver with --trace-out so every request carries "
                    "a minted trace id on the wire.")
        return
    handles = _spans_by_trace(server_trace, "serve.handle")
    paired = sorted(set(sends) & set(handles))
    client_only = len(sends) - len(paired)
    server_only = len(handles) - len(paired)
    report.para(
        f"{len(paired)} trace ids appear in both files; {client_only} are "
        "client-only (coalesced into a batch whose serve.handle span "
        "adopted the first request's trace id, or still in flight at "
        "capture) and "
        f"{server_only} are server-only (server-minted work such as stats "
        "or warmup). Durations are per-process; the clocks are unrelated.")
    if not paired:
        return
    rows = []
    for tid in paired:
        send = max(sends[tid], key=lambda e: e["dur"])
        handle = max(handles[tid], key=lambda e: e["dur"])
        parent_ok = handle["args"].get("parent_span_id", 0) == \
            send["args"].get("span_id", 0)
        rows.append((handle["dur"], tid, send["dur"],
                     len(sends[tid]) + len(handles[tid]), parent_ok))
    rows.sort(reverse=True)
    report.table(
        ["trace id", "driver send", "daemon handle", "spans",
         "parented under send"],
        [(tid, fmt_us(send_dur), fmt_us(handle_dur), n,
          "yes" if ok else "no")
         for handle_dur, tid, send_dur, n, ok in rows[:top_k]])


# ------------------------------------------------------------------- main --

def load_json(path, label):
    if not path:
        return None
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"report.py: cannot read {label} file {path}: {e}")


def build_report(metrics, trace, top_k, serve_bench=None, serve_metrics=None,
                 client_trace=None):
    report = Report("retina run report")
    if metrics is not None:
        add_summary_section(report, metrics)
        add_flame_section(report, metrics)
        add_training_section(report, metrics)
        add_serving_section(report, metrics)
        add_store_section(report, metrics)
        add_kernel_section(report, metrics)
    add_serve_section(report, serve_bench, serve_metrics)
    if trace is not None:
        add_trace_sections(report, trace, top_k)
    add_cross_process_section(report, client_trace, trace, top_k)
    if not report.sections:
        sys.exit("report.py: pass --metrics, --serve-bench, --trace, "
                 "and/or --client-trace")
    return report


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", help="--metrics-out JSON from retina_cli")
    ap.add_argument("--trace", help="--trace-out Chrome trace JSON")
    ap.add_argument("--serve-bench",
                    help="BENCH_serve.json from tools/load_driver")
    ap.add_argument("--serve-metrics",
                    help="--metrics-out JSON from retina_serve")
    ap.add_argument("--client-trace",
                    help="--trace-out Chrome trace JSON from tools/"
                         "load_driver; paired with --trace by trace id")
    ap.add_argument("--out", help="markdown output path ('-' for stdout)",
                    default="-")
    ap.add_argument("--html-out", help="also write an HTML rendering here")
    ap.add_argument("--top-k", type=int, default=10,
                    help="slowest traces to list (default 10)")
    args = ap.parse_args()

    report = build_report(load_json(args.metrics, "metrics"),
                          load_json(args.trace, "trace"), args.top_k,
                          load_json(args.serve_bench, "serve bench"),
                          load_json(args.serve_metrics, "serve metrics"),
                          load_json(args.client_trace, "client trace"))
    md = report.to_markdown()
    if args.out == "-":
        sys.stdout.write(md)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(md)
    if args.html_out:
        with open(args.html_out, "w", encoding="utf-8") as f:
            f.write(report.to_html())


if __name__ == "__main__":
    main()
