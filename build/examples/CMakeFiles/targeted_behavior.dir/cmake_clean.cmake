file(REMOVE_RECURSE
  "CMakeFiles/targeted_behavior.dir/targeted_behavior.cpp.o"
  "CMakeFiles/targeted_behavior.dir/targeted_behavior.cpp.o.d"
  "targeted_behavior"
  "targeted_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
