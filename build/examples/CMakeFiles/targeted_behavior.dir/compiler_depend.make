# Empty compiler generated dependencies file for targeted_behavior.
# This may be replaced when dependencies are built.
