file(REMOVE_RECURSE
  "CMakeFiles/hate_monitoring.dir/hate_monitoring.cpp.o"
  "CMakeFiles/hate_monitoring.dir/hate_monitoring.cpp.o.d"
  "hate_monitoring"
  "hate_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hate_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
