# Empty dependencies file for hate_monitoring.
# This may be replaced when dependencies are built.
