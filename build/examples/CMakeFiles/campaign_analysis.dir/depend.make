# Empty dependencies file for campaign_analysis.
# This may be replaced when dependencies are built.
