file(REMOVE_RECURSE
  "CMakeFiles/campaign_analysis.dir/campaign_analysis.cpp.o"
  "CMakeFiles/campaign_analysis.dir/campaign_analysis.cpp.o.d"
  "campaign_analysis"
  "campaign_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
