# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;22;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;23;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;24;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;25;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;26;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;27;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hatedetect_test "/root/repo/build/tests/hatedetect_test")
set_tests_properties(hatedetect_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;28;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;29;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(diffusion_test "/root/repo/build/tests/diffusion_test")
set_tests_properties(diffusion_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;30;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;31;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;32;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;33;retina_add_test;/root/repo/tests/CMakeLists.txt;0;")
