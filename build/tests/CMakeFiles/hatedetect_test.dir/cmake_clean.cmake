file(REMOVE_RECURSE
  "CMakeFiles/hatedetect_test.dir/hatedetect_test.cc.o"
  "CMakeFiles/hatedetect_test.dir/hatedetect_test.cc.o.d"
  "hatedetect_test"
  "hatedetect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatedetect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
