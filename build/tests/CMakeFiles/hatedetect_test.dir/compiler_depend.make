# Empty compiler generated dependencies file for hatedetect_test.
# This may be replaced when dependencies are built.
