# Empty compiler generated dependencies file for retina_cli.
# This may be replaced when dependencies are built.
