file(REMOVE_RECURSE
  "CMakeFiles/retina_cli.dir/retina_cli.cc.o"
  "CMakeFiles/retina_cli.dir/retina_cli.cc.o.d"
  "retina"
  "retina.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
