file(REMOVE_RECURSE
  "CMakeFiles/retina_hatedetect.dir/annotation.cc.o"
  "CMakeFiles/retina_hatedetect.dir/annotation.cc.o.d"
  "CMakeFiles/retina_hatedetect.dir/davidson.cc.o"
  "CMakeFiles/retina_hatedetect.dir/davidson.cc.o.d"
  "libretina_hatedetect.a"
  "libretina_hatedetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_hatedetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
