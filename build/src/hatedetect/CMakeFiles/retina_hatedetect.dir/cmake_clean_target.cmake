file(REMOVE_RECURSE
  "libretina_hatedetect.a"
)
