# Empty dependencies file for retina_hatedetect.
# This may be replaced when dependencies are built.
