# Empty dependencies file for retina_core.
# This may be replaced when dependencies are built.
