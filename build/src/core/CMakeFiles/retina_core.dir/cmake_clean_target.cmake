file(REMOVE_RECURSE
  "libretina_core.a"
)
