file(REMOVE_RECURSE
  "CMakeFiles/retina_core.dir/feature_extractor.cc.o"
  "CMakeFiles/retina_core.dir/feature_extractor.cc.o.d"
  "CMakeFiles/retina_core.dir/hategen_task.cc.o"
  "CMakeFiles/retina_core.dir/hategen_task.cc.o.d"
  "CMakeFiles/retina_core.dir/retina.cc.o"
  "CMakeFiles/retina_core.dir/retina.cc.o.d"
  "CMakeFiles/retina_core.dir/retweet_task.cc.o"
  "CMakeFiles/retina_core.dir/retweet_task.cc.o.d"
  "libretina_core.a"
  "libretina_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
