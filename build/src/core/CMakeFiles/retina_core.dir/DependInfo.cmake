
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_extractor.cc" "src/core/CMakeFiles/retina_core.dir/feature_extractor.cc.o" "gcc" "src/core/CMakeFiles/retina_core.dir/feature_extractor.cc.o.d"
  "/root/repo/src/core/hategen_task.cc" "src/core/CMakeFiles/retina_core.dir/hategen_task.cc.o" "gcc" "src/core/CMakeFiles/retina_core.dir/hategen_task.cc.o.d"
  "/root/repo/src/core/retina.cc" "src/core/CMakeFiles/retina_core.dir/retina.cc.o" "gcc" "src/core/CMakeFiles/retina_core.dir/retina.cc.o.d"
  "/root/repo/src/core/retweet_task.cc" "src/core/CMakeFiles/retina_core.dir/retweet_task.cc.o" "gcc" "src/core/CMakeFiles/retina_core.dir/retweet_task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/retina_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/retina_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/retina_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/retina_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/retina_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/retina_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
