# Empty compiler generated dependencies file for retina_datagen.
# This may be replaced when dependencies are built.
