file(REMOVE_RECURSE
  "CMakeFiles/retina_datagen.dir/news.cc.o"
  "CMakeFiles/retina_datagen.dir/news.cc.o.d"
  "CMakeFiles/retina_datagen.dir/serialize.cc.o"
  "CMakeFiles/retina_datagen.dir/serialize.cc.o.d"
  "CMakeFiles/retina_datagen.dir/world.cc.o"
  "CMakeFiles/retina_datagen.dir/world.cc.o.d"
  "CMakeFiles/retina_datagen.dir/world_config.cc.o"
  "CMakeFiles/retina_datagen.dir/world_config.cc.o.d"
  "libretina_datagen.a"
  "libretina_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
