file(REMOVE_RECURSE
  "libretina_datagen.a"
)
