
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/news.cc" "src/datagen/CMakeFiles/retina_datagen.dir/news.cc.o" "gcc" "src/datagen/CMakeFiles/retina_datagen.dir/news.cc.o.d"
  "/root/repo/src/datagen/serialize.cc" "src/datagen/CMakeFiles/retina_datagen.dir/serialize.cc.o" "gcc" "src/datagen/CMakeFiles/retina_datagen.dir/serialize.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/datagen/CMakeFiles/retina_datagen.dir/world.cc.o" "gcc" "src/datagen/CMakeFiles/retina_datagen.dir/world.cc.o.d"
  "/root/repo/src/datagen/world_config.cc" "src/datagen/CMakeFiles/retina_datagen.dir/world_config.cc.o" "gcc" "src/datagen/CMakeFiles/retina_datagen.dir/world_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/retina_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/retina_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/retina_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
