file(REMOVE_RECURSE
  "libretina_graph.a"
)
