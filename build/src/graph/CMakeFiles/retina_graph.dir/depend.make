# Empty dependencies file for retina_graph.
# This may be replaced when dependencies are built.
