file(REMOVE_RECURSE
  "CMakeFiles/retina_graph.dir/generators.cc.o"
  "CMakeFiles/retina_graph.dir/generators.cc.o.d"
  "CMakeFiles/retina_graph.dir/information_network.cc.o"
  "CMakeFiles/retina_graph.dir/information_network.cc.o.d"
  "libretina_graph.a"
  "libretina_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
