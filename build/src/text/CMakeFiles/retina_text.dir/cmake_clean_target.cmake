file(REMOVE_RECURSE
  "libretina_text.a"
)
