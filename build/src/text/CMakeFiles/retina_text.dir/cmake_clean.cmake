file(REMOVE_RECURSE
  "CMakeFiles/retina_text.dir/doc2vec.cc.o"
  "CMakeFiles/retina_text.dir/doc2vec.cc.o.d"
  "CMakeFiles/retina_text.dir/hate_lexicon.cc.o"
  "CMakeFiles/retina_text.dir/hate_lexicon.cc.o.d"
  "CMakeFiles/retina_text.dir/tfidf.cc.o"
  "CMakeFiles/retina_text.dir/tfidf.cc.o.d"
  "CMakeFiles/retina_text.dir/tokenizer.cc.o"
  "CMakeFiles/retina_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/retina_text.dir/vocabulary.cc.o"
  "CMakeFiles/retina_text.dir/vocabulary.cc.o.d"
  "libretina_text.a"
  "libretina_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
