# Empty compiler generated dependencies file for retina_text.
# This may be replaced when dependencies are built.
