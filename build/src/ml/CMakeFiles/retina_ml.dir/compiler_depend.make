# Empty compiler generated dependencies file for retina_ml.
# This may be replaced when dependencies are built.
