file(REMOVE_RECURSE
  "libretina_ml.a"
)
