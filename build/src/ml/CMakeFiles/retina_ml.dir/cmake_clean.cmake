file(REMOVE_RECURSE
  "CMakeFiles/retina_ml.dir/adaboost.cc.o"
  "CMakeFiles/retina_ml.dir/adaboost.cc.o.d"
  "CMakeFiles/retina_ml.dir/dataset.cc.o"
  "CMakeFiles/retina_ml.dir/dataset.cc.o.d"
  "CMakeFiles/retina_ml.dir/decision_tree.cc.o"
  "CMakeFiles/retina_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/retina_ml.dir/gradient_boosting.cc.o"
  "CMakeFiles/retina_ml.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/retina_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/retina_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/retina_ml.dir/metrics.cc.o"
  "CMakeFiles/retina_ml.dir/metrics.cc.o.d"
  "CMakeFiles/retina_ml.dir/preprocess.cc.o"
  "CMakeFiles/retina_ml.dir/preprocess.cc.o.d"
  "CMakeFiles/retina_ml.dir/random_forest.cc.o"
  "CMakeFiles/retina_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/retina_ml.dir/svm.cc.o"
  "CMakeFiles/retina_ml.dir/svm.cc.o.d"
  "libretina_ml.a"
  "libretina_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
