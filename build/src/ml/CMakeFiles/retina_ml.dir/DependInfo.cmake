
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cc" "src/ml/CMakeFiles/retina_ml.dir/adaboost.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/adaboost.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/retina_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/retina_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/retina_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/retina_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/retina_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/preprocess.cc" "src/ml/CMakeFiles/retina_ml.dir/preprocess.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/preprocess.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/retina_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/retina_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/retina_ml.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/retina_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
