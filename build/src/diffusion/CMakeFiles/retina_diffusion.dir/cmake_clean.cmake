file(REMOVE_RECURSE
  "CMakeFiles/retina_diffusion.dir/neural_baselines.cc.o"
  "CMakeFiles/retina_diffusion.dir/neural_baselines.cc.o.d"
  "CMakeFiles/retina_diffusion.dir/sir.cc.o"
  "CMakeFiles/retina_diffusion.dir/sir.cc.o.d"
  "CMakeFiles/retina_diffusion.dir/threshold.cc.o"
  "CMakeFiles/retina_diffusion.dir/threshold.cc.o.d"
  "libretina_diffusion.a"
  "libretina_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
