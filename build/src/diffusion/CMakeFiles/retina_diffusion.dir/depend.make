# Empty dependencies file for retina_diffusion.
# This may be replaced when dependencies are built.
