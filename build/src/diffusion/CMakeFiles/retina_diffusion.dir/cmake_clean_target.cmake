file(REMOVE_RECURSE
  "libretina_diffusion.a"
)
