# Empty dependencies file for retina_common.
# This may be replaced when dependencies are built.
