file(REMOVE_RECURSE
  "libretina_common.a"
)
