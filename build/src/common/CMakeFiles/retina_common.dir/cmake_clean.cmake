file(REMOVE_RECURSE
  "CMakeFiles/retina_common.dir/logging.cc.o"
  "CMakeFiles/retina_common.dir/logging.cc.o.d"
  "CMakeFiles/retina_common.dir/rng.cc.o"
  "CMakeFiles/retina_common.dir/rng.cc.o.d"
  "CMakeFiles/retina_common.dir/status.cc.o"
  "CMakeFiles/retina_common.dir/status.cc.o.d"
  "CMakeFiles/retina_common.dir/string_util.cc.o"
  "CMakeFiles/retina_common.dir/string_util.cc.o.d"
  "CMakeFiles/retina_common.dir/table.cc.o"
  "CMakeFiles/retina_common.dir/table.cc.o.d"
  "CMakeFiles/retina_common.dir/vec.cc.o"
  "CMakeFiles/retina_common.dir/vec.cc.o.d"
  "libretina_common.a"
  "libretina_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
