# Empty dependencies file for retina_nn.
# This may be replaced when dependencies are built.
