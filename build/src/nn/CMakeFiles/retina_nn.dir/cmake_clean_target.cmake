file(REMOVE_RECURSE
  "libretina_nn.a"
)
