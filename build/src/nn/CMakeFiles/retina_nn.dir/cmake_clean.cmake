file(REMOVE_RECURSE
  "CMakeFiles/retina_nn.dir/attention.cc.o"
  "CMakeFiles/retina_nn.dir/attention.cc.o.d"
  "CMakeFiles/retina_nn.dir/gru.cc.o"
  "CMakeFiles/retina_nn.dir/gru.cc.o.d"
  "CMakeFiles/retina_nn.dir/layers.cc.o"
  "CMakeFiles/retina_nn.dir/layers.cc.o.d"
  "CMakeFiles/retina_nn.dir/optimizer.cc.o"
  "CMakeFiles/retina_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/retina_nn.dir/recurrent.cc.o"
  "CMakeFiles/retina_nn.dir/recurrent.cc.o.d"
  "libretina_nn.a"
  "libretina_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
