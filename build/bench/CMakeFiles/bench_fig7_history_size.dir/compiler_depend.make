# Empty compiler generated dependencies file for bench_fig7_history_size.
# This may be replaced when dependencies are built.
