# Empty compiler generated dependencies file for bench_ext_replies.
# This may be replaced when dependencies are built.
