file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_replies.dir/bench_ext_replies.cc.o"
  "CMakeFiles/bench_ext_replies.dir/bench_ext_replies.cc.o.d"
  "bench_ext_replies"
  "bench_ext_replies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_replies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
