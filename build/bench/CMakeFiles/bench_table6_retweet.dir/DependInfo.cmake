
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_retweet.cc" "bench/CMakeFiles/bench_table6_retweet.dir/bench_table6_retweet.cc.o" "gcc" "bench/CMakeFiles/bench_table6_retweet.dir/bench_table6_retweet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/retina_core.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/retina_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/hatedetect/CMakeFiles/retina_hatedetect.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/retina_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/retina_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/retina_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/retina_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/retina_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/retina_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
