# Empty compiler generated dependencies file for bench_table6_retweet.
# This may be replaced when dependencies are built.
