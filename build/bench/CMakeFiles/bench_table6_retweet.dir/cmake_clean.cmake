file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_retweet.dir/bench_table6_retweet.cc.o"
  "CMakeFiles/bench_table6_retweet.dir/bench_table6_retweet.cc.o.d"
  "bench_table6_retweet"
  "bench_table6_retweet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_retweet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
