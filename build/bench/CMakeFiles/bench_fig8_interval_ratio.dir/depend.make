# Empty dependencies file for bench_fig8_interval_ratio.
# This may be replaced when dependencies are built.
