# Empty compiler generated dependencies file for bench_fig9_cascade_size.
# This may be replaced when dependencies are built.
