file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hashtag_hate.dir/bench_fig2_hashtag_hate.cc.o"
  "CMakeFiles/bench_fig2_hashtag_hate.dir/bench_fig2_hashtag_hate.cc.o.d"
  "bench_fig2_hashtag_hate"
  "bench_fig2_hashtag_hate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hashtag_hate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
