# Empty compiler generated dependencies file for bench_fig2_hashtag_hate.
# This may be replaced when dependencies are built.
