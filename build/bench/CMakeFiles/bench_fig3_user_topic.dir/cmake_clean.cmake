file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_user_topic.dir/bench_fig3_user_topic.cc.o"
  "CMakeFiles/bench_fig3_user_topic.dir/bench_fig3_user_topic.cc.o.d"
  "bench_fig3_user_topic"
  "bench_fig3_user_topic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_user_topic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
