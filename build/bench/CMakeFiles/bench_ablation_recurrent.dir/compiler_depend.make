# Empty compiler generated dependencies file for bench_ablation_recurrent.
# This may be replaced when dependencies are built.
