file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recurrent.dir/bench_ablation_recurrent.cc.o"
  "CMakeFiles/bench_ablation_recurrent.dir/bench_ablation_recurrent.cc.o.d"
  "bench_ablation_recurrent"
  "bench_ablation_recurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
