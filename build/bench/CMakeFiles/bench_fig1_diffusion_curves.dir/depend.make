# Empty dependencies file for bench_fig1_diffusion_curves.
# This may be replaced when dependencies are built.
