file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_generator.dir/bench_ablation_generator.cc.o"
  "CMakeFiles/bench_ablation_generator.dir/bench_ablation_generator.cc.o.d"
  "bench_ablation_generator"
  "bench_ablation_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
