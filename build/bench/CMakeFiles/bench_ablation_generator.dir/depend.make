# Empty dependencies file for bench_ablation_generator.
# This may be replaced when dependencies are built.
