# Empty dependencies file for bench_table4_hategen.
# This may be replaced when dependencies are built.
