file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hategen.dir/bench_table4_hategen.cc.o"
  "CMakeFiles/bench_table4_hategen.dir/bench_table4_hategen.cc.o.d"
  "bench_table4_hategen"
  "bench_table4_hategen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hategen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
