file(REMOVE_RECURSE
  "CMakeFiles/bench_hatedetect.dir/bench_hatedetect.cc.o"
  "CMakeFiles/bench_hatedetect.dir/bench_hatedetect.cc.o.d"
  "bench_hatedetect"
  "bench_hatedetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hatedetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
