# Empty compiler generated dependencies file for bench_hatedetect.
# This may be replaced when dependencies are built.
