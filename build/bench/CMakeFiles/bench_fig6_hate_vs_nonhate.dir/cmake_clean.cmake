file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hate_vs_nonhate.dir/bench_fig6_hate_vs_nonhate.cc.o"
  "CMakeFiles/bench_fig6_hate_vs_nonhate.dir/bench_fig6_hate_vs_nonhate.cc.o.d"
  "bench_fig6_hate_vs_nonhate"
  "bench_fig6_hate_vs_nonhate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hate_vs_nonhate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
