# Empty dependencies file for bench_fig6_hate_vs_nonhate.
# This may be replaced when dependencies are built.
