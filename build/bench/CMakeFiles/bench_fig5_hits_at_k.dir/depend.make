# Empty dependencies file for bench_fig5_hits_at_k.
# This may be replaced when dependencies are built.
