// Tests for retina::obs: counter sharding under ParallelFor, histogram
// bucket boundaries and quantile extraction, span nesting and self-time
// attribution, JSON export round-trip through a real parser, the runtime
// kill switch, and the determinism pin — obs-enabled and obs-disabled runs
// of the same train + serve workload produce bit-identical outputs.
//
// The timeline tracer (common/trace.h) is covered at the bottom: Chrome
// trace JSON export through the same in-test parser, span parenting across
// ParallelFor's thread pool, bounded-buffer drop accounting, per-request
// trace ids through the ScoringEngine, and the tracing-on ≡ tracing-off
// bit-exactness pin. Instrument-behavior tests skip themselves when obs is
// compiled out (-DRETINA_OBS_DISABLED); the determinism pins still run.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/obs.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"

namespace retina {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;
using obs::ScopeStats;
using obs::Series;
using obs::Span;

// Every test leaves obs enabled (the process default) so ordering between
// tests cannot leak a disabled switch.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() { obs::SetEnabled(true); }
  ~ObsEnabledGuard() { obs::SetEnabled(true); }
};

// Instrument-behavior tests assert that instruments record; under
// -DRETINA_OBS_DISABLED every instrument is a no-op by design, so those
// tests skip and only the determinism pins (and compiled-out no-op
// behavior tests) remain meaningful.
#define SKIP_IF_OBS_COMPILED_OUT()                                    \
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs instrumentation compiled out"

// ------------------------------------------------------------- Counters --

TEST(CounterTest, AddAndGet) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Counter c;
  EXPECT_EQ(c.Get(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Get(), 42u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST(CounterTest, ExactUnderParallelFor) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Counter c;
  constexpr size_t kIters = 20000;
  par::ParallelFor(kIters, 1, [&](size_t) { c.Add(1); });
  EXPECT_EQ(c.Get(), kIters);
  // Weighted adds shard the same way.
  par::ParallelFor(kIters, 1, [&](size_t i) { c.Add(i % 3); });
  uint64_t expect = kIters;
  for (size_t i = 0; i < kIters; ++i) expect += i % 3;
  EXPECT_EQ(c.Get(), expect);
}

TEST(CounterTest, DisabledAddsNothing) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Counter c;
  obs::SetEnabled(false);
  c.Add(100);
  obs::SetEnabled(true);
  EXPECT_EQ(c.Get(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Get(), 1u);
}

// --------------------------------------------------------------- Gauges --

TEST(GaugeTest, SetAndUpdateMax) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Get(), 7);
  g.UpdateMax(3);  // lower: no change
  EXPECT_EQ(g.Get(), 7);
  g.UpdateMax(19);
  EXPECT_EQ(g.Get(), 19);
  obs::SetEnabled(false);
  g.Set(1000);
  obs::SetEnabled(true);
  EXPECT_EQ(g.Get(), 19);
}

// ----------------------------------------------------------- Histograms --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);

  for (size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    const uint64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_EQ(lo, uint64_t{1} << (b - 1));
    EXPECT_EQ(hi, (uint64_t{1} << b) - 1);
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    EXPECT_EQ(Histogram::BucketIndex(hi), b);
  }
  // The top bucket absorbs everything representable.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            ~uint64_t{0});
}

TEST(HistogramTest, CountsSumAndBuckets) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1011u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1011.0 / 5.0);
  EXPECT_EQ(h.BucketCount(0), 1u);  // {0}
  EXPECT_EQ(h.BucketCount(1), 1u);  // {1}
  EXPECT_EQ(h.BucketCount(3), 2u);  // [4, 7]
  EXPECT_EQ(h.BucketCount(10), 1u);  // [512, 1023]
}

TEST(HistogramTest, QuantilesResolveToBucketUpperBound) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Histogram h;
  // 90 samples in [8, 15] (bucket 4), 10 samples in [512, 1023] (bucket 10).
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  EXPECT_EQ(h.Quantile(0.0), 15u);
  EXPECT_EQ(h.Quantile(0.5), 15u);
  EXPECT_EQ(h.Quantile(0.9), 15u);
  EXPECT_EQ(h.Quantile(0.95), 1023u);
  EXPECT_EQ(h.Quantile(0.99), 1023u);
  EXPECT_EQ(h.Quantile(1.0), 1023u);
}

TEST(HistogramTest, EmptyQuantileIsZeroAndDisabledRecordsNothing) {
  ObsEnabledGuard guard;
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  obs::SetEnabled(false);
  h.Record(123);
  obs::SetEnabled(true);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ExactUnderParallelFor) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Histogram h;
  constexpr size_t kIters = 10000;
  par::ParallelFor(kIters, 1, [&](size_t i) { h.Record(i); });
  EXPECT_EQ(h.Count(), kIters);
  EXPECT_EQ(h.Sum(), kIters * (kIters - 1) / 2);
}

// ---------------------------------------------------------------- Spans --

TEST(SpanTest, NestingAttributesChildTimeToParentTotalOnly) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  ScopeStats* outer = reg.GetScope("obs_test.outer");
  ScopeStats* inner = reg.GetScope("obs_test.inner");
  outer->Reset();
  inner->Reset();
  {
    Span outer_span(outer);
    {
      Span inner_span(inner);
      volatile double sink = 0.0;
      for (int i = 0; i < 10000; ++i) sink = sink + std::sqrt(i);
    }
  }
  EXPECT_EQ(outer->count.load(), 1u);
  EXPECT_EQ(inner->count.load(), 1u);
  const uint64_t outer_total = outer->total_ns.load();
  const uint64_t outer_self = outer->self_ns.load();
  const uint64_t inner_total = inner->total_ns.load();
  EXPECT_EQ(inner->self_ns.load(), inner_total);  // leaf: self == total
  EXPECT_GE(outer_total, inner_total);
  // Same-thread nesting: the child's elapsed time is subtracted from the
  // parent's self time exactly.
  EXPECT_EQ(outer_self, outer_total - inner_total);
}

TEST(SpanTest, SiblingSpansBothSubtractFromParent) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  ScopeStats* outer = reg.GetScope("obs_test.outer2");
  ScopeStats* child = reg.GetScope("obs_test.child2");
  outer->Reset();
  child->Reset();
  {
    Span outer_span(outer);
    for (int k = 0; k < 3; ++k) {
      Span child_span(child);
    }
  }
  EXPECT_EQ(child->count.load(), 3u);
  EXPECT_EQ(outer->self_ns.load(),
            outer->total_ns.load() - child->total_ns.load());
}

TEST(SpanTest, DisabledSpanRecordsNothing) {
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  ScopeStats* scope = reg.GetScope("obs_test.disabled");
  scope->Reset();
  obs::SetEnabled(false);
  {
    Span span(scope);
  }
  obs::SetEnabled(true);
  EXPECT_EQ(scope->count.load(), 0u);
  EXPECT_EQ(scope->total_ns.load(), 0u);
}

TEST(SpanTest, PerChunkSpansUnderParallelForNestPerThread) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  ScopeStats* scope = reg.GetScope("obs_test.chunk");
  scope->Reset();
  par::ParallelForChunks(1000, 10, [&](const par::ChunkRange& chunk) {
    Span span(scope);
    volatile size_t sink = 0;
    for (size_t i = chunk.begin; i < chunk.end; ++i) sink = sink + i;
  });
  EXPECT_EQ(scope->count.load(), par::MakeChunks(1000, 10).size());
  EXPECT_EQ(scope->self_ns.load(), scope->total_ns.load());
}

// --------------------------------------------------------------- Series --

TEST(SeriesTest, AppendsInOrderAndHonorsKillSwitch) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Series s;
  s.Append(1.5);
  s.Append(-2.25);
  obs::SetEnabled(false);
  s.Append(99.0);
  obs::SetEnabled(true);
  const std::vector<double> values = s.Values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 1.5);
  EXPECT_EQ(values[1], -2.25);
  s.Reset();
  EXPECT_EQ(s.Size(), 0u);
}

// ---------------------------------------------------- JSON export/parse --

// Minimal recursive-descent JSON parser — enough to round-trip the
// registry export and fail loudly on malformed output.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_TRUE(it != object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        c = text_[pos_++];
        if (c == 'u') {
          pos_ += 4;
          c = '?';
        }
      }
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        if (!ParseValue(&out->object[key])) return false;
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (Consume(']')) return true;
      for (;;) {
        out->array.emplace_back();
        if (!ParseValue(&out->array.back())) return false;
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->kind = JsonValue::kNumber;
    out->num = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(RegistryTest, JsonExportRoundTrips) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.json_counter")->Reset();
  reg.GetCounter("obs_test.json_counter")->Add(42);
  reg.GetGauge("obs_test.json_gauge")->Set(-7);
  Histogram* h = reg.GetHistogram("obs_test.json_hist");
  h->Reset();
  h->Record(3);
  h->Record(300);
  Series* s = reg.GetSeries("obs_test.json_series");
  s->Reset();
  s->Append(0.125);
  s->Append(1e-9);

  const std::string json = reg.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);

  EXPECT_EQ(root.at("enabled").b, true);
  EXPECT_EQ(root.at("counters").at("obs_test.json_counter").num, 42.0);
  EXPECT_EQ(root.at("gauges").at("obs_test.json_gauge").num, -7.0);

  const JsonValue& hist = root.at("histograms").at("obs_test.json_hist");
  EXPECT_EQ(hist.at("count").num, 2.0);
  EXPECT_EQ(hist.at("sum").num, 303.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 2u);  // two non-empty buckets
  EXPECT_EQ(hist.at("buckets").array[0].array[0].num, 2.0);    // lo of [2,3]
  EXPECT_EQ(hist.at("buckets").array[1].array[0].num, 256.0);  // lo of 300

  const JsonValue& series = root.at("series").at("obs_test.json_series");
  ASSERT_EQ(series.array.size(), 2u);
  // %.17g preserves doubles exactly through the round-trip.
  EXPECT_EQ(series.array[0].num, 0.125);
  EXPECT_EQ(series.array[1].num, 1e-9);

  EXPECT_EQ(root.at("scopes").kind, JsonValue::kObject);
}

TEST(RegistryTest, PointersAreStableAndSummaryRenders) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  Counter* c1 = reg.GetCounter("obs_test.stable");
  Counter* c2 = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(c1, c2);
  c1->Add(5);
  const std::string table = reg.SummaryTable();
  EXPECT_NE(table.find("obs_test.stable"), std::string::npos);
}

// ------------------------------------------- Windowed histograms --------

// Quantiles must pin to log2 bucket upper bounds exactly as the
// cumulative histogram's do, both before any rotation and across ticks.
TEST(WindowedHistogramTest, QuantilesPinToBucketUpperBoundsAcrossRotation) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.win_rot");
  w->Reset();
  reg.GetHistogram("obs_test.win_rot")->Reset();

  for (int i = 0; i < 100; ++i) w->Record(3);  // bucket [2,3]
  obs::WindowSnapshot snap = w->SnapshotWindow();
  EXPECT_EQ(snap.ticks, 0u);
  EXPECT_EQ(snap.window.count, 100u);
  EXPECT_EQ(snap.window.sum, 300u);
  EXPECT_EQ(snap.window.p50, 3u);
  EXPECT_EQ(snap.window.p99, 3u);

  w->Tick();
  for (int i = 0; i < 100; ++i) w->Record(300);  // bucket [256,511]

  // Last slot only: the post-tick recordings.
  snap = w->SnapshotWindow(1);
  EXPECT_EQ(snap.slots, 1u);
  EXPECT_EQ(snap.window.count, 100u);
  EXPECT_EQ(snap.window.p50, 511u);

  // Full window: both slots merge; the median sits in the low bucket,
  // the tail in the high one.
  snap = w->SnapshotWindow();
  EXPECT_EQ(snap.slots, 2u);
  EXPECT_EQ(snap.window.count, 200u);
  EXPECT_EQ(snap.window.p50, 3u);
  EXPECT_EQ(snap.window.p99, 511u);

  // The cumulative view never forgets, regardless of rotation.
  EXPECT_EQ(w->Cumulative().Count(), 200u);
}

TEST(WindowedHistogramTest, RotationEvictsSlotsBeyondTheRing) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.win_evict");
  w->Reset();
  reg.GetHistogram("obs_test.win_evict")->Reset();
  w->Record(7);
  for (size_t i = 0; i < obs::WindowedHistogram::kRingSize; ++i) w->Tick();
  const obs::WindowSnapshot snap = w->SnapshotWindow();
  EXPECT_EQ(snap.ticks, obs::WindowedHistogram::kRingSize);
  EXPECT_EQ(snap.window.count, 0u) << "pre-ring slot leaked into the window";
  EXPECT_EQ(w->Cumulative().Count(), 1u);
}

// Empty and partial windows must stay integer-exact: zero quantiles on
// zero count, and a partial window only merges the slots that exist.
TEST(WindowedHistogramTest, EmptyAndPartialWindowsAreNaNFree) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.win_empty");
  w->Reset();
  reg.GetHistogram("obs_test.win_empty")->Reset();

  obs::WindowSnapshot snap = w->SnapshotWindow();
  EXPECT_EQ(snap.window.count, 0u);
  EXPECT_EQ(snap.window.sum, 0u);
  EXPECT_EQ(snap.window.p50, 0u);
  EXPECT_EQ(snap.window.p95, 0u);
  EXPECT_EQ(snap.window.p99, 0u);

  // One tick happened; asking for more slots than exist clamps.
  w->Tick();
  w->Record(5);
  snap = w->SnapshotWindow(obs::WindowedHistogram::kRingSize * 4);
  EXPECT_EQ(snap.slots, 2u);  // tick 0's slot + the current one
  EXPECT_EQ(snap.window.count, 1u);
  EXPECT_EQ(snap.window.p50, 7u);  // bucket [4,7]
}

TEST(WindowedHistogramTest, DisabledRecordsNothingAndTickDoesNotRotate) {
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.win_off");
  w->Reset();
  reg.GetHistogram("obs_test.win_off")->Reset();
  obs::SetEnabled(false);
  w->Record(9);
  w->Tick();
  obs::SetEnabled(true);
  EXPECT_EQ(w->Ticks(), 0u);
  EXPECT_EQ(w->SnapshotWindow().window.count, 0u);
  EXPECT_EQ(w->Cumulative().Count(), 0u);
}

// One Record feeds both views: the windowed histogram shares storage
// with the plain histogram registered under the same name, so JSON
// exports and kMetrics replies agree about the cumulative series.
TEST(WindowedHistogramTest, SharesCumulativeWithSameNameHistogram) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  Histogram* plain = reg.GetHistogram("obs_test.win_shared");
  plain->Reset();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.win_shared");
  w->Reset();
  w->Record(12);
  EXPECT_EQ(plain->Count(), 1u);
  EXPECT_EQ(plain->Sum(), 12u);
  EXPECT_EQ(&w->Cumulative(), plain);
}

// ------------------------------------------- Registry snapshots ---------

TEST(RegistryTest, SnapshotDeltaSubtractsCountersAndGauges) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.delta_c")->Reset();
  reg.GetCounter("obs_test.delta_c")->Add(10);
  reg.GetCounter("obs_test.delta_idle")->Reset();
  reg.GetCounter("obs_test.delta_idle")->Add(2);
  reg.GetGauge("obs_test.delta_g")->Set(100);

  const obs::RegistrySnapshot before = reg.TakeSnapshot();
  reg.GetCounter("obs_test.delta_c")->Add(5);
  reg.GetGauge("obs_test.delta_g")->Set(40);
  const obs::RegistrySnapshot after = reg.TakeSnapshot();

  const obs::RegistrySnapshot delta =
      Registry::SnapshotDelta(before, after);
  EXPECT_EQ(delta.counters.at("obs_test.delta_c"), 5u);
  EXPECT_EQ(delta.gauges.at("obs_test.delta_g"), -60);
  // Untouched instruments appear with a zero delta, not as absences.
  ASSERT_NE(delta.counters.find("obs_test.delta_idle"),
            delta.counters.end());
  EXPECT_EQ(delta.counters.at("obs_test.delta_idle"), 0u);
}

TEST(RegistryTest, JsonExportCarriesWindowsSection) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.json_win");
  w->Reset();
  reg.GetHistogram("obs_test.json_win")->Reset();
  w->Record(3);
  w->Tick();
  w->Record(300);

  const std::string json = reg.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue& win = root.at("windows").at("obs_test.json_win");
  EXPECT_EQ(win.at("ticks").num, 1.0);
  EXPECT_EQ(win.at("count").num, 2.0);
  EXPECT_EQ(win.at("p99").num, 511.0);
  // The shared cumulative histogram still renders in "histograms".
  EXPECT_EQ(root.at("histograms").at("obs_test.json_win").at("count").num,
            2.0);
}

TEST(RegistryTest, PrometheusExpositionPinsBucketsAndQuantiles) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.prom_c")->Reset();
  reg.GetCounter("obs_test.prom_c")->Add(3);
  obs::WindowedHistogram* w = reg.GetWindowedHistogram("obs_test.prom_h");
  w->Reset();
  reg.GetHistogram("obs_test.prom_h")->Reset();
  w->Record(3);
  w->Record(3);
  w->Record(300);

  const std::string prom = reg.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE retina_obs_test_prom_c counter"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_c 3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE retina_obs_test_prom_h histogram"),
            std::string::npos);
  // Cumulative buckets at log2 upper bounds, ending in +Inf == _count.
  EXPECT_NE(prom.find("retina_obs_test_prom_h_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_h_bucket{le=\"511\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_h_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_h_sum 306\n"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_h_count 3\n"),
            std::string::npos);
  // The windowed view exports as gauge families with quantile suffixes.
  EXPECT_NE(prom.find("# TYPE retina_obs_test_prom_h_window_p99 gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("retina_obs_test_prom_h_window_p99 511\n"),
            std::string::npos);
}

// ------------------------------------------------- Determinism pinning --

// Small synthetic retweet task, same shape the parallel bench uses.
core::RetweetTask MakeTask(size_t n_tweets, size_t cands_per_tweet,
                           uint64_t seed) {
  core::RetweetTask task;
  task.user_dim = 12;
  task.content_dim = 8;
  task.embed_dim = 8;
  task.interval_edges = {0.0, 1.0, 8.0, 24.0};
  Rng rng(seed);
  const size_t n_intervals = task.NumIntervals();
  for (size_t t = 0; t < n_tweets; ++t) {
    core::TweetContext ctx;
    ctx.tweet_id = t;
    ctx.content = Vec(task.content_dim);
    for (double& v : ctx.content) v = rng.Normal();
    ctx.embedding = Vec(task.embed_dim);
    for (double& v : ctx.embedding) v = rng.Normal();
    ctx.news_window = Matrix(6, task.embed_dim);
    for (double& v : ctx.news_window.data()) v = rng.Normal();
    task.tweets.push_back(std::move(ctx));
    for (size_t k = 0; k < cands_per_tweet; ++k) {
      core::RetweetCandidate cand;
      cand.tweet_pos = t;
      cand.user = static_cast<datagen::NodeId>(k);
      cand.label = (k % 3 == 0) ? 1 : 0;
      cand.interval_labels.assign(n_intervals, 0);
      if (cand.label == 1) cand.interval_labels[k % n_intervals] = 1;
      cand.user_features = Vec(task.user_dim);
      for (double& v : cand.user_features) v = rng.Normal();
      task.train.push_back(std::move(cand));
    }
  }
  task.test = task.train;
  return task;
}

// The core contract: observability is an observer. Training with obs
// enabled and disabled must produce bit-identical loss trajectories and
// bit-identical candidate scores.
TEST(ObsDeterminismTest, TrainAndEvalBitIdenticalWithObsOnAndOff) {
  ObsEnabledGuard guard;
  const core::RetweetTask task = MakeTask(4, 9, 123);

  auto run = [&](bool enabled) {
    obs::SetEnabled(enabled);
    core::RetinaOptions opts;
    opts.hidden = 8;
    opts.epochs = 2;
    opts.seed = 11;
    auto model = std::make_unique<core::Retina>(
        task.user_dim, task.content_dim, task.embed_dim, task.NumIntervals(),
        opts);
    EXPECT_TRUE(model->Train(task).ok());
    return model;
  };

  const auto model_on = run(true);
  const auto model_off = run(false);
  obs::SetEnabled(true);

  ASSERT_EQ(model_on->epoch_losses().size(), 2u);
  ASSERT_EQ(model_on->epoch_losses().size(), model_off->epoch_losses().size());
  for (size_t e = 0; e < model_on->epoch_losses().size(); ++e) {
    EXPECT_EQ(model_on->epoch_losses()[e], model_off->epoch_losses()[e])
        << "epoch " << e << " loss diverged between obs on/off";
  }

  const Vec scores_on = model_on->ScoreCandidates(task, task.test);
  const Vec scores_off = model_off->ScoreCandidates(task, task.test);
  ASSERT_EQ(scores_on.size(), scores_off.size());
  for (size_t i = 0; i < scores_on.size(); ++i) {
    EXPECT_EQ(scores_on[i], scores_off[i]) << "score " << i << " diverged";
  }
}

TEST(ObsDeterminismTest, WorldGenerationBitIdenticalWithObsOnAndOff) {
  ObsEnabledGuard guard;
  datagen::WorldConfig config;
  config.scale = 0.01;
  config.num_users = 120;
  config.history_length = 6;
  config.news_per_day = 10.0;

  obs::SetEnabled(true);
  const auto world_on = datagen::SyntheticWorld::Generate(config, 31);
  obs::SetEnabled(false);
  const auto world_off = datagen::SyntheticWorld::Generate(config, 31);
  obs::SetEnabled(true);

  ASSERT_EQ(world_on.tweets().size(), world_off.tweets().size());
  for (size_t i = 0; i < world_on.tweets().size(); ++i) {
    EXPECT_EQ(world_on.tweets()[i].time, world_off.tweets()[i].time);
    EXPECT_EQ(world_on.tweets()[i].author, world_off.tweets()[i].author);
    ASSERT_EQ(world_on.cascades()[i].retweets.size(),
              world_off.cascades()[i].retweets.size());
    for (size_t r = 0; r < world_on.cascades()[i].retweets.size(); ++r) {
      EXPECT_EQ(world_on.cascades()[i].retweets[r].time,
                world_off.cascades()[i].retweets[r].time);
    }
  }
}

// ------------------------------------------------------ Timeline tracer --

// Ends the trace session on every exit path so a failing assertion cannot
// leave emission running for later tests.
class TraceSessionGuard {
 public:
  ~TraceSessionGuard() { obs::StopTracing(); }
};

// Parses TraceToChromeJson() output and returns the traceEvents array (and
// the whole document via *doc). Fails the test on malformed JSON.
std::vector<JsonValue> ParseTraceEvents(const std::string& json,
                                        JsonValue* doc) {
  EXPECT_TRUE(JsonParser(json).Parse(doc)) << json.substr(0, 400);
  EXPECT_EQ(doc->kind, JsonValue::kObject);
  return doc->at("traceEvents").array;
}

// Complete ("X") events with the given name.
std::vector<JsonValue> CompleteEvents(const std::vector<JsonValue>& events,
                                      const std::string& name) {
  std::vector<JsonValue> out;
  for (const JsonValue& e : events) {
    if (e.at("ph").str == "X" && e.at("name").str == name) out.push_back(e);
  }
  return out;
}

void SpinWork() {
  volatile double sink = 0.0;
  for (int i = 0; i < 20000; ++i) sink = sink + std::sqrt(i);
}

TEST(TraceTest, ExportParentsNestedSpansAndStampsTraceIds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  ObsEnabledGuard guard;
  TraceSessionGuard session;
  obs::StartTracing();
  {
    obs::TraceRequestScope request;
    obs::TraceSpan outer("trace_test.outer");
    SpinWork();
    {
      obs::TraceSpan inner("trace_test.inner");
      SpinWork();
      obs::TraceInstant("trace_test.instant");
    }
  }
  obs::StopTracing();

  JsonValue doc;
  const auto events = ParseTraceEvents(obs::TraceToChromeJson(), &doc);
  const auto outer = CompleteEvents(events, "trace_test.outer");
  const auto inner = CompleteEvents(events, "trace_test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);

  const double trace_id = outer[0].at("args").at("trace_id").num;
  EXPECT_NE(trace_id, 0.0);
  EXPECT_EQ(inner[0].at("args").at("trace_id").num, trace_id);
  // The inner span's parent is the outer span; the outer span is a root.
  EXPECT_EQ(inner[0].at("args").at("parent_span_id").num,
            outer[0].at("args").at("span_id").num);
  EXPECT_EQ(outer[0].at("args").at("parent_span_id").num, 0.0);
  // Complete events carry nonzero durations, and the child fits inside the
  // parent on the timeline.
  EXPECT_GT(outer[0].at("dur").num, 0.0);
  EXPECT_GT(inner[0].at("dur").num, 0.0);
  EXPECT_GE(inner[0].at("ts").num, outer[0].at("ts").num);
  EXPECT_LE(inner[0].at("ts").num + inner[0].at("dur").num,
            outer[0].at("ts").num + outer[0].at("dur").num + 1e-3);

  // The instant event rides the same trace under the inner span.
  bool saw_instant = false;
  for (const JsonValue& e : events) {
    if (e.at("ph").str != "i" || e.at("name").str != "trace_test.instant") {
      continue;
    }
    saw_instant = true;
    EXPECT_EQ(e.at("args").at("trace_id").num, trace_id);
    EXPECT_EQ(e.at("args").at("parent_span_id").num,
              inner[0].at("args").at("span_id").num);
  }
  EXPECT_TRUE(saw_instant);
}

TEST(TraceTest, FullBufferDropsNewestAndCountsThem) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  ObsEnabledGuard guard;
  TraceSessionGuard session;
  obs::StartTracing(/*buffer_capacity=*/64);
  for (int i = 0; i < 100; ++i) obs::TraceInstant("trace_test.flood");
  obs::StopTracing();

  EXPECT_EQ(obs::TraceBufferedEvents(), 64u);
  EXPECT_EQ(obs::TraceDroppedEvents(), 36u);

  JsonValue doc;
  const auto events = ParseTraceEvents(obs::TraceToChromeJson(), &doc);
  size_t instants = 0;
  for (const JsonValue& e : events) {
    if (e.at("ph").str == "i") ++instants;
  }
  EXPECT_EQ(instants, 64u);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").num, 36.0);
  EXPECT_EQ(doc.at("otherData").at("buffer_capacity").num, 64.0);

  // The next session starts clean.
  obs::StartTracing(/*buffer_capacity=*/64);
  obs::StopTracing();
  EXPECT_EQ(obs::TraceDroppedEvents(), 0u);
  EXPECT_EQ(obs::TraceBufferedEvents(), 0u);
}

TEST(TraceTest, ParallelForChunksNestUnderSubmittingSpan) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  ObsEnabledGuard guard;
  // Force real workers even on a 1-core host so adoption of the submitting
  // thread's context is exercised cross-thread.
  const size_t prev_threads = par::NumThreads();
  par::SetNumThreads(4);
  TraceSessionGuard session;
  obs::StartTracing();
  double root_span_id = 0.0;
  double root_trace_id = 0.0;
  {
    obs::TraceRequestScope request;
    obs::TraceSpan root("trace_test.loop");
    par::ParallelForChunks(400, 10, [](const par::ChunkRange& chunk) {
      volatile size_t sink = 0;
      for (size_t i = chunk.begin; i < chunk.end; ++i) sink = sink + i;
    });
  }
  obs::StopTracing();
  par::SetNumThreads(prev_threads);

  JsonValue doc;
  const auto events = ParseTraceEvents(obs::TraceToChromeJson(), &doc);
  const auto roots = CompleteEvents(events, "trace_test.loop");
  ASSERT_EQ(roots.size(), 1u);
  root_span_id = roots[0].at("args").at("span_id").num;
  root_trace_id = roots[0].at("args").at("trace_id").num;
  ASSERT_NE(root_trace_id, 0.0);

  const auto chunks = CompleteEvents(events, "par.chunk");
  ASSERT_EQ(chunks.size(), par::MakeChunks(400, 10).size());
  for (const JsonValue& chunk : chunks) {
    // Every chunk — including ones run on pool workers — is parented to
    // the submitting span and carries its trace id.
    EXPECT_EQ(chunk.at("args").at("parent_span_id").num, root_span_id);
    EXPECT_EQ(chunk.at("args").at("trace_id").num, root_trace_id);
  }
}

TEST(TraceTest, RequestScopeMintsOncePerRootAndInheritsWhenNested) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  ObsEnabledGuard guard;
  TraceSessionGuard session;
  obs::StartTracing();
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  uint64_t first = 0;
  {
    obs::TraceRequestScope root;
    first = obs::CurrentTraceId();
    EXPECT_NE(first, 0u);
    {
      obs::TraceRequestScope nested;  // per-tweet request inside a batch
      EXPECT_EQ(obs::CurrentTraceId(), first);
    }
    EXPECT_EQ(obs::CurrentTraceId(), first);
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  {
    obs::TraceRequestScope second;
    EXPECT_NE(obs::CurrentTraceId(), 0u);
    EXPECT_NE(obs::CurrentTraceId(), first);
  }
  obs::StopTracing();
  // Off-session: nothing is minted and nothing leaks into the context.
  {
    obs::TraceRequestScope off;
    EXPECT_EQ(obs::CurrentTraceId(), 0u);
  }
}

TEST(TraceTest, ScoringEngineStampsRequestTraceIdsOnCacheEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  ObsEnabledGuard guard;

  datagen::WorldConfig config;
  config.scale = 0.01;
  config.num_users = 120;
  config.history_length = 6;
  config.news_per_day = 10.0;
  auto world = datagen::SyntheticWorld::Generate(config, 47);
  hatedetect::AnnotationOptions aopts;
  ASSERT_TRUE(hatedetect::AnnotateWorld(&world, aopts).ok());

  core::FeatureConfig fconfig;
  fconfig.history_size = 4;
  fconfig.history_tfidf_dim = 30;
  fconfig.news_tfidf_dim = 30;
  fconfig.tweet_tfidf_dim = 30;
  fconfig.news_window = 8;
  fconfig.doc2vec_dim = 8;
  fconfig.doc2vec_epochs = 1;
  auto fx = core::FeatureExtractor::Build(world, fconfig);
  ASSERT_TRUE(fx.ok());
  const core::FeatureExtractor extractor = std::move(fx).ValueOrDie();

  core::RetweetTaskOptions topts;
  topts.min_news = 1;
  topts.max_candidates = 8;
  auto task_or = core::BuildRetweetTask(extractor, topts);
  ASSERT_TRUE(task_or.ok());
  const core::RetweetTask task = std::move(task_or).ValueOrDie();
  ASSERT_FALSE(task.test.empty());

  // Untrained model: trace plumbing is independent of weights.
  core::RetinaOptions mopts;
  mopts.hidden = 8;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), mopts);
  core::ScoringEngine engine(&model, &extractor);

  TraceSessionGuard session;
  obs::StartTracing();
  engine.ScoreCandidates(task, task.test);
  obs::StopTracing();

  JsonValue doc;
  const auto events = ParseTraceEvents(obs::TraceToChromeJson(), &doc);
  const auto requests = CompleteEvents(events, "serving.score_tweet");
  ASSERT_FALSE(requests.empty());
  // One batch: every per-tweet request inherits the batch's trace id.
  const double batch_trace_id = requests[0].at("args").at("trace_id").num;
  EXPECT_NE(batch_trace_id, 0.0);
  for (const JsonValue& req : requests) {
    EXPECT_EQ(req.at("args").at("trace_id").num, batch_trace_id);
    EXPECT_GT(req.at("dur").num, 0.0);
  }
  // Cache hit/miss instants ride the same trace.
  size_t cache_events = 0;
  for (const JsonValue& e : events) {
    if (e.at("ph").str != "i") continue;
    const std::string& name = e.at("name").str;
    if (name.rfind("serving.", 0) != 0) continue;
    ++cache_events;
    EXPECT_EQ(e.at("args").at("trace_id").num, batch_trace_id) << name;
  }
  EXPECT_GT(cache_events, 0u);
}

// Tracing is an observer: a traced run and an untraced run of the same
// training workload produce bit-identical loss trajectories and scores.
// This pin runs in every build, including -DRETINA_OBS_DISABLED where
// StartTracing is a no-op and both runs are trivially untraced.
TEST(TraceDeterminismTest, TrainBitIdenticalWithTracingOnAndOff) {
  ObsEnabledGuard guard;
  TraceSessionGuard session;
  const core::RetweetTask task = MakeTask(4, 9, 123);

  auto run = [&](bool traced) {
    if (traced) {
      obs::StartTracing();
    } else {
      obs::StopTracing();
    }
    core::RetinaOptions opts;
    opts.hidden = 8;
    opts.epochs = 2;
    opts.seed = 11;
    auto model = std::make_unique<core::Retina>(
        task.user_dim, task.content_dim, task.embed_dim, task.NumIntervals(),
        opts);
    EXPECT_TRUE(model->Train(task).ok());
    return model;
  };

  const auto model_traced = run(true);
  const auto model_plain = run(false);

  ASSERT_EQ(model_traced->epoch_losses().size(),
            model_plain->epoch_losses().size());
  for (size_t e = 0; e < model_traced->epoch_losses().size(); ++e) {
    EXPECT_EQ(model_traced->epoch_losses()[e], model_plain->epoch_losses()[e])
        << "epoch " << e << " loss diverged between tracing on/off";
  }
  const Vec scores_traced = model_traced->ScoreCandidates(task, task.test);
  const Vec scores_plain = model_plain->ScoreCandidates(task, task.test);
  ASSERT_EQ(scores_traced.size(), scores_plain.size());
  for (size_t i = 0; i < scores_traced.size(); ++i) {
    EXPECT_EQ(scores_traced[i], scores_plain[i]) << "score " << i;
  }
}

TEST(TraceDeterminismTest, WorldGenerationBitIdenticalWithTracingOnAndOff) {
  ObsEnabledGuard guard;
  TraceSessionGuard session;
  datagen::WorldConfig config;
  config.scale = 0.01;
  config.num_users = 120;
  config.history_length = 6;
  config.news_per_day = 10.0;

  obs::StartTracing();
  const auto world_traced = datagen::SyntheticWorld::Generate(config, 31);
  obs::StopTracing();
  const auto world_plain = datagen::SyntheticWorld::Generate(config, 31);

  ASSERT_EQ(world_traced.tweets().size(), world_plain.tweets().size());
  for (size_t i = 0; i < world_traced.tweets().size(); ++i) {
    EXPECT_EQ(world_traced.tweets()[i].time, world_plain.tweets()[i].time);
    EXPECT_EQ(world_traced.tweets()[i].author, world_plain.tweets()[i].author);
    ASSERT_EQ(world_traced.cascades()[i].retweets.size(),
              world_plain.cascades()[i].retweets.size());
    for (size_t r = 0; r < world_traced.cascades()[i].retweets.size(); ++r) {
      EXPECT_EQ(world_traced.cascades()[i].retweets[r].time,
                world_plain.cascades()[i].retweets[r].time);
    }
  }
}

}  // namespace
}  // namespace retina
