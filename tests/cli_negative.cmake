# Negative CLI cases: unknown flags and subcommands must exit nonzero
# with a one-line Status message on stderr ("InvalidArgument: unknown
# ..."), never a silent full-usage dump with exit 0 — scripts and CI
# pipelines depend on the exit code, and the one-liner keeps the actual
# mistake visible instead of burying it under the usage text.
#
# Run as:
#   cmake -DRETINA_CLI=<retina> -DRETINA_SERVE=<retina_serve>
#         -DMODE=flag|command|serve_flag -P cli_negative.cmake

if(NOT DEFINED RETINA_CLI OR NOT DEFINED MODE)
  message(FATAL_ERROR "pass -DRETINA_CLI=<binary> and -DMODE=<case>")
endif()

if(MODE STREQUAL "flag")
  set(cmd "${RETINA_CLI}" eval --data /nonexistent --no-such-flag)
elseif(MODE STREQUAL "command")
  set(cmd "${RETINA_CLI}" frobnicate)
elseif(MODE STREQUAL "serve_flag")
  if(NOT DEFINED RETINA_SERVE)
    message(FATAL_ERROR "pass -DRETINA_SERVE=<binary> for MODE=serve_flag")
  endif()
  set(cmd "${RETINA_SERVE}" --no-such-flag)
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

execute_process(COMMAND ${cmd}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "MODE=${MODE}: expected a nonzero exit, got 0:\n${out}\n${err}")
endif()
if(NOT err MATCHES "InvalidArgument: unknown")
  message(FATAL_ERROR "MODE=${MODE}: stderr lacks the one-line Status "
          "message:\n${err}")
endif()
# One line means one line: the usage dump must not ride along.
string(REGEX MATCHALL "\n" newlines "${err}")
list(LENGTH newlines n_lines)
if(n_lines GREATER 2)
  message(FATAL_ERROR "MODE=${MODE}: stderr is ${n_lines} lines, wanted a "
          "one-line rejection:\n${err}")
endif()
message(STATUS "MODE=${MODE} rejected correctly: rc=${rc}")
