// Tests for src/hatedetect: Davidson classifier, Krippendorff alpha and
// the two-tier annotation pipeline of Section VI-B.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "hatedetect/davidson.h"
#include "text/hate_lexicon.h"

namespace retina::hatedetect {
namespace {

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.06;
  config.num_users = 800;
  config.history_length = 10;
  config.news_per_day = 40.0;
  return config;
}

datagen::SyntheticWorld& TestWorld() {
  static datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(TestConfig(), 17);
  return world;
}

// ------------------------------------------------------------- Davidson --

TEST(DavidsonTest, FitRejectsBadInput) {
  const text::HateLexicon lex = text::MakeSyntheticLexicon(10, 6);
  DavidsonClassifier model({}, &lex);
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{"a"}}, {1, 0}).ok());
}

TEST(DavidsonTest, SeparatesLexiconMarkedText) {
  const text::HateLexicon lex = text::MakeSyntheticLexicon(20, 15);
  Rng rng(3);
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    std::vector<std::string> doc;
    const bool hateful = rng.Bernoulli(0.3);
    for (int w = 0; w < 8; ++w) {
      doc.push_back("word" + std::to_string(rng.UniformInt(40)));
    }
    if (hateful) {
      doc.push_back(
          lex.slur_terms()[rng.UniformInt(lex.slur_terms().size())]);
    }
    docs.push_back(std::move(doc));
    labels.push_back(hateful ? 1 : 0);
  }
  DavidsonClassifier model({}, &lex);
  ASSERT_TRUE(model.Fit(docs, labels).ok());
  size_t correct = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    correct += ((model.PredictProba(docs[i]) >= 0.5 ? 1 : 0) == labels[i]);
  }
  EXPECT_GT(static_cast<double>(correct) / docs.size(), 0.9);
}

TEST(DavidsonTest, LexiconOnlyVariantNotBetterThanFull) {
  auto& world = TestWorld();
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  for (const auto& tw : world.tweets()) {
    docs.push_back(tw.tokens);
    labels.push_back(tw.is_hateful ? 1 : 0);
  }
  DavidsonOptions full_opts;
  DavidsonClassifier full(full_opts, &world.lexicon());
  ASSERT_TRUE(full.Fit(docs, labels).ok());
  DavidsonOptions lex_opts;
  lex_opts.use_tfidf = false;
  DavidsonClassifier lexonly(lex_opts, &world.lexicon());
  ASSERT_TRUE(lexonly.Fit(docs, labels).ok());

  size_t full_ok = 0, lex_ok = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    full_ok += ((full.PredictProba(docs[i]) >= 0.5 ? 1 : 0) == labels[i]);
    lex_ok += ((lexonly.PredictProba(docs[i]) >= 0.5 ? 1 : 0) == labels[i]);
  }
  EXPECT_GE(full_ok + docs.size() / 100, lex_ok);
}

TEST(DavidsonTest, BatchMatchesScalar) {
  const text::HateLexicon lex = text::MakeSyntheticLexicon(10, 6);
  DavidsonClassifier model({}, &lex);
  std::vector<std::vector<std::string>> docs = {
      {"a", "b", "slur001"}, {"a", "c"}, {"b", "c", "b"}, {"a", "a"}};
  ASSERT_TRUE(model.Fit(docs, {1, 0, 0, 0}).ok());
  const Vec batch = model.PredictProbaBatch(docs);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.PredictProba(docs[i]));
  }
}

// ---------------------------------------------------------- Krippendorff --

TEST(KrippendorffTest, PerfectAgreementIsOne) {
  const std::vector<std::vector<int>> ratings = {
      {1, 1, 1}, {0, 0, 0}, {1, 1, 1}, {0, 0, 0}};
  EXPECT_NEAR(KrippendorffAlpha(ratings), 1.0, 1e-9);
}

TEST(KrippendorffTest, RandomAgreementNearZero) {
  Rng rng(5);
  std::vector<std::vector<int>> ratings(4000, std::vector<int>(3));
  for (auto& item : ratings) {
    for (int& r : item) r = rng.Bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(KrippendorffAlpha(ratings), 0.0, 0.05);
}

TEST(KrippendorffTest, ModerateNoiseGivesIntermediateAlpha) {
  // Truth 30% positive, annotators flip with p=0.13 (the pipeline
  // default), which should land in the paper's ballpark (alpha ~ 0.5-0.7).
  Rng rng(7);
  std::vector<std::vector<int>> ratings;
  for (int i = 0; i < 5000; ++i) {
    const int truth = rng.Bernoulli(0.3) ? 1 : 0;
    std::vector<int> item(3);
    for (int& r : item) {
      r = rng.Bernoulli(0.13) ? 1 - truth : truth;
    }
    ratings.push_back(std::move(item));
  }
  const double alpha = KrippendorffAlpha(ratings);
  EXPECT_GT(alpha, 0.4);
  EXPECT_LT(alpha, 0.8);
}

TEST(KrippendorffTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KrippendorffAlpha({}), 0.0);
  EXPECT_DOUBLE_EQ(KrippendorffAlpha({{1}}), 0.0);  // single rater
  // All raters always say 1: no expected disagreement -> alpha = 1.
  EXPECT_DOUBLE_EQ(KrippendorffAlpha({{1, 1}, {1, 1}}), 1.0);
}

// -------------------------------------------------------------- Pipeline --

TEST(AnnotationPipelineTest, EndToEnd) {
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(TestConfig(), 23);
  AnnotationOptions opts;
  auto result = AnnotateWorld(&world, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnnotationReport report = result.ValueOrDie();

  EXPECT_NEAR(static_cast<double>(report.gold_tweets),
              opts.gold_fraction * static_cast<double>(world.tweets().size()),
              static_cast<double>(world.tweets().size()) * 0.02);

  // Annotator panel reliability in the paper's ballpark (alpha = 0.58).
  EXPECT_GT(report.krippendorff_alpha, 0.35);
  EXPECT_LT(report.krippendorff_alpha, 0.85);

  // Fine-tuned detector is a usable annotator and not worse than the
  // lexicon-only "pre-trained" variant (paper: 0.59 vs 0.48 macro-F1).
  EXPECT_GT(report.finetuned_macro_f1, report.pretrained_macro_f1 - 0.05);
  EXPECT_GT(report.finetuned_auc, 0.7);

  EXPECT_LT(report.machine_disagreement, 0.2);
}

TEST(AnnotationPipelineTest, MachineLabelsMostlyAgreeWithGold) {
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(TestConfig(), 29);
  for (auto& tw : world.mutable_tweets()) {
    ASSERT_EQ(tw.machine_hateful, tw.is_hateful);
  }
  AnnotationOptions opts;
  ASSERT_TRUE(AnnotateWorld(&world, opts).ok());
  size_t disagreements = 0;
  for (const auto& tw : world.tweets()) {
    disagreements += (tw.machine_hateful != tw.is_hateful);
  }
  EXPECT_LT(static_cast<double>(disagreements) /
                static_cast<double>(world.tweets().size()),
            0.15);
}

TEST(AnnotationPipelineTest, EmptyWorldFails) {
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(TestConfig(), 1);
  world.mutable_tweets().clear();
  EXPECT_FALSE(AnnotateWorld(&world, {}).ok());
}

}  // namespace
}  // namespace retina::hatedetect
