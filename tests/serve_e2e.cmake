# End-to-end smoke for the serving daemon:
#
#   retina generate       --out WORK/world
#   retina train-retweet  --data WORK/world --save-model WORK/model
#   retina_serve          --data ... --socket ... --listen 127.0.0.1:0
#                         (background; a dead file is planted at the
#                          socket path first to pin stale recovery)
#   load_driver           --verify-data/--verify-model + QPS sweep, once
#                         over the Unix socket and once over TCP loopback
#   load_driver (bg) + retina_top --once
#                         a third, unverified driver runs in the
#                         background while retina_top polls kMetrics and
#                         must report nonzero qps
#   kill -TERM            (graceful drain)
#   check_prom.py / report.py
#                         validate the --prom-out exposition and render
#                         the merged client+server trace report
#
# and asserts the whole serving contract end to end, across processes:
#
#   - a stale socket file from a SIGKILL'd prior run is connect-probed
#     and reclaimed ("removing stale socket file" logged), not a bind
#     failure;
#   - load_driver's --verify pass requires every daemon score to be
#     byte-identical to the same bundle loaded in-process — over BOTH
#     transports (the kernel-assigned TCP port is parsed from the
#     daemon's "serving on ... tcp port N" line);
#   - the sweep (>= 3 QPS points, >= 4 connections) completes with zero
#     dropped requests — a request is either answered or shed at
#     admission, never silently lost;
#   - retina_top --once, polled against the live daemon under background
#     load, derives a nonzero QPS from two kMetrics snapshots (and, with
#     obs compiled in, a nonzero windowed handle p99);
#   - SIGTERM drains: the daemon exits on its own, logs the drain, and
#     writes --metrics-out, --trace-out, and --prom-out before exiting;
#   - the Prometheus exposition passes tools/check_prom.py, including the
#     retina_serve_handle_ns histogram family;
#   - report.py merges the driver's --trace-out with the daemon's and,
#     with obs compiled in, pairs at least one trace id across both
#     files (cross-process propagation observed end to end);
#   - BENCH_serve.json / BENCH_serve_tcp.json parse, carry the coalesce
#     observability block and transport label, and land in
#     ${WORK_DIR}_outputs for the report tooling and CI artifact upload.
#
# The daemon's socket lives under /tmp, not under WORK_DIR: sockaddr_un's
# sun_path caps paths at ~107 bytes and CI build trees run deeper.
#
# Run as:
#   cmake -DRETINA_CLI=<retina> -DRETINA_SERVE=<retina_serve>
#         -DLOAD_DRIVER=<load_driver> -DRETINA_TOP=<retina_top>
#         -DWORK_DIR=<scratch dir>
#         [-DOBS_COMPILED_OUT=ON] -P serve_e2e.cmake
#
# OBS_COMPILED_OUT=ON relaxes the metrics-content assertions (counters
# compile to nothing) — the protocol/drain assertions all rest on the
# server's own atomics and hold regardless.

if(NOT DEFINED RETINA_CLI)
  message(FATAL_ERROR "pass -DRETINA_CLI=<path to the retina binary>")
endif()
if(NOT DEFINED RETINA_SERVE)
  message(FATAL_ERROR "pass -DRETINA_SERVE=<path to the retina_serve binary>")
endif()
if(NOT DEFINED LOAD_DRIVER)
  message(FATAL_ERROR "pass -DLOAD_DRIVER=<path to the load_driver binary>")
endif()
if(NOT DEFINED RETINA_TOP)
  message(FATAL_ERROR "pass -DRETINA_TOP=<path to the retina_top binary>")
endif()
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()
if(NOT DEFINED OBS_COMPILED_OUT)
  set(OBS_COMPILED_OUT OFF)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RETINA_CLI}" generate --out "${WORK_DIR}/world"
          --scale 0.05 --users 700 --seed 43
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${RETINA_CLI}" train-retweet --data "${WORK_DIR}/world"
          --seed 43 --save-model "${WORK_DIR}/model"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train-retweet failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/model/model.ckpt")
  message(FATAL_ERROR "train-retweet did not write model/model.ckpt:\n${out}")
endif()

# ---- Start the daemon in the background (sh backgrounding: CMake has no
# native detach). Its pid comes back through the pipe; stdout/stderr land
# in serve.log for the drain assertion below.
#
# The daemon listens on BOTH transports: the Unix socket and a TCP
# loopback port the kernel picks (--listen 127.0.0.1:0); the bound port
# is parsed out of serve.log below and driven as a second verify pass.
#
# Pinned stale-socket recovery: a dead file is planted at the socket path
# first, simulating a SIGKILL'd prior run. The daemon must connect-probe
# it, find nobody answering, unlink it, and bind — not fail the bind.
string(RANDOM LENGTH 8 ALPHABET "abcdefghijklmnopqrstuvwxyz0123456789" tag)
set(SOCKET "/tmp/retina_e2e_${tag}.sock")
file(WRITE "${SOCKET}" "stale leftover from a killed run")
execute_process(
  COMMAND sh -c "exec '${RETINA_SERVE}' \
      --data '${WORK_DIR}/world' --model '${WORK_DIR}/model' \
      --socket '${SOCKET}' --listen 127.0.0.1:0 \
      --workers 4 --queue-capacity 128 --metrics-tick 32 \
      --metrics-out '${WORK_DIR}/serve_metrics.json' \
      --trace-out '${WORK_DIR}/serve_trace.json' \
      --prom-out '${WORK_DIR}/serve.prom' \
      > '${WORK_DIR}/serve.log' 2>&1 & echo $!"
  RESULT_VARIABLE rc OUTPUT_VARIABLE serve_pid ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch retina_serve (${rc}): ${err}")
endif()
string(STRIP "${serve_pid}" serve_pid)

# The daemon loads the world + bundle before binding. The stale file
# planted above means the socket path EXISTS from the start, so readiness
# is the daemon's own "serving on" line — printed only after both
# listeners are bound — which also carries the kernel-assigned TCP port.
set(socket_up FALSE)
foreach(i RANGE 150)
  if(EXISTS "${WORK_DIR}/serve.log")
    file(READ "${WORK_DIR}/serve.log" serve_log)
    if(serve_log MATCHES "serving on")
      set(socket_up TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND sh -c "kill -0 ${serve_pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    file(READ "${WORK_DIR}/serve.log" serve_log)
    message(FATAL_ERROR "retina_serve exited before binding:\n${serve_log}")
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
endforeach()
if(NOT socket_up)
  file(READ "${WORK_DIR}/serve.log" serve_log)
  message(FATAL_ERROR "daemon never reported serving on ${SOCKET}:\n${serve_log}")
endif()
if(NOT EXISTS "${SOCKET}")
  message(FATAL_ERROR "daemon is serving but the socket file is missing:\n${serve_log}")
endif()

# The stale file must have been reclaimed by the connect-probe path, not
# silently bound over or fatally tripped on.
if(NOT serve_log MATCHES "removing stale socket file")
  message(FATAL_ERROR "daemon did not log the stale-socket recovery:\n${serve_log}")
endif()

# Kernel-assigned TCP port, parsed from the same "serving on" line.
if(NOT serve_log MATCHES "tcp port ([0-9]+)")
  message(FATAL_ERROR "daemon did not report its TCP port:\n${serve_log}")
endif()
set(TCP_PORT "${CMAKE_MATCH_1}")
if(TCP_PORT EQUAL 0)
  message(FATAL_ERROR "daemon reported TCP port 0:\n${serve_log}")
endif()

# ---- Drive it: cross-process byte-identity first (--verify-*), then the
# open-loop sweep — 3 QPS points, 4 concurrent connections.
execute_process(
  COMMAND "${LOAD_DRIVER}" --socket "${SOCKET}" --smoke
          --qps 30,60,120 --requests 48 --connections 4 --seed 7
          --verify-data "${WORK_DIR}/world" --verify-model "${WORK_DIR}/model"
          --out "${WORK_DIR}/BENCH_serve.json"
          "--metrics-out=${WORK_DIR}/driver_metrics.json"
          "--trace-out=${WORK_DIR}/driver_trace.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE driver_out ERROR_VARIABLE driver_err)
if(NOT rc EQUAL 0)
  file(READ "${WORK_DIR}/serve.log" serve_log)
  message(FATAL_ERROR "load_driver failed (${rc}):\n${driver_out}\n"
          "${driver_err}\nserver log:\n${serve_log}")
endif()
if(NOT driver_out MATCHES "byte-identical to the in-process engine")
  message(FATAL_ERROR "load_driver did not run the verify pass:\n${driver_out}")
endif()

# ---- Same daemon, second transport: the TCP loopback listener must pass
# the identical cross-process byte-identity bar and a small sweep, into
# its own bench file (CI uploads both variants as distinct artifacts).
execute_process(
  COMMAND "${LOAD_DRIVER}" --connect "tcp:127.0.0.1:${TCP_PORT}" --smoke
          --qps 30,60,120 --requests 48 --connections 4 --seed 11
          --verify-data "${WORK_DIR}/world" --verify-model "${WORK_DIR}/model"
          --out "${WORK_DIR}/BENCH_serve_tcp.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE tcp_out ERROR_VARIABLE tcp_err)
if(NOT rc EQUAL 0)
  file(READ "${WORK_DIR}/serve.log" serve_log)
  message(FATAL_ERROR "load_driver over TCP failed (${rc}):\n${tcp_out}\n"
          "${tcp_err}\nserver log:\n${serve_log}")
endif()
if(NOT tcp_out MATCHES "byte-identical to the in-process engine")
  message(FATAL_ERROR "TCP leg did not run the verify pass:\n${tcp_out}")
endif()

# ---- Live monitoring: a third driver runs in the background (no
# --verify, so it starts sending immediately; no --smoke, so the request
# budget is not clamped) while retina_top --once takes two kMetrics
# snapshots one second apart. The derived QPS must be nonzero — this is
# the whole point of the monitor, and it rests on the server-owned
# atomics, so it holds with obs compiled out too.
execute_process(
  COMMAND sh -c "( '${LOAD_DRIVER}' --socket '${SOCKET}' \
      --qps 40 --requests 200 --connections 2 --seed 13 \
      --out '${WORK_DIR}/BENCH_top_load.json' \
      > '${WORK_DIR}/top_driver.log' 2>&1; \
      echo $? > '${WORK_DIR}/top_rc' ) > /dev/null 2>&1 & echo $!"
  RESULT_VARIABLE rc OUTPUT_VARIABLE top_driver_pid ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch the background driver (${rc}): ${err}")
endif()
execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 1)
execute_process(
  COMMAND "${RETINA_TOP}" --socket "${SOCKET}" --once
  RESULT_VARIABLE rc OUTPUT_VARIABLE top_out ERROR_VARIABLE top_err)
if(NOT rc EQUAL 0)
  file(READ "${WORK_DIR}/serve.log" serve_log)
  message(FATAL_ERROR "retina_top --once failed (${rc}):\n${top_out}\n"
          "${top_err}\nserver log:\n${serve_log}")
endif()
file(WRITE "${WORK_DIR}/top_once.txt" "${top_out}")
if(NOT top_out MATCHES "qps ([0-9]+\\.[0-9]+)")
  message(FATAL_ERROR "retina_top --once printed no qps line:\n${top_out}")
endif()
set(top_qps "${CMAKE_MATCH_1}")
if(top_qps STREQUAL "0.000")
  message(FATAL_ERROR "retina_top saw no traffic under background load:\n${top_out}")
endif()
if(NOT OBS_COMPILED_OUT)
  # The 32-request metrics cadence has ticked by now, so the windowed
  # handle p99 must be live (nonzero leading digit).
  if(NOT top_out MATCHES "handle_ns_window_p99 [1-9]")
    message(FATAL_ERROR "retina_top --once has no live windowed p99:\n${top_out}")
  endif()
endif()
message(STATUS "retina_top ok: qps ${top_qps}")

# Let the background driver finish before draining the daemon; its rc file
# is the completion signal.
set(top_done FALSE)
foreach(i RANGE 150)
  if(EXISTS "${WORK_DIR}/top_rc")
    set(top_done TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
endforeach()
if(NOT top_done)
  file(READ "${WORK_DIR}/top_driver.log" top_log)
  message(FATAL_ERROR "background driver never finished:\n${top_log}")
endif()
file(READ "${WORK_DIR}/top_rc" top_rc)
string(STRIP "${top_rc}" top_rc)
if(NOT top_rc EQUAL 0)
  file(READ "${WORK_DIR}/top_driver.log" top_log)
  message(FATAL_ERROR "background driver failed (${top_rc}):\n${top_log}")
endif()

# ---- Graceful drain: SIGTERM, then the daemon must exit on its own and
# leave its exports behind.
execute_process(COMMAND sh -c "kill -TERM ${serve_pid}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "kill -TERM ${serve_pid} failed")
endif()
set(daemon_gone FALSE)
foreach(i RANGE 150)
  execute_process(COMMAND sh -c "kill -0 ${serve_pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(daemon_gone TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
endforeach()
if(NOT daemon_gone)
  execute_process(COMMAND sh -c "kill -KILL ${serve_pid}")
  file(READ "${WORK_DIR}/serve.log" serve_log)
  message(FATAL_ERROR "daemon did not drain within 30s of SIGTERM:\n${serve_log}")
endif()

file(READ "${WORK_DIR}/serve.log" serve_log)
if(NOT serve_log MATCHES "serve: drained")
  message(FATAL_ERROR "daemon exited without logging a drain:\n${serve_log}")
endif()
if(NOT EXISTS "${WORK_DIR}/serve_metrics.json")
  message(FATAL_ERROR "daemon did not write serve_metrics.json:\n${serve_log}")
endif()
if(NOT EXISTS "${WORK_DIR}/serve_trace.json")
  message(FATAL_ERROR "daemon did not write serve_trace.json:\n${serve_log}")
endif()
if(NOT EXISTS "${WORK_DIR}/serve.prom")
  message(FATAL_ERROR "daemon did not write serve.prom:\n${serve_log}")
endif()
if(EXISTS "${SOCKET}")
  message(FATAL_ERROR "daemon left its socket file behind: ${SOCKET}")
endif()

# ---- BENCH_serve.json shape: >= 3 points; nothing dropped anywhere (a
# request is answered or shed, never lost); the lowest-QPS point runs
# entirely unshed. These rest on the protocol's kStats counters and the
# driver's own accounting, so they hold with obs compiled out too.
file(READ "${WORK_DIR}/BENCH_serve.json" bench_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON n_points ERROR_VARIABLE json_err LENGTH "${bench_json}" points)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "BENCH_serve.json unparseable: ${json_err}\n${bench_json}")
  endif()
  if(n_points LESS 3)
    message(FATAL_ERROR "BENCH_serve.json has ${n_points} points, want >= 3")
  endif()
  math(EXPR last_point "${n_points} - 1")
  foreach(i RANGE 0 ${last_point})
    string(JSON dropped GET "${bench_json}" points ${i} dropped)
    string(JSON n_ok GET "${bench_json}" points ${i} ok)
    if(NOT dropped EQUAL 0)
      message(FATAL_ERROR "point ${i} dropped ${dropped} requests:\n${bench_json}")
    endif()
    if(n_ok EQUAL 0)
      message(FATAL_ERROR "point ${i} answered nothing:\n${bench_json}")
    endif()
  endforeach()
  string(JSON first_shed GET "${bench_json}" points 0 shed)
  string(JSON first_server_shed GET "${bench_json}" points 0 server_shed_delta)
  if(NOT first_shed EQUAL 0 OR NOT first_server_shed EQUAL 0)
    message(FATAL_ERROR "lowest-QPS point shed requests below capacity:\n${bench_json}")
  endif()

  # Coalescing observability contract: every point carries the coalesce
  # block (batches / batched_requests / avg_batch) and the top level
  # records the transport and the daemon's coalesce_max_batch. Values are
  # load-dependent; their presence and types are not.
  string(JSON transport ERROR_VARIABLE json_err GET "${bench_json}" transport)
  if(NOT json_err STREQUAL "NOTFOUND" OR NOT transport STREQUAL "unix")
    message(FATAL_ERROR "BENCH_serve.json transport is '${transport}', want unix")
  endif()
  string(JSON cmb ERROR_VARIABLE json_err GET "${bench_json}" coalesce_max_batch)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "BENCH_serve.json lacks coalesce_max_batch: ${json_err}")
  endif()
  foreach(i RANGE 0 ${last_point})
    string(JSON cb ERROR_VARIABLE json_err
           GET "${bench_json}" points ${i} coalesce batches)
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "point ${i} lacks coalesce.batches: ${json_err}")
    endif()
    string(JSON cbr ERROR_VARIABLE json_err
           GET "${bench_json}" points ${i} coalesce batched_requests)
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "point ${i} lacks coalesce.batched_requests: ${json_err}")
    endif()
  endforeach()
  message(STATUS "bench json ok: ${n_points} points, zero drops")

  # TCP variant: parseable, correctly labeled, nothing dropped there either.
  file(READ "${WORK_DIR}/BENCH_serve_tcp.json" tcp_json)
  string(JSON tcp_transport ERROR_VARIABLE json_err GET "${tcp_json}" transport)
  if(NOT json_err STREQUAL "NOTFOUND" OR NOT tcp_transport STREQUAL "tcp")
    message(FATAL_ERROR "BENCH_serve_tcp.json transport is '${tcp_transport}', want tcp")
  endif()
  string(JSON tcp_points LENGTH "${tcp_json}" points)
  math(EXPR tcp_last "${tcp_points} - 1")
  foreach(i RANGE 0 ${tcp_last})
    string(JSON dropped GET "${tcp_json}" points ${i} dropped)
    if(NOT dropped EQUAL 0)
      message(FATAL_ERROR "TCP point ${i} dropped ${dropped} requests:\n${tcp_json}")
    endif()
  endforeach()
  message(STATUS "tcp bench json ok: ${tcp_points} points, zero drops")
endif()

# ---- Daemon metrics: with obs compiled in, the serve counters must have
# counted the run and requests must equal responses (zero in-flight drops
# through the drain, observed via the exported registry this time).
if(NOT OBS_COMPILED_OUT AND CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  file(READ "${WORK_DIR}/serve_metrics.json" serve_metrics_json)
  string(JSON serve_requests ERROR_VARIABLE json_err
         GET "${serve_metrics_json}" counters serve.requests)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "serve metrics JSON unparseable: ${json_err}")
  endif()
  string(JSON serve_responses GET "${serve_metrics_json}" counters
         serve.responses)
  if(serve_requests STREQUAL "" OR serve_requests EQUAL 0)
    message(FATAL_ERROR "serve metrics counted no requests:\n${serve_metrics_json}")
  endif()
  if(NOT serve_requests EQUAL serve_responses)
    message(FATAL_ERROR "drain dropped in-flight work: requests="
            "${serve_requests} responses=${serve_responses}")
  endif()
  message(STATUS "serve metrics ok: ${serve_requests} requests, "
          "${serve_responses} responses")
endif()

# ---- Offline telemetry tooling against the real artifacts: the
# Prometheus exposition must pass the format validator (families exist
# even with obs compiled out — registration is unconditional, only the
# values flatline), and report.py must merge the driver's trace with the
# daemon's into a cross-process section. Skipped quietly if no python3 is
# on PATH (the report_tool_* ctest entries cover the same ground).
find_program(PYTHON3_FOR_E2E NAMES python3 python)
if(PYTHON3_FOR_E2E)
  get_filename_component(REPO_TOOLS "${CMAKE_CURRENT_LIST_DIR}/../tools"
                         ABSOLUTE)
  execute_process(
    COMMAND "${PYTHON3_FOR_E2E}" "${REPO_TOOLS}/check_prom.py"
            "${WORK_DIR}/serve.prom"
            --require-family retina_serve_handle_ns
            --require-family retina_serve_queue_wait_ns
    RESULT_VARIABLE rc OUTPUT_VARIABLE prom_out ERROR_VARIABLE prom_err)
  if(NOT rc EQUAL 0)
    file(READ "${WORK_DIR}/serve.prom" prom_text)
    message(FATAL_ERROR "check_prom failed (${rc}):\n${prom_out}\n${prom_err}\n"
            "exposition:\n${prom_text}")
  endif()
  message(STATUS "${prom_out}")

  execute_process(
    COMMAND "${PYTHON3_FOR_E2E}" "${REPO_TOOLS}/report.py"
            --serve-bench "${WORK_DIR}/BENCH_serve.json"
            --serve-metrics "${WORK_DIR}/serve_metrics.json"
            --trace "${WORK_DIR}/serve_trace.json"
            --client-trace "${WORK_DIR}/driver_trace.json"
            --out "${WORK_DIR}/report_serve.md"
    RESULT_VARIABLE rc OUTPUT_VARIABLE report_out ERROR_VARIABLE report_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "report.py failed (${rc}):\n${report_out}\n${report_err}")
  endif()
  file(READ "${WORK_DIR}/report_serve.md" report_md)
  if(NOT report_md MATCHES "Cross-process traces")
    message(FATAL_ERROR "merged report lacks the cross-process section:\n${report_md}")
  endif()
  if(NOT OBS_COMPILED_OUT)
    # Both processes traced the same requests: at least one trace id must
    # pair a driver.send span with a serve.handle span.
    if(NOT report_md MATCHES "([0-9]+) trace ids appear in both files")
      message(FATAL_ERROR "merged report did not pair traces:\n${report_md}")
    endif()
    if(CMAKE_MATCH_1 EQUAL 0)
      message(FATAL_ERROR "no trace ids paired across processes:\n${report_md}")
    endif()
    message(STATUS "cross-process report ok: ${CMAKE_MATCH_1} paired trace ids")
  endif()
endif()

# Preserve the serving artifacts for report tests and CI upload, then drop
# the bulky world/model scratch.
file(REMOVE_RECURSE "${WORK_DIR}_outputs")
file(MAKE_DIRECTORY "${WORK_DIR}_outputs")
file(COPY "${WORK_DIR}/BENCH_serve.json" "${WORK_DIR}/BENCH_serve_tcp.json"
     "${WORK_DIR}/serve_metrics.json" "${WORK_DIR}/serve_trace.json"
     "${WORK_DIR}/driver_metrics.json" "${WORK_DIR}/driver_trace.json"
     "${WORK_DIR}/serve.prom" "${WORK_DIR}/top_once.txt"
     DESTINATION "${WORK_DIR}_outputs")
if(EXISTS "${WORK_DIR}/report_serve.md")
  file(COPY "${WORK_DIR}/report_serve.md" DESTINATION "${WORK_DIR}_outputs")
endif()
file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "serve e2e smoke passed")
