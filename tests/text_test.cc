// Unit tests for src/text: tokenizer, vocabulary, tf-idf, hate lexicon and
// Doc2Vec.

#include <gtest/gtest.h>

#include <algorithm>

#include "text/doc2vec.h"
#include "text/hate_lexicon.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace retina::text {
namespace {

// ------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenize("Hello, WORLD!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, KeepsHashtagsAndMentions) {
  const auto toks = Tokenize("#JamiaViolence protest by @user_1 now");
  EXPECT_EQ(toks[0], "#jamiaviolence");
  EXPECT_EQ(toks[2], "by");
  EXPECT_EQ(toks[3], "@user_1");
}

TEST(TokenizerTest, DropsUrls) {
  const auto toks = Tokenize("read https://x.co/abc and http://y.z now");
  EXPECT_EQ(toks, (std::vector<std::string>{"read", "and", "now"}));
}

TEST(TokenizerTest, EmptyAndSigilOnlyTokensDropped) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("# @ !!").empty());
}

TEST(TokenizerTest, Bigrams) {
  EXPECT_EQ(Bigrams({"a", "b", "c"}),
            (std::vector<std::string>{"a_b", "b_c"}));
  EXPECT_TRUE(Bigrams({"solo"}).empty());
}

TEST(TokenizerTest, UnigramsAndBigramsConcatenated) {
  const auto toks = UnigramsAndBigrams("one two");
  EXPECT_EQ(toks, (std::vector<std::string>{"one", "two", "one_two"}));
}

// ------------------------------------------------------------ Vocabulary --

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  EXPECT_EQ(v.AddToken("a"), 0);
  EXPECT_EQ(v.AddToken("b"), 1);
  EXPECT_EQ(v.AddToken("a"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.GetId("b"), 1);
  EXPECT_EQ(v.GetId("zz"), Vocabulary::kUnknown);
  EXPECT_TRUE(v.Contains("a"));
  EXPECT_EQ(v.GetToken(1), "b");
  EXPECT_EQ(v.GetToken(99), "");
}

// ----------------------------------------------------------------- TfIdf --

std::vector<std::vector<std::string>> SmallCorpus() {
  return {
      {"apple", "banana", "apple"},
      {"banana", "cherry"},
      {"apple", "cherry", "durian"},
      {"banana", "banana", "cherry"},
  };
}

TEST(TfIdfTest, FitEmptyCorpusFails) {
  TfIdfVectorizer v;
  EXPECT_FALSE(v.Fit({}).ok());
}

TEST(TfIdfTest, MinDfFiltersRareTokens) {
  TfIdfOptions opts;
  opts.min_df = 2;
  opts.max_features = 0;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  // "durian" appears in one document only.
  const auto& toks = v.feature_tokens();
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "durian"), 0);
  EXPECT_EQ(v.Dim(), 3u);  // apple, banana, cherry
}

TEST(TfIdfTest, NoTokenSurvivesMinDfFails) {
  TfIdfOptions opts;
  opts.min_df = 100;
  TfIdfVectorizer v(opts);
  EXPECT_FALSE(v.Fit(SmallCorpus()).ok());
}

TEST(TfIdfTest, TransformIsL2Normalized) {
  TfIdfVectorizer v;
  TfIdfOptions opts;
  opts.min_df = 1;
  v = TfIdfVectorizer(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const Vec x = v.Transform({"apple", "banana"});
  EXPECT_NEAR(Norm2(x), 1.0, 1e-9);
}

TEST(TfIdfTest, UnseenTokensYieldZeroVector) {
  TfIdfOptions opts;
  opts.min_df = 1;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const Vec x = v.Transform({"zzz", "yyy"});
  EXPECT_DOUBLE_EQ(Norm2(x), 0.0);
}

TEST(TfIdfTest, RarerTokenHasHigherIdf) {
  TfIdfOptions opts;
  opts.min_df = 1;
  opts.max_features = 0;
  opts.l2_normalize = false;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  // banana df=3, durian df=1.
  const auto& toks = v.feature_tokens();
  const size_t banana = static_cast<size_t>(
      std::find(toks.begin(), toks.end(), "banana") - toks.begin());
  const size_t durian = static_cast<size_t>(
      std::find(toks.begin(), toks.end(), "durian") - toks.begin());
  EXPECT_GT(v.IdfAt(durian), v.IdfAt(banana));
}

TEST(TfIdfTest, MaxFeaturesByIdfKeepsRarest) {
  TfIdfOptions opts;
  opts.min_df = 1;
  opts.max_features = 1;
  opts.rank_by_idf = true;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  EXPECT_EQ(v.Dim(), 1u);
  EXPECT_EQ(v.feature_tokens()[0], "durian");
}

TEST(TfIdfTest, MaxFeaturesByDfKeepsMostFrequent) {
  TfIdfOptions opts;
  opts.min_df = 1;
  opts.max_features = 1;
  opts.rank_by_idf = false;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  EXPECT_EQ(v.feature_tokens()[0], "banana");
}

TEST(TfIdfTest, TransformAverageEqualsMeanOfTransforms) {
  TfIdfOptions opts;
  opts.min_df = 1;
  TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const auto docs = SmallCorpus();
  const Vec avg = v.TransformAverage({docs[0], docs[1]});
  const Vec a = v.Transform(docs[0]);
  const Vec b = v.Transform(docs[1]);
  for (size_t i = 0; i < avg.size(); ++i) {
    EXPECT_NEAR(avg[i], 0.5 * (a[i] + b[i]), 1e-12);
  }
}

TEST(TfIdfTest, TransformBatchRowsMatchTransform) {
  TfIdfOptions opts;
  opts.min_df = 1;
  TfIdfVectorizer v(opts);
  const auto docs = SmallCorpus();
  ASSERT_TRUE(v.Fit(docs).ok());
  const Matrix batch = v.TransformBatch(docs);
  ASSERT_EQ(batch.rows(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(batch.RowVec(i), v.Transform(docs[i]));
  }
}

// ----------------------------------------------------------- HateLexicon --

TEST(HateLexiconTest, SyntheticLexiconHas209Terms) {
  const HateLexicon lex = MakeSyntheticLexicon();
  EXPECT_EQ(lex.size(), 209u);
  EXPECT_EQ(lex.slur_terms().size(), 160u);
  EXPECT_EQ(lex.colloquial_terms().size(), 49u);
}

TEST(HateLexiconTest, ContainsAndIsSlur) {
  const HateLexicon lex = MakeSyntheticLexicon(10, 6);
  EXPECT_TRUE(lex.Contains("slur000"));
  EXPECT_TRUE(lex.IsSlur("slur005"));
  EXPECT_TRUE(lex.Contains("colloq003"));
  EXPECT_FALSE(lex.IsSlur("colloq003"));
  EXPECT_FALSE(lex.Contains("benign"));
}

TEST(HateLexiconTest, FrequencyVectorCounts) {
  const HateLexicon lex = MakeSyntheticLexicon(4, 2);
  const Vec hl = lex.FrequencyVector(
      {{"slur000", "x", "slur000"}, {"colloq001", "slur001"}});
  ASSERT_EQ(hl.size(), 4u);
  EXPECT_DOUBLE_EQ(hl[0], 2.0);  // slur000
  EXPECT_DOUBLE_EQ(hl[1], 1.0);  // slur001
  EXPECT_DOUBLE_EQ(hl[2], 0.0);  // colloq000
  EXPECT_DOUBLE_EQ(hl[3], 1.0);  // colloq001
}

TEST(HateLexiconTest, CountHits) {
  const HateLexicon lex = MakeSyntheticLexicon(4, 2);
  EXPECT_EQ(lex.CountHits({"slur000", "benign", "colloq000"}), 2u);
  EXPECT_EQ(lex.CountHits({}), 0u);
}

// --------------------------------------------------------------- Doc2Vec --

// Two-topic corpus: docs 0..9 use "cat..' words, 10..19 use "dog.." words.
std::vector<std::vector<std::string>> TwoTopicCorpus() {
  std::vector<std::vector<std::string>> docs;
  const std::vector<std::string> cat = {"cat", "meow", "purr", "whisker"};
  const std::vector<std::string> dog = {"dog", "bark", "fetch", "tail"};
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> d;
    for (int j = 0; j < 8; ++j) d.push_back(cat[(i + j) % cat.size()]);
    docs.push_back(d);
  }
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> d;
    for (int j = 0; j < 8; ++j) d.push_back(dog[(i + j) % dog.size()]);
    docs.push_back(d);
  }
  return docs;
}

TEST(Doc2VecTest, TrainEmptyFails) {
  Doc2Vec model;
  EXPECT_FALSE(model.Train({}).ok());
}

TEST(Doc2VecTest, MinCountCanEmptyVocabulary) {
  Doc2VecOptions opts;
  opts.min_count = 100;
  Doc2Vec model(opts);
  EXPECT_FALSE(model.Train(TwoTopicCorpus()).ok());
}

TEST(Doc2VecTest, LearnsTopicalSeparation) {
  Doc2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 40;
  opts.min_count = 1;
  opts.seed = 5;
  Doc2Vec model(opts);
  ASSERT_TRUE(model.Train(TwoTopicCorpus()).ok());
  // Same-topic documents should be more similar than cross-topic ones.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = i + 1; j < 20; ++j) {
      const double sim =
          CosineSimilarity(model.DocVector(i), model.DocVector(j));
      if ((i < 10) == (j < 10)) {
        intra += sim;
        ++n_intra;
      } else {
        inter += sim;
        ++n_inter;
      }
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.1);
}

TEST(Doc2VecTest, InferVectorLandsNearTopic) {
  Doc2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 40;
  opts.min_count = 1;
  opts.seed = 5;
  Doc2Vec model(opts);
  ASSERT_TRUE(model.Train(TwoTopicCorpus()).ok());
  const Vec v = model.InferVector({"cat", "meow", "purr", "cat"});
  double cat_sim = 0.0, dog_sim = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    cat_sim += CosineSimilarity(v, model.DocVector(i));
    dog_sim += CosineSimilarity(v, model.DocVector(10 + i));
  }
  EXPECT_GT(cat_sim, dog_sim);
}

TEST(Doc2VecTest, TokenSimilarityOovIsZero) {
  Doc2VecOptions opts;
  opts.dim = 8;
  opts.epochs = 2;
  opts.min_count = 1;
  Doc2Vec model(opts);
  ASSERT_TRUE(model.Train(TwoTopicCorpus()).ok());
  const Vec v = model.InferVector({"cat"});
  EXPECT_DOUBLE_EQ(model.TokenSimilarity(v, "unseen-token"), 0.0);
  EXPECT_NE(model.TokenSimilarity(v, "cat"), 0.0);
}

TEST(Doc2VecTest, DeterministicAcrossRuns) {
  Doc2VecOptions opts;
  opts.dim = 8;
  opts.epochs = 3;
  opts.min_count = 1;
  opts.seed = 9;
  Doc2Vec m1(opts), m2(opts);
  ASSERT_TRUE(m1.Train(TwoTopicCorpus()).ok());
  ASSERT_TRUE(m2.Train(TwoTopicCorpus()).ok());
  for (size_t i = 0; i < m1.NumDocs(); ++i) {
    EXPECT_EQ(m1.DocVector(i), m2.DocVector(i));
  }
}

}  // namespace
}  // namespace retina::text
