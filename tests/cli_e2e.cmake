# End-to-end smoke for the train-once / serve-many CLI workflow:
#
#   retina generate      --out WORK/world
#   retina train-retweet --data WORK/world --save-model WORK/model
#   retina eval          --data WORK/world --model WORK/model
#
# and asserts the evaluated metrics line of the loaded model matches the
# training run's metrics character for character — the bit-exactness
# contract of the checkpoint layer, observed end to end through the CLI.
#
# Run as:
#   cmake -DRETINA_CLI=<retina binary> -DWORK_DIR=<scratch dir> -P cli_e2e.cmake

if(NOT DEFINED RETINA_CLI)
  message(FATAL_ERROR "pass -DRETINA_CLI=<path to the retina binary>")
endif()
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RETINA_CLI}" generate --out "${WORK_DIR}/world"
          --scale 0.05 --users 700 --seed 43
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${RETINA_CLI}" train-retweet --data "${WORK_DIR}/world"
          --seed 43 --save-model "${WORK_DIR}/model"
          "--metrics-out=${WORK_DIR}/train_metrics.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE train_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train-retweet failed (${rc}):\n${train_out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/model/model.ckpt")
  message(FATAL_ERROR "train-retweet did not write model/model.ckpt:\n${train_out}")
endif()

# ---- Observability contract: --metrics-out emits parseable JSON whose
# training counters actually counted the run (nonzero optimizer steps,
# nonzero serving requests, a per-epoch loss series).
if(NOT EXISTS "${WORK_DIR}/train_metrics.json")
  message(FATAL_ERROR "train-retweet did not write train_metrics.json:\n${train_out}")
endif()
file(READ "${WORK_DIR}/train_metrics.json" metrics_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # string(JSON) is a real parser: any malformed export dies here.
  string(JSON train_steps ERROR_VARIABLE json_err
         GET "${metrics_json}" counters train.steps)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "metrics JSON unparseable: ${json_err}\n${metrics_json}")
  endif()
  string(JSON serving_requests GET "${metrics_json}" counters
         serving.requests)
  string(JSON n_loss_points LENGTH "${metrics_json}" series
         train.epoch_loss)
else()
  string(REGEX MATCH "\"train\\.steps\": ([0-9]+)" _ "${metrics_json}")
  set(train_steps "${CMAKE_MATCH_1}")
  string(REGEX MATCH "\"serving\\.requests\": ([0-9]+)" _ "${metrics_json}")
  set(serving_requests "${CMAKE_MATCH_1}")
  set(n_loss_points 1)
endif()
if(train_steps STREQUAL "" OR train_steps EQUAL 0)
  message(FATAL_ERROR "metrics JSON has no nonzero train.steps counter:\n${metrics_json}")
endif()
if(serving_requests STREQUAL "" OR serving_requests EQUAL 0)
  message(FATAL_ERROR "metrics JSON has no nonzero serving.requests counter:\n${metrics_json}")
endif()
if(n_loss_points EQUAL 0)
  message(FATAL_ERROR "metrics JSON has an empty train.epoch_loss series:\n${metrics_json}")
endif()
message(STATUS "metrics json ok: train.steps=${train_steps} "
        "serving.requests=${serving_requests}")

execute_process(
  COMMAND "${RETINA_CLI}" eval --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model"
          "--metrics-out=${WORK_DIR}/eval_metrics.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE eval_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "eval failed (${rc}):\n${eval_out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/eval_metrics.json")
  message(FATAL_ERROR "eval did not write eval_metrics.json:\n${eval_out}")
endif()
file(READ "${WORK_DIR}/eval_metrics.json" eval_metrics_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON eval_requests ERROR_VARIABLE json_err
         GET "${eval_metrics_json}" counters serving.requests)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "eval metrics JSON unparseable: ${json_err}")
  endif()
  if(eval_requests STREQUAL "" OR eval_requests EQUAL 0)
    message(FATAL_ERROR "eval metrics JSON has no nonzero serving.requests")
  endif()
endif()

# "macro-F1 ... HITS@20 x.yyy" appears in both outputs; the loaded model
# must reproduce it exactly.
set(metrics_re "macro-F1 [^\n]*HITS@20 +[0-9.]+")
string(REGEX MATCH "${metrics_re}" train_metrics "${train_out}")
string(REGEX MATCH "${metrics_re}" eval_metrics "${eval_out}")
if(train_metrics STREQUAL "")
  message(FATAL_ERROR "no metrics line in train output:\n${train_out}")
endif()
if(NOT train_metrics STREQUAL eval_metrics)
  message(FATAL_ERROR "loaded model diverged from training run:\n"
          "  trained: ${train_metrics}\n  loaded:  ${eval_metrics}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli e2e smoke passed: ${eval_metrics}")
