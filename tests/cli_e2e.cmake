# End-to-end smoke for the train-once / serve-many CLI workflow:
#
#   retina generate      --out WORK/world
#   retina train-retweet --data WORK/world --save-model WORK/model
#   retina eval          --data WORK/world --model WORK/model
#   retina eval          ... --store-dir WORK/store   (tiered user store)
#
# and asserts the evaluated metrics line of the loaded model matches the
# training run's metrics character for character — the bit-exactness
# contract of the checkpoint layer, observed end to end through the CLI.
# The store-backed eval must reproduce the same line again: the disk tier
# returns the exact f64 bit patterns the in-process path computes.
#
# The training run also records a timeline (--trace-out) with a small
# RETINA_TRACE_BUFFER so the bounded-buffer path is exercised; the script
# asserts the Chrome trace parses and holds at least one complete event
# with nonzero duration. Metrics + trace are preserved in ${WORK_DIR}_outputs
# for the report_tool_smoke test and CI artifact upload.
#
# Run as:
#   cmake -DRETINA_CLI=<retina binary> -DWORK_DIR=<scratch dir> \
#         [-DOBS_COMPILED_OUT=ON] -P cli_e2e.cmake
#
# OBS_COMPILED_OUT=ON relaxes the trace/metrics content assertions for
# -DRETINA_OBS_DISABLED builds, where instrumentation compiles to nothing
# and the exports are structurally valid but empty.

if(NOT DEFINED RETINA_CLI)
  message(FATAL_ERROR "pass -DRETINA_CLI=<path to the retina binary>")
endif()
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()
if(NOT DEFINED OBS_COMPILED_OUT)
  set(OBS_COMPILED_OUT OFF)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RETINA_CLI}" generate --out "${WORK_DIR}/world"
          --scale 0.05 --users 700 --seed 43
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}):\n${out}\n${err}")
endif()

# A deliberately small RETINA_TRACE_BUFFER keeps the trace file cheap to
# parse below and exercises the drop-newest overflow path on a real run.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env RETINA_TRACE_BUFFER=4096
          "${RETINA_CLI}" train-retweet --data "${WORK_DIR}/world"
          --seed 43 --save-model "${WORK_DIR}/model"
          "--metrics-out=${WORK_DIR}/train_metrics.json"
          "--trace-out=${WORK_DIR}/trace.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE train_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train-retweet failed (${rc}):\n${train_out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/model/model.ckpt")
  message(FATAL_ERROR "train-retweet did not write model/model.ckpt:\n${train_out}")
endif()

# ---- Observability contract: --metrics-out emits parseable JSON whose
# training counters actually counted the run (nonzero optimizer steps,
# nonzero serving requests, a per-epoch loss series).
if(NOT EXISTS "${WORK_DIR}/train_metrics.json")
  message(FATAL_ERROR "train-retweet did not write train_metrics.json:\n${train_out}")
endif()
file(READ "${WORK_DIR}/train_metrics.json" metrics_json)
if(OBS_COMPILED_OUT)
  # Compiled-out instrumentation still exports structurally valid JSON;
  # counters are zero, so the content assertions below do not apply.
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON _ ERROR_VARIABLE json_err LENGTH "${metrics_json}")
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "metrics JSON unparseable: ${json_err}")
    endif()
  endif()
  message(STATUS "obs compiled out: metrics/trace content checks skipped")
else()
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    # string(JSON) is a real parser: any malformed export dies here.
    string(JSON train_steps ERROR_VARIABLE json_err
           GET "${metrics_json}" counters train.steps)
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "metrics JSON unparseable: ${json_err}\n${metrics_json}")
    endif()
    string(JSON serving_requests GET "${metrics_json}" counters
           serving.requests)
    string(JSON n_loss_points LENGTH "${metrics_json}" series
           train.epoch_loss)
    string(JSON peak_rss GET "${metrics_json}" gauges process.peak_rss_bytes)
  else()
    string(REGEX MATCH "\"train\\.steps\": ([0-9]+)" _ "${metrics_json}")
    set(train_steps "${CMAKE_MATCH_1}")
    string(REGEX MATCH "\"serving\\.requests\": ([0-9]+)" _ "${metrics_json}")
    set(serving_requests "${CMAKE_MATCH_1}")
    set(n_loss_points 1)
    set(peak_rss 1)
  endif()
  if(train_steps STREQUAL "" OR train_steps EQUAL 0)
    message(FATAL_ERROR "metrics JSON has no nonzero train.steps counter:\n${metrics_json}")
  endif()
  if(serving_requests STREQUAL "" OR serving_requests EQUAL 0)
    message(FATAL_ERROR "metrics JSON has no nonzero serving.requests counter:\n${metrics_json}")
  endif()
  if(n_loss_points EQUAL 0)
    message(FATAL_ERROR "metrics JSON has an empty train.epoch_loss series:\n${metrics_json}")
  endif()
  if(CMAKE_HOST_SYSTEM_NAME STREQUAL "Linux" AND
     (peak_rss STREQUAL "" OR peak_rss EQUAL 0))
    message(FATAL_ERROR "metrics JSON has no process.peak_rss_bytes gauge:\n${metrics_json}")
  endif()
  message(STATUS "metrics json ok: train.steps=${train_steps} "
          "serving.requests=${serving_requests} peak_rss=${peak_rss}")
endif()

# ---- Timeline tracer contract: --trace-out writes Chrome trace JSON with
# at least one complete ("X") event of nonzero duration. Only a bounded
# prefix of events is scanned — string(JSON) re-parses the whole document
# on every call.
if(NOT EXISTS "${WORK_DIR}/trace.json")
  message(FATAL_ERROR "train-retweet did not write trace.json:\n${train_out}")
endif()
if(NOT OBS_COMPILED_OUT AND CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  file(READ "${WORK_DIR}/trace.json" trace_json)
  string(JSON n_trace_events ERROR_VARIABLE json_err
         LENGTH "${trace_json}" traceEvents)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "trace JSON unparseable: ${json_err}")
  endif()
  if(n_trace_events EQUAL 0)
    message(FATAL_ERROR "trace JSON holds no events")
  endif()
  string(JSON trace_capacity GET "${trace_json}" otherData buffer_capacity)
  if(NOT trace_capacity EQUAL 4096)
    message(FATAL_ERROR "RETINA_TRACE_BUFFER=4096 not honored: "
            "buffer_capacity=${trace_capacity}")
  endif()
  set(scan_max 199)
  if(n_trace_events LESS 200)
    math(EXPR scan_max "${n_trace_events} - 1")
  endif()
  set(found_complete FALSE)
  foreach(i RANGE 0 ${scan_max})
    string(JSON ph GET "${trace_json}" traceEvents ${i} ph)
    if(ph STREQUAL "X")
      string(JSON dur GET "${trace_json}" traceEvents ${i} dur)
      if(NOT dur MATCHES "^0(\\.0+)?$")
        set(found_complete TRUE)
        break()
      endif()
    endif()
  endforeach()
  if(NOT found_complete)
    message(FATAL_ERROR "no complete event with nonzero duration in the "
            "first ${scan_max} trace events")
  endif()
  message(STATUS "trace json ok: ${n_trace_events} events, "
          "buffer_capacity=${trace_capacity}")
endif()

execute_process(
  COMMAND "${RETINA_CLI}" eval --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model"
          "--metrics-out=${WORK_DIR}/eval_metrics.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE eval_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "eval failed (${rc}):\n${eval_out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/eval_metrics.json")
  message(FATAL_ERROR "eval did not write eval_metrics.json:\n${eval_out}")
endif()
file(READ "${WORK_DIR}/eval_metrics.json" eval_metrics_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON eval_requests ERROR_VARIABLE json_err
         GET "${eval_metrics_json}" counters serving.requests)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "eval metrics JSON unparseable: ${json_err}")
  endif()
  if(NOT OBS_COMPILED_OUT AND
     (eval_requests STREQUAL "" OR eval_requests EQUAL 0))
    message(FATAL_ERROR "eval metrics JSON has no nonzero serving.requests")
  endif()
endif()

# ---- Tiered-store eval: the same eval, served through the disk-backed
# user feature store (--store-dir builds it on first use). Must reproduce
# the metrics line exactly — end-to-end bit-identity of the tiered read
# path — and, with obs compiled in, its metrics export must show the store
# tier actually serving lookups.
execute_process(
  COMMAND "${RETINA_CLI}" eval --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model"
          --store-dir "${WORK_DIR}/store"
          "--metrics-out=${WORK_DIR}/store_metrics.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE store_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "eval --store-dir failed (${rc}):\n${store_out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/store/blocks.dat" OR
   NOT EXISTS "${WORK_DIR}/store/index.ckpt")
  message(FATAL_ERROR "eval --store-dir did not build the store:\n${store_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/store_metrics.json")
  message(FATAL_ERROR "eval --store-dir did not write store_metrics.json:\n${store_out}")
endif()
if(NOT OBS_COMPILED_OUT AND CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  file(READ "${WORK_DIR}/store_metrics.json" store_metrics_json)
  string(JSON store_hits ERROR_VARIABLE json_err
         GET "${store_metrics_json}" counters store.tier.hits)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "store metrics JSON unparseable: ${json_err}")
  endif()
  if(store_hits STREQUAL "" OR store_hits EQUAL 0)
    message(FATAL_ERROR "store-backed eval recorded no store.tier.hits:\n${store_metrics_json}")
  endif()
  message(STATUS "store metrics json ok: store.tier.hits=${store_hits}")
endif()

# "macro-F1 ... HITS@20 x.yyy" appears in both outputs; the loaded model
# must reproduce it exactly.
set(metrics_re "macro-F1 [^\n]*HITS@20 +[0-9.]+")
string(REGEX MATCH "${metrics_re}" train_metrics "${train_out}")
string(REGEX MATCH "${metrics_re}" eval_metrics "${eval_out}")
string(REGEX MATCH "${metrics_re}" store_eval_metrics "${store_out}")
if(train_metrics STREQUAL "")
  message(FATAL_ERROR "no metrics line in train output:\n${train_out}")
endif()
if(NOT train_metrics STREQUAL eval_metrics)
  message(FATAL_ERROR "loaded model diverged from training run:\n"
          "  trained: ${train_metrics}\n  loaded:  ${eval_metrics}")
endif()
if(NOT train_metrics STREQUAL store_eval_metrics)
  message(FATAL_ERROR "store-backed eval diverged from training run:\n"
          "  trained: ${train_metrics}\n  store:   ${store_eval_metrics}")
endif()

# Preserve the observability outputs for report_tool_smoke (FIXTURES_SETUP
# in tests/CMakeLists.txt) and for CI artifact upload, then drop the bulky
# world/model scratch.
file(REMOVE_RECURSE "${WORK_DIR}_outputs")
file(MAKE_DIRECTORY "${WORK_DIR}_outputs")
file(COPY "${WORK_DIR}/train_metrics.json" "${WORK_DIR}/eval_metrics.json"
     "${WORK_DIR}/store_metrics.json" "${WORK_DIR}/trace.json"
     DESTINATION "${WORK_DIR}_outputs")

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli e2e smoke passed: ${eval_metrics}")
