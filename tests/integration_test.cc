// End-to-end integration: generate a world, run the annotation pipeline,
// build features, train the hate-generation models and RETINA, and verify
// the headline orderings the paper reports.

#include <gtest/gtest.h>

#include <memory>

#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "hatedetect/annotation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace retina {
namespace {

struct Pipeline {
  datagen::SyntheticWorld world;
  hatedetect::AnnotationReport annotation;
  std::unique_ptr<core::FeatureExtractor> extractor;
  core::HateGenTask hategen;
  core::RetweetTask retweet;
};

Pipeline& SharedPipeline() {
  static Pipeline* p = [] {
    datagen::WorldConfig config;
    config.scale = 0.08;
    config.num_users = 1200;
    config.history_length = 14;
    config.news_per_day = 60.0;
    auto* pipe = new Pipeline{
        datagen::SyntheticWorld::Generate(config, 2024), {}, nullptr, {}, {}};

    hatedetect::AnnotationOptions aopts;
    auto report = hatedetect::AnnotateWorld(&pipe->world, aopts);
    EXPECT_TRUE(report.ok());
    pipe->annotation = report.ValueOrDie();

    core::FeatureConfig fc;
    fc.history_size = 12;
    fc.history_tfidf_dim = 100;
    fc.news_tfidf_dim = 100;
    fc.tweet_tfidf_dim = 100;
    fc.news_window = 25;
    fc.doc2vec_dim = 16;
    fc.doc2vec_epochs = 3;
    auto fx = core::FeatureExtractor::Build(pipe->world, fc);
    EXPECT_TRUE(fx.ok());
    pipe->extractor = std::make_unique<core::FeatureExtractor>(
        std::move(fx).ValueOrDie());

    core::HateGenTaskOptions hopts;
    hopts.min_news = 25;
    auto hg = core::BuildHateGenTask(*pipe->extractor, hopts);
    EXPECT_TRUE(hg.ok());
    pipe->hategen = std::move(hg).ValueOrDie();

    core::RetweetTaskOptions ropts;
    ropts.min_news = 25;
    ropts.max_candidates = 24;
    auto rt = core::BuildRetweetTask(*pipe->extractor, ropts);
    EXPECT_TRUE(rt.ok());
    pipe->retweet = std::move(rt).ValueOrDie();
    return pipe;
  }();
  return *p;
}

TEST(IntegrationTest, AnnotationPipelineQuality) {
  auto& p = SharedPipeline();
  EXPECT_GT(p.annotation.finetuned_auc, 0.75);
  EXPECT_GT(p.annotation.krippendorff_alpha, 0.35);
}

// Table IV headline: downsampling lifts macro-F1 substantially over the
// unsampled run for the decision tree.
TEST(IntegrationTest, DownsamplingLiftsHateGenMacroF1) {
  auto& p = SharedPipeline();
  ml::DecisionTreeOptions topts;
  topts.max_depth = 5;
  ml::DecisionTree none_tree(topts), ds_tree(topts);
  auto none = core::RunHateGenPipeline(p.hategen, &none_tree,
                                       core::ProcVariant::kNone, 3);
  auto ds = core::RunHateGenPipeline(p.hategen, &ds_tree,
                                     core::ProcVariant::kDownsample, 3);
  ASSERT_TRUE(none.ok() && ds.ok());
  // On the paper's data DS is clearly better (0.51 -> 0.65). At this tiny
  // test scale the downsampled split holds only ~150 rows, so the
  // thresholded macro-F1 ordering is seed noise; require instead that both
  // pipelines learn real signal (AUC) — the full-scale macro-F1 comparison
  // is bench_table4_hategen's job.
  EXPECT_GT(ds.ValueOrDie().auc, 0.55);
  EXPECT_GT(none.ValueOrDie().auc, 0.55);
}

// Table V headline: removing the history or exogenous groups hurts the
// downsampled decision tree.
TEST(IntegrationTest, HistoryAblationHurts) {
  auto& p = SharedPipeline();
  core::HateGenTaskOptions hopts;
  hopts.min_news = 25;
  auto no_hist = core::BuildHateGenTask(
      *p.extractor, hopts, core::FeatureMask::Without("history"));
  ASSERT_TRUE(no_hist.ok());
  ml::DecisionTreeOptions topts;
  topts.max_depth = 5;
  ml::DecisionTree full_tree(topts), ablated_tree(topts);
  auto full = core::RunHateGenPipeline(p.hategen, &full_tree,
                                       core::ProcVariant::kDownsample, 5);
  auto ablated = core::RunHateGenPipeline(no_hist.ValueOrDie(),
                                          &ablated_tree,
                                          core::ProcVariant::kDownsample, 5);
  ASSERT_TRUE(full.ok() && ablated.ok());
  EXPECT_GE(full.ValueOrDie().macro_f1 + 0.05,
            ablated.ValueOrDie().macro_f1);
}

// Table VI headline: RETINA with exogenous attention is a strong
// retweeter predictor.
TEST(IntegrationTest, RetinaStaticStrongClassifier) {
  auto& p = SharedPipeline();
  core::RetinaOptions opts;
  opts.hidden = 32;
  opts.epochs = 4;
  core::Retina model(p.retweet.user_dim, p.retweet.content_dim,
                     p.retweet.embed_dim, p.retweet.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(p.retweet).ok());
  const Vec scores = model.ScoreCandidates(p.retweet, p.retweet.test);
  const core::BinaryEval eval = core::EvaluateBinary(p.retweet.test, scores);
  EXPECT_GT(eval.auc, 0.7);
  EXPECT_GT(eval.macro_f1, 0.55);

  const auto queries =
      core::MakeRankingQueries(p.retweet, p.retweet.test, scores);
  EXPECT_GT(ml::MeanAveragePrecisionAtK(queries, 20), 0.4);
  EXPECT_GT(ml::HitsAtK(queries, 20), 0.5);
}

}  // namespace
}  // namespace retina
