// Tests for src/nn — including numerical gradient checks for Dense, GRU
// and the exogenous attention block, which are the load-bearing pieces of
// RETINA's training loop.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/param_registry.h"
#include "nn/recurrent.h"
#include "nn/optimizer.h"

namespace retina::nn {
namespace {

constexpr double kEps = 1e-5;
constexpr double kTol = 1e-6;

// Registers `layer` into a fresh registry and Glorot-initializes it — the
// draw order matches what the old Rng-taking constructors performed.
template <typename LayerT>
ParamRegistry InitLayer(LayerT* layer, Rng* rng) {
  ParamRegistry reg;
  layer->RegisterParams(&reg, "layer");
  reg.InitGlorot(rng);
  return reg;
}

// Central-difference derivative of `f` w.r.t. element (r, c) of `param`.
double NumericalGrad(Param* param, size_t r, size_t c,
                     const std::function<double()>& f) {
  const double orig = param->value(r, c);
  param->value(r, c) = orig + kEps;
  const double up = f();
  param->value(r, c) = orig - kEps;
  const double down = f();
  param->value(r, c) = orig;
  return (up - down) / (2.0 * kEps);
}

// ---------------------------------------------------------------- Dense --

TEST(DenseTest, ForwardMatchesManual) {
  Rng rng(1);
  Dense layer(2, 2);
  // Overwrite weights deterministically via the registry.
  ParamRegistry reg = InitLayer(&layer, &rng);
  auto params = reg.params();
  params[0]->value(0, 0) = 1.0;
  params[0]->value(0, 1) = 2.0;
  params[0]->value(1, 0) = -1.0;
  params[0]->value(1, 1) = 0.5;
  params[1]->value(0, 0) = 0.1;
  params[1]->value(0, 1) = -0.2;
  const Vec y = layer.Forward({3.0, 4.0});
  EXPECT_NEAR(y[0], 1.0 * 3 + 2.0 * 4 + 0.1, 1e-12);
  EXPECT_NEAR(y[1], -1.0 * 3 + 0.5 * 4 - 0.2, 1e-12);
}

TEST(DenseTest, GradientCheck) {
  Rng rng(2);
  Dense layer(4, 3);
  ParamRegistry reg = InitLayer(&layer, &rng);
  const Vec x = {0.3, -0.7, 1.2, 0.05};
  const Vec dy = {1.0, -0.5, 0.25};  // upstream gradient

  // Loss = dy . layer(x); its gradient w.r.t. params is what Backward
  // accumulates.
  auto loss = [&]() { return Dot(dy, layer.Forward(x)); };

  reg.ZeroGrads();
  const Vec dx = layer.Backward(x, dy);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), kTol);
      }
    }
  }
  // dx check via perturbing the input.
  for (size_t j = 0; j < x.size(); ++j) {
    Vec xp = x, xm = x;
    xp[j] += kEps;
    xm[j] -= kEps;
    const double num =
        (Dot(dy, layer.Forward(xp)) - Dot(dy, layer.Forward(xm))) /
        (2.0 * kEps);
    EXPECT_NEAR(dx[j], num, kTol);
  }
}

// ----------------------------------------------------------- Activations --

TEST(ActivationTest, ReluAndBackward) {
  EXPECT_EQ(Relu({-1.0, 0.0, 2.0}), (Vec{0.0, 0.0, 2.0}));
  EXPECT_EQ(ReluBackward({-1.0, 0.5, 2.0}, {1.0, 1.0, 1.0}),
            (Vec{0.0, 1.0, 1.0}));
}

TEST(ActivationTest, SigmoidVec) {
  const Vec y = SigmoidVec({0.0, 100.0, -100.0});
  EXPECT_NEAR(y[0], 0.5, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-9);
  EXPECT_NEAR(y[2], 0.0, 1e-9);
}

TEST(LayerNormTest, NormalizesToZeroMeanUnitVar) {
  const Vec y = LayerNorm({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(Mean(y), 0.0, 1e-9);
  EXPECT_NEAR(Variance(y), 1.0, 1e-3);
}

TEST(LayerNormTest, ConstantInputSafe) {
  const Vec y = LayerNorm({5.0, 5.0, 5.0});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(LayerNormTest, GradientCheck) {
  const Vec x = {0.4, -1.2, 0.9, 2.0, -0.3};
  const Vec dy = {0.7, -0.1, 0.3, 1.0, -0.6};
  const Vec dx = LayerNormBackward(x, dy);
  for (size_t j = 0; j < x.size(); ++j) {
    Vec xp = x, xm = x;
    xp[j] += kEps;
    xm[j] -= kEps;
    const double num =
        (Dot(dy, LayerNorm(xp)) - Dot(dy, LayerNorm(xm))) / (2.0 * kEps);
    EXPECT_NEAR(dx[j], num, 1e-5);
  }
}

// ------------------------------------------------------------------ Loss --

TEST(WeightedBceTest, LossValues) {
  WeightedBce loss;
  loss.pos_weight = 2.0;
  EXPECT_NEAR(loss.Loss(0.5, 1), 2.0 * std::log(2.0), 1e-9);
  EXPECT_NEAR(loss.Loss(0.5, 0), std::log(2.0), 1e-9);
  EXPECT_LT(loss.Loss(0.99, 1), loss.Loss(0.5, 1));
}

TEST(WeightedBceTest, GradLogitMatchesNumerical) {
  WeightedBce loss;
  loss.pos_weight = 3.0;
  for (double z : {-2.0, 0.0, 1.5}) {
    for (int t : {0, 1}) {
      const double analytic = loss.GradLogit(Sigmoid(z), t);
      const double num = (loss.Loss(Sigmoid(z + kEps), t) -
                          loss.Loss(Sigmoid(z - kEps), t)) /
                         (2.0 * kEps);
      EXPECT_NEAR(analytic, num, 1e-5) << "z=" << z << " t=" << t;
    }
  }
}

TEST(WeightedBceTest, PositiveClassWeightFormula) {
  // w = lambda (log C - log C+)
  EXPECT_NEAR(PositiveClassWeight(1000, 100, 2.0), 2.0 * std::log(10.0),
              1e-9);
  EXPECT_DOUBLE_EQ(PositiveClassWeight(100, 0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(PositiveClassWeight(0, 0, 2.0), 1.0);
}

// ------------------------------------------------------------------- GRU --

TEST(GruTest, OutputInTanhRange) {
  Rng rng(3);
  GruCell gru(4, 8);
  InitLayer(&gru, &rng);
  const Vec h = gru.Forward({0.5, -0.5, 1.0, 0.0}, Vec(8, 0.0), nullptr);
  for (double v : h) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GruTest, GradientCheckSingleStep) {
  Rng rng(4);
  GruCell gru(3, 4);
  ParamRegistry reg = InitLayer(&gru, &rng);
  const Vec x = {0.2, -0.4, 0.9};
  const Vec h0 = {0.1, -0.2, 0.3, 0.05};
  const Vec dy = {1.0, -1.0, 0.5, 0.25};

  auto loss = [&]() { return Dot(dy, gru.Forward(x, h0, nullptr)); };

  GruCache cache;
  (void)gru.Forward(x, h0, &cache);
  reg.ZeroGrads();
  Vec dx, dh0;
  gru.Backward(cache, dy, &dx, &dh0);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), 1e-5);
      }
    }
  }
  for (size_t j = 0; j < x.size(); ++j) {
    Vec xp = x, xm = x;
    xp[j] += kEps;
    xm[j] -= kEps;
    const double num = (Dot(dy, gru.Forward(xp, h0, nullptr)) -
                        Dot(dy, gru.Forward(xm, h0, nullptr))) /
                       (2.0 * kEps);
    EXPECT_NEAR(dx[j], num, 1e-5);
  }
  for (size_t j = 0; j < h0.size(); ++j) {
    Vec hp = h0, hm = h0;
    hp[j] += kEps;
    hm[j] -= kEps;
    const double num = (Dot(dy, gru.Forward(x, hp, nullptr)) -
                        Dot(dy, gru.Forward(x, hm, nullptr))) /
                       (2.0 * kEps);
    EXPECT_NEAR(dh0[j], num, 1e-5);
  }
}

TEST(GruTest, GradientCheckTwoStepBptt) {
  Rng rng(5);
  GruCell gru(2, 3);
  ParamRegistry reg = InitLayer(&gru, &rng);
  const Vec x0 = {0.5, -0.3}, x1 = {-0.2, 0.8};
  const Vec dy = {1.0, 0.5, -0.7};  // gradient on final hidden state

  auto loss = [&]() {
    const Vec h1 = gru.Forward(x0, Vec(3, 0.0), nullptr);
    const Vec h2 = gru.Forward(x1, h1, nullptr);
    return Dot(dy, h2);
  };

  GruCache c0, c1;
  const Vec h1 = gru.Forward(x0, Vec(3, 0.0), &c0);
  (void)gru.Forward(x1, h1, &c1);
  reg.ZeroGrads();
  Vec dx1, dh1;
  gru.Backward(c1, dy, &dx1, &dh1);
  Vec dx0, dh_init;
  gru.Backward(c0, dh1, &dx0, &dh_init);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), 1e-5);
      }
    }
  }
}

// -------------------------------------------------------------- Attention --

TEST(AttentionTest, EmptyNewsYieldsZeroVector) {
  Rng rng(6);
  ExogenousAttention att(5, 5, 8);
  InitLayer(&att, &rng);
  Matrix news(0, 5);
  AttentionCache cache;
  const Vec out = att.Forward({1, 2, 3, 4, 5}, news, &cache);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
  // Backward on an empty cache must be a no-op.
  att.Backward(cache, Vec(8, 1.0));
}

TEST(AttentionTest, OutputIsConvexCombinationOfValues) {
  Rng rng(7);
  ExogenousAttention att(3, 3, 4);
  InitLayer(&att, &rng);
  Matrix news(2, 3);
  news.SetRow(0, {1.0, 0.0, 0.0});
  news.SetRow(1, {0.0, 1.0, 0.0});
  AttentionCache cache;
  (void)att.Forward({0.5, 0.5, 0.5}, news, &cache);
  ASSERT_EQ(cache.weights.size(), 2u);
  EXPECT_NEAR(cache.weights[0] + cache.weights[1], 1.0, 1e-12);
  EXPECT_GT(cache.weights[0], 0.0);
  EXPECT_GT(cache.weights[1], 0.0);
}

TEST(AttentionTest, GradientCheck) {
  Rng rng(8);
  ExogenousAttention att(3, 4, 5);
  ParamRegistry reg = InitLayer(&att, &rng);
  const Vec tweet = {0.6, -0.2, 0.9};
  Matrix news(3, 4);
  news.SetRow(0, {0.1, 0.5, -0.3, 0.8});
  news.SetRow(1, {-0.6, 0.2, 0.4, -0.1});
  news.SetRow(2, {0.3, -0.7, 0.05, 0.2});
  const Vec dy = {1.0, -0.5, 0.3, 0.7, -0.2};

  auto loss = [&]() { return Dot(dy, att.Forward(tweet, news, nullptr)); };

  AttentionCache cache;
  (void)att.Forward(tweet, news, &cache);
  reg.ZeroGrads();
  att.Backward(cache, dy);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), 1e-5);
      }
    }
  }
}

TEST(AttentionTest, AttendsToRelevantNews) {
  // Train the block so that output should depend on which news row aligns
  // with the query; with aligned K/Q init this shows up as non-uniform
  // weights after a few steps of gradient descent toward a target.
  Rng rng(9);
  ExogenousAttention att(4, 4, 6);
  ParamRegistry reg = InitLayer(&att, &rng);
  Matrix news(2, 4);
  news.SetRow(0, {1.0, 1.0, 0.0, 0.0});
  news.SetRow(1, {0.0, 0.0, 1.0, 1.0});
  const Vec tweet = {1.0, 1.0, 0.0, 0.0};  // aligned with row 0

  Adam opt(0.05);
  opt.Register(reg);
  // Target: maximize out[0] while the weights must pick one row; this
  // pushes attention toward a peaked distribution.
  for (int step = 0; step < 200; ++step) {
    AttentionCache cache;
    const Vec out = att.Forward(tweet, news, &cache);
    Vec dy(out.size(), 0.0);
    dy[0] = -1.0;  // gradient descent on loss = -out[0]
    att.Backward(cache, dy);
    opt.Step();
  }
  AttentionCache cache;
  (void)att.Forward(tweet, news, &cache);
  const double peak =
      std::max(cache.weights[0], cache.weights[1]);
  EXPECT_GT(peak, 0.8);
}


// -------------------------------------------------------------- Recurrent --

class RecurrentCellTest
    : public ::testing::TestWithParam<RecurrentKind> {};

INSTANTIATE_TEST_SUITE_P(AllCells, RecurrentCellTest,
                         ::testing::Values(RecurrentKind::kGru,
                                           RecurrentKind::kLstm,
                                           RecurrentKind::kSimpleRnn));

TEST_P(RecurrentCellTest, OutputIsHiddenPrefixOfState) {
  Rng rng(11);
  auto cell = MakeRecurrentCell(GetParam(), 3, 5);
  ASSERT_NE(cell, nullptr);
  InitLayer(cell.get(), &rng);
  EXPECT_EQ(cell->hidden_dim(), 5u);
  EXPECT_GE(cell->state_dim(), cell->hidden_dim());
  const Vec state = cell->Forward({0.1, -0.2, 0.4},
                                  Vec(cell->state_dim(), 0.0), nullptr);
  EXPECT_EQ(state.size(), cell->state_dim());
}

TEST_P(RecurrentCellTest, GradientCheckSingleStep) {
  Rng rng(12);
  auto cell = MakeRecurrentCell(GetParam(), 3, 4);
  ParamRegistry reg = InitLayer(cell.get(), &rng);
  const Vec x = {0.3, -0.5, 0.8};
  Vec s0(cell->state_dim());
  Rng srng(13);
  for (double& v : s0) v = srng.Uniform(-0.3, 0.3);
  Vec dy(cell->state_dim());
  for (double& v : dy) v = srng.Normal();

  auto loss = [&]() { return Dot(dy, cell->Forward(x, s0, nullptr)); };

  RecCache cache;
  (void)cell->Forward(x, s0, &cache);
  reg.ZeroGrads();
  Vec dx, ds0;
  cell->Backward(cache, dy, &dx, &ds0);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), 1e-5);
      }
    }
  }
  for (size_t j = 0; j < x.size(); ++j) {
    Vec xp = x, xm = x;
    xp[j] += kEps;
    xm[j] -= kEps;
    const double num = (Dot(dy, cell->Forward(xp, s0, nullptr)) -
                        Dot(dy, cell->Forward(xm, s0, nullptr))) /
                       (2.0 * kEps);
    EXPECT_NEAR(dx[j], num, 1e-5);
  }
  for (size_t j = 0; j < s0.size(); ++j) {
    Vec sp = s0, sm = s0;
    sp[j] += kEps;
    sm[j] -= kEps;
    const double num = (Dot(dy, cell->Forward(x, sp, nullptr)) -
                        Dot(dy, cell->Forward(x, sm, nullptr))) /
                       (2.0 * kEps);
    EXPECT_NEAR(ds0[j], num, 1e-5);
  }
}

TEST_P(RecurrentCellTest, GradientCheckTwoStepBptt) {
  Rng rng(14);
  auto cell = MakeRecurrentCell(GetParam(), 2, 3);
  ParamRegistry reg = InitLayer(cell.get(), &rng);
  const Vec x0 = {0.4, -0.6}, x1 = {-0.1, 0.7};
  Vec dy(cell->state_dim());
  Rng srng(15);
  for (double& v : dy) v = srng.Normal();

  auto loss = [&]() {
    const Vec s1 = cell->Forward(x0, Vec(cell->state_dim(), 0.0), nullptr);
    return Dot(dy, cell->Forward(x1, s1, nullptr));
  };

  RecCache c0, c1;
  const Vec s1 = cell->Forward(x0, Vec(cell->state_dim(), 0.0), &c0);
  (void)cell->Forward(x1, s1, &c1);
  reg.ZeroGrads();
  Vec dx1, ds1;
  cell->Backward(c1, dy, &dx1, &ds1);
  Vec dx0, ds_init;
  cell->Backward(c0, ds1, &dx0, &ds_init);

  for (Param* p : reg.params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        EXPECT_NEAR(p->grad(r, c), NumericalGrad(p, r, c, loss), 1e-5);
      }
    }
  }
}

TEST(RecurrentKindTest, Names) {
  EXPECT_STREQ(RecurrentKindName(RecurrentKind::kGru), "GRU");
  EXPECT_STREQ(RecurrentKindName(RecurrentKind::kLstm), "LSTM");
  EXPECT_STREQ(RecurrentKindName(RecurrentKind::kSimpleRnn), "SimpleRNN");
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(16);
  LstmCell cell(2, 3);
  InitLayer(&cell, &rng);
  // With zero input and zero state, f = sigmoid(1) ~ 0.73: the cell keeps
  // most of its (zero) memory and output stays small.
  const Vec state = cell.Forward({0.0, 0.0}, Vec(6, 0.0), nullptr);
  for (double v : state) EXPECT_LT(std::abs(v), 1.0);
}

// ------------------------------------------------------------- Optimizers --

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Param p(1, 1);
  p.value(0, 0) = 5.0;
  ParamRegistry reg;
  reg.Register("p", &p);
  Sgd opt(0.1);
  opt.Register(reg);
  for (int i = 0; i < 200; ++i) {
    p.grad(0, 0) = 2.0 * p.value(0, 0);  // d/dx x^2
    opt.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0, 1e-6);
}

TEST(OptimizerTest, SgdMomentumFasterOnIllConditioned) {
  auto run = [](double momentum) {
    Param p(1, 1);
    p.value(0, 0) = 5.0;
    ParamRegistry reg;
    reg.Register("p", &p);
    Sgd opt(0.01, momentum);
    opt.Register(reg);
    for (int i = 0; i < 100; ++i) {
      p.grad(0, 0) = 2.0 * p.value(0, 0);
      opt.Step();
    }
    return std::abs(p.value(0, 0));
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  Param p(1, 2);
  p.value(0, 0) = 3.0;
  p.value(0, 1) = -4.0;
  ParamRegistry reg;
  reg.Register("p", &p);
  Adam opt(0.05);
  opt.Register(reg);
  for (int i = 0; i < 500; ++i) {
    p.grad(0, 0) = 2.0 * p.value(0, 0);
    p.grad(0, 1) = 2.0 * p.value(0, 1);
    opt.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0, 1e-3);
  EXPECT_NEAR(p.value(0, 1), 0.0, 1e-3);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Param p(1, 1);
  p.grad(0, 0) = 1.0;
  ParamRegistry reg;
  reg.Register("p", &p);
  Adam opt(0.1);
  opt.Register(reg);
  opt.Step();
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.0);
}

TEST(ParamTest, GlorotInitWithinLimit) {
  Rng rng(10);
  Param p(20, 30);
  p.InitGlorot(&rng);
  const double limit = std::sqrt(6.0 / 50.0);
  for (double v : p.value.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

}  // namespace
}  // namespace retina::nn
