// Tests for src/datagen: news stream, world generation invariants and the
// calibration of realized statistics against the Table II targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "datagen/news.h"
#include "datagen/world.h"
#include "datagen/world_config.h"

namespace retina::datagen {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.scale = 0.04;
  config.num_users = 500;
  config.history_length = 12;
  config.news_per_day = 40.0;
  return config;
}

// Shared world for the expensive-to-generate fixtures.
const SyntheticWorld& SmallWorld() {
  static const SyntheticWorld world =
      SyntheticWorld::Generate(SmallConfig(), 77);
  return world;
}

// ---------------------------------------------------------------- Hashtags --

TEST(HashtagTableTest, Has34PaperHashtags) {
  const auto tags = PaperHashtagTable(10);
  EXPECT_EQ(tags.size(), 34u);
  size_t total_tweets = 0;
  for (const auto& t : tags) total_tweets += t.target_tweets;
  // Table II totals ~31k tweets.
  EXPECT_GT(total_tweets, 28000u);
  EXPECT_LT(total_tweets, 34000u);
}

TEST(HashtagTableTest, TopicsWithinRange) {
  for (const auto& t : PaperHashtagTable(4)) EXPECT_LT(t.topic, 4u);
}

TEST(HashtagTableTest, RelatedTagsShareTheme) {
  const auto tags = PaperHashtagTable(10);
  auto topic_of = [&](const std::string& name) {
    for (const auto& t : tags) {
      if (t.tag == name) return static_cast<int>(t.topic);
    }
    return -1;
  };
  EXPECT_EQ(topic_of("#jamiaviolence"), topic_of("#jamiaunderattack"));
  EXPECT_EQ(topic_of("#jamiaviolence"), topic_of("#JamiaCCTV"));
  EXPECT_EQ(topic_of("#delhiriots2020"), topic_of("#NorthDelhiRiots"));
  EXPECT_NE(topic_of("#COVID_19"), topic_of("#jamiaviolence"));
}

// -------------------------------------------------------------------- News --

TEST(NewsTest, ArticlesSortedAndWithinHorizon) {
  const auto& world = SmallWorld();
  const auto& articles = world.news().articles();
  ASSERT_FALSE(articles.empty());
  for (size_t i = 1; i < articles.size(); ++i) {
    EXPECT_LE(articles[i - 1].time, articles[i].time);
  }
  for (const auto& a : articles) {
    EXPECT_GE(a.time, 0.0);
    EXPECT_LE(a.time, world.config().horizon_days * 24.0);
    EXPECT_FALSE(a.tokens.empty());
    EXPECT_LT(a.topic, world.config().num_topics);
  }
}

TEST(NewsTest, IntensityAtLeastBase) {
  const auto& world = SmallWorld();
  for (size_t t = 0; t < world.config().num_topics; ++t) {
    for (double hrs : {0.0, 200.0, 1000.0}) {
      EXPECT_GE(world.news().IntensityAt(t, hrs), 1.0);
    }
  }
}

TEST(NewsTest, MostRecentBeforeReturnsDescendingRecency) {
  const auto& world = SmallWorld();
  const double t = 36.0 * 24.0;
  const auto idx = world.news().MostRecentBefore(t, 10);
  ASSERT_EQ(idx.size(), 10u);
  const auto& articles = world.news().articles();
  for (size_t k = 0; k < idx.size(); ++k) {
    EXPECT_LT(articles[idx[k]].time, t);
    if (k > 0) {
      EXPECT_LE(articles[idx[k]].time, articles[idx[k - 1]].time);
    }
  }
}

TEST(NewsTest, MostRecentBeforeStartIsEmpty) {
  const auto& world = SmallWorld();
  EXPECT_TRUE(world.news().MostRecentBefore(0.0, 10).empty());
}

// ------------------------------------------------------------------- World --

TEST(WorldTest, DeterministicAcrossGenerations) {
  const SyntheticWorld w1 = SyntheticWorld::Generate(SmallConfig(), 123);
  const SyntheticWorld w2 = SyntheticWorld::Generate(SmallConfig(), 123);
  ASSERT_EQ(w1.tweets().size(), w2.tweets().size());
  for (size_t i = 0; i < w1.tweets().size(); ++i) {
    EXPECT_EQ(w1.tweets()[i].author, w2.tweets()[i].author);
    EXPECT_EQ(w1.tweets()[i].is_hateful, w2.tweets()[i].is_hateful);
    EXPECT_EQ(w1.tweets()[i].tokens, w2.tweets()[i].tokens);
    EXPECT_EQ(w1.cascades()[i].retweets.size(),
              w2.cascades()[i].retweets.size());
  }
}

TEST(WorldTest, DifferentSeedsProduceDifferentWorlds) {
  const SyntheticWorld w1 = SyntheticWorld::Generate(SmallConfig(), 1);
  const SyntheticWorld w2 = SyntheticWorld::Generate(SmallConfig(), 2);
  size_t diff = 0;
  const size_t n = std::min(w1.tweets().size(), w2.tweets().size());
  for (size_t i = 0; i < n; ++i) {
    diff += (w1.tweets()[i].author != w2.tweets()[i].author);
  }
  EXPECT_GT(diff, n / 4);
}

TEST(WorldTest, TweetsSortedByTimeAndIdsMatchIndex) {
  const auto& world = SmallWorld();
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    EXPECT_EQ(world.tweets()[i].id, i);
    if (i > 0) {
      EXPECT_LE(world.tweets()[i - 1].time, world.tweets()[i].time);
    }
  }
}

TEST(WorldTest, TweetFieldsWellFormed) {
  const auto& world = SmallWorld();
  for (const auto& tw : world.tweets()) {
    EXPECT_LT(tw.author, world.NumUsers());
    EXPECT_LT(tw.hashtag, world.hashtags().size());
    EXPECT_GE(tw.time, 0.0);
    EXPECT_LE(tw.time, world.config().horizon_days * 24.0);
    ASSERT_FALSE(tw.tokens.empty());
    bool has_hashtag_token = false;
    for (const auto& tok : tw.tokens) {
      if (!tok.empty() && tok[0] == '#') has_hashtag_token = true;
    }
    EXPECT_TRUE(has_hashtag_token);
  }
}

TEST(WorldTest, CascadesSortedAndAfterRoot) {
  const auto& world = SmallWorld();
  ASSERT_EQ(world.cascades().size(), world.tweets().size());
  for (size_t i = 0; i < world.cascades().size(); ++i) {
    const auto& c = world.cascades()[i];
    EXPECT_EQ(c.root_tweet, i);
    double prev = world.tweets()[i].time;
    for (const auto& rt : c.retweets) {
      EXPECT_GE(rt.time, prev);
      EXPECT_LT(rt.user, world.NumUsers());
      prev = rt.time;
    }
  }
}

TEST(WorldTest, NoUserRetweetsTwiceInOneCascade) {
  const auto& world = SmallWorld();
  for (const auto& c : world.cascades()) {
    std::unordered_set<NodeId> seen;
    for (const auto& rt : c.retweets) {
      EXPECT_TRUE(seen.insert(rt.user).second);
    }
  }
}

TEST(WorldTest, AuthorNeverRetweetsOwnTweet) {
  const auto& world = SmallWorld();
  for (size_t i = 0; i < world.cascades().size(); ++i) {
    for (const auto& rt : world.cascades()[i].retweets) {
      EXPECT_NE(rt.user, world.tweets()[i].author);
    }
  }
}

TEST(WorldTest, HistoriesHaveConfiguredLengthAndAreSorted) {
  const auto& world = SmallWorld();
  for (NodeId u = 0; u < world.NumUsers(); ++u) {
    const auto& hist = world.History(u);
    EXPECT_EQ(hist.size(), world.config().history_length);
    for (size_t i = 0; i < hist.size(); ++i) {
      EXPECT_LT(hist[i].time, 0.0);  // strictly before the window
      if (i > 0) {
        EXPECT_LE(hist[i - 1].time, hist[i].time);
      }
      EXPECT_FALSE(hist[i].tokens.empty());
    }
  }
}

TEST(WorldTest, UserProfilesWellFormed) {
  const auto& world = SmallWorld();
  size_t haters = 0;
  for (const auto& p : world.users()) {
    EXPECT_EQ(p.topic_interests.size(), world.config().num_topics);
    EXPECT_NEAR(Sum(p.topic_interests), 1.0, 1e-9);
    for (double h : p.hate_propensity) {
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
    if (p.echo_community >= 0) ++haters;
  }
  const double frac =
      static_cast<double>(haters) / static_cast<double>(world.NumUsers());
  EXPECT_NEAR(frac, world.config().hater_fraction, 0.04);
}

TEST(WorldTest, HatefulTweetsComePredominantlyFromHateProneUsers) {
  const auto& world = SmallWorld();
  size_t hateful = 0, from_prone = 0;
  for (const auto& tw : world.tweets()) {
    if (!tw.is_hateful) continue;
    ++hateful;
    if (world.users()[tw.author].echo_community >= 0) ++from_prone;
  }
  ASSERT_GT(hateful, 5u);
  // ~75% of hateful tweets are routed through the propensity-weighted
  // author pool; the rest are "fresh offenders". Either way the prone 8%
  // of users must be strongly over-represented among hate authors.
  const double frac =
      static_cast<double>(from_prone) / static_cast<double>(hateful);
  EXPECT_GT(frac, 0.5);
  EXPECT_GT(frac, 4.0 * world.config().hater_fraction);
}

TEST(WorldTest, LexiconIsStrongButImperfectHateSignal) {
  // The generator injects slurs into only ~2/3 of hateful tweets (implicit
  // hate carries none) and lets benign text quote them occasionally, so
  // lexicon hits are a strong but imperfect signal — as on the real data.
  const auto& world = SmallWorld();
  size_t hateful_with_hits = 0, hateful = 0;
  size_t clean_with_slurs = 0, clean = 0;
  for (const auto& tw : world.tweets()) {
    if (tw.is_hateful) {
      ++hateful;
      if (world.lexicon().CountHits(tw.tokens) > 0) ++hateful_with_hits;
    } else {
      ++clean;
      for (const auto& tok : tw.tokens) {
        if (world.lexicon().IsSlur(tok)) {
          ++clean_with_slurs;
          break;
        }
      }
    }
  }
  ASSERT_GT(hateful, 0u);
  const double hit_rate =
      static_cast<double>(hateful_with_hits) / static_cast<double>(hateful);
  EXPECT_GT(hit_rate, 0.4);
  EXPECT_LT(hit_rate, 0.98);
  EXPECT_LT(static_cast<double>(clean_with_slurs) /
                static_cast<double>(clean),
            0.05);
}

TEST(WorldTest, OverallHateRateNearTableTwoAggregate) {
  const auto& world = SmallWorld();
  size_t hateful = 0;
  for (const auto& tw : world.tweets()) hateful += tw.is_hateful;
  const double rate = static_cast<double>(hateful) /
                      static_cast<double>(world.tweets().size());
  // Table II implies roughly 4-5% hateful overall.
  EXPECT_GT(rate, 0.015);
  EXPECT_LT(rate, 0.10);
}

TEST(WorldTest, PerHashtagTweetCountsMatchScaledTargets) {
  const auto& world = SmallWorld();
  const auto stats = world.ComputeHashtagStats();
  for (size_t h = 0; h < world.hashtags().size(); ++h) {
    const auto& info = world.hashtags()[h];
    const size_t expected = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               static_cast<double>(info.target_tweets) *
               world.config().scale)));
    EXPECT_EQ(stats[h].tweets, expected) << info.tag;
  }
}

TEST(WorldTest, HighHateTagsRealizeMoreHateThanCleanTags) {
  const auto& world = SmallWorld();
  const auto stats = world.ComputeHashtagStats();
  double hot = 0.0, clean = 0.0;
  size_t n_hot = 0, n_clean = 0;
  for (size_t h = 0; h < stats.size(); ++h) {
    const double target = world.hashtags()[h].target_pct_hate;
    if (target > 7.0) {
      hot += stats[h].pct_hate;
      ++n_hot;
    } else if (target < 0.5) {
      clean += stats[h].pct_hate;
      ++n_clean;
    }
  }
  ASSERT_GT(n_hot, 0u);
  ASSERT_GT(n_clean, 0u);
  EXPECT_GT(hot / static_cast<double>(n_hot),
            clean / static_cast<double>(n_clean) + 2.0);
}

TEST(WorldTest, TrendingIndicatorBinaryWithTopN) {
  const auto& world = SmallWorld();
  const Vec v = world.TrendingIndicator(24.0 * 10, 50, 10);
  EXPECT_EQ(v.size(), 50u);
  size_t ones = 0;
  for (double x : v) {
    EXPECT_TRUE(x == 0.0 || x == 1.0);
    ones += (x == 1.0);
  }
  EXPECT_LE(ones, 10u);
  EXPECT_GT(ones, 0u);
}

TEST(WorldTest, PastRetweetCountRespectsTime) {
  const auto& world = SmallWorld();
  for (size_t i = 0; i < world.cascades().size(); ++i) {
    const auto& c = world.cascades()[i];
    if (c.retweets.empty()) continue;
    const NodeId author = world.tweets()[i].author;
    const auto& rt = c.retweets.front();
    EXPECT_EQ(world.PastRetweetCount(author, rt.user, rt.time), 0u);
    EXPECT_GE(world.PastRetweetCount(author, rt.user, rt.time + 1e-6), 1u);
    return;
  }
  FAIL() << "no cascade with retweets";
}

TEST(WorldTest, UserHashtagHateRatioBounds) {
  const auto& world = SmallWorld();
  for (NodeId u = 0; u < 20; ++u) {
    for (size_t h = 0; h < 5; ++h) {
      const double r = world.UserHashtagHateRatio(u, h);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

// ---- Reply channel (Section IX-A extension) --------------------------------

TEST(WorldTest, RepliesWellFormedAndAfterRoot) {
  const auto& world = SmallWorld();
  size_t total = 0;
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    double prev = world.tweets()[i].time;
    for (const auto& r : world.Replies(i)) {
      EXPECT_LT(r.user, world.NumUsers());
      EXPECT_GE(r.time, prev);
      prev = r.time;
      // Counter-speech only appears under hateful roots.
      if (r.counter_speech) {
        EXPECT_TRUE(world.tweets()[i].is_hateful);
      }
      ++total;
    }
  }
  EXPECT_GT(total, 50u);
}

TEST(WorldTest, ReplyThreadsMixHateCounterAndNeutral) {
  // Section IX-A: threads under hateful roots contain supportive hate AND
  // counter-speech; hateful roots draw far more hateful replies than
  // clean roots.
  const auto& world = SmallWorld();
  const ReplyStats hate = world.ComputeReplyStats(true);
  const ReplyStats clean = world.ComputeReplyStats(false);
  EXPECT_GT(hate.replies_per_tweet, 0.0);
  EXPECT_GT(hate.counter_speech_fraction, 0.1);
  EXPECT_GT(hate.hateful_reply_fraction,
            clean.hateful_reply_fraction + 0.05);
  EXPECT_LT(clean.counter_speech_fraction, 1e-9);
}

// Figure 1 shape: hateful cascades grow faster early and produce fewer
// susceptible users than non-hate ones.
TEST(WorldTest, DiffusionCurvesReproduceFigure1Shape) {
  WorldConfig config = SmallConfig();
  config.scale = 0.08;
  config.num_users = 2000;
  const SyntheticWorld world = SyntheticWorld::Generate(config, 99);
  const std::vector<double> grid = {30, 120, 480, 1440, 5760, 20160};
  const auto hate = world.DiffusionCurves(true, grid);
  const auto nonhate = world.DiffusionCurves(false, grid);
  ASSERT_EQ(hate.size(), grid.size());

  // (a) Hateful roots accumulate more retweets.
  EXPECT_GT(hate.back().mean_retweets, nonhate.back().mean_retweets);
  // (b) ... but expose fewer susceptible users.
  EXPECT_LT(hate.back().mean_susceptible, nonhate.back().mean_susceptible);
  // Early growth: fraction of final retweets reached after 2h is higher
  // for hate.
  const double hate_early =
      hate[1].mean_retweets / std::max(1e-9, hate.back().mean_retweets);
  const double nonhate_early = nonhate[1].mean_retweets /
                               std::max(1e-9, nonhate.back().mean_retweets);
  EXPECT_GT(hate_early, nonhate_early);
}

TEST(WorldTest, AvgRetweetsWithinFactorOfTargets) {
  const auto& world = SmallWorld();
  const auto stats = world.ComputeHashtagStats();
  double target = 0.0, realized = 0.0;
  for (size_t h = 0; h < stats.size(); ++h) {
    target += world.hashtags()[h].target_avg_retweets;
    realized += stats[h].avg_retweets;
  }
  target /= static_cast<double>(stats.size());
  realized /= static_cast<double>(stats.size());
  EXPECT_GT(realized, target / 3.0);
  EXPECT_LT(realized, target * 3.0);
}

}  // namespace
}  // namespace retina::datagen
