// Unit tests for src/common: Status/Result, Rng (including distributional
// properties), vector/matrix kernels, string utilities and the table writer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/vec.h"

namespace retina {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status FailingHelper() { return Status::Internal("inner"); }
Status PropagatingHelper() {
  RETINA_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Exponential(4.0);
  EXPECT_NEAR(acc / n, 0.25, 0.01);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 3.0, 9.0}) {
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) acc += rng.Gamma(shape);
    EXPECT_NEAR(acc / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(23);
  for (double mean : {0.5, 3.0, 50.0}) {
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) acc += rng.Poisson(mean);
    EXPECT_NEAR(acc / n, mean, std::max(0.05, mean * 0.05)) << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(37);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsLast) {
  Rng rng(41);
  std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), 2u);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> p = rng.Dirichlet(8, 0.3);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletSymmetricMean) {
  Rng rng(47);
  std::vector<double> mean(4, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto p = rng.Dirichlet(4, 1.0);
    for (size_t j = 0; j < 4; ++j) mean[j] += p[j];
  }
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(mean[j] / n, 0.25, 0.01);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(59);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::vector<size_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKGeqN) {
  Rng rng(61);
  const auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentDraws) {
  // Child stream depends only on (seed, split ordinal), not on how many
  // variates the parent drew in between.
  Rng a(99);
  Rng b(99);
  (void)a.NextU64();
  (void)a.Uniform();
  Rng child_a = a.Split();
  Rng child_b = b.Split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
}

TEST(RngTest, SuccessiveSplitsDiffer) {
  Rng rng(99);
  Rng c1 = rng.Split();
  Rng c2 = rng.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.NextU64() == c2.NextU64());
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------- Vec --

TEST(VecTest, DotAndNorm) {
  Vec a = {1.0, 2.0, 3.0}, b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
}

TEST(VecTest, AxpyScaleSumMean) {
  Vec y = {1.0, 1.0};
  Axpy(2.0, {1.0, 3.0}, &y);
  EXPECT_EQ(y, (Vec{3.0, 7.0}));
  Scale(0.5, &y);
  EXPECT_EQ(y, (Vec{1.5, 3.5}));
  EXPECT_DOUBLE_EQ(Sum(y), 5.0);
  EXPECT_DOUBLE_EQ(Mean(y), 2.5);
}

TEST(VecTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(VecTest, VarianceMatchesDefinition) {
  EXPECT_NEAR(Variance({1.0, 2.0, 3.0, 4.0}), 1.25, 1e-12);
}

// Pins the documented contract: population variance (divide by n, not
// n-1), and 0 for vectors with fewer than two elements.
TEST(VecTest, VarianceIsPopulationVariance) {
  EXPECT_NEAR(Variance({2.0, 4.0}), 1.0, 1e-12);       // sample var would be 2
  EXPECT_NEAR(Variance({5.0, 5.0, 5.0}), 0.0, 1e-12);  // constant vector
  EXPECT_DOUBLE_EQ(Variance({7.5}), 0.0);              // singleton
}

TEST(VecTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

TEST(VecTest, SoftmaxSumsToOneAndIsStable) {
  Vec v = {1000.0, 1001.0, 1002.0};  // would overflow naive exp
  SoftmaxInPlace(&v);
  EXPECT_NEAR(Sum(v), 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(VecTest, SigmoidBoundsAndSymmetry) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(5.0) + Sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GE(Sigmoid(-1000.0), 0.0);
  EXPECT_LE(Sigmoid(1000.0), 1.0);
}

TEST(VecTest, AddSubConcat) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (Vec{4, 6}));
  EXPECT_EQ(Sub({3, 4}, {1, 2}), (Vec{2, 2}));
  EXPECT_EQ(Concat({1}, {2, 3}), (Vec{1, 2, 3}));
}

TEST(VecTest, MinMaxNormalize) {
  Vec v = {0.0, 5.0, 10.0};
  MinMaxNormalizeInPlace(&v);
  EXPECT_EQ(v, (Vec{0.0, 0.5, 1.0}));
  Vec flat = {2.0, 2.0};
  MinMaxNormalizeInPlace(&flat);  // degenerate range: no-op
  EXPECT_EQ(flat, (Vec{2.0, 2.0}));
}

TEST(VecTest, L2Normalize) {
  Vec v = {3.0, 4.0};
  L2NormalizeInPlace(&v);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  Vec zero = {0.0, 0.0};
  L2NormalizeInPlace(&zero);  // no-op
  EXPECT_EQ(zero, (Vec{0.0, 0.0}));
}

// ---------------------------------------------------------------- Matrix --

TEST(MatrixTest, IndexingAndRows) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.RowVec(0), (Vec{7, 8, 9}));
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 2, 3});
  m.SetRow(1, {4, 5, 6});
  EXPECT_EQ(m.MatVec({1, 1, 1}), (Vec{6, 15}));
}

TEST(MatrixTest, TransposeMatVecMatchesExplicitTranspose) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 2, 3});
  m.SetRow(1, {4, 5, 6});
  const Vec direct = m.TransposeMatVec({1.0, 2.0});
  const Vec via_t = m.Transpose().MatVec({1.0, 2.0});
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(direct[i], via_t[i], 1e-12);
}

TEST(MatrixTest, MatMul) {
  Matrix a(2, 2), b(2, 2);
  a.SetRow(0, {1, 2});
  a.SetRow(1, {3, 4});
  b.SetRow(0, {5, 6});
  b.SetRow(1, {7, 8});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AxpyAndFill) {
  Matrix a(1, 2, 1.0), b(1, 2, 2.0);
  a.Axpy(3.0, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  a.Fill(0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

// --------------------------------------------------------------- Strings --

TEST(StringTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\tb \n c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringTest, JoinLowerTrim) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(ToLower("AbC#9"), "abc#9");
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringTest, StartsWithAndFormat) {
  EXPECT_TRUE(StartsWith("https://x", "https://"));
  EXPECT_FALSE(StartsWith("ftp://x", "https://"));
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(0.5, 0), "0");
}

// --------------------------------------------------------------- Logging --

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed and emitted messages must both be safe to construct.
  RETINA_LOG(Debug) << "suppressed " << 42;
  RETINA_LOG(Error) << "emitted " << 3.14;
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNamesOnly) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("INFO", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure
}

TEST(LoggingTest, JsonSinkEmitsOneEscapedObjectPerLine) {
  const bool original_json = JsonLogging();
  SetJsonLogging(true);
  testing::internal::CaptureStderr();
  RETINA_LOG(Error) << "quote \" backslash \\ and\nnewline";
  const std::string line = testing::internal::GetCapturedStderr();
  SetJsonLogging(original_json);

  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"level\":\"ERROR\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"line\":"), std::string::npos);
  EXPECT_NE(line.find("common_test.cc"), std::string::npos);
  // No ambient trace session: the id joins as 0.
  EXPECT_NE(line.find("\"trace_id\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("quote \\\" backslash \\\\ and\\u000anewline"),
            std::string::npos)
      << line;
  // Exactly one line: the embedded newline was escaped, not emitted.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1) << line;
}

// ------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresElapsedAndResets) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  const double first = sw.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(sw.ElapsedMillis() >= first * 1e3, true);
  sw.Reset();
  EXPECT_LE(sw.ElapsedSeconds(), first + 1.0);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, RendersAlignedRows) {
  TableWriter t("Title", {"model", "f1"});
  t.AddRow({"DT", "0.65"});
  t.AddRow({"LongerName", "0.5"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| DT"), std::string::npos);
  EXPECT_NE(out.find("LongerName"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, WritesCsvWithQuoting) {
  TableWriter t("", {"a", "b"});
  t.AddRow({"x,y", "plain"});
  const std::string path = "/tmp/retina_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "\"x,y\",plain");
  std::remove(path.c_str());
}

TEST(TableTest, CsvToBadPathFails) {
  TableWriter t("", {"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/x.csv").ok());
}

}  // namespace
}  // namespace retina
