// Tests for the retina::par execution layer: chunking contract, exception
// propagation, nested use, RNG stream derivation, and the determinism
// regression pinning bit-identical training at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/retina.h"
#include "ml/random_forest.h"

namespace retina {
namespace {

using par::ChunkRange;
using par::MakeChunks;
using par::ParallelFor;
using par::ParallelForChunks;
using par::ParallelReduce;
using par::ThreadPool;

// ------------------------------------------------------------- Chunking --

TEST(MakeChunksTest, CoversRangeContiguouslyInOrder) {
  for (size_t n : {1u, 7u, 31u, 32u, 33u, 100u, 1000u}) {
    for (size_t grain : {1u, 4u, 16u}) {
      const auto chunks = MakeChunks(n, grain);
      ASSERT_FALSE(chunks.empty());
      size_t next = 0;
      for (size_t c = 0; c < chunks.size(); ++c) {
        EXPECT_EQ(chunks[c].index, c);
        EXPECT_EQ(chunks[c].begin, next);
        EXPECT_GT(chunks[c].end, chunks[c].begin);
        next = chunks[c].end;
      }
      EXPECT_EQ(next, n);
      EXPECT_LE(chunks.size(), par::kMaxChunksPerLoop);
    }
  }
}

TEST(MakeChunksTest, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(MakeChunks(0, 1).empty());
  EXPECT_TRUE(MakeChunks(0, 16).empty());
}

TEST(MakeChunksTest, RespectsGrain) {
  const auto chunks = MakeChunks(100, 25);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 25u);
}

TEST(MakeChunksTest, LayoutIndependentOfThreadCount) {
  // The layout must be a pure function of (n, grain): recomputing it under
  // different global pool sizes gives identical chunks.
  par::SetNumThreads(1);
  const auto a = MakeChunks(777, 3);
  par::SetNumThreads(4);
  const auto b = MakeChunks(777, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

// ---------------------------------------------------------- ParallelFor --

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleElementRunsInline) {
  std::atomic<int> calls{0};
  ParallelFor(1, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  par::SetNumThreads(4);
  const size_t n = 1000;
  std::vector<int> hits(n, 0);
  ParallelFor(n, 1, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelForTest, PropagatesException) {
  par::SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(100, 1,
                  [&](size_t i) {
                    if (i == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForChunksTest, RethrowsLowestChunkException) {
  par::SetNumThreads(4);
  // Every chunk throws; the pool must surface the lowest chunk's error.
  try {
    ParallelForChunks(128, 4, [&](const ChunkRange& chunk) {
      throw std::runtime_error("chunk " + std::to_string(chunk.index));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ParallelForTest, NestedUseRunsInlineWithoutDeadlock) {
  par::SetNumThreads(4);
  std::vector<double> out(8, 0.0);
  ParallelFor(out.size(), 1, [&](size_t i) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // Nested loop executes serially on this thread.
    double sum = 0.0;
    ParallelFor(100, 1, [&](size_t j) { sum += static_cast<double>(j); });
    out[i] = sum;
  });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 4950.0);
}

TEST(ParallelReduceTest, OrderedFoldIsBitIdenticalAcrossThreadCounts) {
  // Sum of values spanning many magnitudes: FP addition is not
  // associative, so equality here demonstrates the ordered reduction.
  const size_t n = 10000;
  std::vector<double> xs(n);
  Rng rng(7);
  for (double& x : xs) x = rng.Normal() * std::exp(rng.Uniform(-20.0, 20.0));
  auto sum_with = [&](size_t threads) {
    par::SetNumThreads(threads);
    return ParallelReduce<double>(
        n, 1, 0.0,
        [&](const ChunkRange& chunk) {
          double s = 0.0;
          for (size_t i = chunk.begin; i < chunk.end; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double s1 = sum_with(1);
  const double s4 = sum_with(4);
  const double s8 = sum_with(8);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, s8);
}

// -------------------------------------------------------------- Pool -----

TEST(ThreadPoolTest, EnvOverrideControlsDefault) {
  ASSERT_EQ(setenv("RETINA_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(par::DefaultNumThreads(), 3u);
  ASSERT_EQ(setenv("RETINA_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(par::DefaultNumThreads(), 1u);
  ASSERT_EQ(unsetenv("RETINA_NUM_THREADS"), 0);
  EXPECT_GE(par::DefaultNumThreads(), 1u);
}

TEST(ThreadPoolTest, ExplicitPoolRunsAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<int> hits(500, 0);
  pool.Run(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ---------------------------------------------------------- Rng streams --

TEST(RngStreamTest, StreamMatchesSplitSequence) {
  // Stream(seed, i) must be exactly the stream the (i+1)-th Split() of
  // Rng(seed) yields — the contract parallel loops rely on to reproduce
  // serial split-based seeding.
  Rng parent(123);
  for (uint64_t i = 0; i < 5; ++i) {
    Rng split = parent.Split();
    Rng stream = Rng::Stream(123, i);
    for (int k = 0; k < 16; ++k) EXPECT_EQ(split.NextU64(), stream.NextU64());
  }
}

TEST(RngStreamTest, DistinctStreamsDiffer) {
  Rng a = Rng::Stream(9, 0);
  Rng b = Rng::Stream(9, 1);
  bool any_diff = false;
  for (int k = 0; k < 8; ++k) any_diff |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(any_diff);
}

// ------------------------------------- Determinism regression: training --

core::RetweetTask MakeToyTask(size_t n_tweets, size_t cands_per_tweet,
                              uint64_t seed) {
  core::RetweetTask task;
  task.user_dim = 6;
  task.content_dim = 5;
  task.embed_dim = 8;
  task.interval_edges = {0.0, 1.0, 8.0, 24.0};
  Rng rng(seed);
  const size_t n_intervals = task.NumIntervals();
  for (size_t t = 0; t < n_tweets; ++t) {
    core::TweetContext ctx;
    ctx.tweet_id = t;
    ctx.content = Vec(task.content_dim);
    for (double& v : ctx.content) v = rng.Normal();
    ctx.embedding = Vec(task.embed_dim);
    for (double& v : ctx.embedding) v = rng.Normal();
    ctx.news_window = Matrix(4, task.embed_dim);
    for (size_t r = 0; r < 4; ++r) {
      for (size_t c = 0; c < task.embed_dim; ++c) {
        ctx.news_window(r, c) = rng.Normal();
      }
    }
    task.tweets.push_back(std::move(ctx));
    for (size_t k = 0; k < cands_per_tweet; ++k) {
      core::RetweetCandidate cand;
      cand.tweet_pos = t;
      cand.user = static_cast<datagen::NodeId>(k);
      cand.label = (k % 3 == 0) ? 1 : 0;
      cand.interval_labels.assign(n_intervals, 0);
      if (cand.label == 1) cand.interval_labels[k % n_intervals] = 1;
      cand.user_features = Vec(task.user_dim);
      for (double& v : cand.user_features) v = rng.Normal();
      (t + 1 == n_tweets ? task.test : task.train).push_back(std::move(cand));
    }
  }
  return task;
}

// Trains one RETINA model and returns (epoch losses, test scores).
std::pair<std::vector<double>, Vec> TrainAndScore(
    const core::RetweetTask& task, bool dynamic, size_t threads) {
  par::SetNumThreads(threads);
  core::RetinaOptions opts;
  opts.hidden = 8;
  opts.epochs = 3;
  opts.dynamic = dynamic;
  opts.seed = 5;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), opts);
  EXPECT_TRUE(model.Train(task).ok());
  return {model.epoch_losses(), model.ScoreCandidates(task, task.test)};
}

TEST(DeterminismTest, RetinaStaticTrainingBitIdenticalAcrossThreadCounts) {
  const core::RetweetTask task = MakeToyTask(6, 20, 11);
  const auto [losses1, scores1] = TrainAndScore(task, /*dynamic=*/false, 1);
  const auto [losses4, scores4] = TrainAndScore(task, /*dynamic=*/false, 4);
  ASSERT_EQ(losses1.size(), losses4.size());
  for (size_t e = 0; e < losses1.size(); ++e) {
    EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
  }
  ASSERT_EQ(scores1.size(), scores4.size());
  for (size_t i = 0; i < scores1.size(); ++i) {
    EXPECT_EQ(scores1[i], scores4[i]) << "candidate " << i;
  }
}

TEST(DeterminismTest, RetinaDynamicTrainingBitIdenticalAcrossThreadCounts) {
  const core::RetweetTask task = MakeToyTask(5, 16, 13);
  const auto [losses1, scores1] = TrainAndScore(task, /*dynamic=*/true, 1);
  const auto [losses4, scores4] = TrainAndScore(task, /*dynamic=*/true, 4);
  ASSERT_EQ(losses1.size(), losses4.size());
  for (size_t e = 0; e < losses1.size(); ++e) {
    EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
  }
  ASSERT_EQ(scores1.size(), scores4.size());
  for (size_t i = 0; i < scores1.size(); ++i) {
    EXPECT_EQ(scores1[i], scores4[i]) << "candidate " << i;
  }
}

TEST(DeterminismTest, RandomForestBitIdenticalAcrossThreadCounts) {
  Rng rng(3);
  const size_t n = 200, d = 6;
  Matrix X(n, d);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      X(i, j) = rng.Normal();
      s += X(i, j);
    }
    y[i] = s > 0.0 ? 1 : 0;
  }
  auto fit_and_predict = [&](size_t threads) {
    par::SetNumThreads(threads);
    ml::RandomForestOptions opts;
    opts.n_estimators = 11;
    opts.seed = 17;
    ml::RandomForest forest(opts);
    EXPECT_TRUE(forest.Fit(X, y).ok());
    Vec preds(n);
    for (size_t i = 0; i < n; ++i) preds[i] = forest.PredictProba(X.RowVec(i));
    return preds;
  };
  const Vec p1 = fit_and_predict(1);
  const Vec p4 = fit_and_predict(4);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(p1[i], p4[i]) << i;
}

}  // namespace
}  // namespace retina
