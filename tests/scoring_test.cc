// Tests for the batched sparse scoring path: SparseVec kernels, sparse
// tf-idf equivalence, batched dense/attention forwards, the LRU cache, and
// the ScoringEngine's bit-identity to per-candidate scoring in both static
// and dynamic modes.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <filesystem>

#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/sparse_vec.h"
#include "common/vec.h"
#include "core/feature_extractor.h"
#include "core/model_store.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "io/checkpoint.h"
#include "hatedetect/annotation.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/param_registry.h"
#include "store/feature_store.h"
#include "text/tfidf.h"

namespace retina::core {
namespace {

// ------------------------------------------------------------ SparseVec --

Vec RandomSparseDense(Rng* rng, size_t dim, double density) {
  Vec v(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    if (rng->Bernoulli(density)) v[i] = rng->Normal();
  }
  return v;
}

TEST(SparseVecTest, FromDenseToDenseRoundTrips) {
  Rng rng(7);
  const Vec dense = RandomSparseDense(&rng, 64, 0.2);
  const SparseVec sparse = SparseVec::FromDense(dense);
  EXPECT_EQ(sparse.dim(), dense.size());
  const Vec back = sparse.ToDense();
  ASSERT_EQ(back.size(), dense.size());
  for (size_t i = 0; i < dense.size(); ++i) EXPECT_EQ(back[i], dense[i]);
  size_t nnz = 0;
  for (double x : dense) nnz += x != 0.0;
  EXPECT_EQ(sparse.nnz(), nnz);
}

TEST(SparseVecTest, DotMatchesDenseDot) {
  // Under the scalar kernel backend the sparse dot is the nonzero
  // subsequence of the dense loop and matches bitwise; a SIMD backend
  // partitions the nonzeros across lanes by nnz rank instead of by index,
  // so agreement is within 1e-12 relative tolerance (common/simd.h).
  const bool bitwise = simd::Active() == simd::Backend::kScalar;
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    const Vec a = RandomSparseDense(&rng, 97, 0.15);
    const Vec b = RandomSparseDense(&rng, 97, 0.3);
    const SparseVec sa = SparseVec::FromDense(a);
    const SparseVec sb = SparseVec::FromDense(b);
    // Dense reference accumulated in the same ascending-index order.
    double ref = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != 0.0) ref += a[i] * b[i];
    }
    if (bitwise) {
      EXPECT_EQ(Dot(sa, b), ref);
    } else {
      EXPECT_NEAR(Dot(sa, b), ref, 1e-12 * std::abs(ref) + 1e-15);
    }
    // The sparse-sparse merge visits the intersection ascending, which is
    // the nonzero subsequence of the same sum. It stays a scalar loop, so
    // this holds bitwise at any dispatch.
    double ref_both = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != 0.0 && b[i] != 0.0) ref_both += a[i] * b[i];
    }
    EXPECT_EQ(Dot(sa, sb), ref_both);
  }
}

TEST(SparseVecTest, AxpyMatchesDenseAxpy) {
  Rng rng(13);
  const Vec x = RandomSparseDense(&rng, 50, 0.25);
  Vec y(50);
  for (auto& v : y) v = rng.Normal();
  Vec y_dense = y;
  Vec y_sparse = y;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0) y_dense[i] += 2.5 * x[i];
  }
  Axpy(2.5, SparseVec::FromDense(x), &y_sparse);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y_sparse[i], y_dense[i]);
}

TEST(SparseVecTest, ScatterIntoWritesAtOffset) {
  SparseVec s(4);
  s.PushBack(1, 2.0);
  s.PushBack(3, -1.0);
  Vec out(6, 0.0);
  s.ScatterInto(out.data() + 2);
  EXPECT_EQ(out, Vec({0.0, 0.0, 0.0, 2.0, 0.0, -1.0}));
}

// ------------------------------------------------------------- LruCache --

TEST(LruCacheTest, GetRefreshesRecencyAndPutEvictsLru) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  EXPECT_EQ(cache.size(), 2u);
  // Touch 1 so 2 becomes the eviction victim.
  ASSERT_NE(cache.Get(1), nullptr);
  cache.Put(3, "three");
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(*cache.Get(3), "three");
}

TEST(LruCacheTest, PutOverwritesInPlaceWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.Get(1), 11);
  // 2 is now LRU.
  cache.Put(3, 30);
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruCacheTest, ByteBudgetEvictsLruUntilUnderBudget) {
  LruCache<int, std::string> cache(10, /*byte_budget=*/100);
  cache.Put(1, "a", /*cost=*/40);
  cache.Put(2, "b", /*cost=*/40);
  EXPECT_EQ(cache.bytes(), 80u);
  cache.Put(3, "c", /*cost=*/40);  // 120 > 100: evict LRU entry 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, ByteBudgetNeverEvictsTheJustInsertedEntry) {
  // An entry larger than the whole budget still gets cached (the caller
  // holds a pointer into it); everything else is evicted around it.
  LruCache<int, int> cache(4, /*byte_budget=*/10);
  cache.Put(1, 7, /*cost=*/50);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(1), 7);
  cache.Put(2, 8, /*cost=*/60);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(*cache.Get(2), 8);
  EXPECT_EQ(cache.bytes(), 60u);
}

TEST(LruCacheTest, ByteBudgetOverwriteAdjustsAccounting) {
  LruCache<int, int> cache(4, /*byte_budget=*/100);
  cache.Put(1, 1, /*cost=*/30);
  cache.Put(2, 2, /*cost=*/30);
  cache.Put(1, 10, /*cost=*/80);  // 80 + 30 > 100: evict LRU entry 2
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(*cache.Get(1), 10);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ZeroByteBudgetDisablesByteEviction) {
  LruCache<int, int> cache(2);  // entry-count cap only
  cache.Put(1, 1, /*cost=*/1000000);
  cache.Put(2, 2, /*cost=*/1000000);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 2000000u);  // tracked, but never enforced
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, ExplicitZeroByteBudgetMatchesDefaultAndTracksEvictions) {
  // Passing byte_budget=0 explicitly is the same contract as omitting it:
  // costs are tracked for bytes() but only the entry-count cap evicts, and
  // a count eviction must give the departing entry's cost back.
  LruCache<int, int> cache(2, /*byte_budget=*/0);
  EXPECT_EQ(cache.byte_budget(), 0u);
  cache.Put(1, 1, /*cost=*/500);
  cache.Put(2, 2, /*cost=*/300);
  EXPECT_EQ(cache.bytes(), 800u);
  cache.Put(3, 3, /*cost=*/200);  // count cap evicts entry 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.bytes(), 500u);
}

TEST(LruCacheTest, OversizedEntryIsEvictedOnceItIsNoLongerNewest) {
  // A single entry over the whole budget caches (the caller holds its
  // pointer), but the very next insert pushes it out: budget pressure
  // always resolves against the LRU end, never the fresh entry.
  LruCache<int, int> cache(8, /*byte_budget=*/100);
  cache.Put(1, 1, /*cost=*/250);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 250u);
  cache.Put(2, 2, /*cost=*/10);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OverwriteCostChurnDoesNotDriftAccounting) {
  // Re-Put of an existing key swaps its cost in place. Churning the same
  // two keys through growing and shrinking costs must leave bytes() equal
  // to the sum of the live costs every step — any drift here would
  // eventually wedge byte-budget eviction in a long-lived engine.
  LruCache<int, int> cache(4, /*byte_budget=*/1u << 20);
  size_t cost_a = 0, cost_b = 0;
  for (int round = 0; round < 100; ++round) {
    cost_a = static_cast<size_t>((round * 37) % 512);
    cache.Put(1, round, cost_a);
    EXPECT_EQ(cache.bytes(), cost_a + cost_b) << "round " << round;
    cost_b = static_cast<size_t>((round * 91) % 256);
    cache.Put(2, -round, cost_b);
    EXPECT_EQ(cache.bytes(), cost_a + cost_b) << "round " << round;
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);  // always under budget
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

// -------------------------------------------------------- Sparse tf-idf --

TEST(TfIdfSparseTest, TransformSparseEqualsTransform) {
  Rng rng(17);
  const std::vector<std::string> vocab = {"aa", "bb", "cc", "dd", "ee",
                                          "ff", "gg", "hh", "ii", "jj"};
  std::vector<std::vector<std::string>> docs;
  for (int d = 0; d < 40; ++d) {
    std::vector<std::string> doc;
    const size_t len = 3 + rng.UniformInt(12);
    for (size_t t = 0; t < len; ++t) {
      doc.push_back(vocab[rng.UniformInt(vocab.size())]);
    }
    docs.push_back(std::move(doc));
  }
  text::TfIdfOptions opts;
  opts.max_features = 8;
  opts.min_df = 1;
  text::TfIdfVectorizer vectorizer(opts);
  ASSERT_TRUE(vectorizer.Fit(docs).ok());

  for (const auto& doc : docs) {
    const Vec dense = vectorizer.Transform(doc);
    const Vec sparse = vectorizer.TransformSparse(doc).ToDense();
    ASSERT_EQ(sparse.size(), dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
      EXPECT_EQ(sparse[i], dense[i]) << "doc term " << i;
    }
  }
  const auto batch = vectorizer.TransformBatchSparse(docs);
  ASSERT_EQ(batch.size(), docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    EXPECT_EQ(batch[d].ToDense(), vectorizer.Transform(docs[d]));
  }
}

// ------------------------------------------------------ Batched kernels --

TEST(BatchedKernelTest, MatMulTransposedBMatchesPerRowMatVec) {
  Rng rng(23);
  Matrix a(5, 12), bt(7, 12);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) a.Row(r)[c] = rng.Normal();
  }
  for (size_t r = 0; r < bt.rows(); ++r) {
    for (size_t c = 0; c < bt.cols(); ++c) bt.Row(r)[c] = rng.Normal();
  }
  const Matrix c = a.MatMulTransposedB(bt);
  ASSERT_EQ(c.rows(), 5u);
  ASSERT_EQ(c.cols(), 7u);
  for (size_t i = 0; i < a.rows(); ++i) {
    const Vec row = bt.MatVec(a.RowVec(i));
    for (size_t j = 0; j < bt.rows(); ++j) EXPECT_EQ(c.Row(i)[j], row[j]);
  }
}

TEST(BatchedKernelTest, DenseForwardBatchBitIdenticalToForward) {
  Rng rng(29);
  nn::Dense layer(20, 9);
  {
    nn::ParamRegistry reg;
    layer.RegisterParams(&reg, "dense");
    reg.InitGlorot(&rng);
  }
  Matrix x(6, 20);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      x.Row(r)[c] = rng.Bernoulli(0.3) ? rng.Normal() : 0.0;
    }
  }
  const Matrix batch = layer.ForwardBatch(x);
  for (size_t r = 0; r < x.rows(); ++r) {
    const Vec one = layer.Forward(x.RowVec(r));
    for (size_t j = 0; j < one.size(); ++j) {
      EXPECT_EQ(batch.Row(r)[j], one[j]);
    }
  }
}

TEST(BatchedKernelTest, SparseForwardBitIdenticalToDenseForward) {
  // Bitwise under the scalar backend; 1e-12 relative under SIMD, where the
  // sparse and dense reductions partition terms across lanes differently
  // (see nn/layers.h). The scalar-table comparison below pins the bitwise
  // contract regardless of the active dispatch.
  const bool bitwise = simd::Active() == simd::Backend::kScalar;
  Rng rng(31);
  nn::Dense layer(30, 8);
  {
    nn::ParamRegistry reg;
    layer.RegisterParams(&reg, "dense");
    reg.InitGlorot(&rng);
  }
  for (int round = 0; round < 5; ++round) {
    const Vec x = RandomSparseDense(&rng, 30, 0.2);
    const Vec dense = layer.Forward(x);
    const Vec sparse = layer.ForwardSparse(SparseVec::FromDense(x));
    ASSERT_EQ(sparse.size(), dense.size());
    for (size_t j = 0; j < dense.size(); ++j) {
      if (bitwise) {
        EXPECT_EQ(sparse[j], dense[j]);
      } else {
        EXPECT_NEAR(sparse[j], dense[j],
                    1e-12 * std::abs(dense[j]) + 1e-15);
      }
    }
  }
}

TEST(BatchedKernelTest, AttentionForwardBatchBitIdenticalToForward) {
  Rng rng(37);
  nn::ExogenousAttention attention(10, 10, 6);
  {
    nn::ParamRegistry reg;
    attention.RegisterParams(&reg, "att");
    reg.InitGlorot(&rng);
  }
  Matrix news(15, 10);
  for (size_t r = 0; r < news.rows(); ++r) {
    for (size_t c = 0; c < news.cols(); ++c) news.Row(r)[c] = rng.Normal();
  }
  Matrix queries(4, 10);
  for (size_t r = 0; r < queries.rows(); ++r) {
    for (size_t c = 0; c < queries.cols(); ++c) {
      queries.Row(r)[c] = rng.Normal();
    }
  }
  const Matrix batch = attention.ForwardBatch(queries, news);
  for (size_t r = 0; r < queries.rows(); ++r) {
    const Vec one = attention.Forward(queries.RowVec(r), news, nullptr);
    for (size_t h = 0; h < one.size(); ++h) {
      EXPECT_EQ(batch.Row(r)[h], one[h]);
    }
  }
  // Empty news window: zero output, like Forward.
  const Matrix empty = attention.ForwardBatch(queries, Matrix(0, 10));
  for (size_t r = 0; r < queries.rows(); ++r) {
    for (size_t h = 0; h < 6; ++h) EXPECT_EQ(empty.Row(r)[h], 0.0);
  }
}

// ---------------------------------------------- End-to-end bit-identity --

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.05;
  config.num_users = 700;
  config.history_length = 12;
  config.news_per_day = 40.0;
  return config;
}

FeatureConfig TestFeatureConfig() {
  FeatureConfig config;
  config.history_size = 8;
  config.history_tfidf_dim = 60;
  config.news_tfidf_dim = 60;
  config.tweet_tfidf_dim = 60;
  config.news_window = 15;
  config.doc2vec_dim = 12;
  config.doc2vec_epochs = 2;
  return config;
}

struct Fixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<FeatureExtractor> extractor;
  RetweetTask task;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture{
        datagen::SyntheticWorld::Generate(TestConfig(), 43), nullptr, {}};
    hatedetect::AnnotationOptions aopts;
    auto report = hatedetect::AnnotateWorld(&f->world, aopts);
    EXPECT_TRUE(report.ok());
    auto fx = FeatureExtractor::Build(f->world, TestFeatureConfig());
    EXPECT_TRUE(fx.ok());
    f->extractor =
        std::make_unique<FeatureExtractor>(std::move(fx).ValueOrDie());
    RetweetTaskOptions topts;
    topts.min_news = 15;
    topts.max_candidates = 24;
    auto task = BuildRetweetTask(*f->extractor, topts);
    EXPECT_TRUE(task.ok());
    f->task = std::move(task).ValueOrDie();
    return f;
  }();
  return *fixture;
}

std::unique_ptr<Retina> TrainModel(const RetweetTask& task, bool dynamic) {
  RetinaOptions opts;
  opts.hidden = 12;
  opts.epochs = 2;
  opts.dynamic = dynamic;
  auto model = std::make_unique<Retina>(task.user_dim, task.content_dim,
                                        task.embed_dim, task.NumIntervals(),
                                        opts);
  EXPECT_TRUE(model->Train(task).ok());
  return model;
}

// Per-candidate reference: the pre-batching ScoreCandidates loop.
Vec SerialScores(const Retina& model, const RetweetTask& task,
                 const std::vector<RetweetCandidate>& candidates) {
  Vec scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = model.PredictScore(task.tweets[candidates[i].tweet_pos],
                                   candidates[i].user_features);
  }
  return scores;
}

TEST(BatchedRetinaTest, StaticScoreCandidatesBitIdenticalToSerial) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const Vec batched = model->ScoreCandidates(f.task, f.task.test);
  const Vec serial = SerialScores(*model, f.task, f.task.test);
  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(batched[i], serial[i]) << "candidate " << i;
  }
}

TEST(BatchedRetinaTest, DynamicBatchBitIdenticalToSerial) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/true);
  const Vec batched = model->ScoreCandidates(f.task, f.task.test);
  const Vec serial = SerialScores(*model, f.task, f.task.test);
  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(batched[i], serial[i]) << "candidate " << i;
  }
  // Per-interval rows too, through the public batched API.
  for (size_t i = 0; i < f.task.test.size();) {
    size_t j = i + 1;
    while (j < f.task.test.size() &&
           f.task.test[j].tweet_pos == f.task.test[i].tweet_pos) {
      ++j;
    }
    std::vector<const Vec*> users;
    for (size_t s = i; s < j; ++s) {
      users.push_back(&f.task.test[s].user_features);
    }
    const TweetContext& ctx = f.task.tweets[f.task.test[i].tweet_pos];
    const Matrix probs = model->PredictDynamicBatch(ctx, users);
    for (size_t s = i; s < j; ++s) {
      const Vec one = model->PredictDynamic(ctx, f.task.test[s].user_features);
      for (size_t m = 0; m < one.size(); ++m) {
        EXPECT_EQ(probs.Row(s - i)[m], one[m]);
      }
    }
    i = j;
  }
}

TEST(ScoringEngineTest, AllModesBitIdenticalToModelScores) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);

  for (const bool batched : {false, true}) {
    for (const bool cached : {false, true}) {
      ScoringEngineOptions opts;
      opts.batched = batched;
      opts.cache_features = cached;
      ScoringEngine engine(model.get(), f.extractor.get(), opts);
      const Vec served = engine.ScoreCandidates(f.task, f.task.test);
      ASSERT_EQ(served.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(served[i], reference[i])
            << "batched=" << batched << " cached=" << cached << " i=" << i;
      }
    }
  }
}

TEST(ScoringEngineTest, DynamicModeBitIdenticalToModelScores) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/true);
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  ScoringEngine engine(model.get(), f.extractor.get());
  const Vec served = engine.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(served.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
}

TEST(ScoringEngineTest, CacheStatsTrackHitsAndRepeatRequestsHit) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  ScoringEngine engine(model.get(), f.extractor.get());
  const Vec first = engine.ScoreCandidates(f.task, f.task.test);
  const auto after_first = engine.stats();
  EXPECT_GT(after_first.requests, 0u);
  EXPECT_EQ(after_first.candidates, f.task.test.size());
  EXPECT_GT(after_first.user_misses, 0u);
  EXPECT_EQ(after_first.tweet_hits, 0u);

  // Replaying the same workload hits both caches for every lookup.
  const Vec second = engine.ScoreCandidates(f.task, f.task.test);
  const auto after_second = engine.stats();
  EXPECT_EQ(after_second.user_misses, after_first.user_misses);
  EXPECT_EQ(after_second.tweet_misses, after_first.tweet_misses);
  EXPECT_GT(after_second.tweet_hits, 0u);
  EXPECT_GT(after_second.user_hits, after_first.user_hits);
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(second[i], first[i]);
}

// -------------------------------------------------------- Checkpointing --

// The acceptance bar for the checkpoint layer: save -> load -> score is
// bit-exact for both RETINA heads, through the serialized byte stream.
void CheckRetinaRoundTrip(bool dynamic) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, dynamic);
  io::Checkpoint ckpt;
  ASSERT_TRUE(model->Save(&ckpt).ok());
  auto reloaded =
      io::Checkpoint::DeserializeFromBytes(ckpt.SerializeToBytes());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  auto loaded = Retina::Load(reloaded.ValueOrDie());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto loaded_model = std::move(loaded).ValueOrDie();

  EXPECT_EQ(loaded_model->options().dynamic, dynamic);
  EXPECT_EQ(loaded_model->input_dim(), model->input_dim());
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  const Vec scored = loaded_model->ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(scored.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(scored[i], reference[i]) << "candidate " << i;
  }
}

TEST(RetinaCheckpointTest, StaticSaveLoadScoresBitIdentically) {
  CheckRetinaRoundTrip(/*dynamic=*/false);
}

TEST(RetinaCheckpointTest, DynamicSaveLoadScoresBitIdentically) {
  CheckRetinaRoundTrip(/*dynamic=*/true);
}

TEST(ScoringEngineTest, FromCheckpointBitIdenticalAcrossAllModes) {
  // A served engine rebuilt purely from checkpoint state must reproduce
  // the in-process model's scores across the full batched x cached grid.
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  io::Checkpoint ckpt;
  ASSERT_TRUE(model->Save(&ckpt, "retina/").ok());
  f.extractor->SaveTo(&ckpt, "features/");
  auto reloaded =
      io::Checkpoint::DeserializeFromBytes(ckpt.SerializeToBytes());
  ASSERT_TRUE(reloaded.ok());

  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  for (const bool batched : {false, true}) {
    for (const bool cached : {false, true}) {
      ScoringEngineOptions opts;
      opts.batched = batched;
      opts.cache_features = cached;
      auto engine =
          ScoringEngine::FromCheckpoint(f.world, reloaded.ValueOrDie(), opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      const Vec served =
          engine.ValueOrDie()->ScoreCandidates(f.task, f.task.test);
      ASSERT_EQ(served.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(served[i], reference[i])
            << "batched=" << batched << " cached=" << cached << " i=" << i;
      }
    }
  }
}

TEST(ScoringEngineTest, BundleFromDiskBitIdenticalToInProcessModel) {
  // The train-once / serve-many path the CLI uses: SaveScoringBundle to a
  // directory, LoadScoringBundle in a "fresh process", score identically.
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/true);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("retina_bundle_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  ScoringBundleMeta meta;
  meta.task_seed = 43;
  ASSERT_TRUE(SaveScoringBundle(dir, *model, *f.extractor, meta).ok());

  auto bundle = LoadScoringBundle(dir, f.world);
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const LoadedScoringBundle& loaded = bundle.ValueOrDie();
  EXPECT_EQ(loaded.meta.task_seed, 43u);

  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  ScoringEngine engine(loaded.model.get(), loaded.extractor.get());
  const Vec served = engine.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(served.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
}

TEST(ScoringEngineTest, TinyUserCacheEvictsAndStaysCorrect) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  ScoringEngineOptions opts;
  opts.user_cache_capacity = 4;  // far below the distinct-user count
  opts.tweet_cache_capacity = 2;
  ScoringEngine engine(model.get(), f.extractor.get(), opts);
  const Vec served = engine.ScoreCandidates(f.task, f.task.test);
  EXPECT_GT(engine.stats().user_evictions, 0u);
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
}

// ---------------------------------------------------- Tiered user store --

// Builds the shared fixture's user store once per test in a fresh temp
// dir; callers remove it on success (TearDown-free TEST style matches the
// rest of this file, and a leaked dir under /tmp on failure aids triage).
std::string BuildFixtureStore(const std::string& tag) {
  auto& f = SharedFixture();
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("retina_engine_store_" + std::to_string(::getpid()) + "_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  const Status st = ScoringEngine::BuildStore(*f.extractor, dir);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return dir;
}

TEST(ScoringEngineStoreTest, StoreTierBitIdenticalToComputePath) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const std::string dir = BuildFixtureStore("bitid");

  ScoringEngine plain(model.get(), f.extractor.get());
  ScoringEngine tiered(model.get(), f.extractor.get());
  ASSERT_TRUE(tiered.AttachStore(dir).ok());
  ASSERT_NE(tiered.store(), nullptr);
  const Vec reference = plain.ScoreCandidates(f.task, f.task.test);
  const Vec served = tiered.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(served.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
  EXPECT_GT(tiered.stats().store_hits, 0u);
  EXPECT_EQ(tiered.stats().store_misses, 0u);  // store covers every user
  EXPECT_EQ(tiered.stats().store_errors, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ScoringEngineStoreTest, TinyLruServesFromStoreAndStaysBitIdentical) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  const std::string dir = BuildFixtureStore("tinylru");

  // A one-entry, byte-budgeted LRU forces nearly every candidate through
  // the store tier; with full coverage the compute tier never runs.
  ScoringEngineOptions opts;
  opts.user_cache_capacity = 1;
  opts.user_cache_bytes = 256;
  ScoringEngine engine(model.get(), f.extractor.get(), opts);
  ASSERT_TRUE(engine.AttachStore(dir).ok());
  const Vec served = engine.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(served.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
  EXPECT_EQ(engine.stats().store_hits, engine.stats().user_misses);
  EXPECT_EQ(engine.stats().store_promotes, engine.stats().store_hits);
  EXPECT_GT(engine.stats().store_hits, 1u);
  EXPECT_GT(engine.stats().user_evictions, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ScoringEngineStoreTest, CorruptStoreFallsBackToComputeBitIdentically) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const Vec reference = model->ScoreCandidates(f.task, f.task.test);
  const std::string dir = BuildFixtureStore("corrupt");

  // Flip a byte inside the first block's extent: lookups hitting it fail
  // their checksum and the engine must recompute, bit-identically.
  const std::string data_path =
      (std::filesystem::path(dir) / store::kStoreDataFile).string();
  {
    std::ifstream in(data_path, std::ios::binary);
    std::string bytes(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>{});
    ASSERT_GT(bytes.size(), 40u);
    bytes[36] ^= 0x01;
    std::ofstream out(data_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ScoringEngine engine(model.get(), f.extractor.get());
  ASSERT_TRUE(engine.AttachStore(dir).ok());  // corruption found lazily
  const Vec served = engine.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(served.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(served[i], reference[i]) << "candidate " << i;
  }
  EXPECT_GT(engine.stats().store_errors, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ScoringEngineStoreTest, AttachStoreRejectsDimMismatch) {
  auto& f = SharedFixture();
  const auto model = TrainModel(f.task, /*dynamic=*/false);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("retina_engine_store_" + std::to_string(::getpid()) + "_dim"))
          .string();
  std::filesystem::remove_all(dir);
  auto builder = store::FeatureStoreBuilder::Create(
      dir, f.extractor->HistoryBlockDim() + 1);
  ASSERT_TRUE(builder.ok()) << builder.status().ToString();
  ASSERT_TRUE(builder.ValueOrDie()->Finish().ok());

  ScoringEngine engine(model.get(), f.extractor.get());
  const Status st = engine.AttachStore(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(engine.store(), nullptr);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace retina::core
