// Tests for the disk-backed tiered user feature store: Bloom filter
// contract (no false negatives, pinned false-positive rate, sizing knob),
// builder/reader round-trip bit-exactness, lookup outcome taxonomy, and
// the corruption matrix — truncation, flipped bytes, stale index entries —
// which must always surface as Status errors, never UB.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/rng.h"
#include "common/sparse_vec.h"
#include "store/bloom.h"
#include "store/feature_store.h"

namespace retina::store {
namespace {

// ---------------------------------------------------------------- Bloom --

std::vector<uint64_t> SequentialKeys(uint64_t start, size_t n,
                                     uint64_t stride = 1) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(start + i * stride);
  return keys;
}

TEST(BloomFilterTest, NeverFalseNegative) {
  const auto keys = SequentialKeys(17, 5000, 3);
  const BloomFilter bloom = BloomFilter::Build(keys);
  for (const uint64_t k : keys) {
    EXPECT_TRUE(bloom.MayContain(k)) << "false negative for key " << k;
  }
}

TEST(BloomFilterTest, FalsePositiveRatePinnedAtTenBitsPerKey) {
  // Theory: fp ~ 0.6185^10 ~ 0.8% at 10 bits/key. Pin an order-of-magnitude
  // ceiling so a broken hash or bit-set path (fp -> ~100%) can't hide, with
  // enough slack that hash-seed luck never flakes the suite.
  const auto keys = SequentialKeys(0, 4096, 2);  // even keys stored
  const BloomFilter bloom = BloomFilter::Build(keys, {10.0});
  size_t fp = 0;
  const size_t probes = 4096;
  for (size_t i = 0; i < probes; ++i) {
    fp += bloom.MayContain(2 * i + 1);  // odd keys are all absent
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.05) << "fp rate " << rate << " at 10 bits/key";
}

TEST(BloomFilterTest, MoreBitsPerKeyMeansFewerFalsePositives) {
  const auto keys = SequentialKeys(0, 4096, 2);
  size_t fp_small = 0, fp_large = 0;
  const BloomFilter small = BloomFilter::Build(keys, {3.0});
  const BloomFilter large = BloomFilter::Build(keys, {14.0});
  EXPECT_LT(small.num_bits(), large.num_bits());
  for (size_t i = 0; i < 4096; ++i) {
    fp_small += small.MayContain(2 * i + 1);
    fp_large += large.MayContain(2 * i + 1);
  }
  // 3 bits/key ~ 24% theoretical fp, 14 bits/key ~ 0.1%: a wide enough gap
  // that the comparison is deterministic in practice.
  EXPECT_GT(fp_small, fp_large);
}

TEST(BloomFilterTest, FromPartsRoundTripsProbeAnswers) {
  const auto keys = SequentialKeys(100, 512, 7);
  const BloomFilter built = BloomFilter::Build(keys, {8.0});
  auto restored = BloomFilter::FromParts(built.bits(), built.num_probes());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const BloomFilter& r = restored.ValueOrDie();
  EXPECT_EQ(r.num_bits(), built.num_bits());
  for (uint64_t k = 0; k < 8000; ++k) {
    EXPECT_EQ(r.MayContain(k), built.MayContain(k)) << "key " << k;
  }
}

TEST(BloomFilterTest, FromPartsRejectsInconsistentParts) {
  EXPECT_FALSE(BloomFilter::FromParts("", 3).ok());
  EXPECT_FALSE(BloomFilter::FromParts(std::string(16, '\xff'), 0).ok());
  EXPECT_FALSE(BloomFilter::FromParts(std::string(16, '\xff'), 31).ok());
  EXPECT_TRUE(BloomFilter::FromParts("", 0).ok());  // empty filter
}

TEST(BloomFilterTest, EmptyFilterRejectsEveryProbe) {
  const BloomFilter bloom = BloomFilter::Build({});
  EXPECT_FALSE(bloom.MayContain(0));
  EXPECT_FALSE(bloom.MayContain(12345));
}

// ------------------------------------------------------------ round trip --

SparseVec RandomBlock(size_t dim, uint64_t seed) {
  Rng rng(seed);
  SparseVec v(dim);
  for (size_t i = 0; i < dim; ++i) {
    if (rng.Bernoulli(0.3)) v.PushBack(i, rng.Normal());
  }
  return v;
}

class FeatureStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("retina_store_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds a store of `n` users with ids 3*u (gaps make "in-range absent"
  // ids plentiful), small blocks so several blocks exist.
  void BuildStore(size_t n, size_t dim = 24, size_t block_entries = 16) {
    dim_ = dim;
    FeatureStoreOptions opts;
    opts.block_entries = block_entries;
    auto builder = FeatureStoreBuilder::Create(dir_, dim, opts);
    ASSERT_TRUE(builder.ok()) << builder.status().ToString();
    for (size_t u = 0; u < n; ++u) {
      ASSERT_TRUE(
          builder.ValueOrDie()->Add(3 * u, RandomBlock(dim, 1000 + u)).ok());
    }
    ASSERT_EQ(builder.ValueOrDie()->entries_added(), n);
    ASSERT_TRUE(builder.ValueOrDie()->Finish().ok());
  }

  std::string DataPath() const {
    return (std::filesystem::path(dir_) / kStoreDataFile).string();
  }
  std::string IndexPath() const {
    return (std::filesystem::path(dir_) / kStoreIndexFile).string();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
  }

  static void FlipByte(const std::string& path, size_t offset) {
    std::string bytes = ReadAll(path);
    ASSERT_LT(offset, bytes.size());
    bytes[offset] ^= 0x01;
    WriteAll(path, bytes);
  }

  std::string dir_;
  size_t dim_ = 0;
};

TEST_F(FeatureStoreTest, RoundTripsEveryEntryBitExact) {
  const size_t n = 150;
  BuildStore(n);
  auto opened = FeatureStore::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& store = opened.ValueOrDie();
  EXPECT_EQ(store->dim(), dim_);
  EXPECT_EQ(store->num_entries(), n);
  EXPECT_EQ(store->num_blocks(), (n + 15) / 16);
  for (size_t u = 0; u < n; ++u) {
    SparseVec out;
    LookupOutcome outcome;
    ASSERT_TRUE(store->Lookup(3 * u, &out, &outcome).ok());
    ASSERT_EQ(outcome, LookupOutcome::kFound) << "user " << 3 * u;
    const SparseVec want = RandomBlock(dim_, 1000 + u);
    EXPECT_EQ(out.dim(), want.dim());
    EXPECT_EQ(out.indices(), want.indices());
    // Bitwise, not approximate: values are stored as IEEE-754 bit patterns.
    EXPECT_EQ(out.values(), want.values());
  }
  EXPECT_EQ(store->stats().found, n);
  EXPECT_EQ(store->stats().lookups, n);
  // Every block verified its checksum exactly once.
  EXPECT_EQ(store->stats().blocks_verified, store->num_blocks());
}

TEST_F(FeatureStoreTest, LookupOutcomeTaxonomy) {
  BuildStore(64);  // ids 0, 3, ..., 189
  auto opened = FeatureStore::Open(dir_);
  ASSERT_TRUE(opened.ok());
  const auto& store = opened.ValueOrDie();
  SparseVec out;
  LookupOutcome outcome;

  // Beyond every block's range: resolved by the index alone.
  ASSERT_TRUE(store->Lookup(500, &out, &outcome).ok());
  EXPECT_EQ(outcome, LookupOutcome::kAbsentRange);
  EXPECT_EQ(store->stats().range_skips, 1u);

  // In range but absent (ids not divisible by 3): Bloom skip or, on a
  // false positive, an in-block miss — never kFound, never an error.
  size_t bloom_skips = 0, block_misses = 0;
  for (uint64_t u = 1; u < 190; u += 3) {
    ASSERT_TRUE(store->Lookup(u, &out, &outcome).ok());
    ASSERT_NE(outcome, LookupOutcome::kFound) << "user " << u;
    bloom_skips += outcome == LookupOutcome::kAbsentBloom;
    block_misses += outcome == LookupOutcome::kAbsentBlock;
  }
  EXPECT_EQ(store->stats().bloom_skips, bloom_skips);
  EXPECT_EQ(store->stats().bloom_false_positives, block_misses);
  // At 10 bits/key the Bloom filters must carry the overwhelming majority.
  EXPECT_GT(bloom_skips, block_misses);
}

TEST_F(FeatureStoreTest, BuilderRejectsOutOfOrderAndWrongDim) {
  auto builder = FeatureStoreBuilder::Create(dir_, 8);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder.ValueOrDie()->Add(5, RandomBlock(8, 1)).ok());
  EXPECT_FALSE(builder.ValueOrDie()->Add(5, RandomBlock(8, 2)).ok());
  EXPECT_FALSE(builder.ValueOrDie()->Add(4, RandomBlock(8, 3)).ok());
  EXPECT_FALSE(builder.ValueOrDie()->Add(9, RandomBlock(9, 4)).ok());
  ASSERT_TRUE(builder.ValueOrDie()->Add(9, RandomBlock(8, 5)).ok());
  ASSERT_TRUE(builder.ValueOrDie()->Finish().ok());
  EXPECT_FALSE(builder.ValueOrDie()->Add(11, RandomBlock(8, 6)).ok());
}

TEST_F(FeatureStoreTest, AbandonedBuilderLeavesNoFiles) {
  {
    auto builder = FeatureStoreBuilder::Create(dir_, 8);
    ASSERT_TRUE(builder.ok());
    ASSERT_TRUE(builder.ValueOrDie()->Add(1, RandomBlock(8, 1)).ok());
    // Destroyed without Finish.
  }
  EXPECT_FALSE(std::filesystem::exists(DataPath()));
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(FeatureStoreTest, EmptyStoreOpensAndAnswersAbsent) {
  auto builder = FeatureStoreBuilder::Create(dir_, 8);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder.ValueOrDie()->Finish().ok());
  auto opened = FeatureStore::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.ValueOrDie()->num_blocks(), 0u);
  SparseVec out;
  LookupOutcome outcome;
  ASSERT_TRUE(opened.ValueOrDie()->Lookup(0, &out, &outcome).ok());
  EXPECT_EQ(outcome, LookupOutcome::kAbsentRange);
}

// ------------------------------------------------------------ corruption --

TEST_F(FeatureStoreTest, OpenFailsOnTruncatedDataFile) {
  BuildStore(64);
  std::string bytes = ReadAll(DataPath());
  bytes.resize(bytes.size() - 9);
  WriteAll(DataPath(), bytes);
  auto opened = FeatureStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("truncated"), std::string::npos)
      << opened.status().ToString();
}

TEST_F(FeatureStoreTest, OpenFailsOnBadMagic) {
  BuildStore(16);
  FlipByte(DataPath(), 0);
  auto opened = FeatureStore::Open(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
}

TEST_F(FeatureStoreTest, OpenFailsOnCorruptIndexCheckpoint) {
  BuildStore(64);
  const std::string bytes = ReadAll(IndexPath());
  FlipByte(IndexPath(), bytes.size() / 2);
  EXPECT_FALSE(FeatureStore::Open(dir_).ok());
}

TEST_F(FeatureStoreTest, OpenFailsOnMissingFiles) {
  BuildStore(16);
  std::filesystem::remove(DataPath());
  EXPECT_FALSE(FeatureStore::Open(dir_).ok());
  BuildStore(16);
  std::filesystem::remove(IndexPath());
  EXPECT_FALSE(FeatureStore::Open(dir_).ok());
}

TEST_F(FeatureStoreTest, FlippedBlockByteFailsThatBlockOnly) {
  BuildStore(64);  // 4 blocks of 16, ids 0..189
  // Flip a byte inside the first block's extent (just past the data-file
  // header): its checksum must fail, other blocks must still serve.
  FlipByte(DataPath(), 16 + 20);
  auto opened = FeatureStore::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& store = opened.ValueOrDie();
  SparseVec out;
  LookupOutcome outcome;
  const Status bad = store->Lookup(0, &out, &outcome);  // block 0
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("corrupt store block 0"), std::string::npos)
      << bad.ToString();
  // A later block is untouched: id 3*63 = 189 lives in the last block.
  ASSERT_TRUE(store->Lookup(189, &out, &outcome).ok());
  EXPECT_EQ(outcome, LookupOutcome::kFound);
  EXPECT_EQ(out.indices(), RandomBlock(dim_, 1000 + 63).indices());
}

TEST_F(FeatureStoreTest, StaleIndexEntryFailsLookupNotUB) {
  // Simulate a stale index: keep the index of build A, swap in the data
  // file of build B (same users, same layout, different values). Open
  // succeeds — checksums are verified lazily — but every block lookup
  // must fail its checksum, not decode the wrong bytes.
  BuildStore(32);
  const std::string stale_index = ReadAll(IndexPath());
  std::filesystem::remove_all(dir_);
  {
    FeatureStoreOptions opts;
    opts.block_entries = 16;
    auto builder = FeatureStoreBuilder::Create(dir_, dim_, opts);
    ASSERT_TRUE(builder.ok());
    for (size_t u = 0; u < 32; ++u) {
      // Same sparsity pattern (indices drive layout), different values.
      SparseVec block = RandomBlock(dim_, 1000 + u);
      block.Scale(2.0);
      ASSERT_TRUE(builder.ValueOrDie()->Add(3 * u, block).ok());
    }
    ASSERT_TRUE(builder.ValueOrDie()->Finish().ok());
  }
  WriteAll(IndexPath(), stale_index);
  auto opened = FeatureStore::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  SparseVec out;
  LookupOutcome outcome;
  const Status st = opened.ValueOrDie()->Lookup(0, &out, &outcome);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace retina::store
