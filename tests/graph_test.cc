// Unit tests for src/graph: CSR network, BFS, susceptible counting and the
// follower-network generator.

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/information_network.h"

namespace retina::graph {
namespace {

// A small diamond: 0 -> {1, 2} -> 3  (edge u->v means v follows u).
InformationNetwork Diamond() {
  auto r = InformationNetwork::FromEdges(
      4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_TRUE(r.ok());
  return std::move(r).ValueOrDie();
}

TEST(InformationNetworkTest, EmptyDefault) {
  InformationNetwork net;
  EXPECT_EQ(net.NumNodes(), 0u);
  EXPECT_EQ(net.NumEdges(), 0u);
}

TEST(InformationNetworkTest, FromEdgesRejectsOutOfRange) {
  auto r = InformationNetwork::FromEdges(2, {{0, 5}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(InformationNetworkTest, DropsSelfLoopsAndDuplicates) {
  auto r = InformationNetwork::FromEdges(
      3, {{0, 1}, {0, 1}, {1, 1}, {1, 2}});
  ASSERT_TRUE(r.ok());
  const auto net = std::move(r).ValueOrDie();
  EXPECT_EQ(net.NumEdges(), 2u);
}

TEST(InformationNetworkTest, FollowersAndFollowees) {
  const auto net = Diamond();
  const auto f0 = net.Followers(0);
  EXPECT_EQ(std::vector<NodeId>(f0.begin(), f0.end()),
            (std::vector<NodeId>{1, 2}));
  const auto fe3 = net.Followees(3);
  EXPECT_EQ(std::vector<NodeId>(fe3.begin(), fe3.end()),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(net.FollowerCount(3), 0u);
  EXPECT_EQ(net.FolloweeCount(0), 0u);
}

TEST(InformationNetworkTest, HasEdge) {
  const auto net = Diamond();
  EXPECT_TRUE(net.HasEdge(0, 1));
  EXPECT_TRUE(net.HasEdge(2, 3));
  EXPECT_FALSE(net.HasEdge(1, 0));
  EXPECT_FALSE(net.HasEdge(0, 3));
}

TEST(InformationNetworkTest, ShortestPath) {
  const auto net = Diamond();
  EXPECT_EQ(net.ShortestPathLength(0, 0), 0);
  EXPECT_EQ(net.ShortestPathLength(0, 1), 1);
  EXPECT_EQ(net.ShortestPathLength(0, 3), 2);
  EXPECT_EQ(net.ShortestPathLength(3, 0), kUnreachable);
}

TEST(InformationNetworkTest, ShortestPathRespectsCutoff) {
  const auto net = Diamond();
  EXPECT_EQ(net.ShortestPathLength(0, 3, /*cutoff=*/1), kUnreachable);
  EXPECT_EQ(net.ShortestPathLength(0, 3, /*cutoff=*/2), 2);
}

TEST(InformationNetworkTest, BfsDistances) {
  const auto net = Diamond();
  const auto dist = net.BfsDistances(0, 5);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 1, 2}));
}

TEST(InformationNetworkTest, BfsOnChainRespectsDepth) {
  // 0 -> 1 -> 2 -> 3 -> 4
  auto r = InformationNetwork::FromEdges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_TRUE(r.ok());
  const auto net = std::move(r).ValueOrDie();
  const auto dist = net.BfsDistances(0, 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(CountSusceptibleTest, ExcludesParticipants) {
  const auto net = Diamond();
  // Participants {0}: followers 1 and 2 are susceptible.
  EXPECT_EQ(CountSusceptible(net, {0}), 2u);
  // Participants {0, 1}: 2 susceptible (follower of 0) plus 3 (of 1).
  EXPECT_EQ(CountSusceptible(net, {0, 1}), 2u);
  // Everyone participating: nobody left.
  EXPECT_EQ(CountSusceptible(net, {0, 1, 2, 3}), 0u);
}

// -------------------------------------------------------------- Generator --

std::vector<Vec> MakeInterests(size_t n, size_t topics, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out(n);
  for (auto& v : out) v = rng.Dirichlet(topics, 0.3);
  return out;
}

TEST(GeneratorTest, ProducesRoughlyRequestedDensity) {
  Rng rng(1);
  const size_t n = 500;
  const auto interests = MakeInterests(n, 5, 2);
  std::vector<int> echo(n, -1);
  NetworkGenOptions opts;
  opts.mean_followees = 10.0;
  opts.echo_chamber_density = 0.0;
  const auto net = GenerateFollowerNetwork(interests, echo, opts, &rng);
  EXPECT_EQ(net.NumNodes(), n);
  const double mean_deg =
      static_cast<double>(net.NumEdges()) / static_cast<double>(n);
  EXPECT_GT(mean_deg, 5.0);
  EXPECT_LT(mean_deg, 15.0);
}

TEST(GeneratorTest, PreferentialAttachmentYieldsHeavyTail) {
  Rng rng(3);
  const size_t n = 1500;
  const auto interests = MakeInterests(n, 5, 4);
  std::vector<int> echo(n, -1);
  NetworkGenOptions opts;
  opts.mean_followees = 12.0;
  opts.preferential_weight = 0.9;
  opts.echo_chamber_density = 0.0;
  const auto net = GenerateFollowerNetwork(interests, echo, opts, &rng);
  const DegreeStats stats = ComputeDegreeStats(net);
  // The top 1% of accounts should hold far more than 1% of followers.
  EXPECT_GT(stats.top1pct_share, 0.05);
  EXPECT_GT(stats.max_followers, 5.0 * stats.mean_followers);
}

TEST(GeneratorTest, EchoChamberDensifiesCommunity) {
  Rng rng(5);
  const size_t n = 300;
  const auto interests = MakeInterests(n, 4, 6);
  std::vector<int> echo(n, -1);
  // Users 0..19 form one echo community.
  for (size_t i = 0; i < 20; ++i) echo[i] = 0;
  NetworkGenOptions opts;
  opts.mean_followees = 5.0;
  opts.echo_chamber_density = 0.5;
  const auto net = GenerateFollowerNetwork(interests, echo, opts, &rng);

  // Count intra-community edges among the first 20 users.
  size_t intra = 0;
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v : net.Followers(u)) {
      if (v < 20) ++intra;
    }
  }
  // Expected ~ 20*19*0.5 = 190 from densification alone.
  EXPECT_GT(intra, 100u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  const auto interests = MakeInterests(200, 4, 7);
  std::vector<int> echo(200, -1);
  NetworkGenOptions opts;
  Rng r1(9), r2(9);
  const auto n1 = GenerateFollowerNetwork(interests, echo, opts, &r1);
  const auto n2 = GenerateFollowerNetwork(interests, echo, opts, &r2);
  ASSERT_EQ(n1.NumEdges(), n2.NumEdges());
  for (NodeId u = 0; u < 200; ++u) {
    const auto a = n1.Followers(u), b = n2.Followers(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(DegreeStatsTest, EmptyNetwork) {
  InformationNetwork net;
  const DegreeStats stats = ComputeDegreeStats(net);
  EXPECT_DOUBLE_EQ(stats.mean_followers, 0.0);
}

}  // namespace
}  // namespace retina::graph
