// Property-based tests: invariants that must hold across random seeds,
// shapes and inputs, exercised with parameterized sweeps (TEST_P).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"
#include "datagen/world.h"
#include "graph/generators.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/preprocess.h"
#include "nn/attention.h"
#include "nn/param_registry.h"
#include "nn/layers.h"
#include "text/tfidf.h"

namespace retina {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1337, 99991));

// ------------------------------------------------------------------- Rng --

TEST_P(SeedSweep, RngUniformStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST_P(SeedSweep, RngSplitTreeIsDeterministic) {
  Rng a(GetParam()), b(GetParam());
  Rng a1 = a.Split();
  Rng a2 = a.Split();
  Rng b1 = b.Split();
  Rng b2 = b.Split();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(a1.NextU64(), b1.NextU64());
    ASSERT_EQ(a2.NextU64(), b2.NextU64());
  }
}

TEST_P(SeedSweep, DirichletAlwaysOnSimplex) {
  Rng rng(GetParam());
  for (size_t k : {2u, 5u, 20u}) {
    for (double alpha : {0.1, 1.0, 10.0}) {
      const auto p = rng.Dirichlet(k, alpha);
      double total = 0.0;
      for (double v : p) {
        ASSERT_GE(v, 0.0);
        total += v;
      }
      ASSERT_NEAR(total, 1.0, 1e-9);
    }
  }
}

// ---------------------------------------------------------------- Matrix --

TEST_P(SeedSweep, MatMulTransposeIdentity) {
  Rng rng(GetParam());
  Matrix a(5, 7), b(7, 4);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  const Matrix ab_t = a.MatMul(b).Transpose();
  const Matrix bt_at = b.Transpose().MatMul(a.Transpose());
  ASSERT_EQ(ab_t.rows(), bt_at.rows());
  for (size_t i = 0; i < ab_t.rows(); ++i) {
    for (size_t j = 0; j < ab_t.cols(); ++j) {
      ASSERT_NEAR(ab_t(i, j), bt_at(i, j), 1e-9);
    }
  }
}

TEST_P(SeedSweep, CosineSimilarityBounded) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Vec a(8), b(8);
    for (double& v : a) v = rng.Normal();
    for (double& v : b) v = rng.Normal();
    const double c = CosineSimilarity(a, b);
    ASSERT_GE(c, -1.0 - 1e-12);
    ASSERT_LE(c, 1.0 + 1e-12);
    ASSERT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
  }
}

TEST_P(SeedSweep, SoftmaxIsDistributionAndOrderPreserving) {
  Rng rng(GetParam());
  Vec v(10);
  for (double& x : v) x = rng.Normal(0.0, 5.0);
  Vec s = v;
  SoftmaxInPlace(&s);
  ASSERT_NEAR(Sum(s), 1.0, 1e-9);
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = 0; j < v.size(); ++j) {
      if (v[i] < v[j]) ASSERT_LE(s[i], s[j] + 1e-12);
    }
  }
}

// --------------------------------------------------------------- Metrics --

TEST_P(SeedSweep, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam());
  std::vector<int> y(300);
  Vec s(300);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.Bernoulli(0.3);
    s[i] = rng.Normal();
  }
  Vec warped = s;
  for (double& v : warped) v = std::tanh(v) * 3.0 + 10.0;  // monotone
  ASSERT_NEAR(ml::RocAuc(y, s), ml::RocAuc(y, warped), 1e-12);
}

TEST_P(SeedSweep, MacroF1SymmetricUnderLabelFlip) {
  Rng rng(GetParam());
  std::vector<int> y(200), p(200);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.Bernoulli(0.2);
    p[i] = rng.Bernoulli(0.4);
  }
  std::vector<int> y_flip = y, p_flip = p;
  for (int& v : y_flip) v = 1 - v;
  for (int& v : p_flip) v = 1 - v;
  ASSERT_NEAR(ml::MacroF1(y, p), ml::MacroF1(y_flip, p_flip), 1e-12);
}

TEST_P(SeedSweep, PerfectRankingMaximizesMapAndHits) {
  Rng rng(GetParam());
  ml::RankingQuery q;
  q.scores.resize(30);
  q.relevant.resize(30);
  for (size_t i = 0; i < 30; ++i) {
    q.relevant[i] = rng.Bernoulli(0.3);
    q.scores[i] = q.relevant[i] == 1 ? rng.Uniform(0.5, 1.0)
                                     : rng.Uniform(0.0, 0.49);
  }
  size_t n_rel = 0;
  for (int r : q.relevant) n_rel += (r == 1);
  if (n_rel == 0) return;
  ASSERT_NEAR(ml::MeanAveragePrecisionAtK({q}, 30), 1.0, 1e-12);
  ASSERT_NEAR(ml::HitsAtK({q}, 30), 1.0, 1e-12);
}

// ------------------------------------------------------------- Sampling --

TEST_P(SeedSweep, DownsamplePreservesMinorityExactly) {
  Rng rng(GetParam());
  ml::Dataset d;
  d.X = Matrix(400, 2);
  d.y.resize(400);
  for (size_t i = 0; i < 400; ++i) {
    d.y[i] = rng.Bernoulli(0.1);
    d.X(i, 0) = static_cast<double>(i);  // identity marker
  }
  Rng sampler(GetParam() ^ 0xABCD);
  const ml::Dataset ds = ml::DownsampleMajority(d, &sampler);
  ASSERT_EQ(ds.NumPositives(), d.NumPositives());
  // Every original positive row survives exactly once.
  std::vector<int> seen(400, 0);
  for (size_t i = 0; i < ds.NumRows(); ++i) {
    if (ds.y[i] == 1) seen[static_cast<size_t>(ds.X(i, 0))]++;
  }
  for (size_t i = 0; i < 400; ++i) {
    if (d.y[i] == 1) ASSERT_EQ(seen[i], 1);
  }
}

// -------------------------------------------------------------- LayerNorm --

TEST_P(SeedSweep, LayerNormScaleInvariant) {
  Rng rng(GetParam());
  Vec x(16);
  for (double& v : x) v = rng.Normal(3.0, 2.0);
  const Vec base = nn::LayerNorm(x);
  for (double scale : {2.0, 10.0, 0.5}) {
    Vec scaled = x;
    Scale(scale, &scaled);
    const Vec out = nn::LayerNorm(scaled);
    // Tolerance dominated by the epsilon guard in the variance.
    for (size_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(out[i], base[i], 1e-4);
    }
  }
}

// -------------------------------------------------------------- Attention --

TEST_P(SeedSweep, AttentionInvariantUnderNewsPermutation) {
  Rng rng(GetParam());
  nn::ExogenousAttention att(6, 6, 8);
  {
    nn::ParamRegistry reg;
    att.RegisterParams(&reg, "att");
    reg.InitGlorot(&rng);
  }
  Vec tweet(6);
  for (double& v : tweet) v = rng.Normal();
  Matrix news(5, 6);
  for (double& v : news.data()) v = rng.Normal();
  const Vec out = att.Forward(tweet, news, nullptr);

  // Reverse the rows: the attended sum must not change.
  Matrix reversed(5, 6);
  for (size_t r = 0; r < 5; ++r) reversed.SetRow(r, news.RowVec(4 - r));
  const Vec out_rev = att.Forward(tweet, reversed, nullptr);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], out_rev[i], 1e-9);
  }
}

TEST_P(SeedSweep, AttentionWeightsFormDistribution) {
  Rng rng(GetParam());
  nn::ExogenousAttention att(4, 4, 6);
  {
    nn::ParamRegistry reg;
    att.RegisterParams(&reg, "att");
    reg.InitGlorot(&rng);
  }
  Vec tweet(4);
  for (double& v : tweet) v = rng.Normal();
  for (size_t seq : {1u, 3u, 17u}) {
    Matrix news(seq, 4);
    for (double& v : news.data()) v = rng.Normal();
    nn::AttentionCache cache;
    (void)att.Forward(tweet, news, &cache);
    ASSERT_EQ(cache.weights.size(), seq);
    double total = 0.0;
    for (double w : cache.weights) {
      ASSERT_GE(w, 0.0);
      total += w;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

// ------------------------------------------------------------------ TfIdf --

TEST_P(SeedSweep, TfIdfTransformNormAtMostOne) {
  Rng rng(GetParam());
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> d;
    const int len = 3 + static_cast<int>(rng.UniformInt(10));
    for (int w = 0; w < len; ++w) {
      d.push_back("tok" + std::to_string(rng.UniformInt(40)));
    }
    docs.push_back(std::move(d));
  }
  text::TfIdfOptions opts;
  opts.min_df = 1;
  text::TfIdfVectorizer v(opts);
  ASSERT_TRUE(v.Fit(docs).ok());
  for (const auto& doc : docs) {
    const double norm = Norm2(v.Transform(doc));
    ASSERT_LE(norm, 1.0 + 1e-9);
  }
}

// -------------------------------------------------------------------- PCA --

TEST_P(SeedSweep, PcaComponentsOrthonormal) {
  Rng rng(GetParam());
  Matrix x(120, 10);
  for (double& v : x.data()) v = rng.Normal();
  ml::PcaOptions opts;
  opts.n_components = 4;
  opts.seed = GetParam();
  ml::Pca pca(opts);
  ASSERT_TRUE(pca.Fit(x).ok());
  // Reconstruct the component matrix via Transform of unit vectors is
  // awkward; check pairwise orthonormality through the identity
  // Transform(mean + c_i) . Transform basis — instead verify projections
  // of the component directions directly using explained variances being
  // non-negative and sorted.
  const Vec& ev = pca.explained_variance();
  for (size_t i = 0; i < ev.size(); ++i) {
    ASSERT_GE(ev[i], 0.0);
    if (i > 0) ASSERT_LE(ev[i], ev[i - 1] + 1e-9);
  }
}

// ------------------------------------------------------------------ Graph --

TEST_P(SeedSweep, FollowerFolloweeDuality) {
  Rng rng(GetParam());
  const size_t n = 120;
  std::vector<Vec> interests(n);
  for (auto& v : interests) v = rng.Dirichlet(4, 0.5);
  std::vector<int> echo(n, -1);
  graph::NetworkGenOptions opts;
  opts.mean_followees = 6.0;
  const auto net = graph::GenerateFollowerNetwork(interests, echo, opts,
                                                  &rng);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v : net.Followers(u)) {
      const auto fe = net.Followees(v);
      ASSERT_TRUE(std::find(fe.begin(), fe.end(), u) != fe.end());
      ASSERT_TRUE(net.HasEdge(u, v));
    }
  }
}

TEST_P(SeedSweep, BfsDistancesSatisfyEdgeRelaxation) {
  Rng rng(GetParam());
  const size_t n = 100;
  std::vector<Vec> interests(n);
  for (auto& v : interests) v = rng.Dirichlet(4, 0.5);
  std::vector<int> echo(n, -1);
  graph::NetworkGenOptions opts;
  opts.mean_followees = 5.0;
  const auto net = graph::GenerateFollowerNetwork(interests, echo, opts,
                                                  &rng);
  const auto dist = net.BfsDistances(0, 100);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (dist[u] == graph::kUnreachable) continue;
    for (graph::NodeId v : net.Followers(u)) {
      ASSERT_NE(dist[v], graph::kUnreachable);
      ASSERT_LE(dist[v], dist[u] + 1);
    }
  }
}

// ------------------------------------------------------------------ World --

TEST_P(SeedSweep, WorldInvariantsAcrossSeeds) {
  datagen::WorldConfig config;
  config.scale = 0.015;
  config.num_users = 250;
  config.history_length = 6;
  config.news_per_day = 25.0;
  const auto world = datagen::SyntheticWorld::Generate(config, GetParam());
  ASSERT_GT(world.tweets().size(), 100u);
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    const auto& tw = world.tweets()[i];
    ASSERT_LT(tw.author, world.NumUsers());
    ASSERT_EQ(tw.id, i);
    for (const auto& rt : world.cascades()[i].retweets) {
      ASSERT_GE(rt.time, tw.time);
      ASSERT_NE(rt.user, tw.author);
    }
  }
  // Hashtag stats sum to tweet count.
  size_t total = 0;
  for (const auto& s : world.ComputeHashtagStats()) total += s.tweets;
  ASSERT_EQ(total, world.tweets().size());
}

TEST_P(SeedSweep, WeightedBceGradientMatchesNumerically) {
  Rng rng(GetParam());
  nn::WeightedBce loss;
  loss.pos_weight = rng.Uniform(1.0, 8.0);
  for (int trial = 0; trial < 20; ++trial) {
    const double z = rng.Normal(0.0, 2.0);
    const int t = rng.Bernoulli(0.5) ? 1 : 0;
    const double eps = 1e-5;
    const double num = (loss.Loss(Sigmoid(z + eps), t) -
                        loss.Loss(Sigmoid(z - eps), t)) /
                       (2.0 * eps);
    ASSERT_NEAR(loss.GradLogit(Sigmoid(z), t), num, 1e-5);
  }
}

}  // namespace
}  // namespace retina
