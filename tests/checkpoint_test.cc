// Tests for the versioned checkpoint container (io::Checkpoint), the
// named parameter registry, optimizer-state save/resume, and the
// SaveTo/LoadFrom round trips of the text, ml and diffusion models.
//
// The contract under test everywhere: save -> load -> use is bit-exact
// (EXPECT_EQ on doubles, never EXPECT_NEAR), and every corrupt or
// mismatched input comes back as a Status error, never a crash.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/feature_extractor.h"
#include "core/retweet_task.h"
#include "diffusion/neural_baselines.h"
#include "io/checkpoint.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "nn/optimizer.h"
#include "nn/param.h"
#include "nn/param_registry.h"
#include "text/doc2vec.h"
#include "text/tfidf.h"

namespace retina {
namespace {

Matrix TestTensor(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Normal();
  return m;
}

// ------------------------------------------------------------ Container --

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("retina_ckpt_test_" + std::to_string(::getpid()) + ".ckpt"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

io::Checkpoint MakeFullCheckpoint() {
  io::Checkpoint ckpt;
  ckpt.PutTensor("model/W", TestTensor(3, 4, 99));
  ckpt.PutVec("model/b", {0.1, -1.0 / 3.0, 2.5e-308, 1.7e308});
  ckpt.PutI64List("meta/shape", {-1, 0, 42, INT64_MAX});
  ckpt.PutString("meta/arch", "retina-static");
  ckpt.PutStringList("vocab/tokens", {"alpha", "", "gamma"});
  ckpt.PutF64("meta/lr", 1.0 / 7.0);
  ckpt.PutI64("meta/step", -17);
  ckpt.PutBool("meta/dynamic", true);
  return ckpt;
}

void ExpectFullCheckpoint(const io::Checkpoint& loaded) {
  const io::Checkpoint original = MakeFullCheckpoint();
  ASSERT_EQ(loaded.NumEntries(), original.NumEntries());

  Matrix w_a, w_b;
  ASSERT_TRUE(original.GetTensor("model/W", &w_a).ok());
  ASSERT_TRUE(loaded.GetTensor("model/W", &w_b).ok());
  ASSERT_EQ(w_b.rows(), w_a.rows());
  ASSERT_EQ(w_b.cols(), w_a.cols());
  for (size_t i = 0; i < w_a.size(); ++i) {
    EXPECT_EQ(w_b.data()[i], w_a.data()[i]);
  }

  Vec b;
  ASSERT_TRUE(loaded.GetVec("model/b", &b).ok());
  const Vec expected_b = {0.1, -1.0 / 3.0, 2.5e-308, 1.7e308};
  ASSERT_EQ(b.size(), expected_b.size());
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], expected_b[i]);

  std::vector<int64_t> shape;
  ASSERT_TRUE(loaded.GetI64List("meta/shape", &shape).ok());
  EXPECT_EQ(shape, (std::vector<int64_t>{-1, 0, 42, INT64_MAX}));

  std::string arch;
  ASSERT_TRUE(loaded.GetString("meta/arch", &arch).ok());
  EXPECT_EQ(arch, "retina-static");

  std::vector<std::string> tokens;
  ASSERT_TRUE(loaded.GetStringList("vocab/tokens", &tokens).ok());
  EXPECT_EQ(tokens, (std::vector<std::string>{"alpha", "", "gamma"}));

  double lr = 0.0;
  ASSERT_TRUE(loaded.GetF64("meta/lr", &lr).ok());
  EXPECT_EQ(lr, 1.0 / 7.0);

  int64_t step = 0;
  ASSERT_TRUE(loaded.GetI64("meta/step", &step).ok());
  EXPECT_EQ(step, -17);

  bool dynamic = false;
  ASSERT_TRUE(loaded.GetBool("meta/dynamic", &dynamic).ok());
  EXPECT_TRUE(dynamic);
}

TEST_F(CheckpointFileTest, AllEntryTypesRoundTripThroughFile) {
  const io::Checkpoint ckpt = MakeFullCheckpoint();
  ASSERT_TRUE(ckpt.WriteFile(path_).ok());
  auto loaded = io::Checkpoint::ReadFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectFullCheckpoint(loaded.ValueOrDie());
}

TEST(CheckpointTest, AllEntryTypesRoundTripThroughBytes) {
  const std::string bytes = MakeFullCheckpoint().SerializeToBytes();
  auto loaded = io::Checkpoint::DeserializeFromBytes(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectFullCheckpoint(loaded.ValueOrDie());
}

TEST(CheckpointTest, SerializationIsDeterministicAcrossInsertionOrder) {
  // The entry table is name-ordered, so the file bytes depend only on the
  // content, not on the order Put* calls happened.
  io::Checkpoint a, b;
  a.PutF64("x", 1.5);
  a.PutF64("y", 2.5);
  b.PutF64("y", 2.5);
  b.PutF64("x", 1.5);
  EXPECT_EQ(a.SerializeToBytes(), b.SerializeToBytes());
}

TEST(CheckpointTest, NamesAreLexicographic) {
  io::Checkpoint ckpt;
  ckpt.PutF64("b", 1.0);
  ckpt.PutF64("a/x", 2.0);
  ckpt.PutF64("c", 3.0);
  EXPECT_EQ(ckpt.Names(), (std::vector<std::string>{"a/x", "b", "c"}));
}

TEST(CheckpointTest, BadMagicRejected) {
  std::string bytes = MakeFullCheckpoint().SerializeToBytes();
  bytes[0] ^= 0xFF;
  auto result = io::Checkpoint::DeserializeFromBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CheckpointTest, UnsupportedVersionRejected) {
  std::string bytes = MakeFullCheckpoint().SerializeToBytes();
  bytes[8] = static_cast<char>(io::kCheckpointVersion + 1);
  auto result = io::Checkpoint::DeserializeFromBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos);
}

TEST(CheckpointTest, ChecksumMismatchRejected) {
  std::string bytes = MakeFullCheckpoint().SerializeToBytes();
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  auto result = io::Checkpoint::DeserializeFromBytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("checksum"), std::string::npos);
}

TEST(CheckpointTest, TruncationRejected) {
  const std::string bytes = MakeFullCheckpoint().SerializeToBytes();
  // Every strict prefix must be rejected cleanly; probe a spread of cuts.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{16}, size_t{24}, bytes.size() / 2,
        bytes.size() - 1}) {
    auto result = io::Checkpoint::DeserializeFromBytes(bytes.substr(0, keep));
    EXPECT_FALSE(result.ok()) << "accepted a " << keep << "-byte prefix";
  }
}

TEST(CheckpointTest, MissingNameAndTypeMismatchAreErrors) {
  io::Checkpoint ckpt;
  ckpt.PutF64("x", 1.0);
  double f = 0.0;
  EXPECT_EQ(ckpt.GetF64("y", &f).code(), StatusCode::kNotFound);
  int64_t i = 0;
  const Status mismatch = ckpt.GetI64("x", &i);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, ReadMissingFileIsError) {
  auto result = io::Checkpoint::ReadFile("/nonexistent/retina/model.ckpt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

// ------------------------------------------------------------- Registry --

TEST(ParamRegistryTest, RegistrationOrderAndFind) {
  nn::Param a(2, 3), b(1, 4);
  nn::ParamRegistry reg;
  reg.Register("scope/a", &a, nn::ParamInit::kGlorot);
  reg.Register("scope/b", &b);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.params(), (std::vector<nn::Param*>{&a, &b}));
  EXPECT_EQ(reg.Find("scope/a"), &a);
  EXPECT_EQ(reg.Find("scope/b"), &b);
  EXPECT_EQ(reg.Find("scope/c"), nullptr);
}

TEST(ParamRegistryTest, InitGlorotSkipsKeepEntriesAndIsOrderDeterministic) {
  nn::Param w1(3, 3), b1(1, 3), w2(3, 3);
  b1.value.Fill(0.25);  // a layer-set constant that must survive init
  nn::ParamRegistry reg;
  reg.Register("w1", &w1, nn::ParamInit::kGlorot);
  reg.Register("b1", &b1, nn::ParamInit::kKeep);
  reg.Register("w2", &w2, nn::ParamInit::kGlorot);
  Rng rng(7);
  reg.InitGlorot(&rng);
  for (double v : b1.value.data()) EXPECT_EQ(v, 0.25);

  // Same architecture + same seed => identical draws, entry by entry.
  nn::Param w1b(3, 3), b1b(1, 3), w2b(3, 3);
  nn::ParamRegistry reg_b;
  reg_b.Register("w1", &w1b, nn::ParamInit::kGlorot);
  reg_b.Register("b1", &b1b, nn::ParamInit::kKeep);
  reg_b.Register("w2", &w2b, nn::ParamInit::kGlorot);
  Rng rng_b(7);
  reg_b.InitGlorot(&rng_b);
  for (size_t i = 0; i < w1.value.size(); ++i) {
    EXPECT_EQ(w1b.value.data()[i], w1.value.data()[i]);
    EXPECT_EQ(w2b.value.data()[i], w2.value.data()[i]);
  }
}

TEST(ParamRegistryTest, ZeroGradsClearsEveryAccumulator) {
  nn::Param a(2, 2), b(1, 3);
  a.grad.Fill(3.0);
  b.grad.Fill(-1.0);
  nn::ParamRegistry reg;
  reg.Register("a", &a);
  reg.Register("b", &b);
  reg.ZeroGrads();
  for (double g : a.grad.data()) EXPECT_EQ(g, 0.0);
  for (double g : b.grad.data()) EXPECT_EQ(g, 0.0);
}

TEST(ParamRegistryTest, SaveLoadParamsRoundTripsByName) {
  nn::Param w(4, 2), b(1, 2);
  w.value = TestTensor(4, 2, 5);
  b.value = TestTensor(1, 2, 6);
  nn::ParamRegistry reg;
  reg.Register("dense/W", &w, nn::ParamInit::kGlorot);
  reg.Register("dense/b", &b);

  io::Checkpoint ckpt;
  nn::SaveParams(reg, &ckpt, "model/");
  EXPECT_TRUE(ckpt.Contains("model/dense/W"));
  EXPECT_TRUE(ckpt.Contains("model/dense/b"));

  nn::Param w2(4, 2), b2(1, 2);
  w2.grad.Fill(9.0);  // stale gradients must be zeroed by LoadParams
  nn::ParamRegistry reg2;
  reg2.Register("dense/W", &w2);
  reg2.Register("dense/b", &b2);
  ASSERT_TRUE(nn::LoadParams(ckpt, "model/", reg2).ok());
  for (size_t i = 0; i < w.value.size(); ++i) {
    EXPECT_EQ(w2.value.data()[i], w.value.data()[i]);
  }
  for (size_t i = 0; i < b.value.size(); ++i) {
    EXPECT_EQ(b2.value.data()[i], b.value.data()[i]);
  }
  for (double g : w2.grad.data()) EXPECT_EQ(g, 0.0);
}

TEST(ParamRegistryTest, LoadParamsRejectsShapeMismatchAndMissingEntry) {
  nn::Param w(4, 2);
  w.value = TestTensor(4, 2, 5);
  nn::ParamRegistry reg;
  reg.Register("W", &w);
  io::Checkpoint ckpt;
  nn::SaveParams(reg, &ckpt, "model/");

  nn::Param wrong(2, 4);
  nn::ParamRegistry reg_wrong;
  reg_wrong.Register("W", &wrong);
  EXPECT_EQ(nn::LoadParams(ckpt, "model/", reg_wrong).code(),
            StatusCode::kInvalidArgument);

  nn::Param extra(4, 2), extra2(1, 1);
  nn::ParamRegistry reg_extra;
  reg_extra.Register("W", &extra);
  reg_extra.Register("missing", &extra2);
  EXPECT_FALSE(nn::LoadParams(ckpt, "model/", reg_extra).ok());
}

// ------------------------------------------------------ Optimizer resume --

// Deterministic synthetic gradient that depends on the current parameter
// values: any drift between the resumed and uninterrupted runs compounds,
// so bit-equality after resuming is a real statement about the optimizer
// state (moments, step counter), not just the weights.
void FillGrads(const std::vector<nn::Param*>& params, int step) {
  for (size_t p = 0; p < params.size(); ++p) {
    auto& g = params[p]->grad.data();
    const auto& v = params[p]->value.data();
    for (size_t j = 0; j < g.size(); ++j) {
      g[j] = 0.05 * v[j] +
             0.01 * static_cast<double>((step + 1) * (p + 1)) /
                 static_cast<double>(j + 1);
    }
  }
}

struct ToyModel {
  nn::Param w{3, 4};
  nn::Param b{1, 4};
  nn::ParamRegistry reg;

  ToyModel() {
    reg.Register("dense/W", &w, nn::ParamInit::kGlorot);
    reg.Register("dense/b", &b);
    Rng rng(11);
    reg.InitGlorot(&rng);
  }
};

template <typename OptT>
void CheckResumeBitIdentical(OptT make_optimizer) {
  constexpr int kTotalSteps = 10;
  constexpr int kCheckpointAt = 5;

  // Uninterrupted reference run.
  ToyModel ref;
  auto ref_opt = make_optimizer();
  ref_opt->Register(ref.reg);
  for (int s = 0; s < kTotalSteps; ++s) {
    FillGrads(ref.reg.params(), s);
    ref_opt->Step();
  }

  // Run to the checkpoint, save params + optimizer state, serialize
  // through bytes so the container is on the path under test.
  ToyModel half;
  auto half_opt = make_optimizer();
  half_opt->Register(half.reg);
  for (int s = 0; s < kCheckpointAt; ++s) {
    FillGrads(half.reg.params(), s);
    half_opt->Step();
  }
  io::Checkpoint ckpt;
  nn::SaveParams(half.reg, &ckpt, "model/");
  ASSERT_TRUE(half_opt->SaveState(&ckpt, "opt/").ok());
  auto restored = io::Checkpoint::DeserializeFromBytes(ckpt.SerializeToBytes());
  ASSERT_TRUE(restored.ok());

  // Fresh process: rebuild, restore, finish the run.
  ToyModel resumed;
  auto resumed_opt = make_optimizer();
  resumed_opt->Register(resumed.reg);
  ASSERT_TRUE(
      nn::LoadParams(restored.ValueOrDie(), "model/", resumed.reg).ok());
  ASSERT_TRUE(resumed_opt->LoadState(restored.ValueOrDie(), "opt/").ok());
  for (int s = kCheckpointAt; s < kTotalSteps; ++s) {
    FillGrads(resumed.reg.params(), s);
    resumed_opt->Step();
  }

  for (size_t i = 0; i < ref.w.value.size(); ++i) {
    EXPECT_EQ(resumed.w.value.data()[i], ref.w.value.data()[i]) << "W " << i;
  }
  for (size_t i = 0; i < ref.b.value.size(); ++i) {
    EXPECT_EQ(resumed.b.value.data()[i], ref.b.value.data()[i]) << "b " << i;
  }
}

TEST(OptimizerResumeTest, AdamResumesBitIdentically) {
  // Without the saved m/v moments and step counter the bias correction
  // restarts and the trajectories diverge immediately.
  CheckResumeBitIdentical(
      [] { return std::make_unique<nn::Adam>(1e-2); });
}

TEST(OptimizerResumeTest, SgdWithMomentumResumesBitIdentically) {
  CheckResumeBitIdentical(
      [] { return std::make_unique<nn::Sgd>(1e-2, 0.9); });
}

TEST(OptimizerResumeTest, KindMismatchRejected) {
  ToyModel model;
  nn::Adam adam(1e-3);
  adam.Register(model.reg);
  io::Checkpoint ckpt;
  ASSERT_TRUE(adam.SaveState(&ckpt, "opt/").ok());
  nn::Sgd sgd(1e-2);
  sgd.Register(model.reg);
  EXPECT_EQ(sgd.LoadState(ckpt, "opt/").code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- Text --

std::vector<std::vector<std::string>> ToyCorpus() {
  return {
      {"hate", "speech", "spreads", "fast"},
      {"news", "about", "hate", "events"},
      {"kittens", "are", "soft", "and", "fluffy"},
      {"breaking", "news", "about", "kittens"},
      {"speech", "about", "events", "spreads"},
      {"fluffy", "kittens", "spreads", "fast"},
  };
}

TEST(TextRoundTripTest, TfIdfTransformsBitIdenticallyAfterReload) {
  text::TfIdfOptions opts;
  opts.max_features = 16;
  opts.min_df = 1;
  text::TfIdfVectorizer fitted(opts);
  ASSERT_TRUE(fitted.Fit(ToyCorpus()).ok());

  io::Checkpoint ckpt;
  fitted.SaveTo(&ckpt, "tfidf/");
  text::TfIdfVectorizer loaded;
  ASSERT_TRUE(loaded.LoadFrom(ckpt, "tfidf/").ok());

  ASSERT_EQ(loaded.Dim(), fitted.Dim());
  EXPECT_EQ(loaded.feature_tokens(), fitted.feature_tokens());
  const std::vector<std::string> unseen = {"hate", "kittens", "unseen",
                                           "news"};
  for (const auto& doc : ToyCorpus()) {
    EXPECT_EQ(loaded.Transform(doc), fitted.Transform(doc));
  }
  EXPECT_EQ(loaded.Transform(unseen), fitted.Transform(unseen));
}

TEST(TextRoundTripTest, Doc2VecInfersBitIdenticallyAfterReload) {
  text::Doc2VecOptions opts;
  opts.dim = 8;
  opts.epochs = 2;
  opts.min_count = 1;
  text::Doc2Vec fitted(opts);
  ASSERT_TRUE(fitted.Train(ToyCorpus()).ok());

  io::Checkpoint ckpt;
  fitted.SaveTo(&ckpt, "d2v/");
  text::Doc2Vec loaded;
  ASSERT_TRUE(loaded.LoadFrom(ckpt, "d2v/").ok());

  ASSERT_EQ(loaded.NumDocs(), fitted.NumDocs());
  ASSERT_EQ(loaded.Dim(), fitted.Dim());
  for (size_t i = 0; i < fitted.NumDocs(); ++i) {
    EXPECT_EQ(loaded.DocVector(i), fitted.DocVector(i)) << "doc " << i;
  }
  // InferVector reseeds a fresh Rng per call from the saved options, so a
  // loaded model must infer exactly the trained model's vectors.
  const std::vector<std::string> unseen = {"hate", "news", "kittens"};
  EXPECT_EQ(loaded.InferVector(unseen), fitted.InferVector(unseen));
  EXPECT_EQ(loaded.TokenSimilarity(loaded.InferVector(unseen), "news"),
            fitted.TokenSimilarity(fitted.InferVector(unseen), "news"));
}

// ------------------------------------------------------------------- ML --

// Noisy linearly-separable binary problem, same flavor as ml_test.
void MakeMlData(Matrix* X, std::vector<int>* y, size_t n, uint64_t seed) {
  Rng rng(seed);
  *X = Matrix(n, 4);
  y->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    (*y)[i] = label;
    const double shift = label ? 1.0 : -1.0;
    for (size_t j = 0; j < 4; ++j) {
      (*X)(i, j) = shift * (j % 2 ? 0.8 : 1.2) + rng.Normal();
    }
  }
}

template <typename ModelT>
void CheckMlRoundTrip(ModelT* fitted, ModelT* fresh) {
  Matrix X;
  std::vector<int> y;
  MakeMlData(&X, &y, 160, 31);
  ASSERT_TRUE(fitted->Fit(X, y).ok());

  io::Checkpoint ckpt;
  fitted->SaveTo(&ckpt, "clf/");
  // Through bytes, so framing is exercised too.
  auto reloaded = io::Checkpoint::DeserializeFromBytes(
      ckpt.SerializeToBytes());
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(fresh->LoadFrom(reloaded.ValueOrDie(), "clf/").ok());

  Matrix Xt;
  std::vector<int> yt;
  MakeMlData(&Xt, &yt, 40, 77);
  for (size_t i = 0; i < Xt.rows(); ++i) {
    EXPECT_EQ(fresh->PredictProba(Xt.RowVec(i)),
              fitted->PredictProba(Xt.RowVec(i)))
        << "row " << i;
  }
}

TEST(MlRoundTripTest, LogisticRegression) {
  ml::LogisticRegression a, b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, DecisionTree) {
  ml::DecisionTree a, b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, RandomForest) {
  ml::RandomForestOptions opts;
  opts.n_estimators = 8;
  ml::RandomForest a(opts), b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, GradientBoosting) {
  ml::GradientBoostingOptions opts;
  opts.n_estimators = 12;
  opts.learning_rate = 0.3;  // non-default: must survive the round trip
  ml::GradientBoosting a(opts), b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, AdaBoost) {
  ml::AdaBoostOptions opts;
  opts.n_estimators = 10;
  ml::AdaBoost a(opts), b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, LinearSvm) {
  ml::LinearSVMOptions opts;
  opts.platt_scale = 3.5;  // non-default: shapes PredictProba
  ml::LinearSVM a(opts), b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, KernelSvm) {
  ml::KernelSVMOptions opts;
  opts.n_components = 32;
  ml::KernelSVM a(opts), b;
  CheckMlRoundTrip(&a, &b);
}

TEST(MlRoundTripTest, CorruptTreeTopologyRejected) {
  Matrix X;
  std::vector<int> y;
  MakeMlData(&X, &y, 80, 13);
  ml::DecisionTree tree;
  ASSERT_TRUE(tree.Fit(X, y).ok());
  io::Checkpoint ckpt;
  tree.SaveTo(&ckpt, "tree/");

  std::vector<int64_t> left;
  ASSERT_TRUE(ckpt.GetI64List("tree/left", &left).ok());
  left[0] = static_cast<int64_t>(left.size()) + 5;  // child out of range
  ckpt.PutI64List("tree/left", left);

  ml::DecisionTree corrupt;
  EXPECT_EQ(corrupt.LoadFrom(ckpt, "tree/").code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- Diffusion baseline --

struct DiffusionFixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<core::FeatureExtractor> extractor;
  core::RetweetTask task;
};

DiffusionFixture& SharedDiffusionFixture() {
  static DiffusionFixture* fixture = [] {
    datagen::WorldConfig config;
    config.scale = 0.05;
    config.num_users = 900;
    config.history_length = 12;
    config.news_per_day = 50.0;
    auto* f = new DiffusionFixture{
        datagen::SyntheticWorld::Generate(config, 41), nullptr, {}};
    core::FeatureConfig fc;
    fc.history_size = 8;
    fc.history_tfidf_dim = 60;
    fc.news_tfidf_dim = 60;
    fc.tweet_tfidf_dim = 60;
    fc.news_window = 15;
    fc.doc2vec_dim = 12;
    fc.doc2vec_epochs = 2;
    auto fx = core::FeatureExtractor::Build(f->world, fc);
    EXPECT_TRUE(fx.ok());
    f->extractor = std::make_unique<core::FeatureExtractor>(
        std::move(fx).ValueOrDie());
    core::RetweetTaskOptions opts;
    opts.min_news = 15;
    opts.max_candidates = 20;
    auto task = core::BuildRetweetTask(*f->extractor, opts);
    EXPECT_TRUE(task.ok());
    f->task = std::move(task).ValueOrDie();
    return f;
  }();
  return *fixture;
}

TEST(NeuralBaselineRoundTripTest, ScoresBitIdenticallyAfterReload) {
  auto& f = SharedDiffusionFixture();
  diffusion::NeuralBaselineOptions opts;
  opts.epochs = 2;
  diffusion::NeuralDiffusionBaseline fitted(
      &f.world, diffusion::NeuralBaselineKind::kForest, opts);
  ASSERT_TRUE(fitted.Fit(f.task).ok());

  io::Checkpoint ckpt;
  fitted.SaveTo(&ckpt, "baseline/");
  diffusion::NeuralDiffusionBaseline loaded(
      &f.world, diffusion::NeuralBaselineKind::kForest, {});
  ASSERT_TRUE(loaded.LoadFrom(ckpt, "baseline/").ok());

  const Vec a = fitted.ScoreCandidates(f.task, f.task.test);
  const Vec b = loaded.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(b[i], a[i]) << i;
}

TEST(NeuralBaselineRoundTripTest, EmbeddingRowMismatchRejected) {
  auto& f = SharedDiffusionFixture();
  io::Checkpoint ckpt;
  ckpt.PutI64("baseline/kind",
              static_cast<int64_t>(diffusion::NeuralBaselineKind::kHidan));
  ckpt.PutI64("baseline/neighbor_samples", 4);
  ckpt.PutTensor("baseline/embeddings",
                 TestTensor(f.world.NumUsers() + 1, 8, 3));
  ckpt.PutF64("baseline/a", 1.0);
  ckpt.PutF64("baseline/b", 0.0);
  ckpt.PutF64("baseline/c", 0.0);
  diffusion::NeuralDiffusionBaseline model(
      &f.world, diffusion::NeuralBaselineKind::kHidan, {});
  EXPECT_FALSE(model.LoadFrom(ckpt, "baseline/").ok());
}

}  // namespace
}  // namespace retina
