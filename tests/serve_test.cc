// Tests for the retina::serve subsystem: the wire protocol's round-trip
// and corruption matrix, the bounded admission queue, the RequestHandler's
// byte-identity to a direct in-process ScoringEngine, and the Server's
// end-to-end behavior over a real Unix-domain socket — concurrent
// clients, deterministic shed under a wedged worker, and the graceful
// drain (programmatic and via SIGTERM).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/bounded_queue.h"
#include "common/obs.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/vec.h"
#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "serve/handler.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace retina::serve {
namespace {

// -------------------------------------------------------------- Protocol --

TEST(ProtocolTest, ScoreRequestRoundTrips) {
  ScoreRequest req;
  req.request_id = 0x0123456789ABCDEFull;
  req.tweet_id = 42;
  req.users = {0, 7, 0xFFFFFFFFu, 3};
  const std::string payload = EncodeScoreRequest(req);
  auto type = PeekMessageType(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.ValueOrDie(), MessageType::kScoreRequest);
  ScoreRequest out;
  ASSERT_TRUE(DecodeScoreRequest(payload, &out).ok());
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.tweet_id, req.tweet_id);
  EXPECT_EQ(out.users, req.users);
}

TEST(ProtocolTest, EmptyUserListRoundTrips) {
  ScoreRequest req;
  req.request_id = 1;
  req.tweet_id = 0;
  const std::string payload = EncodeScoreRequest(req);
  ScoreRequest out;
  out.users = {9, 9, 9};  // must be cleared by decode
  ASSERT_TRUE(DecodeScoreRequest(payload, &out).ok());
  EXPECT_TRUE(out.users.empty());
}

TEST(ProtocolTest, ScoreResponseRoundTripsExactBitPatterns) {
  // Scores travel as f64 bit patterns: denormals, negative zero, and NaN
  // payloads must survive unchanged.
  ScoreResponse resp;
  resp.request_id = 77;
  resp.code = ResponseCode::kOk;
  resp.scores = {0.125, -0.0, 5e-324, std::nan("0x5"), 1.0 / 3.0};
  const std::string payload = EncodeScoreResponse(resp);
  ScoreResponse out;
  ASSERT_TRUE(DecodeScoreResponse(payload, &out).ok());
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.code, ResponseCode::kOk);
  ASSERT_EQ(out.scores.size(), resp.scores.size());
  for (size_t i = 0; i < resp.scores.size(); ++i) {
    EXPECT_EQ(std::memcmp(&out.scores[i], &resp.scores[i], sizeof(double)),
              0)
        << "score " << i;
  }
}

TEST(ProtocolTest, ErrorResponseCarriesMessage) {
  for (const ResponseCode code :
       {ResponseCode::kShed, ResponseCode::kError}) {
    ScoreResponse resp;
    resp.request_id = 5;
    resp.code = code;
    resp.message = "tweet_id out of range";
    ScoreResponse out;
    ASSERT_TRUE(DecodeScoreResponse(EncodeScoreResponse(resp), &out).ok());
    EXPECT_EQ(out.code, code);
    EXPECT_EQ(out.message, resp.message);
    EXPECT_TRUE(out.scores.empty());
  }
}

TEST(ProtocolTest, StatsRoundTrips) {
  StatsResponse resp;
  resp.request_id = 9;
  resp.stats = {{"serve.requests", 10},
                {"serve.shed", 0},
                {"handler.num_users", 1u << 20}};
  StatsResponse out;
  ASSERT_TRUE(DecodeStatsResponse(EncodeStatsResponse(resp), &out).ok());
  EXPECT_EQ(out.stats, resp.stats);

  StatsRequest sreq;
  sreq.request_id = 11;
  StatsRequest sout;
  ASSERT_TRUE(DecodeStatsRequest(EncodeStatsRequest(sreq), &sout).ok());
  EXPECT_EQ(sout.request_id, 11u);
}

TEST(ProtocolTest, CorruptHeadersAreStatusErrors) {
  ScoreRequest req;
  req.request_id = 3;
  req.tweet_id = 4;
  req.users = {1, 2};
  const std::string good = EncodeScoreRequest(req);
  ScoreRequest out;

  std::string bad = good;
  bad[0] ^= 0x01;  // magic
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  bad = good;
  bad[4] = 0x7F;  // version
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  bad = good;
  bad[6] = 0x66;  // unknown type
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());
  EXPECT_FALSE(PeekMessageType(bad).ok());

  bad = good;
  bad[7] = 0x01;  // reserved byte must be zero
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  // Right header, wrong body type for the decoder.
  StatsRequest sreq;
  EXPECT_FALSE(DecodeStatsRequest(good, &sreq).ok());
}

TEST(ProtocolTest, EveryTruncationIsAStatusErrorNeverUB) {
  // io::Checkpoint's corruption discipline: any prefix of a valid message
  // decodes to an error. Sweep every truncation point of every type.
  ScoreRequest req;
  req.request_id = 1;
  req.tweet_id = 2;
  req.users = {3, 4, 5};
  ScoreResponse ok_resp;
  ok_resp.request_id = 1;
  ok_resp.scores = {1.5, -2.5};
  ScoreResponse err_resp;
  err_resp.request_id = 1;
  err_resp.code = ResponseCode::kError;
  err_resp.message = "why";
  StatsResponse stats;
  stats.request_id = 1;
  stats.stats = {{"k", 7}};
  const std::string payloads[] = {
      EncodeScoreRequest(req), EncodeScoreResponse(ok_resp),
      EncodeScoreResponse(err_resp), EncodeStatsRequest(StatsRequest{1}),
      EncodeStatsResponse(stats)};
  for (const std::string& payload : payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      ScoreRequest r;
      ScoreResponse sr;
      StatsRequest str;
      StatsResponse sts;
      EXPECT_FALSE(DecodeScoreRequest(prefix, &r).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeScoreResponse(prefix, &sr).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeStatsRequest(prefix, &str).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeStatsResponse(prefix, &sts).ok()) << "cut " << cut;
    }
    // Trailing garbage is corruption too, not ignorable padding.
    const std::string padded = payload + '\0';
    ScoreRequest r;
    ScoreResponse sr;
    StatsRequest str;
    StatsResponse sts;
    EXPECT_FALSE(DecodeScoreRequest(padded, &r).ok());
    EXPECT_FALSE(DecodeScoreResponse(padded, &sr).ok());
    EXPECT_FALSE(DecodeStatsRequest(padded, &str).ok());
    EXPECT_FALSE(DecodeStatsResponse(padded, &sts).ok());
  }
}

TEST(ProtocolTest, FrameRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScoreRequest req;
  req.request_id = 21;
  req.tweet_id = 8;
  req.users = {1, 2, 3, 4};
  const std::string payload = EncodeScoreRequest(req);
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  std::string got;
  bool eof = false;
  ASSERT_TRUE(ReadFrame(fds[1], &got, &eof).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(got, payload);
  // Clean close -> EOF at the frame boundary, OK + eof flag.
  close(fds[0]);
  ASSERT_TRUE(ReadFrame(fds[1], &got, &eof).ok());
  EXPECT_TRUE(eof);
  close(fds[1]);
}

TEST(ProtocolTest, TruncatedFrameAndBadLengthPrefixAreErrors) {
  {
    // EOF in the middle of a frame body is an error, not a clean EOF.
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const uint32_t claimed = 100;
    char head[4];
    std::memcpy(head, &claimed, 4);
    ASSERT_EQ(send(fds[0], head, 4, 0), 4);
    ASSERT_EQ(send(fds[0], "xy", 2, 0), 2);
    close(fds[0]);
    std::string got;
    bool eof = false;
    EXPECT_FALSE(ReadFrame(fds[1], &got, &eof).ok());
    close(fds[1]);
  }
  for (const uint32_t bad_len : {uint32_t{0}, kMaxFramePayloadBytes + 1}) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    char head[4];
    std::memcpy(head, &bad_len, 4);
    ASSERT_EQ(send(fds[0], head, 4, 0), 4);
    std::string got;
    bool eof = false;
    EXPECT_FALSE(ReadFrame(fds[1], &got, &eof).ok()) << bad_len;
    close(fds[0]);
    close(fds[1]);
  }
}

// ---------------------------------------------------------- BoundedQueue --

TEST(BoundedQueueTest, FifoAndShedOnFull) {
  par::BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full -> shed, no block
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(4));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseDeliversQueuedItemsThenReportsEmpty) {
  par::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(10));
  ASSERT_TRUE(q.TryPush(11));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(12));  // no admission after close
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // graceful drain still hands out items
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(q.Pop(&out));  // closed + empty
  q.Close();                  // idempotent
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  par::BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersDeliverEverything) {
  par::BoundedQueue<uint64_t> q(8);
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 500;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t v = p * kPerProducer + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
        accepted.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t v = 0;
      while (q.Pop(&v)) {
        popped_sum.fetch_add(v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), accepted.load());  // nothing lost or duped
}

// ------------------------------------------------------- Scoring fixture --

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.04;
  config.num_users = 500;
  config.history_length = 10;
  config.news_per_day = 30.0;
  return config;
}

core::FeatureConfig TestFeatureConfig() {
  core::FeatureConfig config;
  config.history_size = 6;
  config.history_tfidf_dim = 40;
  config.news_tfidf_dim = 40;
  config.tweet_tfidf_dim = 40;
  config.news_window = 10;
  config.doc2vec_dim = 8;
  config.doc2vec_epochs = 1;
  return config;
}

struct Fixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<core::FeatureExtractor> extractor;
  std::unique_ptr<core::Retina> model;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture{
        datagen::SyntheticWorld::Generate(TestConfig(), 47), nullptr,
        nullptr};
    hatedetect::AnnotationOptions aopts;
    auto report = hatedetect::AnnotateWorld(&f->world, aopts);
    EXPECT_TRUE(report.ok());
    auto fx = core::FeatureExtractor::Build(f->world, TestFeatureConfig());
    EXPECT_TRUE(fx.ok());
    f->extractor =
        std::make_unique<core::FeatureExtractor>(std::move(fx).ValueOrDie());
    core::RetweetTaskOptions topts;
    topts.min_news = 10;
    topts.max_candidates = 16;
    auto task = core::BuildRetweetTask(*f->extractor, topts);
    EXPECT_TRUE(task.ok());
    const core::RetweetTask& t = task.ValueOrDie();
    core::RetinaOptions opts;
    opts.hidden = 10;
    opts.epochs = 1;
    f->model = std::make_unique<core::Retina>(t.user_dim, t.content_dim,
                                              t.embed_dim, t.NumIntervals(),
                                              opts);
    EXPECT_TRUE(f->model->Train(t).ok());
    return f;
  }();
  return *fixture;
}

/// Deterministic request stream over the fixture world.
std::vector<ScoreRequest> MakeRequests(const Fixture& f, size_t n,
                                       uint64_t seed) {
  Rng rng(seed);
  const uint64_t num_tweets = f.world.tweets().size();
  const uint64_t num_users = f.world.NumUsers();
  std::vector<ScoreRequest> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ScoreRequest req;
    req.request_id = 1000 + i;
    req.tweet_id = rng.UniformInt(num_tweets);
    const size_t k = 1 + rng.UniformInt(8);
    for (size_t j = 0; j < k; ++j) {
      req.users.push_back(static_cast<uint32_t>(rng.UniformInt(num_users)));
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// Direct in-process reference: a fresh engine scoring the same request.
Vec DirectScores(const Fixture& f, const ScoreRequest& req) {
  core::ScoringEngine engine(f.model.get(), f.extractor.get(), {});
  std::vector<datagen::NodeId> users(req.users.begin(), req.users.end());
  Vec scores;
  engine.ScoreTweetInto(f.world.tweets()[req.tweet_id], users, &scores);
  return scores;
}

void ExpectBitIdentical(const Vec& got, const Vec& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " score " << i;
  }
}

// -------------------------------------------------------- RequestHandler --

TEST(RequestHandlerTest, ByteIdenticalToDirectEngineAcrossWorkers) {
  auto& f = SharedFixture();
  RequestHandlerOptions opts;
  opts.num_workers = 3;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), opts);
  ASSERT_EQ(handler->num_workers(), 3u);
  const auto requests = MakeRequests(f, 12, 61);
  for (size_t i = 0; i < requests.size(); ++i) {
    const ScoreRequest& req = requests[i];
    const Vec want = DirectScores(f, req);
    // Identical no matter which worker slot serves the request.
    for (size_t w = 0; w < handler->num_workers(); ++w) {
      ScoreResponse resp;
      handler->HandleScore(w, req, &resp);
      ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
      EXPECT_EQ(resp.request_id, req.request_id);
      ExpectBitIdentical(resp.scores, want,
                         "req " + std::to_string(i) + " worker " +
                             std::to_string(w));
    }
  }
}

TEST(RequestHandlerTest, InvalidIdsBecomeErrorResponsesNeverCrashes) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ScoreResponse resp;

  ScoreRequest req;
  req.request_id = 5;
  req.tweet_id = f.world.tweets().size();  // one past the end
  req.users = {0};
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kError);
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_FALSE(resp.message.empty());

  req.tweet_id = 0;
  req.users = {static_cast<uint32_t>(f.world.NumUsers())};
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kError);
  EXPECT_FALSE(resp.message.empty());

  // An empty candidate list is a valid request with an empty answer.
  req.users.clear();
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kOk);
  EXPECT_TRUE(resp.scores.empty());
}

TEST(RequestHandlerTest, StatsExposeDatasetShape) {
  auto& f = SharedFixture();
  RequestHandlerOptions opts;
  opts.num_workers = 2;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), opts);
  std::map<std::string, uint64_t> stats;
  handler->AppendStats(&stats);
  EXPECT_EQ(stats["handler.num_tweets"], f.world.tweets().size());
  EXPECT_EQ(stats["handler.num_users"], f.world.NumUsers());
  EXPECT_EQ(stats["handler.num_workers"], 2u);
}

// ----------------------------------------------------------- Server e2e --

std::string TestSocketPath(const char* tag) {
  // /tmp keeps the path far under sockaddr_un's sun_path limit, which a
  // deep build directory would not.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/retina_serve_%s_%d.sock", tag,
                static_cast<int>(getpid()));
  return buf;
}

Result<int> ConnectTo(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket failed");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return Status::IOError("connect failed");
  }
  return fd;
}

/// One closed-loop score round trip.
Result<ScoreResponse> RoundTrip(int fd, const ScoreRequest& req) {
  RETINA_RETURN_NOT_OK(WriteFrame(fd, EncodeScoreRequest(req)));
  std::string payload;
  bool eof = false;
  RETINA_RETURN_NOT_OK(ReadFrame(fd, &payload, &eof));
  if (eof) return Status::IOError("server closed mid-conversation");
  ScoreResponse resp;
  RETINA_RETURN_NOT_OK(DecodeScoreResponse(payload, &resp));
  return resp;
}

Result<std::map<std::string, uint64_t>> FetchStats(
    const std::string& path) {
  auto fd = ConnectTo(path);
  RETINA_RETURN_NOT_OK(fd.status());
  StatsRequest req;
  req.request_id = 1;
  Status st = WriteFrame(fd.ValueOrDie(), EncodeStatsRequest(req));
  std::map<std::string, uint64_t> out;
  if (st.ok()) {
    std::string payload;
    bool eof = false;
    st = ReadFrame(fd.ValueOrDie(), &payload, &eof);
    if (st.ok() && eof) st = Status::IOError("eof before stats");
    if (st.ok()) {
      StatsResponse resp;
      st = DecodeStatsResponse(payload, &resp);
      if (st.ok()) out = std::move(resp.stats);
    }
  }
  close(fd.ValueOrDie());
  RETINA_RETURN_NOT_OK(st);
  return out;
}

TEST(ServerTest, ConcurrentClientsGetByteIdenticalScores) {
  auto& f = SharedFixture();
  RequestHandlerOptions hopts;
  hopts.num_workers = 4;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), hopts);
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("conc");
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 10;
  std::vector<std::vector<ScoreRequest>> plans(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    plans[c] = MakeRequests(f, kPerClient, 100 + c);
  }
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto fd = ConnectTo(sopts.socket_path);
      if (!fd.ok()) {
        failures[c] = fd.status().ToString();
        return;
      }
      for (const ScoreRequest& req : plans[c]) {
        auto resp = RoundTrip(fd.ValueOrDie(), req);
        if (!resp.ok()) {
          failures[c] = resp.status().ToString();
          break;
        }
        if (resp.ValueOrDie().code != ResponseCode::kOk ||
            resp.ValueOrDie().request_id != req.request_id) {
          failures[c] = "bad response for " + std::to_string(req.request_id);
          break;
        }
      }
      close(fd.ValueOrDie());
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  // Byte-identity spot check on a fresh connection, against the direct
  // in-process engine.
  {
    auto fd = ConnectTo(sopts.socket_path);
    ASSERT_TRUE(fd.ok());
    for (const ScoreRequest& req : MakeRequests(f, 6, 999)) {
      auto resp = RoundTrip(fd.ValueOrDie(), req);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
      ExpectBitIdentical(resp.ValueOrDie().scores, DirectScores(f, req),
                         "socket vs direct");
    }
    close(fd.ValueOrDie());
  }

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], kClients * kPerClient + 6);
  EXPECT_EQ(stats["serve.responses"], stats["serve.requests"]);
  EXPECT_EQ(stats["serve.shed"], 0u);
  EXPECT_EQ(stats["serve.errors"], 0u);
  EXPECT_EQ(stats["serve.protocol_errors"], 0u);
}

/// Handler whose HandleScore blocks until released — makes queue overflow
/// deterministic regardless of scheduling.
class StallingHandler : public Handler {
 public:
  size_t num_workers() const override { return 1; }

  void HandleScore(size_t /*worker*/, const ScoreRequest& req,
                   ScoreResponse* resp) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    resp->request_id = req.request_id;
    resp->code = ResponseCode::kOk;
    resp->scores = {static_cast<double>(req.request_id)};
  }

  void AppendStats(std::map<std::string, uint64_t>* stats) const override {
    std::lock_guard<std::mutex> lock(mu_);
    (*stats)["stall.entered"] = entered_;
  }

  void WaitUntilEntered(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  size_t entered_ = 0;
  bool released_ = false;
};

TEST(ServerTest, FullQueueShedsImmediatelyAndDrainAnswersAdmitted) {
  StallingHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("shed");
  sopts.queue_capacity = 1;
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  auto send_req = [&](uint64_t id) {
    ScoreRequest req;
    req.request_id = id;
    ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), EncodeScoreRequest(req)).ok());
  };

  // Request 1 reaches the (stalled) worker; request 2 fills the queue.
  send_req(1);
  handler.WaitUntilEntered(1);
  send_req(2);
  for (int spin = 0; spin < 2000 && server.draining() == false; ++spin) {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    if (s["serve.requests"] >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    ASSERT_EQ(s["serve.requests"], 2u);
  }

  // With the worker wedged and the queue full, every further request must
  // shed with an immediate kShed reply — the reader answers, bounded-time.
  constexpr uint64_t kShedRequests = 5;
  for (uint64_t id = 3; id < 3 + kShedRequests; ++id) send_req(id);
  size_t shed_seen = 0;
  std::string payload;
  bool eof = false;
  while (shed_seen < kShedRequests) {
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    ASSERT_FALSE(eof);
    ScoreResponse resp;
    ASSERT_TRUE(DecodeScoreResponse(payload, &resp).ok());
    ASSERT_EQ(resp.code, ResponseCode::kShed) << resp.request_id;
    EXPECT_GE(resp.request_id, 3u);
    ++shed_seen;
  }

  // Drain while two requests are still admitted-but-unanswered: both must
  // be answered before Wait() returns — admitted work is never dropped.
  server.RequestShutdown();
  handler.Release();
  size_t ok_seen = 0;
  while (ok_seen < 2) {
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    if (eof) break;
    ScoreResponse resp;
    ASSERT_TRUE(DecodeScoreResponse(payload, &resp).ok());
    ASSERT_EQ(resp.code, ResponseCode::kOk);
    EXPECT_LE(resp.request_id, 2u);
    ++ok_seen;
  }
  EXPECT_EQ(ok_seen, 2u);
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());

  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], 2u);
  EXPECT_EQ(stats["serve.responses"], 2u);
  EXPECT_EQ(stats["serve.shed"], kShedRequests);
  EXPECT_GE(stats["serve.queue_depth_peak"], 1u);
}

TEST(ServerTest, StatsRequestAnsweredInlineWhileWorkersAreBusy) {
  StallingHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("stats");
  sopts.queue_capacity = 4;
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  ScoreRequest req;
  req.request_id = 1;
  ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), EncodeScoreRequest(req)).ok());
  handler.WaitUntilEntered(1);

  // The worker is wedged, yet stats must answer: they ride the reader
  // thread, not the admission queue.
  auto stats = FetchStats(sopts.socket_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().at("serve.requests"), 1u);
  EXPECT_EQ(stats.ValueOrDie().at("serve.workers"), 1u);
  EXPECT_EQ(stats.ValueOrDie().at("serve.queue_capacity"), 4u);
  EXPECT_EQ(stats.ValueOrDie().at("stall.entered"), 1u);  // handler merged

  handler.Release();
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());
}

TEST(ServerTest, ProtocolGarbageClosesConnectionNotServer) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("garb");
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  {
    // A frame whose payload is garbage: the server must close this
    // connection (observed as EOF) without taking the daemon down.
    auto fd = ConnectTo(sopts.socket_path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), "not a retina frame").ok());
    std::string payload;
    bool eof = false;
    const Status st = ReadFrame(fd.ValueOrDie(), &payload, &eof);
    EXPECT_TRUE(!st.ok() || eof);
    close(fd.ValueOrDie());
  }

  // The server still serves real traffic afterwards.
  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 1, 7);
  auto resp = RoundTrip(fd.ValueOrDie(), reqs[0]);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  close(fd.ValueOrDie());

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_GE(stats["serve.protocol_errors"], 1u);
}

TEST(ServerTest, SigtermDrainsGracefully) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("term");
  sopts.install_signal_handler = true;
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 3, 13);
  for (const ScoreRequest& req : reqs) {
    auto resp = RoundTrip(fd.ValueOrDie(), req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }

  raise(SIGTERM);  // the installed handler must promote this into a drain
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());

  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], reqs.size());
  EXPECT_EQ(stats["serve.responses"], reqs.size());
  EXPECT_EQ(stats["serve.draining"], 1u);
  // The socket file is unlinked on drain; new connections must fail.
  EXPECT_FALSE(ConnectTo(sopts.socket_path).ok());
}

TEST(ServerTest, TracingTheServePathDoesNotPerturbScores) {
  // Determinism contract: observers never change behavior. The same
  // request stream, served once with tracing active and once without,
  // must produce byte-identical scores.
  auto& f = SharedFixture();
  const auto reqs = MakeRequests(f, 5, 29);

  auto run = [&](bool traced) {
    if (traced) obs::StartTracing();
    auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
    ServerOptions sopts;
    sopts.socket_path = TestSocketPath(traced ? "tron" : "troff");
    Server server(handler.get(), sopts);
    EXPECT_TRUE(server.Start().ok());
    std::vector<Vec> all;
    auto fd = ConnectTo(sopts.socket_path);
    EXPECT_TRUE(fd.ok());
    for (const ScoreRequest& req : reqs) {
      auto resp = RoundTrip(fd.ValueOrDie(), req);
      EXPECT_TRUE(resp.ok());
      all.push_back(resp.ValueOrDie().scores);
    }
    close(fd.ValueOrDie());
    server.RequestShutdown();
    EXPECT_TRUE(server.Wait().ok());
    if (traced) {
      if (obs::kCompiledIn) {
        EXPECT_GT(obs::TraceBufferedEvents(), 0u);  // spans recorded
      }
      obs::StopTracing();
    }
    return all;
  };

  const auto plain = run(false);
  const auto traced = run(true);
  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectBitIdentical(traced[i], plain[i],
                       "traced vs plain req " + std::to_string(i));
  }
}

}  // namespace
}  // namespace retina::serve
