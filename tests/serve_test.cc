// Tests for the retina::serve subsystem: the wire protocol's round-trip
// and corruption matrix, the bounded admission queue, the RequestHandler's
// byte-identity to a direct in-process ScoringEngine, and the Server's
// end-to-end behavior over a real Unix-domain socket — concurrent
// clients, deterministic shed under a wedged worker, and the graceful
// drain (programmatic and via SIGTERM).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/bounded_queue.h"
#include "common/obs.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/vec.h"
#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "serve/handler.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace retina::serve {
namespace {

// -------------------------------------------------------------- Protocol --

TEST(ProtocolTest, ScoreRequestRoundTrips) {
  ScoreRequest req;
  req.request_id = 0x0123456789ABCDEFull;
  req.tweet_id = 42;
  req.users = {0, 7, 0xFFFFFFFFu, 3};
  const std::string payload = EncodeScoreRequest(req);
  auto type = PeekMessageType(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.ValueOrDie(), MessageType::kScoreRequest);
  ScoreRequest out;
  ASSERT_TRUE(DecodeScoreRequest(payload, &out).ok());
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.tweet_id, req.tweet_id);
  EXPECT_EQ(out.users, req.users);
}

TEST(ProtocolTest, EmptyUserListRoundTrips) {
  ScoreRequest req;
  req.request_id = 1;
  req.tweet_id = 0;
  const std::string payload = EncodeScoreRequest(req);
  ScoreRequest out;
  out.users = {9, 9, 9};  // must be cleared by decode
  ASSERT_TRUE(DecodeScoreRequest(payload, &out).ok());
  EXPECT_TRUE(out.users.empty());
}

TEST(ProtocolTest, ScoreResponseRoundTripsExactBitPatterns) {
  // Scores travel as f64 bit patterns: denormals, negative zero, and NaN
  // payloads must survive unchanged.
  ScoreResponse resp;
  resp.request_id = 77;
  resp.code = ResponseCode::kOk;
  resp.scores = {0.125, -0.0, 5e-324, std::nan("0x5"), 1.0 / 3.0};
  const std::string payload = EncodeScoreResponse(resp);
  ScoreResponse out;
  ASSERT_TRUE(DecodeScoreResponse(payload, &out).ok());
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.code, ResponseCode::kOk);
  ASSERT_EQ(out.scores.size(), resp.scores.size());
  for (size_t i = 0; i < resp.scores.size(); ++i) {
    EXPECT_EQ(std::memcmp(&out.scores[i], &resp.scores[i], sizeof(double)),
              0)
        << "score " << i;
  }
}

TEST(ProtocolTest, ErrorResponseCarriesMessage) {
  for (const ResponseCode code :
       {ResponseCode::kShed, ResponseCode::kError}) {
    ScoreResponse resp;
    resp.request_id = 5;
    resp.code = code;
    resp.message = "tweet_id out of range";
    ScoreResponse out;
    ASSERT_TRUE(DecodeScoreResponse(EncodeScoreResponse(resp), &out).ok());
    EXPECT_EQ(out.code, code);
    EXPECT_EQ(out.message, resp.message);
    EXPECT_TRUE(out.scores.empty());
  }
}

TEST(ProtocolTest, StatsRoundTrips) {
  StatsResponse resp;
  resp.request_id = 9;
  resp.stats = {{"serve.requests", 10},
                {"serve.shed", 0},
                {"handler.num_users", 1u << 20}};
  StatsResponse out;
  ASSERT_TRUE(DecodeStatsResponse(EncodeStatsResponse(resp), &out).ok());
  EXPECT_EQ(out.stats, resp.stats);

  StatsRequest sreq;
  sreq.request_id = 11;
  StatsRequest sout;
  ASSERT_TRUE(DecodeStatsRequest(EncodeStatsRequest(sreq), &sout).ok());
  EXPECT_EQ(sout.request_id, 11u);
}

TEST(ProtocolTest, ScoreRequestCarriesTraceContext) {
  ScoreRequest req;
  req.request_id = 8;
  req.tweet_id = 2;
  req.users = {1, 2, 3};
  req.trace_id = 0xAABBCCDDEEFF0011ull;
  req.span_id = 0x77;
  ScoreRequest out;
  ASSERT_TRUE(DecodeScoreRequest(EncodeScoreRequest(req), &out).ok());
  EXPECT_EQ(out.trace_id, req.trace_id);
  EXPECT_EQ(out.span_id, req.span_id);
  // Unset context travels as zeros (the "no trace" wire value).
  ScoreRequest plain;
  plain.request_id = 9;
  plain.tweet_id = 1;
  out.trace_id = 1;  // must be overwritten by decode
  out.span_id = 1;
  ASSERT_TRUE(DecodeScoreRequest(EncodeScoreRequest(plain), &out).ok());
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.span_id, 0u);
}

/// Hand-crafts the version-1 encoding of a score request (no 16-byte
/// trace tail) from the current encoder's output: strip the tail, patch
/// the header's u16 version field down to 1.
std::string EncodeScoreRequestV1(const ScoreRequest& req) {
  std::string payload = EncodeScoreRequest(req);
  payload.resize(payload.size() - 16);
  payload[4] = 1;  // version lo byte
  payload[5] = 0;  // version hi byte
  return payload;
}

TEST(ProtocolTest, V1ScoreRequestFramesStillDecode) {
  ScoreRequest req;
  req.request_id = 31;
  req.tweet_id = 6;
  req.users = {4, 5};
  req.trace_id = 0xDEAD;  // encoder writes it; the v1 frame drops it
  req.span_id = 0xBEEF;
  const std::string v1 = EncodeScoreRequestV1(req);
  ScoreRequest out;
  out.trace_id = 1;
  out.span_id = 1;
  ASSERT_TRUE(DecodeScoreRequest(v1, &out).ok());
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.tweet_id, req.tweet_id);
  EXPECT_EQ(out.users, req.users);
  EXPECT_EQ(out.trace_id, 0u) << "v1 frames carry no trace context";
  EXPECT_EQ(out.span_id, 0u);

  // A frame claiming v1 but carrying the v2 trace tail is corrupt: the
  // user count no longer agrees with the body size.
  std::string bad = EncodeScoreRequest(req);
  bad[4] = 1;
  bad[5] = 0;
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());
}

TEST(ProtocolTest, MetricsRoundTripsTypedSnapshot) {
  MetricsRequest req;
  req.request_id = 40;
  MetricsRequest req_out;
  ASSERT_TRUE(DecodeMetricsRequest(EncodeMetricsRequest(req), &req_out).ok());
  EXPECT_EQ(req_out.request_id, 40u);

  MetricsResponse resp;
  resp.request_id = 40;
  resp.snapshot.counters = {{"serve.requests", 7}, {"serve.shed", 0}};
  resp.snapshot.gauges = {{"serve.queue.depth_peak", 3},
                          {"obs_test.negative", -123}};
  obs::HistogramSnapshot h;
  h.count = 9;
  h.sum = 900;
  h.p50 = 63;
  h.p95 = 127;
  h.p99 = 255;
  resp.snapshot.histograms = {{"serve.handle_ns", h}};
  obs::WindowSnapshot w;
  w.ticks = 5;
  w.slots = 5;
  w.window = h;
  resp.snapshot.windows = {{"serve.handle_ns", w}};

  const std::string payload = EncodeMetricsResponse(resp);
  auto type = PeekMessageType(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.ValueOrDie(), MessageType::kMetricsResponse);
  MetricsResponse out;
  ASSERT_TRUE(DecodeMetricsResponse(payload, &out).ok());
  EXPECT_EQ(out.request_id, 40u);
  EXPECT_EQ(out.snapshot.counters, resp.snapshot.counters);
  EXPECT_EQ(out.snapshot.gauges, resp.snapshot.gauges);
  ASSERT_EQ(out.snapshot.histograms.count("serve.handle_ns"), 1u);
  const obs::HistogramSnapshot& hg =
      out.snapshot.histograms.at("serve.handle_ns");
  EXPECT_EQ(hg.count, 9u);
  EXPECT_EQ(hg.sum, 900u);
  EXPECT_EQ(hg.p99, 255u);
  ASSERT_EQ(out.snapshot.windows.count("serve.handle_ns"), 1u);
  const obs::WindowSnapshot& wg = out.snapshot.windows.at("serve.handle_ns");
  EXPECT_EQ(wg.ticks, 5u);
  EXPECT_EQ(wg.slots, 5u);
  EXPECT_EQ(wg.window.p50, 63u);
}

TEST(ProtocolTest, MetricsDuplicateKeysAreCorrupt) {
  MetricsResponse resp;
  resp.request_id = 1;
  resp.snapshot.counters = {{"dup_aa", 1}, {"dup_ab", 2}};
  std::string payload = EncodeMetricsResponse(resp);
  const size_t pos = payload.find("dup_ab");
  ASSERT_NE(pos, std::string::npos);
  payload.replace(pos, 6, "dup_aa");  // same length, now a duplicate key
  MetricsResponse out;
  const Status st = DecodeMetricsResponse(payload, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("duplicate"), std::string::npos)
      << st.ToString();
}

TEST(ProtocolTest, CorruptHeadersAreStatusErrors) {
  ScoreRequest req;
  req.request_id = 3;
  req.tweet_id = 4;
  req.users = {1, 2};
  const std::string good = EncodeScoreRequest(req);
  ScoreRequest out;

  std::string bad = good;
  bad[0] ^= 0x01;  // magic
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  bad = good;
  bad[4] = 0x7F;  // version
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  bad = good;
  bad[6] = 0x66;  // unknown type
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());
  EXPECT_FALSE(PeekMessageType(bad).ok());

  bad = good;
  bad[7] = 0x01;  // reserved byte must be zero
  EXPECT_FALSE(DecodeScoreRequest(bad, &out).ok());

  // Right header, wrong body type for the decoder.
  StatsRequest sreq;
  EXPECT_FALSE(DecodeStatsRequest(good, &sreq).ok());
}

TEST(ProtocolTest, EveryTruncationIsAStatusErrorNeverUB) {
  // io::Checkpoint's corruption discipline: any prefix of a valid message
  // decodes to an error. Sweep every truncation point of every type.
  ScoreRequest req;
  req.request_id = 1;
  req.tweet_id = 2;
  req.users = {3, 4, 5};
  ScoreResponse ok_resp;
  ok_resp.request_id = 1;
  ok_resp.scores = {1.5, -2.5};
  ScoreResponse err_resp;
  err_resp.request_id = 1;
  err_resp.code = ResponseCode::kError;
  err_resp.message = "why";
  StatsResponse stats;
  stats.request_id = 1;
  stats.stats = {{"k", 7}};
  MetricsResponse metrics;
  metrics.request_id = 1;
  metrics.snapshot.counters = {{"c", 3}};
  metrics.snapshot.gauges = {{"g", -3}};
  obs::HistogramSnapshot mh;
  mh.count = 1;
  mh.sum = 2;
  metrics.snapshot.histograms = {{"h", mh}};
  obs::WindowSnapshot mw;
  mw.ticks = 1;
  mw.slots = 1;
  mw.window = mh;
  metrics.snapshot.windows = {{"w", mw}};
  const std::string payloads[] = {
      EncodeScoreRequest(req), EncodeScoreResponse(ok_resp),
      EncodeScoreResponse(err_resp), EncodeStatsRequest(StatsRequest{1}),
      EncodeStatsResponse(stats), EncodeMetricsRequest(MetricsRequest{1}),
      EncodeMetricsResponse(metrics)};
  for (const std::string& payload : payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      ScoreRequest r;
      ScoreResponse sr;
      StatsRequest str;
      StatsResponse sts;
      MetricsRequest mr;
      MetricsResponse mrs;
      EXPECT_FALSE(DecodeScoreRequest(prefix, &r).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeScoreResponse(prefix, &sr).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeStatsRequest(prefix, &str).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeStatsResponse(prefix, &sts).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeMetricsRequest(prefix, &mr).ok()) << "cut " << cut;
      EXPECT_FALSE(DecodeMetricsResponse(prefix, &mrs).ok()) << "cut " << cut;
    }
    // Trailing garbage is corruption too, not ignorable padding.
    const std::string padded = payload + '\0';
    ScoreRequest r;
    ScoreResponse sr;
    StatsRequest str;
    StatsResponse sts;
    MetricsRequest mr;
    MetricsResponse mrs;
    EXPECT_FALSE(DecodeScoreRequest(padded, &r).ok());
    EXPECT_FALSE(DecodeScoreResponse(padded, &sr).ok());
    EXPECT_FALSE(DecodeStatsRequest(padded, &str).ok());
    EXPECT_FALSE(DecodeStatsResponse(padded, &sts).ok());
    EXPECT_FALSE(DecodeMetricsRequest(padded, &mr).ok());
    EXPECT_FALSE(DecodeMetricsResponse(padded, &mrs).ok());
  }
}

TEST(ProtocolTest, FrameRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScoreRequest req;
  req.request_id = 21;
  req.tweet_id = 8;
  req.users = {1, 2, 3, 4};
  const std::string payload = EncodeScoreRequest(req);
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  std::string got;
  bool eof = false;
  ASSERT_TRUE(ReadFrame(fds[1], &got, &eof).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(got, payload);
  // Clean close -> EOF at the frame boundary, OK + eof flag.
  close(fds[0]);
  ASSERT_TRUE(ReadFrame(fds[1], &got, &eof).ok());
  EXPECT_TRUE(eof);
  close(fds[1]);
}

TEST(ProtocolTest, TruncatedFrameAndBadLengthPrefixAreErrors) {
  {
    // EOF in the middle of a frame body is an error, not a clean EOF.
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const uint32_t claimed = 100;
    char head[4];
    std::memcpy(head, &claimed, 4);
    ASSERT_EQ(send(fds[0], head, 4, 0), 4);
    ASSERT_EQ(send(fds[0], "xy", 2, 0), 2);
    close(fds[0]);
    std::string got;
    bool eof = false;
    EXPECT_FALSE(ReadFrame(fds[1], &got, &eof).ok());
    close(fds[1]);
  }
  for (const uint32_t bad_len : {uint32_t{0}, kMaxFramePayloadBytes + 1}) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    char head[4];
    std::memcpy(head, &bad_len, 4);
    ASSERT_EQ(send(fds[0], head, 4, 0), 4);
    std::string got;
    bool eof = false;
    EXPECT_FALSE(ReadFrame(fds[1], &got, &eof).ok()) << bad_len;
    close(fds[0]);
    close(fds[1]);
  }
}

// ---------------------------------------------------------- BoundedQueue --

TEST(BoundedQueueTest, FifoAndShedOnFull) {
  par::BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full -> shed, no block
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(4));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseDeliversQueuedItemsThenReportsEmpty) {
  par::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(10));
  ASSERT_TRUE(q.TryPush(11));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(12));  // no admission after close
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // graceful drain still hands out items
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(q.Pop(&out));  // closed + empty
  q.Close();                  // idempotent
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  par::BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersDeliverEverything) {
  par::BoundedQueue<uint64_t> q(8);
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 500;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t v = p * kPerProducer + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
        accepted.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t v = 0;
      while (q.Pop(&v)) {
        popped_sum.fetch_add(v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), accepted.load());  // nothing lost or duped
}

TEST(BoundedQueueTest, TryPopBatchDrainsFifoWithoutBlocking) {
  par::BoundedQueue<int> q(8);
  std::vector<int> out = {-1};  // batch pops append, never clobber
  EXPECT_EQ(q.TryPopBatch(&out, 4), 0u);  // empty queue: no items, no block
  EXPECT_EQ(out, std::vector<int>{-1});
  for (int v = 1; v <= 5; ++v) ASSERT_TRUE(q.TryPush(v));
  EXPECT_EQ(q.TryPopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{-1, 1, 2, 3}));
  // Asking for more than is queued drains what exists, still FIFO.
  EXPECT_EQ(q.TryPopBatch(&out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{-1, 1, 2, 3, 4, 5}));
  // Empty queue: zero items, no block (this is the linger-poll primitive).
  EXPECT_EQ(q.TryPopBatch(&out, 1), 0u);
  EXPECT_EQ(out.size(), 6u);
}

TEST(BoundedQueueTest, PopBatchBlocksForFirstItemThenDrainsRun) {
  par::BoundedQueue<int> q(8);
  std::vector<int> out;
  std::thread producer([&] {
    for (int v = 1; v <= 4; ++v) ASSERT_TRUE(q.TryPush(v));
  });
  // PopBatch must block like Pop until something arrives, then hand back
  // a contiguous FIFO run of up to max_items.
  ASSERT_TRUE(q.PopBatch(&out, 8));
  ASSERT_FALSE(out.empty());
  producer.join();
  // The first pop may have raced ahead of the producer; drain the rest —
  // the concatenation of runs must still be the FIFO sequence.
  while (out.size() < 4) ASSERT_TRUE(q.PopBatch(&out, 8));
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);  // FIFO across runs
  }
  // max_items == 0 clamps to 1 rather than spinning forever on nothing.
  ASSERT_TRUE(q.TryPush(99));
  std::vector<int> one;
  ASSERT_TRUE(q.PopBatch(&one, 0));
  EXPECT_EQ(one, std::vector<int>{99});
}

TEST(BoundedQueueTest, PopBatchAfterCloseDeliversPendingThenReportsClosed) {
  par::BoundedQueue<int> q(8);
  for (int v = 10; v < 13; ++v) ASSERT_TRUE(q.TryPush(v));
  q.Close();
  std::vector<int> out;
  ASSERT_TRUE(q.PopBatch(&out, 2));  // graceful drain, bounded run
  EXPECT_EQ(out, (std::vector<int>{10, 11}));
  ASSERT_TRUE(q.PopBatch(&out, 2));
  EXPECT_EQ(out, (std::vector<int>{10, 11, 12}));
  EXPECT_FALSE(q.PopBatch(&out, 2));  // closed + empty
  EXPECT_EQ(q.TryPopBatch(&out, 2), 0u);
  EXPECT_EQ(out.size(), 3u);  // failed pops never touch the output
}

TEST(BoundedQueueTest, FifoOrderSurvivesBatchedPopsUnderContention) {
  // One consumer popping in variable-size batches while a producer
  // pushes a monotone sequence: concatenating the batches must
  // reconstruct the sequence exactly. Run under TSan (ctest -L serve
  // builds include it in the sanitizer legs) this also races the batch
  // paths against TryPush for data-race coverage.
  par::BoundedQueue<uint64_t> q(16);
  constexpr uint64_t kTotal = 4000;
  std::thread producer([&] {
    for (uint64_t v = 0; v < kTotal; ++v) {
      while (!q.TryPush(v)) std::this_thread::yield();
    }
    q.Close();
  });
  std::vector<uint64_t> got;
  got.reserve(kTotal);
  std::vector<uint64_t> batch;
  size_t max_items = 1;
  while (true) {
    batch.clear();
    if (!q.PopBatch(&batch, max_items)) break;
    got.insert(got.end(), batch.begin(), batch.end());
    max_items = max_items % 7 + 1;  // vary run length 1..7
  }
  producer.join();
  ASSERT_EQ(got.size(), kTotal);
  for (uint64_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(got[v], v) << "batched pops reordered the queue";
  }
}

TEST(BoundedQueueTest, MixedBatchConsumersDeliverEverythingExactlyOnce) {
  // Multi-producer / multi-consumer stress where consumers use the batch
  // pops: checksum accounting proves nothing is lost or duplicated, and
  // TSan proves the new paths are race-free against the existing ones.
  par::BoundedQueue<uint64_t> q(8);
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 500;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t v = p * kPerProducer + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
        accepted.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<uint64_t> batch;
      while (true) {
        batch.clear();
        // Odd consumers linger with TryPopBatch the way WorkerLoop does.
        if (!q.PopBatch(&batch, 4)) break;
        if (c % 2 == 1 && batch.size() < 4) {
          q.TryPopBatch(&batch, 4 - batch.size());
        }
        for (const uint64_t v : batch) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), accepted.load());
}

// ------------------------------------------------------- Scoring fixture --

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.04;
  config.num_users = 500;
  config.history_length = 10;
  config.news_per_day = 30.0;
  return config;
}

core::FeatureConfig TestFeatureConfig() {
  core::FeatureConfig config;
  config.history_size = 6;
  config.history_tfidf_dim = 40;
  config.news_tfidf_dim = 40;
  config.tweet_tfidf_dim = 40;
  config.news_window = 10;
  config.doc2vec_dim = 8;
  config.doc2vec_epochs = 1;
  return config;
}

struct Fixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<core::FeatureExtractor> extractor;
  std::unique_ptr<core::Retina> model;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture{
        datagen::SyntheticWorld::Generate(TestConfig(), 47), nullptr,
        nullptr};
    hatedetect::AnnotationOptions aopts;
    auto report = hatedetect::AnnotateWorld(&f->world, aopts);
    EXPECT_TRUE(report.ok());
    auto fx = core::FeatureExtractor::Build(f->world, TestFeatureConfig());
    EXPECT_TRUE(fx.ok());
    f->extractor =
        std::make_unique<core::FeatureExtractor>(std::move(fx).ValueOrDie());
    core::RetweetTaskOptions topts;
    topts.min_news = 10;
    topts.max_candidates = 16;
    auto task = core::BuildRetweetTask(*f->extractor, topts);
    EXPECT_TRUE(task.ok());
    const core::RetweetTask& t = task.ValueOrDie();
    core::RetinaOptions opts;
    opts.hidden = 10;
    opts.epochs = 1;
    f->model = std::make_unique<core::Retina>(t.user_dim, t.content_dim,
                                              t.embed_dim, t.NumIntervals(),
                                              opts);
    EXPECT_TRUE(f->model->Train(t).ok());
    return f;
  }();
  return *fixture;
}

/// Deterministic request stream over the fixture world.
std::vector<ScoreRequest> MakeRequests(const Fixture& f, size_t n,
                                       uint64_t seed) {
  Rng rng(seed);
  const uint64_t num_tweets = f.world.tweets().size();
  const uint64_t num_users = f.world.NumUsers();
  std::vector<ScoreRequest> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ScoreRequest req;
    req.request_id = 1000 + i;
    req.tweet_id = rng.UniformInt(num_tweets);
    const size_t k = 1 + rng.UniformInt(8);
    for (size_t j = 0; j < k; ++j) {
      req.users.push_back(static_cast<uint32_t>(rng.UniformInt(num_users)));
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// Direct in-process reference: a fresh engine scoring the same request.
Vec DirectScores(const Fixture& f, const ScoreRequest& req) {
  core::ScoringEngine engine(f.model.get(), f.extractor.get(), {});
  std::vector<datagen::NodeId> users(req.users.begin(), req.users.end());
  Vec scores;
  engine.ScoreTweetInto(f.world.tweets()[req.tweet_id], users, &scores);
  return scores;
}

void ExpectBitIdentical(const Vec& got, const Vec& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " score " << i;
  }
}

// -------------------------------------------------------- RequestHandler --

TEST(RequestHandlerTest, ByteIdenticalToDirectEngineAcrossWorkers) {
  auto& f = SharedFixture();
  RequestHandlerOptions opts;
  opts.num_workers = 3;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), opts);
  ASSERT_EQ(handler->num_workers(), 3u);
  const auto requests = MakeRequests(f, 12, 61);
  for (size_t i = 0; i < requests.size(); ++i) {
    const ScoreRequest& req = requests[i];
    const Vec want = DirectScores(f, req);
    // Identical no matter which worker slot serves the request.
    for (size_t w = 0; w < handler->num_workers(); ++w) {
      ScoreResponse resp;
      handler->HandleScore(w, req, &resp);
      ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
      EXPECT_EQ(resp.request_id, req.request_id);
      ExpectBitIdentical(resp.scores, want,
                         "req " + std::to_string(i) + " worker " +
                             std::to_string(w));
    }
  }
}

TEST(RequestHandlerTest, InvalidIdsBecomeErrorResponsesNeverCrashes) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ScoreResponse resp;

  ScoreRequest req;
  req.request_id = 5;
  req.tweet_id = f.world.tweets().size();  // one past the end
  req.users = {0};
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kError);
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_FALSE(resp.message.empty());

  req.tweet_id = 0;
  req.users = {static_cast<uint32_t>(f.world.NumUsers())};
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kError);
  EXPECT_FALSE(resp.message.empty());

  // An empty candidate list is a valid request with an empty answer.
  req.users.clear();
  handler->HandleScore(0, req, &resp);
  EXPECT_EQ(resp.code, ResponseCode::kOk);
  EXPECT_TRUE(resp.scores.empty());
}

TEST(RequestHandlerTest, StatsExposeDatasetShape) {
  auto& f = SharedFixture();
  RequestHandlerOptions opts;
  opts.num_workers = 2;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), opts);
  std::map<std::string, uint64_t> stats;
  handler->AppendStats(&stats);
  EXPECT_EQ(stats["handler.num_tweets"], f.world.tweets().size());
  EXPECT_EQ(stats["handler.num_users"], f.world.NumUsers());
  EXPECT_EQ(stats["handler.num_workers"], 2u);
}

TEST(RequestHandlerTest, CoalescedBatchIsByteIdenticalToUnbatched) {
  // The fused single-GEMM path must be a pure scheduling decision: entry
  // i of a same-tweet batch is bit-equal to handling reqs[i] alone.
  auto& f = SharedFixture();
  RequestHandlerOptions opts;
  opts.num_workers = 2;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), opts);
  Rng rng(83);
  const uint64_t num_users = f.world.NumUsers();

  std::vector<ScoreRequest> reqs;
  for (size_t i = 0; i < 6; ++i) {
    ScoreRequest req;
    req.request_id = 7000 + i;
    req.tweet_id = 17;  // same hot tweet for every batch member
    const size_t k = 1 + rng.UniformInt(6);
    for (size_t j = 0; j < k; ++j) {
      req.users.push_back(static_cast<uint32_t>(rng.UniformInt(num_users)));
    }
    reqs.push_back(std::move(req));
  }
  std::vector<const ScoreRequest*> ptrs;
  for (const ScoreRequest& r : reqs) ptrs.push_back(&r);

  for (size_t w = 0; w < handler->num_workers(); ++w) {
    std::vector<ScoreResponse> batched;
    handler->HandleScoreBatch(w, ptrs, &batched);
    ASSERT_EQ(batched.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      ScoreResponse lone;
      handler->HandleScore(w, reqs[i], &lone);
      ASSERT_EQ(batched[i].code, ResponseCode::kOk) << batched[i].message;
      EXPECT_EQ(batched[i].request_id, reqs[i].request_id);
      ExpectBitIdentical(batched[i].scores, lone.scores,
                         "batched vs lone entry " + std::to_string(i) +
                             " worker " + std::to_string(w));
      // And both equal the direct engine — the full chain is exact.
      ExpectBitIdentical(batched[i].scores, DirectScores(f, reqs[i]),
                         "batched vs direct entry " + std::to_string(i));
    }
  }
}

TEST(RequestHandlerTest, InvalidRequestInBatchErrorsAloneExactly) {
  // An invalid member of a fused batch must produce the same kError
  // response it would alone — byte-identical message — while its
  // neighbors score exactly as if it had never been queued.
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});

  ScoreRequest good_a;
  good_a.request_id = 1;
  good_a.tweet_id = 3;
  good_a.users = {0, 1, 2};
  ScoreRequest bad;
  bad.request_id = 2;
  bad.tweet_id = 3;
  bad.users = {static_cast<uint32_t>(f.world.NumUsers()), 1};  // oob user
  ScoreRequest good_b;
  good_b.request_id = 3;
  good_b.tweet_id = 3;
  good_b.users = {4, 5};

  std::vector<const ScoreRequest*> ptrs = {&good_a, &bad, &good_b};
  std::vector<ScoreResponse> batched;
  handler->HandleScoreBatch(0, ptrs, &batched);
  ASSERT_EQ(batched.size(), 3u);

  ScoreResponse lone_bad;
  handler->HandleScore(0, bad, &lone_bad);
  ASSERT_EQ(lone_bad.code, ResponseCode::kError);
  EXPECT_EQ(batched[1].code, ResponseCode::kError);
  EXPECT_EQ(batched[1].message, lone_bad.message);  // identical wording
  EXPECT_EQ(batched[1].request_id, 2u);
  EXPECT_TRUE(batched[1].scores.empty());

  ASSERT_EQ(batched[0].code, ResponseCode::kOk) << batched[0].message;
  ExpectBitIdentical(batched[0].scores, DirectScores(f, good_a),
                     "neighbor before invalid batch member");
  ASSERT_EQ(batched[2].code, ResponseCode::kOk) << batched[2].message;
  ExpectBitIdentical(batched[2].scores, DirectScores(f, good_b),
                     "neighbor after invalid batch member");
}

TEST(RequestHandlerTest, MixedTweetBatchFallsBackByteIdentically) {
  // The dispatcher never forms mixed-tweet batches, but the Handler
  // contract covers them: the fallback loop must match lone handling.
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  const auto reqs = MakeRequests(f, 5, 91);  // random (distinct) tweet ids
  std::vector<const ScoreRequest*> ptrs;
  for (const ScoreRequest& r : reqs) ptrs.push_back(&r);
  std::vector<ScoreResponse> batched;
  handler->HandleScoreBatch(0, ptrs, &batched);
  ASSERT_EQ(batched.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(batched[i].code, ResponseCode::kOk) << batched[i].message;
    ExpectBitIdentical(batched[i].scores, DirectScores(f, reqs[i]),
                       "mixed-tweet fallback entry " + std::to_string(i));
  }
}

// ----------------------------------------------------------- Server e2e --

std::string TestSocketPath(const char* tag) {
  // /tmp keeps the path far under sockaddr_un's sun_path limit, which a
  // deep build directory would not.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/retina_serve_%s_%d.sock", tag,
                static_cast<int>(getpid()));
  return buf;
}

Result<int> ConnectTo(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket failed");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return Status::IOError("connect failed");
  }
  return fd;
}

Result<int> ConnectTcpTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket failed");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return Status::IOError("tcp connect failed");
  }
  return fd;
}

/// One closed-loop score round trip.
Result<ScoreResponse> RoundTrip(int fd, const ScoreRequest& req) {
  RETINA_RETURN_NOT_OK(WriteFrame(fd, EncodeScoreRequest(req)));
  std::string payload;
  bool eof = false;
  RETINA_RETURN_NOT_OK(ReadFrame(fd, &payload, &eof));
  if (eof) return Status::IOError("server closed mid-conversation");
  ScoreResponse resp;
  RETINA_RETURN_NOT_OK(DecodeScoreResponse(payload, &resp));
  return resp;
}

Result<std::map<std::string, uint64_t>> FetchStats(
    const std::string& path) {
  auto fd = ConnectTo(path);
  RETINA_RETURN_NOT_OK(fd.status());
  StatsRequest req;
  req.request_id = 1;
  Status st = WriteFrame(fd.ValueOrDie(), EncodeStatsRequest(req));
  std::map<std::string, uint64_t> out;
  if (st.ok()) {
    std::string payload;
    bool eof = false;
    st = ReadFrame(fd.ValueOrDie(), &payload, &eof);
    if (st.ok() && eof) st = Status::IOError("eof before stats");
    if (st.ok()) {
      StatsResponse resp;
      st = DecodeStatsResponse(payload, &resp);
      if (st.ok()) out = std::move(resp.stats);
    }
  }
  close(fd.ValueOrDie());
  RETINA_RETURN_NOT_OK(st);
  return out;
}

TEST(ServerTest, ConcurrentClientsGetByteIdenticalScores) {
  auto& f = SharedFixture();
  RequestHandlerOptions hopts;
  hopts.num_workers = 4;
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), hopts);
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("conc");
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 10;
  std::vector<std::vector<ScoreRequest>> plans(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    plans[c] = MakeRequests(f, kPerClient, 100 + c);
  }
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto fd = ConnectTo(sopts.socket_path);
      if (!fd.ok()) {
        failures[c] = fd.status().ToString();
        return;
      }
      for (const ScoreRequest& req : plans[c]) {
        auto resp = RoundTrip(fd.ValueOrDie(), req);
        if (!resp.ok()) {
          failures[c] = resp.status().ToString();
          break;
        }
        if (resp.ValueOrDie().code != ResponseCode::kOk ||
            resp.ValueOrDie().request_id != req.request_id) {
          failures[c] = "bad response for " + std::to_string(req.request_id);
          break;
        }
      }
      close(fd.ValueOrDie());
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  // Byte-identity spot check on a fresh connection, against the direct
  // in-process engine.
  {
    auto fd = ConnectTo(sopts.socket_path);
    ASSERT_TRUE(fd.ok());
    for (const ScoreRequest& req : MakeRequests(f, 6, 999)) {
      auto resp = RoundTrip(fd.ValueOrDie(), req);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
      ExpectBitIdentical(resp.ValueOrDie().scores, DirectScores(f, req),
                         "socket vs direct");
    }
    close(fd.ValueOrDie());
  }

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], kClients * kPerClient + 6);
  EXPECT_EQ(stats["serve.responses"], stats["serve.requests"]);
  EXPECT_EQ(stats["serve.shed"], 0u);
  EXPECT_EQ(stats["serve.errors"], 0u);
  EXPECT_EQ(stats["serve.protocol_errors"], 0u);
}

/// One kMetrics round trip on an already-open connection.
Result<MetricsResponse> FetchMetrics(int fd) {
  MetricsRequest req;
  req.request_id = 2;
  RETINA_RETURN_NOT_OK(WriteFrame(fd, EncodeMetricsRequest(req)));
  std::string payload;
  bool eof = false;
  RETINA_RETURN_NOT_OK(ReadFrame(fd, &payload, &eof));
  if (eof) return Status::IOError("eof before metrics");
  MetricsResponse resp;
  RETINA_RETURN_NOT_OK(DecodeMetricsResponse(payload, &resp));
  return resp;
}

TEST(ServerTest, MetricsAnsweredInlineWithAuthoritativeCounters) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("metrics");
  sopts.metrics_tick_requests = 2;  // rotate aggressively under test load
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto requests = MakeRequests(f, 6, 321);
  for (const ScoreRequest& req : requests) {
    auto resp = RoundTrip(fd.ValueOrDie(), req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  }
  // The worker bumps serve.responses just after writing the frame, so a
  // metrics probe racing the last response can read one short; re-poll
  // until it settles (bounded).
  obs::RegistrySnapshot snap;
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto metrics = FetchMetrics(fd.ValueOrDie());
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    snap = std::move(metrics.ValueOrDie().snapshot);
    if (snap.counters.at("serve.responses") >= requests.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Server-owned counters are overlaid into the snapshot, so the reply
  // is authoritative even with obs disabled or compiled out.
  EXPECT_EQ(snap.counters.at("serve.requests"), requests.size());
  EXPECT_EQ(snap.counters.at("serve.responses"), requests.size());
  EXPECT_EQ(snap.counters.at("serve.shed"), 0u);
  EXPECT_EQ(snap.counters.at("handler.num_workers"),
            handler->num_workers());
  if (obs::kCompiledIn) {
    // The windowed view of the handle latency is live: the current
    // partial slot counts, so no cadence boundary needs to have passed.
    ASSERT_EQ(snap.windows.count("serve.handle_ns"), 1u);
    EXPECT_GT(snap.windows.at("serve.handle_ns").window.count, 0u);
    EXPECT_GT(snap.windows.at("serve.handle_ns").window.p50, 0u);
    // Cadence boundary crossed (6 requests / tick every 2): the ring
    // rotated at least once.
    EXPECT_GT(snap.windows.at("serve.handle_ns").ticks, 0u);
  }
  close(fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
}

TEST(ServerTest, V1ScoreFramesWithoutTraceTailScoreByteIdentically) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("v1");
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  for (const ScoreRequest& req : MakeRequests(f, 6, 55)) {
    auto v2 = RoundTrip(fd.ValueOrDie(), req);
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();
    ASSERT_EQ(v2.ValueOrDie().code, ResponseCode::kOk);

    // The same request as an old client would frame it: version 1, no
    // trace tail. Scores must be byte-identical.
    ASSERT_TRUE(
        WriteFrame(fd.ValueOrDie(), EncodeScoreRequestV1(req)).ok());
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    ASSERT_FALSE(eof);
    ScoreResponse v1;
    ASSERT_TRUE(DecodeScoreResponse(payload, &v1).ok());
    ASSERT_EQ(v1.code, ResponseCode::kOk);
    ExpectBitIdentical(v1.scores, v2.ValueOrDie().scores, "v1 vs v2");
  }
  close(fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
}

TEST(ServerTest, ClientTraceContextPropagatesIntoHandleSpans) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "tracing compiled out with obs";
  }
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("traceprop");
  Server server(handler.get(), sopts);
  obs::StartTracing();
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  ScoreRequest req = MakeRequests(f, 1, 77)[0];
  req.trace_id = 43981;  // 0xABCD — a "client-minted" trace id
  req.span_id = 119;     // the client's send-span id
  auto resp = RoundTrip(fd.ValueOrDie(), req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  close(fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());

  const std::string json = obs::TraceToChromeJson();
  obs::StopTracing();
  // The daemon's serve.handle span adopted the wire context: same trace
  // id, parented under the client's send span.
  EXPECT_NE(json.find("\"serve.handle\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":43981"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent_span_id\":119"), std::string::npos) << json;
}

/// Handler whose HandleScore blocks until released — makes queue overflow
/// deterministic regardless of scheduling.
class StallingHandler : public Handler {
 public:
  size_t num_workers() const override { return 1; }

  void HandleScore(size_t /*worker*/, const ScoreRequest& req,
                   ScoreResponse* resp) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    resp->request_id = req.request_id;
    resp->code = ResponseCode::kOk;
    resp->scores = {static_cast<double>(req.request_id)};
  }

  void AppendStats(std::map<std::string, uint64_t>* stats) const override {
    std::lock_guard<std::mutex> lock(mu_);
    (*stats)["stall.entered"] = entered_;
  }

  void WaitUntilEntered(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  size_t entered_ = 0;
  bool released_ = false;
};

TEST(ServerTest, FullQueueShedsImmediatelyAndDrainAnswersAdmitted) {
  StallingHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("shed");
  sopts.queue_capacity = 1;
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  auto send_req = [&](uint64_t id) {
    ScoreRequest req;
    req.request_id = id;
    ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), EncodeScoreRequest(req)).ok());
  };

  // Request 1 reaches the (stalled) worker; request 2 fills the queue.
  send_req(1);
  handler.WaitUntilEntered(1);
  send_req(2);
  for (int spin = 0; spin < 2000 && server.draining() == false; ++spin) {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    if (s["serve.requests"] >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    ASSERT_EQ(s["serve.requests"], 2u);
  }

  // With the worker wedged and the queue full, every further request must
  // shed with an immediate kShed reply — the reader answers, bounded-time.
  constexpr uint64_t kShedRequests = 5;
  for (uint64_t id = 3; id < 3 + kShedRequests; ++id) send_req(id);
  size_t shed_seen = 0;
  std::string payload;
  bool eof = false;
  while (shed_seen < kShedRequests) {
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    ASSERT_FALSE(eof);
    ScoreResponse resp;
    ASSERT_TRUE(DecodeScoreResponse(payload, &resp).ok());
    ASSERT_EQ(resp.code, ResponseCode::kShed) << resp.request_id;
    EXPECT_GE(resp.request_id, 3u);
    ++shed_seen;
  }

  // Drain while two requests are still admitted-but-unanswered: both must
  // be answered before Wait() returns — admitted work is never dropped.
  server.RequestShutdown();
  handler.Release();
  size_t ok_seen = 0;
  while (ok_seen < 2) {
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    if (eof) break;
    ScoreResponse resp;
    ASSERT_TRUE(DecodeScoreResponse(payload, &resp).ok());
    ASSERT_EQ(resp.code, ResponseCode::kOk);
    EXPECT_LE(resp.request_id, 2u);
    ++ok_seen;
  }
  EXPECT_EQ(ok_seen, 2u);
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());

  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], 2u);
  EXPECT_EQ(stats["serve.responses"], 2u);
  EXPECT_EQ(stats["serve.shed"], kShedRequests);
  EXPECT_GE(stats["serve.queue_depth_peak"], 1u);
}

TEST(ServerTest, StatsRequestAnsweredInlineWhileWorkersAreBusy) {
  StallingHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("stats");
  sopts.queue_capacity = 4;
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  ScoreRequest req;
  req.request_id = 1;
  ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), EncodeScoreRequest(req)).ok());
  handler.WaitUntilEntered(1);

  // The worker is wedged, yet stats must answer: they ride the reader
  // thread, not the admission queue.
  auto stats = FetchStats(sopts.socket_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().at("serve.requests"), 1u);
  EXPECT_EQ(stats.ValueOrDie().at("serve.workers"), 1u);
  EXPECT_EQ(stats.ValueOrDie().at("serve.queue_capacity"), 4u);
  EXPECT_EQ(stats.ValueOrDie().at("stall.entered"), 1u);  // handler merged

  handler.Release();
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());
}

TEST(ServerTest, ProtocolGarbageClosesConnectionNotServer) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("garb");
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  {
    // A frame whose payload is garbage: the server must close this
    // connection (observed as EOF) without taking the daemon down.
    auto fd = ConnectTo(sopts.socket_path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), "not a retina frame").ok());
    std::string payload;
    bool eof = false;
    const Status st = ReadFrame(fd.ValueOrDie(), &payload, &eof);
    EXPECT_TRUE(!st.ok() || eof);
    close(fd.ValueOrDie());
  }

  // The server still serves real traffic afterwards.
  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 1, 7);
  auto resp = RoundTrip(fd.ValueOrDie(), reqs[0]);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  close(fd.ValueOrDie());

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_GE(stats["serve.protocol_errors"], 1u);
}

TEST(ServerTest, SigtermDrainsGracefully) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("term");
  sopts.install_signal_handler = true;
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 3, 13);
  for (const ScoreRequest& req : reqs) {
    auto resp = RoundTrip(fd.ValueOrDie(), req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }

  raise(SIGTERM);  // the installed handler must promote this into a drain
  ASSERT_TRUE(server.Wait().ok());
  close(fd.ValueOrDie());

  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], reqs.size());
  EXPECT_EQ(stats["serve.responses"], reqs.size());
  EXPECT_EQ(stats["serve.draining"], 1u);
  // The socket file is unlinked on drain; new connections must fail.
  EXPECT_FALSE(ConnectTo(sopts.socket_path).ok());
}

/// Handler that records every HandleScoreBatch call's size and blocks
/// until released — makes the dispatcher's coalescing deterministic (a
/// wedged first call lets a known set of requests pile up in the queue)
/// and emits exact bit patterns (NaN payloads, denormals, negative zero)
/// so the fan-out's byte-identity is pinned end to end.
class StallingBatchHandler : public Handler {
 public:
  /// Deterministic per-request score slots, deliberately nasty: the
  /// fan-out must hand every connection its own request's exact bits.
  static Vec ExpectedScores(uint64_t request_id) {
    Vec scores = {static_cast<double>(request_id), std::nan("0x5"), 5e-324,
                  -0.0};
    // Salt the NaN payload per request so cross-request mixups can't
    // accidentally pass the memcmp.
    uint64_t bits;
    std::memcpy(&bits, &scores[1], sizeof(bits));
    bits ^= request_id << 1;
    std::memcpy(&scores[1], &bits, sizeof(bits));
    return scores;
  }

  size_t num_workers() const override { return 1; }

  void HandleScore(size_t worker, const ScoreRequest& req,
                   ScoreResponse* resp) override {
    const std::vector<const ScoreRequest*> one = {&req};
    std::vector<ScoreResponse> resps;
    HandleScoreBatch(worker, one, &resps);
    *resp = std::move(resps[0]);
  }

  void HandleScoreBatch(size_t /*worker*/,
                        const std::vector<const ScoreRequest*>& reqs,
                        std::vector<ScoreResponse>* resps) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_sizes_.push_back(reqs.size());
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    resps->resize(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      (*resps)[i].request_id = reqs[i]->request_id;
      (*resps)[i].code = ResponseCode::kOk;
      (*resps)[i].scores = ExpectedScores(reqs[i]->request_id);
    }
  }

  void AppendStats(std::map<std::string, uint64_t>* /*stats*/) const override {
  }

  void WaitUntilCalls(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return batch_sizes_.size() >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

  std::vector<size_t> batch_sizes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  std::vector<size_t> batch_sizes_;
  bool released_ = false;
};

TEST(ServerTest, SameTweetRequestsCoalesceAndFanOutExactBitPatterns) {
  StallingBatchHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("coal");
  sopts.queue_capacity = 16;
  sopts.coalesce_max_batch = 8;
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd_a = ConnectTo(sopts.socket_path);
  auto fd_b = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd_a.ok());
  ASSERT_TRUE(fd_b.ok());
  auto send_req = [](int fd, uint64_t id) {
    ScoreRequest req;
    req.request_id = id;
    req.tweet_id = 5;  // every request targets the same hot tweet
    req.users = {1, 2};
    ASSERT_TRUE(WriteFrame(fd, EncodeScoreRequest(req)).ok());
  };

  // Request 1 wedges the single worker inside a (singleton) batch call.
  send_req(fd_a.ValueOrDie(), 1);
  handler.WaitUntilCalls(1);
  // Five more same-tweet requests, split across two connections, pile up
  // in the admission queue while the worker is wedged.
  send_req(fd_a.ValueOrDie(), 2);
  send_req(fd_b.ValueOrDie(), 3);
  send_req(fd_a.ValueOrDie(), 4);
  send_req(fd_b.ValueOrDie(), 5);
  send_req(fd_a.ValueOrDie(), 6);
  for (int spin = 0; spin < 5000; ++spin) {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    if (s["serve.requests"] >= 6) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  handler.Release();
  // Fan-out routing: each connection gets exactly its own requests'
  // responses, carrying that request's exact score bit patterns.
  auto read_all = [&](int fd, const std::vector<uint64_t>& want_ids) {
    std::map<uint64_t, ScoreResponse> got;
    for (size_t i = 0; i < want_ids.size(); ++i) {
      std::string payload;
      bool eof = false;
      ASSERT_TRUE(ReadFrame(fd, &payload, &eof).ok());
      ASSERT_FALSE(eof);
      ScoreResponse resp;
      ASSERT_TRUE(DecodeScoreResponse(payload, &resp).ok());
      ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
      got[resp.request_id] = std::move(resp);
    }
    for (const uint64_t id : want_ids) {
      ASSERT_EQ(got.count(id), 1u) << "missing response " << id;
      ExpectBitIdentical(got[id].scores,
                         StallingBatchHandler::ExpectedScores(id),
                         "fanned-out response " + std::to_string(id));
    }
  };
  read_all(fd_a.ValueOrDie(), {1, 2, 4, 6});
  read_all(fd_b.ValueOrDie(), {3, 5});
  close(fd_a.ValueOrDie());
  close(fd_b.ValueOrDie());

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());

  // Deterministic coalescing shape: the wedged singleton, then ONE fused
  // call covering all five queued same-tweet requests.
  const std::vector<size_t> sizes = handler.batch_sizes();
  ASSERT_EQ(sizes.size(), 2u) << "expected exactly two dispatches";
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 5u);

  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], 6u);
  EXPECT_EQ(stats["serve.responses"], 6u);
  EXPECT_EQ(stats["serve.coalesce.batches"], 1u);
  EXPECT_EQ(stats["serve.coalesce.batched_requests"], 5u);
  EXPECT_EQ(stats["serve.coalesce.max_batch"], 8u);
}

TEST(ServerTest, CoalescingDisabledDispatchesEveryRequestAlone) {
  StallingBatchHandler handler;
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("nocoal");
  sopts.queue_capacity = 16;
  sopts.coalesce_max_batch = 1;  // the pre-coalescing behavior
  Server server(&handler, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  for (uint64_t id = 1; id <= 4; ++id) {
    ScoreRequest req;
    req.request_id = id;
    req.tweet_id = 5;
    req.users = {1};
    ASSERT_TRUE(WriteFrame(fd.ValueOrDie(), EncodeScoreRequest(req)).ok());
  }
  handler.WaitUntilCalls(1);
  for (int spin = 0; spin < 5000; ++spin) {
    std::map<std::string, uint64_t> s;
    server.SnapshotStats(&s);
    if (s["serve.requests"] >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  handler.Release();
  for (size_t i = 0; i < 4; ++i) {
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(ReadFrame(fd.ValueOrDie(), &payload, &eof).ok());
    ASSERT_FALSE(eof);
  }
  close(fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());

  for (const size_t size : handler.batch_sizes()) {
    EXPECT_EQ(size, 1u) << "max_batch=1 must never fuse";
  }
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.coalesce.batches"], 0u);
  EXPECT_EQ(stats["serve.coalesce.batched_requests"], 0u);
}

// ---------------------------------------------------------- TCP listener --

TEST(ServerTest, TcpListenerServesByteIdenticalScores) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.listen_address = "127.0.0.1:0";  // kernel-assigned port, no Unix
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0) << "port 0 must resolve to a bound port";

  auto fd = ConnectTcpTo(server.tcp_port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const auto reqs = MakeRequests(f, 6, 311);
  for (size_t i = 0; i < reqs.size(); ++i) {
    auto resp = RoundTrip(fd.ValueOrDie(), reqs[i]);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().code, ResponseCode::kOk)
        << resp.ValueOrDie().message;
    ExpectBitIdentical(resp.ValueOrDie().scores, DirectScores(f, reqs[i]),
                       "tcp vs direct req " + std::to_string(i));
  }
  close(fd.ValueOrDie());

  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  std::map<std::string, uint64_t> stats;
  server.SnapshotStats(&stats);
  EXPECT_EQ(stats["serve.requests"], reqs.size());
  EXPECT_EQ(stats["serve.responses"], reqs.size());
  // The drain closed the TCP listener: new connections must fail.
  EXPECT_FALSE(ConnectTcpTo(server.tcp_port()).ok());
}

TEST(ServerTest, BothTransportsServeTheSameBytesSimultaneously) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("dual");
  sopts.listen_address = "127.0.0.1:0";
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0);

  auto unix_fd = ConnectTo(sopts.socket_path);
  auto tcp_fd = ConnectTcpTo(server.tcp_port());
  ASSERT_TRUE(unix_fd.ok());
  ASSERT_TRUE(tcp_fd.ok());
  for (const ScoreRequest& req : MakeRequests(f, 4, 733)) {
    auto via_unix = RoundTrip(unix_fd.ValueOrDie(), req);
    auto via_tcp = RoundTrip(tcp_fd.ValueOrDie(), req);
    ASSERT_TRUE(via_unix.ok());
    ASSERT_TRUE(via_tcp.ok());
    ASSERT_EQ(via_unix.ValueOrDie().code, ResponseCode::kOk);
    ASSERT_EQ(via_tcp.ValueOrDie().code, ResponseCode::kOk);
    // Same frame protocol, same admission path, same bytes out.
    ExpectBitIdentical(via_tcp.ValueOrDie().scores,
                       via_unix.ValueOrDie().scores, "tcp vs unix");
    ExpectBitIdentical(via_unix.ValueOrDie().scores, DirectScores(f, req),
                       "unix vs direct");
  }
  close(unix_fd.ValueOrDie());
  close(tcp_fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
}

// ----------------------------------------------------- Stale socket files --

TEST(ServerTest, StaleSocketFileFromKilledRunIsReclaimed) {
  // A SIGKILL'd daemon leaves its socket inode behind. Start() must
  // connect-probe it, find nobody home, unlink, and bind fresh.
  const std::string path = TestSocketPath("stale");
  {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    unlink(path.c_str());
    ASSERT_EQ(
        bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
    close(fd);  // no unlink: the inode stays, with no listener behind it
  }
  ASSERT_EQ(access(path.c_str(), F_OK), 0);
  ASSERT_FALSE(ConnectTo(path).ok());  // it really is dead

  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = path;
  Server server(handler.get(), sopts);
  ASSERT_TRUE(server.Start().ok()) << "stale socket file must be reclaimed";

  auto fd = ConnectTo(path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 1, 17);
  auto resp = RoundTrip(fd.ValueOrDie(), reqs[0]);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  close(fd.ValueOrDie());
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
}

TEST(ServerTest, LiveServersSocketIsNeverStolen) {
  auto& f = SharedFixture();
  auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
  ServerOptions sopts;
  sopts.socket_path = TestSocketPath("live");
  Server first(handler.get(), sopts);
  ASSERT_TRUE(first.Start().ok());

  // The connect probe reaches the live daemon, so the second Start()
  // must refuse rather than unlink a socket that is still answering.
  Server second(handler.get(), sopts);
  const Status st = second.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("refusing"), std::string::npos)
      << st.ToString();

  // And the refusal must not have disturbed the live server.
  auto fd = ConnectTo(sopts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto reqs = MakeRequests(f, 1, 23);
  auto resp = RoundTrip(fd.ValueOrDie(), reqs[0]);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().code, ResponseCode::kOk);
  close(fd.ValueOrDie());
  first.RequestShutdown();
  ASSERT_TRUE(first.Wait().ok());
}

TEST(ServerTest, TracingTheServePathDoesNotPerturbScores) {
  // Determinism contract: observers never change behavior. The same
  // request stream, served once with tracing active and once without,
  // must produce byte-identical scores.
  auto& f = SharedFixture();
  const auto reqs = MakeRequests(f, 5, 29);

  auto run = [&](bool traced) {
    if (traced) obs::StartTracing();
    auto handler = RequestHandler::Borrow(f.model.get(), f.extractor.get(), {});
    ServerOptions sopts;
    sopts.socket_path = TestSocketPath(traced ? "tron" : "troff");
    Server server(handler.get(), sopts);
    EXPECT_TRUE(server.Start().ok());
    std::vector<Vec> all;
    auto fd = ConnectTo(sopts.socket_path);
    EXPECT_TRUE(fd.ok());
    for (const ScoreRequest& req : reqs) {
      auto resp = RoundTrip(fd.ValueOrDie(), req);
      EXPECT_TRUE(resp.ok());
      all.push_back(resp.ValueOrDie().scores);
    }
    close(fd.ValueOrDie());
    server.RequestShutdown();
    EXPECT_TRUE(server.Wait().ok());
    if (traced) {
      if (obs::kCompiledIn) {
        EXPECT_GT(obs::TraceBufferedEvents(), 0u);  // spans recorded
      }
      obs::StopTracing();
    }
    return all;
  };

  const auto plain = run(false);
  const auto traced = run(true);
  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectBitIdentical(traced[i], plain[i],
                       "traced vs plain req " + std::to_string(i));
  }
}

}  // namespace
}  // namespace retina::serve
