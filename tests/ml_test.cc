// Tests for src/ml: metrics, dataset utilities, dimensionality reduction
// and the six classifiers (on synthetic separable / noisy data).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "ml/adaboost.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/preprocess.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace retina::ml {
namespace {

// --------------------------------------------------------------- Metrics --

TEST(MetricsTest, ConfusionCounts) {
  const Confusion c = Confusion::FromPredictions({1, 1, 0, 0, 1},
                                                 {1, 0, 0, 1, 1});
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(c.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 2.0 / 3.0);
}

TEST(MetricsTest, PerfectMacroF1) {
  EXPECT_DOUBLE_EQ(MacroF1({1, 0, 1}, {1, 0, 1}), 1.0);
}

TEST(MetricsTest, MajorityVotePenalizedByMacroF1) {
  // Predicting all-negative on imbalanced data: high ACC, low macro-F1.
  std::vector<int> y_true(100, 0), y_pred(100, 0);
  for (int i = 0; i < 5; ++i) y_true[i] = 1;
  EXPECT_DOUBLE_EQ(Accuracy(y_true, y_pred), 0.95);
  const double f1 = MacroF1(y_true, y_pred);
  EXPECT_LT(f1, 0.55);
  EXPECT_GT(f1, 0.4);
}

TEST(MetricsTest, AucPerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  Rng rng(1);
  std::vector<int> y(5000);
  Vec s(5000);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.Bernoulli(0.3);
    s[i] = rng.Uniform();
  }
  EXPECT_NEAR(RocAuc(y, s), 0.5, 0.03);
}

TEST(MetricsTest, AucTiesAveraged) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(MetricsTest, AucDegenerateClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.3, 0.7}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}, {0.3, 0.7}), 0.5);
}

TEST(MetricsTest, ThresholdDefaults) {
  EXPECT_EQ(Threshold({0.2, 0.5, 0.9}), (std::vector<int>{0, 1, 1}));
}

TEST(MetricsTest, MapAtKPerfect) {
  RankingQuery q;
  q.scores = {0.9, 0.8, 0.1, 0.05};
  q.relevant = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(MeanAveragePrecisionAtK({q}, 2), 1.0);
}

TEST(MetricsTest, MapAtKWorstRanking) {
  RankingQuery q;
  q.scores = {0.9, 0.8, 0.1, 0.05};
  q.relevant = {0, 0, 1, 1};
  // AP@4 with relevant at ranks 3,4: (1/3 + 2/4)/2.
  EXPECT_NEAR(MeanAveragePrecisionAtK({q}, 4), (1.0 / 3 + 0.5) / 2, 1e-12);
}

TEST(MetricsTest, MapSkipsQueriesWithoutRelevant) {
  RankingQuery good{{0.9, 0.1}, {1, 0}};
  RankingQuery empty{{0.9, 0.1}, {0, 0}};
  EXPECT_DOUBLE_EQ(MeanAveragePrecisionAtK({good, empty}, 2), 1.0);
  EXPECT_DOUBLE_EQ(MeanAveragePrecisionAtK({empty}, 2), 0.0);
}

TEST(MetricsTest, HitsAtKIsRecallAtK) {
  RankingQuery q;
  q.scores = {0.9, 0.8, 0.7, 0.1};
  q.relevant = {1, 0, 1, 1};  // 3 relevant
  // Top-2 contains 1 of min(3,2)=2 → 0.5.
  EXPECT_DOUBLE_EQ(HitsAtK({q}, 2), 0.5);
  // Top-4 contains all 3 of min(3,4)=3 → 1.
  EXPECT_DOUBLE_EQ(HitsAtK({q}, 4), 1.0);
}

// --------------------------------------------------------------- Dataset --

Dataset ImbalancedSet(size_t n, double pos_rate, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.X = Matrix(n, 3);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.y[i] = rng.Bernoulli(pos_rate) ? 1 : 0;
    // Feature 0 is informative, 1-2 noise.
    d.X(i, 0) = d.y[i] + rng.Normal(0.0, 0.8);
    d.X(i, 1) = rng.Normal();
    d.X(i, 2) = rng.Uniform();
  }
  return d;
}

TEST(DatasetTest, SelectAndCounts) {
  const Dataset d = ImbalancedSet(100, 0.2, 3);
  const Dataset sub = d.Select({0, 5, 10});
  EXPECT_EQ(sub.NumRows(), 3u);
  EXPECT_EQ(sub.y[1], d.y[5]);
  EXPECT_EQ(sub.X.RowVec(2), d.X.RowVec(10));
}

TEST(DatasetTest, TrainTestSplitSizesAndDisjoint) {
  const Dataset d = ImbalancedSet(100, 0.3, 5);
  Rng rng(7);
  Dataset train, test;
  TrainTestSplit(d, 0.2, &rng, &train, &test);
  EXPECT_EQ(train.NumRows(), 80u);
  EXPECT_EQ(test.NumRows(), 20u);
}

TEST(DatasetTest, DownsampleBalances) {
  const Dataset d = ImbalancedSet(1000, 0.1, 9);
  Rng rng(11);
  const Dataset ds = DownsampleMajority(d, &rng);
  const size_t pos = ds.NumPositives();
  EXPECT_EQ(ds.NumRows(), 2 * pos);
  EXPECT_EQ(pos, d.NumPositives());
}

TEST(DatasetTest, UpDownsampleGeometricMean) {
  const Dataset d = ImbalancedSet(1000, 0.1, 13);
  Rng rng(17);
  const Dataset s = UpDownsample(d, &rng);
  const size_t pos = s.NumPositives();
  const size_t neg = s.NumRows() - pos;
  EXPECT_EQ(pos, neg);
  const double target = std::sqrt(static_cast<double>(d.NumPositives()) *
                                  static_cast<double>(1000 - d.NumPositives()));
  EXPECT_NEAR(static_cast<double>(pos), target, 2.0);
}

TEST(DatasetTest, UpsampleCapsAtMajority) {
  const Dataset d = ImbalancedSet(500, 0.1, 19);
  Rng rng(23);
  const Dataset s = UpsampleMinority(d, 100.0, &rng);
  const size_t pos = s.NumPositives();
  EXPECT_LE(pos, s.NumRows() - pos);
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  const Dataset d = ImbalancedSet(500, 0.5, 29);
  StandardScaler scaler;
  scaler.Fit(d.X);
  Matrix x = d.X;
  scaler.Transform(&x);
  for (size_t j = 0; j < x.cols(); ++j) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < x.rows(); ++i) mean += x(i, j);
    mean /= static_cast<double>(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      var += (x(i, j) - mean) * (x(i, j) - mean);
    }
    var /= static_cast<double>(x.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-6);
  }
}

TEST(StandardScalerTest, ConstantColumnSafe) {
  Matrix x(10, 1, 3.0);
  StandardScaler scaler;
  scaler.Fit(x);
  scaler.Transform(&x);
  for (size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(x(i, 0), 0.0);
}

// ----------------------------------------------------------- Classifiers --

// Linearly separable blob pair.
Dataset Blobs(size_t n, double gap, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.X = Matrix(n, 4);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.y[i] = (i % 2 == 0) ? 1 : 0;
    const double center = d.y[i] == 1 ? gap : -gap;
    for (size_t j = 0; j < 4; ++j) d.X(i, j) = center + rng.Normal();
  }
  return d;
}

// XOR pattern: not linearly separable.
Dataset Xor(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.X = Matrix(n, 2);
  d.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    d.X(i, 0) = a + rng.Normal(0.0, 0.2);
    d.X(i, 1) = b + rng.Normal(0.0, 0.2);
    d.y[i] = (a * b > 0) ? 1 : 0;
  }
  return d;
}

double TestAccuracy(BinaryClassifier* model, const Dataset& test) {
  return Accuracy(test.y, model->PredictBatch(test.X));
}

class SeparableModelTest
    : public ::testing::TestWithParam<int> {};

std::unique_ptr<BinaryClassifier> MakeModel(int which) {
  switch (which) {
    case 0:
      return std::make_unique<LogisticRegression>();
    case 1:
      return std::make_unique<LinearSVM>();
    case 2:
      return std::make_unique<KernelSVM>();
    case 3: {
      DecisionTreeOptions opts;
      opts.max_depth = 6;
      return std::make_unique<DecisionTree>(opts);
    }
    case 4:
      return std::make_unique<RandomForest>();
    case 5:
      return std::make_unique<AdaBoost>();
    case 6: {
      GradientBoostingOptions opts;
      opts.learning_rate = 0.3;
      opts.n_estimators = 40;
      return std::make_unique<GradientBoosting>(opts);
    }
  }
  return nullptr;
}

TEST_P(SeparableModelTest, LearnsSeparableBlobs) {
  auto model = MakeModel(GetParam());
  ASSERT_NE(model, nullptr);
  const Dataset train = Blobs(600, 1.5, 31);
  const Dataset test = Blobs(200, 1.5, 37);
  ASSERT_TRUE(model->Fit(train.X, train.y).ok());
  EXPECT_GT(TestAccuracy(model.get(), test), 0.9) << model->Name();
}

TEST_P(SeparableModelTest, RejectsBadShapes) {
  auto model = MakeModel(GetParam());
  Matrix x(3, 2);
  EXPECT_FALSE(model->Fit(x, {1, 0}).ok());
  EXPECT_FALSE(model->Fit(Matrix(), {}).ok());
}

TEST_P(SeparableModelTest, ProbabilitiesInUnitInterval) {
  auto model = MakeModel(GetParam());
  const Dataset train = Blobs(300, 1.0, 41);
  ASSERT_TRUE(model->Fit(train.X, train.y).ok());
  const Vec p = model->PredictProbaBatch(train.X);
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SeparableModelTest,
                         ::testing::Range(0, 7));

TEST(KernelSvmTest, SolvesXorWhereLinearFails) {
  const Dataset train = Xor(800, 43);
  const Dataset test = Xor(300, 47);

  LinearSVM linear;
  ASSERT_TRUE(linear.Fit(train.X, train.y).ok());
  const double linear_acc = TestAccuracy(&linear, test);

  KernelSVMOptions opts;
  opts.gamma = 1.0;
  opts.n_components = 128;
  KernelSVM rbf(opts);
  ASSERT_TRUE(rbf.Fit(train.X, train.y).ok());
  const double rbf_acc = TestAccuracy(&rbf, test);

  EXPECT_LT(linear_acc, 0.70);
  EXPECT_GT(rbf_acc, 0.85);
}

TEST(DecisionTreeTest, SolvesXor) {
  const Dataset train = Xor(800, 53);
  const Dataset test = Xor(300, 59);
  DecisionTreeOptions opts;
  opts.max_depth = 4;
  DecisionTree tree(opts);
  ASSERT_TRUE(tree.Fit(train.X, train.y).ok());
  EXPECT_GT(TestAccuracy(&tree, test), 0.9);
}

TEST(DecisionTreeTest, DepthZeroIsPrior) {
  DecisionTreeOptions opts;
  opts.max_depth = 0;
  opts.balanced_class_weight = false;
  DecisionTree tree(opts);
  const Dataset d = Blobs(100, 2.0, 61);
  ASSERT_TRUE(tree.Fit(d.X, d.y).ok());
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_NEAR(tree.PredictProba(d.X.RowVec(0)), 0.5, 0.05);
}

TEST(DecisionTreeTest, BalancedWeightingLiftsMinorityRecall) {
  const Dataset d = ImbalancedSet(2000, 0.05, 67);
  DecisionTreeOptions balanced;
  balanced.max_depth = 4;
  balanced.balanced_class_weight = true;
  DecisionTree bt(balanced);
  ASSERT_TRUE(bt.Fit(d.X, d.y).ok());

  DecisionTreeOptions plain = balanced;
  plain.balanced_class_weight = false;
  DecisionTree pt(plain);
  ASSERT_TRUE(pt.Fit(d.X, d.y).ok());

  const Confusion cb =
      Confusion::FromPredictions(d.y, bt.PredictBatch(d.X));
  const Confusion cp =
      Confusion::FromPredictions(d.y, pt.PredictBatch(d.X));
  EXPECT_GE(cb.Recall(), cp.Recall());
  EXPECT_GT(cb.Recall(), 0.5);
}

TEST(AdaBoostTest, BoostingBeatsSingleBaseTree) {
  // Depth-2 base trees: a single one fits XOR imperfectly on noisy data;
  // boosting sharpens it. (Depth-1 stumps cannot progress on symmetric
  // XOR — their weighted error stays at 0.5 — which is why base_depth is
  // configurable.)
  const Dataset train = Xor(800, 71);
  const Dataset test = Xor(300, 73);
  AdaBoostOptions opts;
  opts.n_estimators = 60;
  opts.base_depth = 2;
  AdaBoost boost(opts);
  ASSERT_TRUE(boost.Fit(train.X, train.y).ok());
  EXPECT_GT(TestAccuracy(&boost, test), 0.9);
}

TEST(AdaBoostTest, StumpsCannotLearnSymmetricXor) {
  const Dataset train = Xor(800, 79);
  AdaBoostOptions opts;
  opts.n_estimators = 40;
  opts.base_depth = 1;
  AdaBoost boost(opts);
  ASSERT_TRUE(boost.Fit(train.X, train.y).ok());
  EXPECT_LT(TestAccuracy(&boost, train), 0.7);
}

TEST(GradientBoostingTest, TinyLearningRateStaysNearPrior) {
  // Reproduces the paper's XGBoost pathology (learning_rate=1e-4).
  GradientBoostingOptions opts;
  opts.learning_rate = 1e-4;
  opts.n_estimators = 30;
  GradientBoosting gb(opts);
  const Dataset d = Blobs(400, 2.0, 79);
  ASSERT_TRUE(gb.Fit(d.X, d.y).ok());
  // Predictions barely move off the base rate (0.5 here).
  const Vec p = gb.PredictProbaBatch(d.X);
  for (double v : p) EXPECT_NEAR(v, 0.5, 0.05);
}

TEST(GradientBoostingTest, RegAlphaShrinksLeaves) {
  const Dataset d = Blobs(300, 1.0, 83);
  GradientBoostingOptions weak;
  weak.learning_rate = 0.3;
  weak.n_estimators = 5;
  weak.reg_alpha = 0.0;
  GradientBoosting a(weak);
  ASSERT_TRUE(a.Fit(d.X, d.y).ok());
  weak.reg_alpha = 50.0;  // aggressive L1: gradients fully thresholded
  GradientBoosting b(weak);
  ASSERT_TRUE(b.Fit(d.X, d.y).ok());
  // With huge alpha, predictions collapse to the prior.
  const Vec pa = a.PredictProbaBatch(d.X);
  const Vec pb = b.PredictProbaBatch(d.X);
  EXPECT_GT(Variance(pa), Variance(pb));
}

TEST(RandomForestTest, HasConfiguredTreeCount) {
  RandomForestOptions opts;
  opts.n_estimators = 10;
  RandomForest rf(opts);
  const Dataset d = Blobs(200, 1.5, 89);
  ASSERT_TRUE(rf.Fit(d.X, d.y).ok());
  EXPECT_EQ(rf.NumTrees(), 10u);
}

// ------------------------------------------------------------------- PCA --

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(97);
  const size_t n = 600;
  Matrix x(n, 5);
  // Variance concentrated along (1,1,0,0,0)/sqrt(2).
  for (size_t i = 0; i < n; ++i) {
    const double t = rng.Normal(0.0, 3.0);
    x(i, 0) = t + rng.Normal(0.0, 0.1);
    x(i, 1) = t + rng.Normal(0.0, 0.1);
    for (size_t j = 2; j < 5; ++j) x(i, j) = rng.Normal(0.0, 0.1);
  }
  PcaOptions opts;
  opts.n_components = 2;
  Pca pca(opts);
  ASSERT_TRUE(pca.Fit(x).ok());
  EXPECT_GT(pca.explained_variance()[0],
            20.0 * pca.explained_variance()[1]);
  // First transformed coordinate should carry nearly all the variance.
  const Matrix z = pca.TransformBatch(x);
  Vec c0(n), c1(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = z(i, 0);
    c1[i] = z(i, 1);
  }
  EXPECT_GT(Variance(c0), 20.0 * Variance(c1));
}

TEST(PcaTest, RejectsTooManyComponents) {
  Pca pca(PcaOptions{.n_components = 10});
  Matrix x(5, 3);
  EXPECT_FALSE(pca.Fit(x).ok());
}

TEST(PcaTest, TransformIsCentered) {
  Rng rng(101);
  Matrix x(200, 4);
  for (auto& v : x.data()) v = 5.0 + rng.Normal();
  PcaOptions opts;
  opts.n_components = 2;
  Pca pca(opts);
  ASSERT_TRUE(pca.Fit(x).ok());
  // Mean of transformed data ~ 0.
  const Matrix z = pca.TransformBatch(x);
  for (size_t j = 0; j < z.cols(); ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < z.rows(); ++i) mean += z(i, j);
    EXPECT_NEAR(mean / static_cast<double>(z.rows()), 0.0, 1e-6);
  }
}

// ------------------------------------------------------------- KBest MI --

TEST(KBestTest, SelectsInformativeFeature) {
  const Dataset d = ImbalancedSet(2000, 0.3, 103);  // feature 0 informative
  KBestMutualInfo kbest(1);
  ASSERT_TRUE(kbest.Fit(d.X, d.y).ok());
  ASSERT_EQ(kbest.selected().size(), 1u);
  EXPECT_EQ(kbest.selected()[0], 0u);
  EXPECT_GT(kbest.scores()[0], kbest.scores()[1]);
  EXPECT_GT(kbest.scores()[0], kbest.scores()[2]);
}

TEST(KBestTest, TransformKeepsSelectedColumns) {
  const Dataset d = ImbalancedSet(500, 0.3, 107);
  KBestMutualInfo kbest(2);
  ASSERT_TRUE(kbest.Fit(d.X, d.y).ok());
  const Vec row = d.X.RowVec(0);
  const Vec t = kbest.Transform(row);
  ASSERT_EQ(t.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(t[i], row[kbest.selected()[i]]);
  }
}

TEST(KBestTest, KLargerThanDimsKeepsAll) {
  const Dataset d = ImbalancedSet(200, 0.3, 109);
  KBestMutualInfo kbest(50);
  ASSERT_TRUE(kbest.Fit(d.X, d.y).ok());
  EXPECT_EQ(kbest.selected().size(), 3u);
}

}  // namespace
}  // namespace retina::ml
