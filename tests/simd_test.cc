// Pins for the retina::simd kernel layer (DESIGN.md §10) and the
// ScratchArena request allocator.
//
// Kernel contract under test:
//   - Element-wise kernels (axpy, scale, div_inplace, sparse_axpy) are
//     bit-identical to the scalar reference at every size on x86; on NEON
//     they hold the 1e-12 relative tolerance instead (aarch64 contracts
//     scalar multiply+add into fused ops, so the reference itself fuses).
//   - Reduction kernels (dot, sparse_dot) agree with scalar within 1e-12
//     relative tolerance and are bit-identical run-to-run at a fixed
//     dispatch choice.
//   - Matrix drivers produce every output entry through the dispatched
//     kernel, so driver results are bit-identical to per-entry kernel
//     calls at ANY backend — the invariant the serial≡batched forward
//     pins build on.
// Every comparison runs across tail sizes (0, 1, 3, 4k±1, ...) and
// unaligned slices, because the SIMD bodies switch between 16-wide
// blocks, 4-wide tails, and scalar remainders at exactly those edges.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/simd.h"
#include "common/status.h"

namespace retina {
namespace {

// Sizes straddling every block boundary of the widest kernel (16-wide
// main loop, 8- and 4-wide tails, scalar remainder).
const size_t kSizes[] = {0,  1,  3,   4,   5,   7,    8,    15,   16,  17,
                         31, 63, 127, 255, 256, 1023, 4095, 4096, 4097};

std::vector<double> MakeData(size_t n, unsigned seed) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i) + seed) +
           0.25 * std::cos(1.93 * static_cast<double>(i));
  }
  return v;
}

// Ascending indices with an irregular stride so gathers cross cache lines.
std::vector<uint32_t> MakeIndices(size_t nnz, size_t dim) {
  std::vector<uint32_t> idx(nnz);
  size_t cur = 0;
  for (size_t k = 0; k < nnz; ++k) {
    idx[k] = static_cast<uint32_t>(cur);
    cur += 1 + (k % 3);
  }
  EXPECT_TRUE(nnz == 0 || idx.back() < dim);
  return idx;
}

const simd::KernelTable& Scalar() {
  return simd::KernelsFor(simd::Backend::kScalar);
}

// The element-wise bit-exactness guarantee is x86-only (see header note).
bool ElementwiseBitwise() {
  return simd::Active() != simd::Backend::kNeon;
}

void ExpectWithinReductionTolerance(double got, double ref) {
  EXPECT_NEAR(got, ref, 1e-12 * std::abs(ref) + 1e-15);
}

// ------------------------------------------------------------- dispatch --

TEST(SimdDispatchTest, ParseBackend) {
  simd::Backend b;
  EXPECT_TRUE(simd::ParseBackend("scalar", &b));
  EXPECT_EQ(b, simd::Backend::kScalar);
  EXPECT_TRUE(simd::ParseBackend("avx2", &b));
  EXPECT_EQ(b, simd::Backend::kAvx2);
  EXPECT_TRUE(simd::ParseBackend("neon", &b));
  EXPECT_EQ(b, simd::Backend::kNeon);
  EXPECT_TRUE(simd::ParseBackend("auto", &b));
  EXPECT_EQ(b, simd::Detect());
  EXPECT_FALSE(simd::ParseBackend("sse9", &b));
  EXPECT_FALSE(simd::ParseBackend("", &b));
}

TEST(SimdDispatchTest, ActiveBackendIsAvailable) {
  EXPECT_TRUE(simd::BackendAvailable(simd::Active()));
  EXPECT_TRUE(simd::BackendAvailable(simd::Detect()));
  EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
}

TEST(SimdDispatchTest, ForceBackendRoundTrip) {
  const simd::Backend original = simd::Active();
  ASSERT_TRUE(simd::ForceBackend(simd::Backend::kScalar).ok());
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  EXPECT_EQ(simd::Kernels().dot, Scalar().dot);
  ASSERT_TRUE(simd::ForceBackend(original).ok());
  EXPECT_EQ(simd::Active(), original);
}

TEST(SimdDispatchTest, ForceUnavailableBackendFailsAndKeepsDispatch) {
  const simd::Backend original = simd::Active();
  for (const simd::Backend b :
       {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::BackendAvailable(b)) continue;
    EXPECT_FALSE(simd::ForceBackend(b).ok());
    EXPECT_EQ(simd::Active(), original);
  }
}

TEST(SimdDispatchTest, KernelsForUnavailableBackendFallsBackToScalar) {
  for (const simd::Backend b :
       {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::BackendAvailable(b)) continue;
    EXPECT_EQ(simd::KernelsFor(b).dot, Scalar().dot);
  }
}

// -------------------------------------------------------------- kernels --

TEST(SimdKernelTest, DotMatchesScalarAtAllSizes) {
  for (const size_t n : kSizes) {
    const auto a = MakeData(n, 1);
    const auto b = MakeData(n, 2);
    ExpectWithinReductionTolerance(
        simd::Kernels().dot(a.data(), b.data(), n),
        Scalar().dot(a.data(), b.data(), n));
  }
}

TEST(SimdKernelTest, DotUnalignedSlices) {
  const auto a = MakeData(4200, 3);
  const auto b = MakeData(4200, 4);
  for (const size_t off : {1u, 2u, 3u, 5u}) {
    for (const size_t n : {15u, 16u, 17u, 255u, 1024u, 4097u}) {
      ExpectWithinReductionTolerance(
          simd::Kernels().dot(a.data() + off, b.data() + off, n),
          Scalar().dot(a.data() + off, b.data() + off, n));
    }
  }
}

TEST(SimdKernelTest, ReductionsBitIdenticalRunToRun) {
  const auto a = MakeData(4097, 5);
  const auto b = MakeData(4097, 6);
  for (const size_t n : kSizes) {
    const double first = simd::Kernels().dot(a.data(), b.data(), n);
    const double second = simd::Kernels().dot(a.data(), b.data(), n);
    EXPECT_EQ(first, second) << "n=" << n;
  }
}

TEST(SimdKernelTest, Norm2SqEqualsDotWithSelf) {
  const auto a = MakeData(1023, 7);
  EXPECT_EQ(simd::Norm2Sq(a.data(), a.size()),
            simd::Dot(a.data(), a.data(), a.size()));
}

TEST(SimdKernelTest, AxpyMatchesScalarAtAllSizes) {
  const bool bitwise = ElementwiseBitwise();
  for (const size_t n : kSizes) {
    const auto x = MakeData(n, 8);
    auto got = MakeData(n, 9);
    auto ref = got;
    simd::Kernels().axpy(1.25, x.data(), got.data(), n);
    Scalar().axpy(1.25, x.data(), ref.data(), n);
    for (size_t i = 0; i < n; ++i) {
      if (bitwise) {
        EXPECT_EQ(got[i], ref[i]) << "n=" << n << " i=" << i;
      } else {
        ExpectWithinReductionTolerance(got[i], ref[i]);
      }
    }
  }
}

TEST(SimdKernelTest, ScaleAndDivMatchScalarAtAllSizes) {
  const bool bitwise = ElementwiseBitwise();
  for (const size_t n : kSizes) {
    auto got = MakeData(n, 10);
    auto ref = got;
    simd::Kernels().scale(0.75, got.data(), n);
    Scalar().scale(0.75, ref.data(), n);
    simd::Kernels().div_inplace(3.1, got.data(), n);
    Scalar().div_inplace(3.1, ref.data(), n);
    for (size_t i = 0; i < n; ++i) {
      if (bitwise) {
        EXPECT_EQ(got[i], ref[i]) << "n=" << n << " i=" << i;
      } else {
        ExpectWithinReductionTolerance(got[i], ref[i]);
      }
    }
  }
}

TEST(SimdKernelTest, SparseDotMatchesScalarAtAllNnz) {
  const size_t dim = 16384;
  const auto y = MakeData(dim, 11);
  for (const size_t nnz : kSizes) {
    const auto val = MakeData(nnz, 12);
    const auto idx = MakeIndices(nnz, dim);
    ExpectWithinReductionTolerance(
        simd::Kernels().sparse_dot(val.data(), idx.data(), nnz, y.data()),
        Scalar().sparse_dot(val.data(), idx.data(), nnz, y.data()));
  }
}

TEST(SimdKernelTest, SparseAxpyMatchesScalarAtAllNnz) {
  const bool bitwise = ElementwiseBitwise();
  const size_t dim = 16384;
  for (const size_t nnz : kSizes) {
    const auto val = MakeData(nnz, 13);
    const auto idx = MakeIndices(nnz, dim);
    auto got = MakeData(dim, 14);
    auto ref = got;
    simd::Kernels().sparse_axpy(0.5, val.data(), idx.data(), nnz,
                                got.data());
    Scalar().sparse_axpy(0.5, val.data(), idx.data(), nnz, ref.data());
    for (size_t i = 0; i < dim; ++i) {
      if (bitwise) {
        EXPECT_EQ(got[i], ref[i]) << "nnz=" << nnz << " i=" << i;
      } else {
        ExpectWithinReductionTolerance(got[i], ref[i]);
      }
    }
  }
}

// Driver invariant: every driver output entry is bit-identical to the
// matching per-entry kernel call of the SAME (active) table.
TEST(SimdDriverTest, MatVecAndMatMulMatchPerRowDot) {
  const size_t rows = 7, cols = 129;
  const auto w = MakeData(rows * cols, 15);
  const auto x = MakeData(cols, 16);
  std::vector<double> y(rows);
  simd::MatVec(w.data(), rows, cols, x.data(), y.data());
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(y[r], simd::Kernels().dot(w.data() + r * cols, x.data(), cols));
  }
  const size_t rows_b = 5;
  const auto bt = MakeData(rows_b * cols, 17);
  std::vector<double> c(rows * rows_b);
  simd::MatMulTransposedB(w.data(), rows, cols, bt.data(), rows_b, c.data());
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < rows_b; ++j) {
      EXPECT_EQ(c[i * rows_b + j],
                simd::Kernels().dot(w.data() + i * cols,
                                    bt.data() + j * cols, cols));
    }
  }
}

TEST(SimdDriverTest, TransposeMatVecAccMatchesAxpyLoop) {
  const size_t rows = 33, cols = 67;
  const auto w = MakeData(rows * cols, 18);
  auto x = MakeData(rows, 19);
  x[4] = 0.0;  // the driver skips zero coefficients like the original loop
  std::vector<double> got(cols, 0.0), ref(cols, 0.0);
  simd::TransposeMatVecAcc(w.data(), rows, cols, x.data(), got.data());
  for (size_t r = 0; r < rows; ++r) {
    if (x[r] == 0.0) continue;
    simd::Kernels().axpy(x[r], w.data() + r * cols, ref.data(), cols);
  }
  for (size_t i = 0; i < cols; ++i) EXPECT_EQ(got[i], ref[i]);
}

// The batched sparse_matvec (row-paired on AVX2) must stay bit-identical
// to per-row sparse_dot at ANY backend — odd row counts cover the
// remainder row path.
TEST(SimdDriverTest, SparseMatVecBitIdenticalToPerRowSparseDot) {
  const size_t cols = 1024;
  for (const size_t rows : {0u, 1u, 2u, 3u, 7u, 64u}) {
    for (const size_t nnz : {0u, 3u, 24u, 256u, 300u}) {
      const auto w = MakeData(rows * cols, 20);
      const auto val = MakeData(nnz, 21);
      const auto idx = MakeIndices(nnz, cols);
      std::vector<double> y(rows, -1.0);
      simd::SparseMatVec(w.data(), rows, cols, val.data(), idx.data(), nnz,
                         y.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(y[r], simd::Kernels().sparse_dot(val.data(), idx.data(),
                                                   nnz, w.data() + r * cols))
            << "rows=" << rows << " nnz=" << nnz << " r=" << r;
      }
    }
  }
}

// ---------------------------------------------------------------- arena --

TEST(ScratchArenaTest, AlignmentAndDistinctRegions) {
  ScratchArena arena;
  double* a = arena.AllocDoubles(3);
  double* b = arena.AllocDoubles(5);
  void* c = arena.Allocate(100, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  // Writing through each region must not clobber the others.
  for (int i = 0; i < 3; ++i) a[i] = 1.0;
  for (int i = 0; i < 5; ++i) b[i] = 2.0;
  std::memset(c, 0xab, 100);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a[i], 1.0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b[i], 2.0);
}

TEST(ScratchArenaTest, ZeroByteAllocationYieldsValidPointer) {
  ScratchArena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  EXPECT_NE(arena.AllocDoubles(0), nullptr);
}

TEST(ScratchArenaTest, AllocDoublesZeroedIsZeroed) {
  ScratchArena arena;
  double* p = arena.AllocDoubles(64);
  for (int i = 0; i < 64; ++i) p[i] = 3.5;
  arena.Reset();
  double* z = arena.AllocDoublesZeroed(64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(z[i], 0.0);
}

TEST(ScratchArenaTest, ResetRewindsAndReusesReservation) {
  ScratchArena arena;
  arena.AllocDoubles(100);
  const size_t used_first = arena.bytes_used();
  const size_t reserved_first = arena.bytes_reserved();
  EXPECT_GT(used_first, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Identical epoch: nothing new is reserved, the block is reused.
  arena.AllocDoubles(100);
  EXPECT_EQ(arena.bytes_used(), used_first);
  EXPECT_EQ(arena.bytes_reserved(), reserved_first);
}

TEST(ScratchArenaTest, HighWaterTracksLargestEpoch) {
  ScratchArena arena;
  arena.AllocDoubles(10);
  arena.Reset();
  const size_t small = arena.high_water_bytes();
  EXPECT_GE(small, 10 * sizeof(double));
  arena.AllocDoubles(1000);
  arena.Reset();
  const size_t big = arena.high_water_bytes();
  EXPECT_GE(big, 1000 * sizeof(double));
  // A later small epoch must not shrink the recorded high water.
  arena.AllocDoubles(10);
  arena.Reset();
  EXPECT_EQ(arena.high_water_bytes(), big);
}

TEST(ScratchArenaTest, SpillEpochConsolidatesIntoOneReusableBlock) {
  // Many allocations larger than the minimum block force overflow blocks
  // in the first epoch; after Reset() an identical epoch must fit the
  // consolidated block without reserving more.
  ScratchArena arena;
  for (int i = 0; i < 8; ++i) arena.AllocDoubles(1024);
  arena.Reset();
  const size_t reserved_after_warmup = arena.bytes_reserved();
  for (int i = 0; i < 8; ++i) arena.AllocDoubles(1024);
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
}

TEST(ScratchArenaTest, TlsArenaIsPerThread) {
  ScratchArena* main_arena = &TlsScratchArena();
  EXPECT_EQ(main_arena, &TlsScratchArena());
  ScratchArena* other = nullptr;
  std::thread t([&] { other = &TlsScratchArena(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, main_arena);
}

}  // namespace
}  // namespace retina
