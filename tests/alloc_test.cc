// Allocation-count regression pin for the serving hot path.
//
// The zero-allocation contract (DESIGN.md §10): once the scoring engine's
// caches and the thread's scratch arena are warm, a batched static-head
// ScoreTweetInto / ScoreCandidatesInto request performs ZERO heap
// allocations on the request thread — feature rows, attention scratch,
// activations, and logits all live in the arena, and every reusable
// container has reached its steady-state capacity.
//
// Mechanism: a global operator-new override counts allocations made by
// THIS thread (per-thread counter, so unrelated background threads cannot
// pollute the count). Sanitizer builds replace the allocator, so the pin
// skips itself there; plain Debug and Release builds both run it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>

#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "core/scoring_engine.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RETINA_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RETINA_ALLOC_HOOK_DISABLED 1
#endif
#endif
#ifndef RETINA_ALLOC_HOOK_DISABLED

namespace {
thread_local size_t g_thread_allocs = 0;
}  // namespace

// Count every successful allocation made by the calling thread. Plain
// malloc keeps the override trivially correct; the counter is the payload.
void* operator new(size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  ++g_thread_allocs;
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, std::align_val_t align) {
  const size_t a = static_cast<size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  ++g_thread_allocs;
  return p;
}

void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !RETINA_ALLOC_HOOK_DISABLED

namespace retina::core {
namespace {

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.05;
  config.num_users = 700;
  config.history_length = 12;
  config.news_per_day = 40.0;
  return config;
}

FeatureConfig TestFeatureConfig() {
  FeatureConfig config;
  config.history_size = 8;
  config.history_tfidf_dim = 60;
  config.news_tfidf_dim = 60;
  config.tweet_tfidf_dim = 60;
  config.news_window = 15;
  config.doc2vec_dim = 12;
  config.doc2vec_epochs = 2;
  return config;
}

TEST(AllocRegressionTest, WarmStaticScoreCandidatesAllocatesNothing) {
#ifdef RETINA_ALLOC_HOOK_DISABLED
  GTEST_SKIP() << "allocation hook disabled (sanitizer build)";
#else
  auto world = datagen::SyntheticWorld::Generate(TestConfig(), 43);
  hatedetect::AnnotationOptions aopts;
  ASSERT_TRUE(hatedetect::AnnotateWorld(&world, aopts).ok());
  auto fx = FeatureExtractor::Build(world, TestFeatureConfig());
  ASSERT_TRUE(fx.ok());
  const FeatureExtractor extractor = std::move(fx).ValueOrDie();
  RetweetTaskOptions topts;
  topts.min_news = 15;
  topts.max_candidates = 24;
  auto task_result = BuildRetweetTask(extractor, topts);
  ASSERT_TRUE(task_result.ok());
  const RetweetTask task = std::move(task_result).ValueOrDie();
  ASSERT_FALSE(task.test.empty());

  RetinaOptions opts;
  opts.hidden = 12;
  opts.epochs = 1;
  opts.dynamic = false;  // the contract covers the static head
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(task).ok());

  ScoringEngine engine(&model, &extractor);  // batched + cached defaults

  // Warm-up: first pass fills both LRUs and establishes the arena
  // high-water mark; second pass lets every reusable buffer reach its
  // steady-state capacity through the exact call sequence under test.
  Vec scores;
  engine.ScoreCandidatesInto(task, task.test, &scores);
  engine.ScoreCandidatesInto(task, task.test, &scores);
  const Vec warm_reference = scores;

  g_thread_allocs = 0;
  engine.ScoreCandidatesInto(task, task.test, &scores);
  EXPECT_EQ(g_thread_allocs, 0u)
      << "warm batched static-head replay must not touch the heap";

  // Same pin through the single-request entry point.
  std::vector<NodeId> users;
  for (const auto& cand : task.test) {
    if (cand.tweet_pos != task.test.front().tweet_pos) break;
    users.push_back(cand.user);
  }
  const datagen::Tweet& tweet =
      extractor.world().tweets()[task.tweets[task.test.front().tweet_pos]
                                     .tweet_id];
  Vec one_tweet;
  engine.ScoreTweetInto(tweet, users, &one_tweet);
  g_thread_allocs = 0;
  engine.ScoreTweetInto(tweet, users, &one_tweet);
  EXPECT_EQ(g_thread_allocs, 0u)
      << "warm ScoreTweetInto must not touch the heap";

  // The allocation-free replay still produces the same scores.
  ASSERT_EQ(scores.size(), warm_reference.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], warm_reference[i]);
  }
#endif
}

}  // namespace
}  // namespace retina::core
