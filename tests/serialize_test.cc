// Round-trip tests for the CSV dataset export/import.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/serialize.h"
#include "datagen/world.h"

namespace retina::datagen {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.scale = 0.02;
  config.num_users = 300;
  config.history_length = 6;
  config.news_per_day = 20.0;
  return config;
}

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("retina_serialize_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, ExportCreatesAllFiles) {
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 5);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  for (const char* name :
       {"manifest.csv", "users.csv", "edges.csv", "hashtags.csv",
        "tweets.csv", "retweets.csv", "news.csv", "intensity.csv",
        "histories.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir() + "/" + name)) << name;
  }
}

TEST_F(SerializeTest, RoundTripPreservesEntities) {
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 7);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  auto imported_result = ImportWorldCsv(dir());
  ASSERT_TRUE(imported_result.ok()) << imported_result.status().ToString();
  const SyntheticWorld imported = std::move(imported_result).ValueOrDie();

  // Counts.
  ASSERT_EQ(imported.NumUsers(), world.NumUsers());
  ASSERT_EQ(imported.tweets().size(), world.tweets().size());
  ASSERT_EQ(imported.news().articles().size(),
            world.news().articles().size());
  ASSERT_EQ(imported.network().NumEdges(), world.network().NumEdges());
  ASSERT_EQ(imported.hashtags().size(), world.hashtags().size());
  ASSERT_EQ(imported.lexicon().size(), world.lexicon().size());

  // Tweets byte-for-byte.
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    const Tweet& a = world.tweets()[i];
    const Tweet& b = imported.tweets()[i];
    EXPECT_EQ(a.author, b.author);
    EXPECT_EQ(a.hashtag, b.hashtag);
    EXPECT_EQ(a.is_hateful, b.is_hateful);
    EXPECT_EQ(a.machine_hateful, b.machine_hateful);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_NEAR(a.time, b.time, 1e-6);
  }

  // Cascades.
  for (size_t i = 0; i < world.cascades().size(); ++i) {
    const auto& ca = world.cascades()[i].retweets;
    const auto& cb = imported.cascades()[i].retweets;
    ASSERT_EQ(ca.size(), cb.size()) << "cascade " << i;
    for (size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(ca[k].user, cb[k].user);
      EXPECT_EQ(ca[k].organic, cb[k].organic);
      EXPECT_NEAR(ca[k].time, cb[k].time, 1e-6);
    }
  }

  // Users.
  for (NodeId u = 0; u < world.NumUsers(); ++u) {
    EXPECT_EQ(imported.users()[u].echo_community,
              world.users()[u].echo_community);
    EXPECT_NEAR(imported.users()[u].activity, world.users()[u].activity,
                1e-6);
    ASSERT_EQ(imported.users()[u].topic_interests.size(),
              world.users()[u].topic_interests.size());
  }

  // Reply threads.
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    const auto& ra = world.Replies(i);
    const auto& rb = imported.Replies(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].user, rb[k].user);
      EXPECT_EQ(ra[k].is_hateful, rb[k].is_hateful);
      EXPECT_EQ(ra[k].counter_speech, rb[k].counter_speech);
    }
  }

  // Histories.
  for (NodeId u = 0; u < world.NumUsers(); ++u) {
    const auto& ha = world.History(u);
    const auto& hb = imported.History(u);
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t k = 0; k < ha.size(); ++k) {
      EXPECT_EQ(ha[k].is_hateful, hb[k].is_hateful);
      EXPECT_EQ(ha[k].tokens, hb[k].tokens);
      EXPECT_EQ(ha[k].hashtag, hb[k].hashtag);
    }
  }
}

TEST_F(SerializeTest, RoundTripPreservesDerivedAccessors) {
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 11);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  auto imported_result = ImportWorldCsv(dir());
  ASSERT_TRUE(imported_result.ok());
  const SyntheticWorld imported = std::move(imported_result).ValueOrDie();

  // Hashtag statistics identical.
  const auto sa = world.ComputeHashtagStats();
  const auto sb = imported.ComputeHashtagStats();
  for (size_t h = 0; h < sa.size(); ++h) {
    EXPECT_EQ(sa[h].tweets, sb[h].tweets);
    EXPECT_EQ(sa[h].users_all, sb[h].users_all);
    EXPECT_NEAR(sa[h].avg_retweets, sb[h].avg_retweets, 1e-9);
  }

  // Trending indicator identical (daily ranking rebuilt).
  for (double t : {24.0, 240.0, 1200.0}) {
    EXPECT_EQ(imported.TrendingIndicator(t), world.TrendingIndicator(t));
  }

  // Pairwise retweet history rebuilt.
  for (size_t i = 0; i < world.cascades().size() && i < 40; ++i) {
    const NodeId author = world.tweets()[i].author;
    for (const auto& rt : world.cascades()[i].retweets) {
      EXPECT_EQ(imported.PastRetweetCount(author, rt.user, rt.time + 1.0),
                world.PastRetweetCount(author, rt.user, rt.time + 1.0));
    }
  }

  // News accessors.
  EXPECT_EQ(imported.news().MostRecentBefore(500.0, 10),
            world.news().MostRecentBefore(500.0, 10));
  EXPECT_NEAR(imported.news().IntensityAt(0, 300.0),
              world.news().IntensityAt(0, 300.0), 1e-9);
}

TEST_F(SerializeTest, ImportMissingDirFails) {
  auto result = ImportWorldCsv("/nonexistent/retina/world");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(SerializeTest, ImportRejectsCorruptManifest) {
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 13);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  // Truncate the manifest to an empty header-only file.
  {
    std::FILE* f = std::fopen((dir() + "/manifest.csv").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("key,value\n", f);
    std::fclose(f);
  }
  auto result = ImportWorldCsv(dir());
  EXPECT_FALSE(result.ok());
}

TEST_F(SerializeTest, RoundTripIsBitExactOnDoubles) {
  // The CSV writer prints doubles with %.17g: 17 significant digits
  // round-trip every IEEE-754 double exactly, so export -> import must
  // reproduce times, rates and interest vectors bit for bit (EXPECT_EQ,
  // not EXPECT_NEAR).
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 19);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  auto imported_result = ImportWorldCsv(dir());
  ASSERT_TRUE(imported_result.ok()) << imported_result.status().ToString();
  const SyntheticWorld imported = std::move(imported_result).ValueOrDie();

  ASSERT_EQ(imported.tweets().size(), world.tweets().size());
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    EXPECT_EQ(imported.tweets()[i].time, world.tweets()[i].time)
        << "tweet " << i;
  }
  ASSERT_EQ(imported.cascades().size(), world.cascades().size());
  for (size_t i = 0; i < world.cascades().size(); ++i) {
    const auto& ca = world.cascades()[i].retweets;
    const auto& cb = imported.cascades()[i].retweets;
    ASSERT_EQ(cb.size(), ca.size()) << "cascade " << i;
    for (size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(cb[k].time, ca[k].time) << "cascade " << i << " rt " << k;
    }
  }
  ASSERT_EQ(imported.NumUsers(), world.NumUsers());
  for (NodeId u = 0; u < world.NumUsers(); ++u) {
    const UserProfile& a = world.users()[u];
    const UserProfile& b = imported.users()[u];
    EXPECT_EQ(b.activity, a.activity) << "user " << u;
    EXPECT_EQ(b.account_age_days, a.account_age_days) << "user " << u;
    ASSERT_EQ(b.topic_interests.size(), a.topic_interests.size());
    for (size_t t = 0; t < a.topic_interests.size(); ++t) {
      EXPECT_EQ(b.topic_interests[t], a.topic_interests[t])
          << "user " << u << " topic " << t;
    }
  }
  ASSERT_EQ(imported.news().articles().size(),
            world.news().articles().size());
  for (size_t j = 0; j < world.news().articles().size(); ++j) {
    EXPECT_EQ(imported.news().articles()[j].time,
              world.news().articles()[j].time)
        << "article " << j;
  }
  for (double t : {24.0, 240.0, 1200.0}) {
    EXPECT_EQ(imported.news().IntensityAt(0, t),
              world.news().IntensityAt(0, t));
  }
}

TEST_F(SerializeTest, ImportRejectsOutOfRangeReferences) {
  const SyntheticWorld world = SyntheticWorld::Generate(SmallConfig(), 17);
  ASSERT_TRUE(ExportWorldCsv(world, dir()).ok());
  // Append a retweet row pointing at a non-existent tweet.
  {
    std::FILE* f = std::fopen((dir() + "/retweets.csv").c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("999999,0,1.0,1\n", f);
    std::fclose(f);
  }
  auto result = ImportWorldCsv(dir());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace retina::datagen
