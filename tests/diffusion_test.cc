// Tests for src/diffusion: SIR, General Threshold and the neural
// diffusion baselines (TopoLSTM / FOREST / HIDAN simplified ports).

#include <gtest/gtest.h>

#include <memory>

#include "core/feature_extractor.h"
#include "core/retweet_task.h"
#include "diffusion/neural_baselines.h"
#include "diffusion/sir.h"
#include "diffusion/threshold.h"
#include "ml/metrics.h"

namespace retina::diffusion {
namespace {

struct Fixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<core::FeatureExtractor> extractor;
  core::RetweetTask task;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    datagen::WorldConfig config;
    config.scale = 0.05;
    config.num_users = 900;
    config.history_length = 12;
    config.news_per_day = 50.0;
    auto* f = new Fixture{datagen::SyntheticWorld::Generate(config, 41),
                          nullptr, {}};
    core::FeatureConfig fc;
    fc.history_size = 8;
    fc.history_tfidf_dim = 60;
    fc.news_tfidf_dim = 60;
    fc.tweet_tfidf_dim = 60;
    fc.news_window = 15;
    fc.doc2vec_dim = 12;
    fc.doc2vec_epochs = 2;
    auto fx = core::FeatureExtractor::Build(f->world, fc);
    EXPECT_TRUE(fx.ok());
    f->extractor = std::make_unique<core::FeatureExtractor>(
        std::move(fx).ValueOrDie());
    core::RetweetTaskOptions opts;
    opts.min_news = 15;
    opts.max_candidates = 20;
    auto task = core::BuildRetweetTask(*f->extractor, opts);
    EXPECT_TRUE(task.ok());
    f->task = std::move(task).ValueOrDie();
    return f;
  }();
  return *fixture;
}

// -------------------------------------------------------------------- SIR --

TEST(SirTest, FitSelectsRatesFromGrid) {
  auto& f = SharedFixture();
  SirOptions opts;
  opts.fit_cascades = 20;
  SirModel sir(&f.world, opts);
  ASSERT_TRUE(sir.Fit(f.task).ok());
  bool beta_in_grid = false, gamma_in_grid = false;
  for (double b : opts.beta_grid) beta_in_grid |= (b == sir.beta());
  for (double g : opts.gamma_grid) gamma_in_grid |= (g == sir.gamma());
  EXPECT_TRUE(beta_in_grid);
  EXPECT_TRUE(gamma_in_grid);
}

TEST(SirTest, ScoresAreProbabilities) {
  auto& f = SharedFixture();
  SirOptions opts;
  opts.fit_cascades = 10;
  opts.simulations = 3;
  SirModel sir(&f.world, opts);
  ASSERT_TRUE(sir.Fit(f.task).ok());
  const Vec scores = sir.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(scores.size(), f.task.test.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SirTest, TunedCandidateScoresStayMediocre) {
  // Even the tuned SIR cannot express per-user heterogeneity.
  auto& f = SharedFixture();
  SirOptions opts;
  opts.fit_cascades = 20;
  SirModel sir(&f.world, opts);
  ASSERT_TRUE(sir.Fit(f.task).ok());
  const Vec scores = sir.ScoreCandidates(f.task, f.task.test);
  const core::BinaryEval eval = core::EvaluateBinary(f.task.test, scores);
  EXPECT_LT(eval.macro_f1, 0.75);
}

TEST(SirTest, DefaultRatesCollapseInFullPopulationRegime) {
  // The paper's Table VI regime: literature rates flood the graph and the
  // whole-population macro-F1 collapses (paper: 0.04).
  auto& f = SharedFixture();
  SirModel sir(&f.world, {});
  const double f1 = sir.FullPopulationMacroF1(f.task);
  EXPECT_LT(f1, 0.55);
}

TEST(ThresholdTest, FullPopulationRegimeFarBelowLearnedModels) {
  auto& f = SharedFixture();
  ThresholdModel model(&f.world, {});
  const double f1 = model.FullPopulationMacroF1(f.task);
  EXPECT_LT(f1, 0.75);
}

TEST(SirTest, EmptyTaskFails) {
  auto& f = SharedFixture();
  SirModel sir(&f.world, {});
  core::RetweetTask empty;
  EXPECT_FALSE(sir.Fit(empty).ok());
}

// -------------------------------------------------------------- Threshold --

TEST(ThresholdTest, FitAndScore) {
  auto& f = SharedFixture();
  ThresholdOptions opts;
  opts.fit_cascades = 20;
  opts.simulations = 3;
  ThresholdModel model(&f.world, opts);
  ASSERT_TRUE(model.Fit(f.task).ok());
  bool in_grid = false;
  for (double v : opts.influence_grid) in_grid |= (v == model.influence());
  EXPECT_TRUE(in_grid);
  const Vec scores = model.ScoreCandidates(f.task, f.task.test);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ThresholdTest, EmptyTaskFails) {
  auto& f = SharedFixture();
  ThresholdModel model(&f.world, {});
  core::RetweetTask empty;
  EXPECT_FALSE(model.Fit(empty).ok());
}

// ------------------------------------------------------- Neural baselines --

TEST(NeuralBaselineTest, Names) {
  EXPECT_STREQ(NeuralBaselineName(NeuralBaselineKind::kTopoLstm),
               "TopoLSTM");
  EXPECT_STREQ(NeuralBaselineName(NeuralBaselineKind::kForest), "FOREST");
  EXPECT_STREQ(NeuralBaselineName(NeuralBaselineKind::kHidan), "HIDAN");
}

class NeuralBaselineParamTest
    : public ::testing::TestWithParam<NeuralBaselineKind> {};

TEST_P(NeuralBaselineParamTest, FitAndScoreInRange) {
  auto& f = SharedFixture();
  NeuralBaselineOptions opts;
  opts.epochs = 3;
  NeuralDiffusionBaseline model(&f.world, GetParam(), opts);
  ASSERT_TRUE(model.Fit(f.task).ok());
  const Vec scores = model.ScoreCandidates(f.task, f.task.test);
  ASSERT_EQ(scores.size(), f.task.test.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(NeuralBaselineParamTest, EmptyTaskFails) {
  auto& f = SharedFixture();
  NeuralDiffusionBaseline model(&f.world, GetParam(), {});
  core::RetweetTask empty;
  EXPECT_FALSE(model.Fit(empty).ok());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NeuralBaselineParamTest,
                         ::testing::Values(NeuralBaselineKind::kTopoLstm,
                                           NeuralBaselineKind::kForest,
                                           NeuralBaselineKind::kHidan));

TEST(NeuralBaselineTest, GraphAwareBaselinesBeatHidanOnRanking) {
  // The Table VI shape: HIDAN (no graph access) collapses relative to
  // TopoLSTM (propagation structure available).
  auto& f = SharedFixture();
  NeuralBaselineOptions opts;
  opts.epochs = 6;
  NeuralDiffusionBaseline topo(&f.world, NeuralBaselineKind::kTopoLstm,
                               opts);
  NeuralDiffusionBaseline hidan(&f.world, NeuralBaselineKind::kHidan, opts);
  ASSERT_TRUE(topo.Fit(f.task).ok());
  ASSERT_TRUE(hidan.Fit(f.task).ok());
  const auto topo_queries = core::MakeRankingQueries(
      f.task, f.task.test, topo.ScoreCandidates(f.task, f.task.test));
  const auto hidan_queries = core::MakeRankingQueries(
      f.task, f.task.test, hidan.ScoreCandidates(f.task, f.task.test));
  const double topo_map = ml::MeanAveragePrecisionAtK(topo_queries, 10);
  const double hidan_map = ml::MeanAveragePrecisionAtK(hidan_queries, 10);
  EXPECT_GT(topo_map, hidan_map);
}

}  // namespace
}  // namespace retina::diffusion
