// Tests for src/core: feature extraction, the two task builders, and
// RETINA training/prediction (static, dynamic and the † ablation).

#include <gtest/gtest.h>

#include <memory>

#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "hatedetect/annotation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace retina::core {
namespace {

datagen::WorldConfig TestConfig() {
  datagen::WorldConfig config;
  config.scale = 0.05;
  config.num_users = 900;
  config.history_length = 14;
  config.news_per_day = 50.0;
  return config;
}

FeatureConfig TestFeatureConfig() {
  FeatureConfig config;
  config.history_size = 10;
  config.history_tfidf_dim = 80;
  config.news_tfidf_dim = 80;
  config.tweet_tfidf_dim = 80;
  config.news_window = 20;
  config.doc2vec_dim = 16;
  config.doc2vec_epochs = 3;
  return config;
}

struct Fixture {
  datagen::SyntheticWorld world;
  std::unique_ptr<FeatureExtractor> extractor;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture{
        datagen::SyntheticWorld::Generate(TestConfig(), 31), nullptr};
    hatedetect::AnnotationOptions aopts;
    auto report = hatedetect::AnnotateWorld(&f->world, aopts);
    EXPECT_TRUE(report.ok());
    auto fx = FeatureExtractor::Build(f->world, TestFeatureConfig());
    EXPECT_TRUE(fx.ok());
    f->extractor =
        std::make_unique<FeatureExtractor>(std::move(fx).ValueOrDie());
    return f;
  }();
  return *fixture;
}

// --------------------------------------------------------------- Features --

TEST(FeatureMaskTest, WithoutDisablesExactlyOneGroup) {
  const FeatureMask h = FeatureMask::Without("history");
  EXPECT_FALSE(h.history);
  EXPECT_TRUE(h.topic && h.endogenous && h.exogenous);
  const FeatureMask e = FeatureMask::Without("exogenous");
  EXPECT_FALSE(e.exogenous);
  EXPECT_TRUE(e.history && e.topic && e.endogenous);
}

TEST(FeatureExtractorTest, DimsAreConsistent) {
  auto& f = SharedFixture();
  const FeatureExtractor& fx = *f.extractor;
  const size_t full = fx.HateGenDim();
  EXPECT_EQ(full, fx.HistoryBlockDim() + 1 + 50 + 80);
  EXPECT_EQ(fx.HateGenDim(FeatureMask::Without("history")),
            full - fx.HistoryBlockDim());
  EXPECT_EQ(fx.HateGenDim(FeatureMask::Without("topic")), full - 1);
  EXPECT_EQ(fx.HateGenDim(FeatureMask::Without("endogenous")), full - 50);
  EXPECT_EQ(fx.HateGenDim(FeatureMask::Without("exogenous")), full - 80);
  EXPECT_EQ(fx.RetweetUserDim(), fx.HistoryBlockDim() + 50 + 2);
  EXPECT_EQ(fx.TweetContentDim(), 80 + f.world.lexicon().size());
}

TEST(FeatureExtractorTest, HateGenFeatureVectorMatchesDim) {
  auto& f = SharedFixture();
  const auto& tw = f.world.tweets().front();
  for (const char* group : {"history", "topic", "endogenous", "exogenous"}) {
    const FeatureMask mask = FeatureMask::Without(group);
    const Vec x = f.extractor->HateGenFeatures(tw.author, tw.hashtag,
                                               tw.time, mask);
    EXPECT_EQ(x.size(), f.extractor->HateGenDim(mask));
  }
}

TEST(FeatureExtractorTest, HistoryBlockEncodesHatefulness) {
  auto& f = SharedFixture();
  // Average hate-ratio feature (index = tfidf_dim) should be higher for
  // hate-prone users than for ordinary users.
  const size_t ratio_idx = 80;  // history_tfidf_dim
  double prone = 0.0, ordinary = 0.0;
  size_t n_prone = 0, n_ord = 0;
  for (NodeId u = 0; u < f.world.NumUsers(); ++u) {
    const double r = f.extractor->UserHistoryBlock(u)[ratio_idx];
    if (f.world.users()[u].echo_community >= 0) {
      prone += r;
      ++n_prone;
    } else {
      ordinary += r;
      ++n_ord;
    }
  }
  ASSERT_GT(n_prone, 0u);
  EXPECT_GT(prone / static_cast<double>(n_prone),
            ordinary / static_cast<double>(n_ord) + 0.05);
}

TEST(FeatureExtractorTest, NewsWindowShape) {
  auto& f = SharedFixture();
  const Matrix w = f.extractor->NewsEmbeddingWindow(30.0 * 24.0);
  EXPECT_EQ(w.rows(), 20u);  // news_window
  EXPECT_EQ(w.cols(), 16u);  // doc2vec dim
  // Early time: fewer articles available.
  const Matrix early = f.extractor->NewsEmbeddingWindow(1.0);
  EXPECT_LT(early.rows(), 20u);
}

TEST(FeatureExtractorTest, NewsTfIdfCachedAndStable) {
  auto& f = SharedFixture();
  const Vec a = f.extractor->NewsTfIdfAverage(500.0);
  const Vec b = f.extractor->NewsTfIdfAverage(500.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 80u);
}

TEST(FeatureExtractorTest, RetweetUserFeaturesPeerSignals) {
  auto& f = SharedFixture();
  const auto& tw = f.world.tweets().front();
  const size_t dim = f.extractor->RetweetUserDim();
  // Direct follower: path length 1 encoded at dim-2.
  const auto followers = f.world.network().Followers(tw.author);
  if (!followers.empty()) {
    const Vec x = f.extractor->RetweetUserFeatures(tw, followers[0], 1);
    EXPECT_EQ(x.size(), dim);
    EXPECT_DOUBLE_EQ(x[dim - 2], 1.0);
  }
  // Unreachable: encoded as cutoff + 1.
  const Vec y =
      f.extractor->RetweetUserFeatures(tw, 0, graph::kUnreachable);
  EXPECT_DOUBLE_EQ(y[dim - 2],
                   static_cast<double>(kPeerPathCutoff + 1));
}

TEST(FeatureExtractorTest, SetHistorySizeRebuilds) {
  // Use a private extractor: this mutates cached blocks.
  auto world = datagen::SyntheticWorld::Generate(TestConfig(), 57);
  auto fx = FeatureExtractor::Build(world, TestFeatureConfig());
  ASSERT_TRUE(fx.ok());
  FeatureExtractor extractor = std::move(fx).ValueOrDie();
  const Vec before = extractor.UserHistoryBlock(3);
  extractor.SetHistorySize(4);
  const Vec after = extractor.UserHistoryBlock(3);
  EXPECT_EQ(before.size(), after.size());
  EXPECT_NE(before, after);
}

TEST(FeatureExtractorTest, NewsAlignmentFeaturesShapeAndRange) {
  auto& f = SharedFixture();
  // A mid-horizon tweet has full news coverage.
  const datagen::Tweet* tweet = nullptr;
  for (const auto& tw : f.world.tweets()) {
    if (tw.time > 400.0) {
      tweet = &tw;
      break;
    }
  }
  ASSERT_NE(tweet, nullptr);
  const Vec align = f.extractor->NewsAlignmentFeatures(*tweet, 20);
  ASSERT_EQ(align.size(), FeatureExtractor::kNewsAlignmentDim);
  EXPECT_GE(align[0], -1.0);
  EXPECT_LE(align[0], 1.0);
  EXPECT_GE(align[1], -1.0);
  EXPECT_LE(align[1], 1.0);
  EXPECT_GT(align[2], 0.0);  // 24h volume ratio
}

// ------------------------------------------------------------ HateGenTask --

TEST(HateGenTaskTest, BuildsImbalancedGoldTestSplit) {
  auto& f = SharedFixture();
  HateGenTaskOptions opts;
  opts.min_news = 20;
  auto task_result = BuildHateGenTask(*f.extractor, opts);
  ASSERT_TRUE(task_result.ok()) << task_result.status().ToString();
  const HateGenTask& task = task_result.ValueOrDie();
  EXPECT_EQ(task.train.NumFeatures(), f.extractor->HateGenDim());
  EXPECT_GT(task.train.NumRows(), task.test.NumRows());
  // Class imbalance preserved (a few percent positives).
  const double pos_rate = static_cast<double>(task.train.NumPositives()) /
                          static_cast<double>(task.train.NumRows());
  EXPECT_LT(pos_rate, 0.15);
  EXPECT_GT(pos_rate, 0.005);
}

TEST(HateGenTaskTest, PipelineVariantsRun) {
  auto& f = SharedFixture();
  HateGenTaskOptions opts;
  opts.min_news = 20;
  auto task_result = BuildHateGenTask(*f.extractor, opts);
  ASSERT_TRUE(task_result.ok());
  const HateGenTask& task = task_result.ValueOrDie();
  for (ProcVariant proc :
       {ProcVariant::kNone, ProcVariant::kDownsample,
        ProcVariant::kUpDownsample, ProcVariant::kPca, ProcVariant::kTopK}) {
    ml::DecisionTreeOptions topts;
    topts.max_depth = 5;
    ml::DecisionTree tree(topts);
    auto result = RunHateGenPipeline(task, &tree, proc, 7);
    ASSERT_TRUE(result.ok()) << ProcVariantName(proc);
    const EvalResult& r = result.ValueOrDie();
    EXPECT_GE(r.macro_f1, 0.0);
    EXPECT_LE(r.macro_f1, 1.0);
    EXPECT_GE(r.auc, 0.0);
    EXPECT_LE(r.auc, 1.0);
  }
}

TEST(HateGenTaskTest, DownsampledTreeBeatsChance) {
  auto& f = SharedFixture();
  HateGenTaskOptions opts;
  opts.min_news = 20;
  auto task_result = BuildHateGenTask(*f.extractor, opts);
  ASSERT_TRUE(task_result.ok());
  ml::DecisionTreeOptions topts;
  topts.max_depth = 5;
  ml::DecisionTree tree(topts);
  auto result = RunHateGenPipeline(task_result.ValueOrDie(), &tree,
                                   ProcVariant::kDownsample, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.ValueOrDie().auc, 0.55);
}

TEST(HateGenTaskTest, ModelZooHasSixEntries) {
  const auto zoo = MakeHateGenModelZoo();
  EXPECT_EQ(zoo.size(), 6u);
}

// ------------------------------------------------------------ RetweetTask --

RetweetTaskOptions TestRetweetOptions() {
  RetweetTaskOptions opts;
  opts.min_news = 20;
  opts.max_candidates = 24;
  return opts;
}

TEST(RetweetTaskTest, BuildsConsistentCandidates) {
  auto& f = SharedFixture();
  auto task_result = BuildRetweetTask(*f.extractor, TestRetweetOptions());
  ASSERT_TRUE(task_result.ok()) << task_result.status().ToString();
  const RetweetTask& task = task_result.ValueOrDie();
  EXPECT_GT(task.tweets.size(), 20u);
  EXPECT_FALSE(task.train.empty());
  EXPECT_FALSE(task.test.empty());
  EXPECT_EQ(task.NumIntervals(), 7u);

  for (const auto& cand : task.train) {
    EXPECT_LT(cand.tweet_pos, task.tweets.size());
    EXPECT_EQ(cand.user_features.size(), task.user_dim);
    EXPECT_EQ(cand.interval_labels.size(), task.NumIntervals());
    int sum = 0;
    for (int l : cand.interval_labels) sum += l;
    EXPECT_EQ(sum, cand.label);  // exactly one interval iff positive
  }
  // Each tweet group contains at least one positive and one negative.
  for (const auto* bucket : {&task.train, &task.test}) {
    for (size_t i = 0; i < bucket->size();) {
      size_t j = i + 1;
      int pos = (*bucket)[i].label;
      while (j < bucket->size() &&
             (*bucket)[j].tweet_pos == (*bucket)[i].tweet_pos) {
        pos += (*bucket)[j].label;
        ++j;
      }
      EXPECT_GT(pos, 0);
      i = j;
    }
  }
}

TEST(RetweetTaskTest, RankingQueriesFilterByHate) {
  auto& f = SharedFixture();
  auto task_result = BuildRetweetTask(*f.extractor, TestRetweetOptions());
  ASSERT_TRUE(task_result.ok());
  const RetweetTask& task = task_result.ValueOrDie();
  Vec scores(task.test.size(), 0.5);
  const auto all = MakeRankingQueries(task, task.test, scores, -1);
  const auto hate = MakeRankingQueries(task, task.test, scores, 1);
  const auto nonhate = MakeRankingQueries(task, task.test, scores, 0);
  EXPECT_EQ(all.size(), hate.size() + nonhate.size());
}

TEST(RetweetTaskTest, EvaluateBinaryPerfectScores) {
  auto& f = SharedFixture();
  auto task_result = BuildRetweetTask(*f.extractor, TestRetweetOptions());
  ASSERT_TRUE(task_result.ok());
  const RetweetTask& task = task_result.ValueOrDie();
  Vec perfect(task.test.size());
  for (size_t i = 0; i < task.test.size(); ++i) {
    perfect[i] = task.test[i].label == 1 ? 0.9 : 0.1;
  }
  const BinaryEval eval = EvaluateBinary(task.test, perfect);
  EXPECT_DOUBLE_EQ(eval.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(eval.auc, 1.0);
}

// ---------------------------------------------------------------- RETINA --

const RetweetTask& SharedRetweetTask() {
  static const RetweetTask task = [] {
    auto& f = SharedFixture();
    auto r = BuildRetweetTask(*f.extractor, TestRetweetOptions());
    EXPECT_TRUE(r.ok());
    return std::move(r).ValueOrDie();
  }();
  return task;
}

RetinaOptions FastStaticOptions() {
  RetinaOptions opts;
  opts.hidden = 16;
  opts.epochs = 3;
  return opts;
}

TEST(RetinaTest, StaticTrainingBeatsChanceAuc) {
  const RetweetTask& task = SharedRetweetTask();
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), FastStaticOptions());
  ASSERT_TRUE(model.Train(task).ok());
  const Vec scores = model.ScoreCandidates(task, task.test);
  const BinaryEval eval = EvaluateBinary(task.test, scores);
  EXPECT_GT(eval.auc, 0.6);
}

TEST(RetinaTest, DynamicTrainingBeatsChanceAuc) {
  const RetweetTask& task = SharedRetweetTask();
  RetinaOptions opts = FastStaticOptions();
  opts.dynamic = true;
  opts.use_adam = false;
  opts.learning_rate = 1e-3;  // the tuned dynamic configuration
  opts.lambda = 2.5;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(task).ok());
  const Vec scores = model.ScoreCandidates(task, task.test);
  const BinaryEval eval = EvaluateBinary(task.test, scores);
  EXPECT_GT(eval.auc, 0.6);
}

TEST(RetinaTest, AblationVariantRunsWithoutAttention) {
  const RetweetTask& task = SharedRetweetTask();
  RetinaOptions opts = FastStaticOptions();
  opts.use_exogenous = false;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(task).ok());
  const Vec scores = model.ScoreCandidates(task, task.test);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RetinaTest, DynamicPredictionsPerInterval) {
  const RetweetTask& task = SharedRetweetTask();
  RetinaOptions opts = FastStaticOptions();
  opts.dynamic = true;
  opts.epochs = 1;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(task).ok());
  const auto& cand = task.test.front();
  const Vec probs = model.PredictDynamic(task.tweets[cand.tweet_pos],
                                         cand.user_features);
  EXPECT_EQ(probs.size(), task.NumIntervals());
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Combined score = 1 - prod(1 - p_j).
  double none = 1.0;
  for (double p : probs) none *= 1.0 - p;
  EXPECT_NEAR(model.PredictScore(task.tweets[cand.tweet_pos],
                                 cand.user_features),
              1.0 - none, 1e-9);
}

TEST(RetinaTest, CumulativeEvaluationMonotoneAndCalibrated) {
  const RetweetTask& task = SharedRetweetTask();
  RetinaOptions opts = FastStaticOptions();
  opts.dynamic = true;
  opts.use_adam = false;
  opts.learning_rate = 1e-3;
  opts.lambda = 2.5;
  opts.epochs = 2;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), opts);
  ASSERT_TRUE(model.Train(task).ok());
  const double threshold = model.CalibrateIntervalThreshold(task, task.train);
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 1.0);
  const double cum_threshold =
      model.CalibrateCumulativeThreshold(task, task.train);
  const BinaryEval cum =
      model.EvaluateCumulative(task, task.test, cum_threshold);
  const BinaryEval per =
      model.EvaluatePerInterval(task, task.test, threshold);
  // Cumulative labels are easier to classify: the calibrated cumulative
  // macro-F1 should not be worse than the disjoint per-interval view.
  EXPECT_GE(cum.macro_f1 + 0.05, per.macro_f1);
  EXPECT_GT(cum.auc, 0.5);
}

TEST(RetinaTest, LstmAndRnnCellsTrain) {
  const RetweetTask& task = SharedRetweetTask();
  for (const auto kind :
       {nn::RecurrentKind::kLstm, nn::RecurrentKind::kSimpleRnn}) {
    RetinaOptions opts = FastStaticOptions();
    opts.dynamic = true;
    opts.epochs = 1;
    opts.recurrent = kind;
    Retina model(task.user_dim, task.content_dim, task.embed_dim,
                 task.NumIntervals(), opts);
    ASSERT_TRUE(model.Train(task).ok()) << nn::RecurrentKindName(kind);
    const Vec scores = model.ScoreCandidates(task, task.test);
    for (double s : scores) {
      ASSERT_GE(s, 0.0);
      ASSERT_LE(s, 1.0);
    }
  }
}

TEST(RetinaTest, DeterministicGivenSeed) {
  const RetweetTask& task = SharedRetweetTask();
  RetinaOptions opts = FastStaticOptions();
  opts.epochs = 1;
  Retina m1(task.user_dim, task.content_dim, task.embed_dim,
            task.NumIntervals(), opts);
  Retina m2(task.user_dim, task.content_dim, task.embed_dim,
            task.NumIntervals(), opts);
  ASSERT_TRUE(m1.Train(task).ok());
  ASSERT_TRUE(m2.Train(task).ok());
  const Vec s1 = m1.ScoreCandidates(task, task.test);
  const Vec s2 = m2.ScoreCandidates(task, task.test);
  EXPECT_EQ(s1, s2);
}

TEST(RetinaTest, EmptyTrainFails) {
  RetweetTask task;
  task.user_dim = 4;
  task.content_dim = 4;
  task.embed_dim = 4;
  task.interval_edges = {0.0, 1.0};
  Retina model(4, 4, 4, 1, FastStaticOptions());
  EXPECT_FALSE(model.Train(task).ok());
}

}  // namespace
}  // namespace retina::core
