// Synthetic follower-network generators.
//
// The paper's crawl reaches 41.1M users by following the follower graph to
// depth 3 from ~14k tweeting users; the network exhibits (a) heavy-tailed
// follower counts, (b) topical homophily, and (c) dense hate echo-chambers
// (Section I / Figure 1 analysis). GenerateFollowerNetwork plants all three:
// preferential attachment for the degree tail, a topic-similarity bonus for
// homophily, and extra intra-community edges among hate-prone users.

#ifndef RETINA_GRAPH_GENERATORS_H_
#define RETINA_GRAPH_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "graph/information_network.h"

namespace retina::graph {

/// Options for the follower-network generator.
struct NetworkGenOptions {
  /// Average number of followees per user (drives edge count).
  double mean_followees = 12.0;
  /// Strength of preferential attachment vs uniform choice in [0,1].
  double preferential_weight = 0.7;
  /// Multiplier applied to attachment propensity for topically similar
  /// users (homophily): weight *= 1 + homophily * cosine(topics).
  double homophily = 2.0;
  /// Extra follow probability between two hate-prone users, creating the
  /// echo-chamber: each ordered hate-prone pair gains an edge with this
  /// probability (only applied within the same echo community).
  double echo_chamber_density = 0.45;
  /// Candidate pool sampled per followee pick (keeps generation O(n·k)).
  size_t candidate_pool = 24;
  /// Probability that a follow edge is reciprocated (follow-back), which
  /// is what gives the real Twitter graph its giant strongly connected
  /// component; without it, follower out-components stay shallow.
  double reciprocity = 0.25;
  /// Attachment-score multiplier when an ordinary user considers following
  /// a hate-prone account: echo chambers are isolated from the mainstream
  /// audience, which is what keeps the susceptible set of hateful cascades
  /// small (Figure 1(b)).
  double hater_isolation = 0.22;
};

/// Generates a follower network over `user_topics.size()` users.
///
/// \param user_topics Per-user topic-interest distribution (rows of equal
///        length; used for homophily).
/// \param echo_community Per-user community id; users with id >= 0 are
///        hate-prone members of that echo-chamber, -1 for everyone else.
/// \param options Generator knobs.
/// \param rng Randomness source (consumed).
InformationNetwork GenerateFollowerNetwork(
    const std::vector<Vec>& user_topics,
    const std::vector<int>& echo_community, const NetworkGenOptions& options,
    Rng* rng);

/// Degree-distribution summary used by tests and the dataset bench.
struct DegreeStats {
  double mean_followers = 0.0;
  double max_followers = 0.0;
  /// Fraction of all follower edges held by the top 1% of accounts —
  /// heavy-tail witness.
  double top1pct_share = 0.0;
};

DegreeStats ComputeDegreeStats(const InformationNetwork& net);

}  // namespace retina::graph

#endif  // RETINA_GRAPH_GENERATORS_H_
