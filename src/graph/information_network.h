// The Twitter information network G = {U, E} of Section III.
//
// Nodes are users; a directed edge (u, v) exists iff v follows u, so content
// flows along edges: a tweet by u is visible to all out-neighbors of u
// ("followers"). Storage is CSR in both directions (followers and
// followees), immutable after construction.

#ifndef RETINA_GRAPH_INFORMATION_NETWORK_H_
#define RETINA_GRAPH_INFORMATION_NETWORK_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"

namespace retina::graph {

using NodeId = uint32_t;

/// Sentinel distance for unreachable nodes.
inline constexpr int kUnreachable = -1;

/// \brief Immutable directed information network in CSR form.
class InformationNetwork {
 public:
  /// An empty network (0 nodes); populate via FromEdges.
  InformationNetwork() : offsets_(1, 0), rev_offsets_(1, 0) {}

  /// Builds the network from an edge list. Self-loops and duplicate edges
  /// are dropped. Returns InvalidArgument if any endpoint is >= num_nodes.
  static Result<InformationNetwork> FromEdges(
      size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  size_t NumNodes() const { return offsets_.size() - 1; }
  size_t NumEdges() const { return targets_.size(); }

  /// Users who follow `u` (receive u's tweets). Sorted ascending.
  std::span<const NodeId> Followers(NodeId u) const;

  /// Users whom `u` follows (u receives their tweets). Sorted ascending.
  std::span<const NodeId> Followees(NodeId u) const;

  size_t FollowerCount(NodeId u) const { return Followers(u).size(); }
  size_t FolloweeCount(NodeId u) const { return Followees(u).size(); }

  /// True iff the edge (u, v) exists, i.e. v follows u. O(log deg(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// BFS shortest-path length from src to dst along follow edges
  /// (information-flow direction). `cutoff` bounds the search depth;
  /// returns kUnreachable if dst is farther than cutoff or disconnected.
  int ShortestPathLength(NodeId src, NodeId dst, int cutoff = 6) const;

  /// BFS distances from src to all nodes within `cutoff` hops
  /// (kUnreachable beyond). O(V+E) but early-exits at the cutoff ring.
  std::vector<int> BfsDistances(NodeId src, int cutoff) const;

 private:
  // Forward CSR: followers.
  std::vector<size_t> offsets_;
  std::vector<NodeId> targets_;
  // Reverse CSR: followees.
  std::vector<size_t> rev_offsets_;
  std::vector<NodeId> rev_targets_;
};

/// Number of distinct *susceptible* users for a cascade prefix: followers of
/// any participant who are not themselves participants (the Figure 1(b)
/// quantity). `participants` lists root + retweeters so far.
size_t CountSusceptible(const InformationNetwork& net,
                        const std::vector<NodeId>& participants);

}  // namespace retina::graph

#endif  // RETINA_GRAPH_INFORMATION_NETWORK_H_
