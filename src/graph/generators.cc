#include "graph/generators.h"

#include <algorithm>
#include <cassert>

namespace retina::graph {

InformationNetwork GenerateFollowerNetwork(
    const std::vector<Vec>& user_topics,
    const std::vector<int>& echo_community, const NetworkGenOptions& options,
    Rng* rng) {
  const size_t n = user_topics.size();
  assert(echo_community.size() == n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(options.mean_followees * n * 1.2));

  // follower_count[u] = current in-degree of u as a followee target, used
  // for preferential attachment.
  std::vector<double> follower_count(n, 1.0);

  for (size_t v = 0; v < n; ++v) {
    // v picks its followees: edge (u, v) for each chosen u.
    const int k = rng->Poisson(options.mean_followees);
    for (int e = 0; e < k; ++e) {
      // Sample a candidate pool and score it.
      size_t best = n;  // invalid
      double best_score = -1.0;
      for (size_t c = 0; c < options.candidate_pool; ++c) {
        const size_t u = static_cast<size_t>(rng->UniformInt(n));
        if (u == v) continue;
        double score = rng->Uniform() * 0.25;  // tie-breaking noise
        if (rng->Uniform() < options.preferential_weight) {
          score += follower_count[u];
        } else {
          score += 1.0;
        }
        score *= 1.0 + options.homophily *
                           std::max(0.0, CosineSimilarity(user_topics[u],
                                                          user_topics[v]));
        // Ordinary users rarely follow echo-chamber accounts.
        if (echo_community[u] >= 0 && echo_community[v] < 0) {
          score *= options.hater_isolation;
        }
        if (score > best_score) {
          best_score = score;
          best = u;
        }
      }
      if (best < n) {
        edges.emplace_back(static_cast<NodeId>(best),
                           static_cast<NodeId>(v));
        follower_count[best] += 1.0;
        // Follow-backs are suppressed by the same isolation factor when
        // they would give a hate-prone account an ordinary follower.
        double recip = options.reciprocity;
        if (echo_community[v] >= 0 && echo_community[best] < 0) {
          recip *= options.hater_isolation;
        }
        if (rng->Bernoulli(recip)) {
          edges.emplace_back(static_cast<NodeId>(v),
                             static_cast<NodeId>(best));
          follower_count[v] += 1.0;
        }
      }
    }
  }

  // Echo-chamber densification: group hate-prone users by community and add
  // intra-community follows.
  std::vector<std::vector<size_t>> communities;
  for (size_t u = 0; u < n; ++u) {
    const int c = echo_community[u];
    if (c < 0) continue;
    if (static_cast<size_t>(c) >= communities.size()) {
      communities.resize(static_cast<size_t>(c) + 1);
    }
    communities[static_cast<size_t>(c)].push_back(u);
  }
  for (const auto& members : communities) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        if (rng->Bernoulli(options.echo_chamber_density)) {
          edges.emplace_back(static_cast<NodeId>(members[i]),
                             static_cast<NodeId>(members[j]));
        }
      }
    }
  }

  auto result = InformationNetwork::FromEdges(n, edges);
  assert(result.ok());
  return std::move(result).ValueOrDie();
}

DegreeStats ComputeDegreeStats(const InformationNetwork& net) {
  DegreeStats stats;
  const size_t n = net.NumNodes();
  if (n == 0) return stats;
  std::vector<double> deg(n);
  double total = 0.0;
  for (size_t u = 0; u < n; ++u) {
    deg[u] = static_cast<double>(net.FollowerCount(static_cast<NodeId>(u)));
    total += deg[u];
  }
  stats.mean_followers = total / static_cast<double>(n);
  stats.max_followers = *std::max_element(deg.begin(), deg.end());
  std::sort(deg.begin(), deg.end(), std::greater<>());
  const size_t top = std::max<size_t>(1, n / 100);
  double top_sum = 0.0;
  for (size_t i = 0; i < top; ++i) top_sum += deg[i];
  stats.top1pct_share = total > 0.0 ? top_sum / total : 0.0;
  return stats;
}

}  // namespace retina::graph
