#include "graph/information_network.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace retina::graph {

Result<InformationNetwork> InformationNetwork::FromEdges(
    size_t num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) {
      return Status::InvalidArgument(
          "InformationNetwork::FromEdges: endpoint out of range");
    }
  }
  // Sort + dedup, dropping self-loops.
  std::vector<std::pair<NodeId, NodeId>> clean;
  clean.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.first != e.second) clean.push_back(e);
  }
  std::sort(clean.begin(), clean.end());
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());

  InformationNetwork net;
  net.offsets_.assign(num_nodes + 1, 0);
  net.targets_.resize(clean.size());
  for (const auto& [u, v] : clean) ++net.offsets_[u + 1];
  for (size_t i = 1; i <= num_nodes; ++i) net.offsets_[i] += net.offsets_[i - 1];
  {
    std::vector<size_t> cursor(net.offsets_.begin(), net.offsets_.end() - 1);
    for (const auto& [u, v] : clean) net.targets_[cursor[u]++] = v;
  }

  // Reverse CSR.
  net.rev_offsets_.assign(num_nodes + 1, 0);
  net.rev_targets_.resize(clean.size());
  for (const auto& [u, v] : clean) ++net.rev_offsets_[v + 1];
  for (size_t i = 1; i <= num_nodes; ++i)
    net.rev_offsets_[i] += net.rev_offsets_[i - 1];
  {
    std::vector<size_t> cursor(net.rev_offsets_.begin(),
                               net.rev_offsets_.end() - 1);
    for (const auto& [u, v] : clean) net.rev_targets_[cursor[v]++] = u;
  }
  // CSR fill in sorted edge order keeps each adjacency list sorted for the
  // forward direction; sort reverse lists explicitly.
  for (size_t v = 0; v < num_nodes; ++v) {
    std::sort(net.rev_targets_.begin() + net.rev_offsets_[v],
              net.rev_targets_.begin() + net.rev_offsets_[v + 1]);
  }
  return net;
}

std::span<const NodeId> InformationNetwork::Followers(NodeId u) const {
  return {targets_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::span<const NodeId> InformationNetwork::Followees(NodeId u) const {
  return {rev_targets_.data() + rev_offsets_[u],
          rev_offsets_[u + 1] - rev_offsets_[u]};
}

bool InformationNetwork::HasEdge(NodeId u, NodeId v) const {
  auto f = Followers(u);
  return std::binary_search(f.begin(), f.end(), v);
}

int InformationNetwork::ShortestPathLength(NodeId src, NodeId dst,
                                           int cutoff) const {
  if (src == dst) return 0;
  std::vector<int> dist = BfsDistances(src, cutoff);
  return dist[dst];
}

std::vector<int> InformationNetwork::BfsDistances(NodeId src,
                                                  int cutoff) const {
  std::vector<int> dist(NumNodes(), kUnreachable);
  dist[src] = 0;
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (dist[u] >= cutoff) continue;
    for (NodeId v : Followers(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

size_t CountSusceptible(const InformationNetwork& net,
                        const std::vector<NodeId>& participants) {
  std::unordered_set<NodeId> member(participants.begin(), participants.end());
  std::unordered_set<NodeId> exposed;
  for (NodeId p : participants) {
    for (NodeId f : net.Followers(p)) {
      if (member.count(f) == 0) exposed.insert(f);
    }
  }
  return exposed.size();
}

}  // namespace retina::graph
