#include "text/hate_lexicon.h"

#include <cstdio>

namespace retina::text {

HateLexicon::HateLexicon(std::vector<std::string> slur_terms,
                         std::vector<std::string> colloquial_terms)
    : slurs_(std::move(slur_terms)), colloquials_(std::move(colloquial_terms)) {
  terms_.reserve(slurs_.size() + colloquials_.size());
  terms_.insert(terms_.end(), slurs_.begin(), slurs_.end());
  terms_.insert(terms_.end(), colloquials_.begin(), colloquials_.end());
  for (size_t i = 0; i < terms_.size(); ++i) index_.emplace(terms_[i], i);
  slur_set_.insert(slurs_.begin(), slurs_.end());
}

bool HateLexicon::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

bool HateLexicon::IsSlur(const std::string& token) const {
  return slur_set_.count(token) > 0;
}

Vec HateLexicon::FrequencyVector(
    const std::vector<std::vector<std::string>>& docs) const {
  Vec out(terms_.size(), 0.0);
  for (const auto& doc : docs) {
    for (const auto& tok : doc) {
      auto it = index_.find(tok);
      if (it != index_.end()) out[it->second] += 1.0;
    }
  }
  return out;
}

size_t HateLexicon::CountHits(const std::vector<std::string>& doc) const {
  size_t hits = 0;
  for (const auto& tok : doc) {
    if (index_.count(tok) > 0) ++hits;
  }
  return hits;
}

HateLexicon MakeSyntheticLexicon(size_t n_terms, size_t n_slurs) {
  if (n_slurs > n_terms) n_slurs = n_terms;
  std::vector<std::string> slurs, colloquials;
  slurs.reserve(n_slurs);
  colloquials.reserve(n_terms - n_slurs);
  char buf[32];
  for (size_t i = 0; i < n_slurs; ++i) {
    std::snprintf(buf, sizeof(buf), "slur%03zu", i);
    slurs.emplace_back(buf);
  }
  for (size_t i = 0; i < n_terms - n_slurs; ++i) {
    std::snprintf(buf, sizeof(buf), "colloq%03zu", i);
    colloquials.emplace_back(buf);
  }
  return HateLexicon(std::move(slurs), std::move(colloquials));
}

}  // namespace retina::text
