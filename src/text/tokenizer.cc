#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace retina::text {

std::vector<std::string> Tokenize(std::string_view raw) {
  std::vector<std::string> out;
  for (const std::string& piece : SplitWhitespace(raw)) {
    if (StartsWith(piece, "http://") || StartsWith(piece, "https://")) {
      continue;
    }
    std::string tok;
    tok.reserve(piece.size());
    for (size_t i = 0; i < piece.size(); ++i) {
      const char c = piece[i];
      const bool sigil = (i == 0 && (c == '#' || c == '@'));
      if (sigil || std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        tok += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (!tok.empty() && tok != "#" && tok != "@") out.push_back(std::move(tok));
  }
  return out;
}

std::vector<std::string> Bigrams(const std::vector<std::string>& unigrams) {
  std::vector<std::string> out;
  if (unigrams.size() < 2) return out;
  out.reserve(unigrams.size() - 1);
  for (size_t i = 0; i + 1 < unigrams.size(); ++i) {
    out.push_back(unigrams[i] + "_" + unigrams[i + 1]);
  }
  return out;
}

std::vector<std::string> UnigramsAndBigrams(std::string_view raw) {
  std::vector<std::string> uni = Tokenize(raw);
  std::vector<std::string> bi = Bigrams(uni);
  uni.insert(uni.end(), bi.begin(), bi.end());
  return uni;
}

}  // namespace retina::text
