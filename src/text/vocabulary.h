// Token <-> id mapping shared by the tf-idf vectorizer and Doc2Vec.

#ifndef RETINA_TEXT_VOCABULARY_H_
#define RETINA_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/checkpoint.h"

namespace retina::text {

/// \brief Append-only token dictionary.
class Vocabulary {
 public:
  static constexpr int kUnknown = -1;

  /// Returns the id of `token`, inserting it if absent.
  int AddToken(std::string_view token);

  /// Returns the id of `token` or kUnknown.
  int GetId(std::string_view token) const;

  /// Returns the token for `id`; empty string if out of range.
  const std::string& GetToken(int id) const;

  /// True if the token is present.
  bool Contains(std::string_view token) const;

  size_t size() const { return tokens_.size(); }

  /// All tokens in id order.
  const std::vector<std::string>& tokens() const { return tokens_; }

  /// Writes the token table (the full state: ids are positional) under
  /// `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this vocabulary with the one saved under `prefix`.
  /// Errors on duplicate tokens (a corrupt table).
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> tokens_;
};

}  // namespace retina::text

#endif  // RETINA_TEXT_VOCABULARY_H_
