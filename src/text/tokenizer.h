// Tweet/headline tokenizer.
//
// Mirrors the preprocessing the paper applies before tf-idf / Doc2Vec:
// lowercase, strip URLs and punctuation, keep #hashtags and @mentions as
// single tokens (hashtags double as topic labels, Section IV-B).

#ifndef RETINA_TEXT_TOKENIZER_H_
#define RETINA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace retina::text {

/// Splits raw text into lowercase tokens. '#'/'@'-prefixed tokens are kept
/// intact (with their sigil); URLs (http/https prefixes) are dropped;
/// other punctuation is stripped.
std::vector<std::string> Tokenize(std::string_view raw);

/// Produces "a_b"-style bigram tokens from a unigram sequence.
std::vector<std::string> Bigrams(const std::vector<std::string>& unigrams);

/// Unigrams followed by bigrams — the feature token stream the paper's
/// "unigram and bigram features weighted by tf-idf" uses (Section IV-A).
std::vector<std::string> UnigramsAndBigrams(std::string_view raw);

}  // namespace retina::text

#endif  // RETINA_TEXT_TOKENIZER_H_
