#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace retina::text {

Status TfIdfVectorizer::Fit(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("TfIdfVectorizer::Fit: empty corpus");
  }
  feature_index_.clear();
  feature_tokens_.clear();
  idf_.clear();

  // Document frequencies.
  std::unordered_map<std::string, size_t> df;
  for (const auto& doc : docs) {
    std::unordered_map<std::string, bool> in_doc;
    for (const auto& tok : doc) in_doc.emplace(tok, true);
    for (const auto& [tok, _] : in_doc) ++df[tok];
  }

  const double n = static_cast<double>(docs.size());
  struct Cand {
    std::string token;
    size_t df;
    double idf;
  };
  std::vector<Cand> cands;
  cands.reserve(df.size());
  for (auto& [tok, d] : df) {
    if (d < options_.min_df) continue;
    const double idf = std::log((1.0 + n) / (1.0 + static_cast<double>(d))) +
                       1.0;
    cands.push_back({tok, d, idf});
  }
  if (cands.empty()) {
    return Status::FailedPrecondition(
        "TfIdfVectorizer::Fit: no token satisfies min_df");
  }

  if (options_.rank_by_idf) {
    // Highest idf first (rarest informative tokens), token as tiebreak for
    // determinism.
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.idf != b.idf) return a.idf > b.idf;
      return a.token < b.token;
    });
  } else {
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.df != b.df) return a.df > b.df;
      return a.token < b.token;
    });
  }
  if (options_.max_features > 0 && cands.size() > options_.max_features) {
    cands.resize(options_.max_features);
  }
  // Stable feature order: lexicographic over retained tokens.
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.token < b.token; });

  feature_tokens_.reserve(cands.size());
  idf_.reserve(cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    feature_index_.emplace(cands[i].token, i);
    feature_tokens_.push_back(cands[i].token);
    idf_.push_back(cands[i].idf);
  }
  return Status::OK();
}

Vec TfIdfVectorizer::Transform(const std::vector<std::string>& doc) const {
  // Delegates to the sparse path so the documented exact-equality pin
  // Transform(doc) == TransformSparse(doc).ToDense() holds at any kernel
  // dispatch: both paths share one count/idf/normalize computation instead
  // of normalizing a 0-padded dense vector with a differently-partitioned
  // reduction.
  return TransformSparse(doc).ToDense();
}

SparseVec TfIdfVectorizer::TransformSparse(
    const std::vector<std::string>& doc) const {
  SparseVec out(Dim());
  if (doc.empty() || !fitted()) return out;
  // Term counts over the document's active features only.
  std::vector<std::pair<size_t, double>> counts;
  {
    std::unordered_map<size_t, double> tf;
    tf.reserve(doc.size());
    for (const auto& tok : doc) {
      auto it = feature_index_.find(tok);
      if (it != feature_index_.end()) tf[it->second] += 1.0;
    }
    counts.assign(tf.begin(), tf.end());
  }
  std::sort(counts.begin(), counts.end());
  for (const auto& [i, tf] : counts) out.PushBack(i, tf * idf_[i]);
  if (options_.l2_normalize) {
    // Kept as a division (not multiplication by the reciprocal, which
    // differs in the last ulp); Transform delegates here so this is the
    // single normalization both paths share.
    const double n = out.Norm2();
    if (n >= 1e-12) {
      simd::DivInPlace(n, out.mutable_values().data(), out.nnz());
    }
  }
  return out;
}

Matrix TfIdfVectorizer::TransformBatch(
    const std::vector<std::vector<std::string>>& docs) const {
  Matrix out(docs.size(), Dim());
  for (size_t i = 0; i < docs.size(); ++i) out.SetRow(i, Transform(docs[i]));
  return out;
}

std::vector<SparseVec> TfIdfVectorizer::TransformBatchSparse(
    const std::vector<std::vector<std::string>>& docs) const {
  std::vector<SparseVec> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) out.push_back(TransformSparse(doc));
  return out;
}

Vec TfIdfVectorizer::TransformAverage(
    const std::vector<std::vector<std::string>>& docs) const {
  Vec acc(Dim(), 0.0);
  if (docs.empty()) return acc;
  for (const auto& doc : docs) {
    Axpy(1.0, TransformSparse(doc), &acc);
  }
  Scale(1.0 / static_cast<double>(docs.size()), &acc);
  return acc;
}

void TfIdfVectorizer::SaveTo(io::Checkpoint* ckpt,
                             const std::string& prefix) const {
  ckpt->PutI64(prefix + "options/max_features",
               static_cast<int64_t>(options_.max_features));
  ckpt->PutI64(prefix + "options/min_df",
               static_cast<int64_t>(options_.min_df));
  ckpt->PutBool(prefix + "options/rank_by_idf", options_.rank_by_idf);
  ckpt->PutBool(prefix + "options/l2_normalize", options_.l2_normalize);
  ckpt->PutStringList(prefix + "feature_tokens", feature_tokens_);
  ckpt->PutVec(prefix + "idf", idf_);
}

Status TfIdfVectorizer::LoadFrom(const io::Checkpoint& ckpt,
                                 const std::string& prefix) {
  TfIdfVectorizer fresh;
  int64_t max_features = 0, min_df = 0;
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "options/max_features", &max_features));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/min_df", &min_df));
  RETINA_RETURN_NOT_OK(ckpt.GetBool(prefix + "options/rank_by_idf",
                                    &fresh.options_.rank_by_idf));
  RETINA_RETURN_NOT_OK(ckpt.GetBool(prefix + "options/l2_normalize",
                                    &fresh.options_.l2_normalize));
  RETINA_RETURN_NOT_OK(
      ckpt.GetStringList(prefix + "feature_tokens", &fresh.feature_tokens_));
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "idf", &fresh.idf_));
  if (max_features < 0 || min_df < 0) {
    return Status::InvalidArgument("tf-idf options out of range");
  }
  fresh.options_.max_features = static_cast<size_t>(max_features);
  fresh.options_.min_df = static_cast<size_t>(min_df);
  if (fresh.idf_.size() != fresh.feature_tokens_.size()) {
    return Status::InvalidArgument(
        "tf-idf idf/feature-token size mismatch");
  }
  for (size_t i = 0; i < fresh.feature_tokens_.size(); ++i) {
    if (!fresh.feature_index_.emplace(fresh.feature_tokens_[i], i).second) {
      return Status::InvalidArgument(
          "corrupt tf-idf table: duplicate feature token '" +
          fresh.feature_tokens_[i] + "'");
    }
  }
  *this = std::move(fresh);
  return Status::OK();
}

}  // namespace retina::text
