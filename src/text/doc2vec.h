// Doc2Vec (PV-DBOW with negative sampling), from scratch.
//
// The paper derives 50-dimensional document embeddings for tweets (used for
// the topical-relatedness feature of Section IV-B and the attention inputs
// of Section V-A) and news headlines with gensim's Doc2Vec. This is the same
// model family: the distributed bag-of-words variant of paragraph vectors
// (Le & Mikolov [35]) trained with negative sampling.

#ifndef RETINA_TEXT_DOC2VEC_H_
#define RETINA_TEXT_DOC2VEC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/vec.h"
#include "io/checkpoint.h"
#include "text/vocabulary.h"

namespace retina::text {

/// Training options for Doc2Vec.
struct Doc2VecOptions {
  /// Embedding dimensionality (paper: 50 for tweets).
  size_t dim = 50;
  /// Passes over the corpus.
  int epochs = 10;
  /// Initial learning rate, linearly decayed to lr/10.
  double learning_rate = 0.025;
  /// Negative samples per positive pair.
  int negative = 5;
  /// Tokens must occur at least this often to enter the vocabulary.
  size_t min_count = 2;
  /// Seed for init and negative sampling.
  uint64_t seed = 1;
};

/// \brief PV-DBOW paragraph vector model.
class Doc2Vec {
 public:
  explicit Doc2Vec(Doc2VecOptions options = {}) : options_(options) {}

  /// Trains document and word embeddings on tokenized `docs`.
  /// Returns InvalidArgument on an empty corpus, FailedPrecondition if no
  /// token satisfies min_count.
  Status Train(const std::vector<std::vector<std::string>>& docs);

  /// Trained vector for training document `i`.
  const Vec& DocVector(size_t i) const { return doc_vecs_[i]; }

  /// Number of training documents.
  size_t NumDocs() const { return doc_vecs_.size(); }

  size_t Dim() const { return options_.dim; }

  /// Infers a vector for an unseen document: word embeddings stay frozen and
  /// a fresh document vector is fit by SGD (gensim's infer_vector).
  Vec InferVector(const std::vector<std::string>& doc,
                  int infer_epochs = 20) const;

  /// Cosine similarity between a document's inferred vector and a single
  /// token's output embedding — the "topical relatedness" primitive the
  /// hashtag-affinity feature is built from. Returns 0 for OOV tokens.
  double TokenSimilarity(const Vec& doc_vec, const std::string& token) const;

  const Vocabulary& vocab() const { return vocab_; }
  bool trained() const { return trained_; }

  /// Writes the trained state (options, vocabulary, word/doc embeddings,
  /// negative-sampling table) under `prefix`. InferVector is a pure
  /// function of this state, so a loaded model infers bit-identically.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this model with the one saved under `prefix`; validates
  /// embedding/vocabulary shape consistency.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  // One SGD step on pair (doc vector d, target word). Always updates d;
  // updates word embeddings only when `words` is non-null (null = frozen,
  // as in InferVector).
  void SgdStep(Vec* d, int target_word, double lr, Matrix* words,
               Rng* rng) const;

  int SampleNegative(Rng* rng) const;

  Doc2VecOptions options_;
  Vocabulary vocab_;
  Matrix word_vecs_;           // |V| x dim output embeddings
  std::vector<Vec> doc_vecs_;  // one per training document
  std::vector<double> unigram_cdf_;  // negative-sampling distribution
  bool trained_ = false;
};

}  // namespace retina::text

#endif  // RETINA_TEXT_DOC2VEC_H_
