#include "text/vocabulary.h"

namespace retina::text {

namespace {
const std::string kEmpty;
}

int Vocabulary::AddToken(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

int Vocabulary::GetId(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnknown : it->second;
}

const std::string& Vocabulary::GetToken(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= tokens_.size()) return kEmpty;
  return tokens_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(std::string_view token) const {
  return GetId(token) != kUnknown;
}

void Vocabulary::SaveTo(io::Checkpoint* ckpt,
                        const std::string& prefix) const {
  ckpt->PutStringList(prefix + "tokens", tokens_);
}

Status Vocabulary::LoadFrom(const io::Checkpoint& ckpt,
                            const std::string& prefix) {
  std::vector<std::string> tokens;
  RETINA_RETURN_NOT_OK(ckpt.GetStringList(prefix + "tokens", &tokens));
  Vocabulary fresh;
  for (const std::string& token : tokens) {
    const int id = fresh.AddToken(token);
    if (static_cast<size_t>(id) + 1 != fresh.size()) {
      return Status::InvalidArgument(
          "corrupt vocabulary table: duplicate token '" + token + "'");
    }
  }
  *this = std::move(fresh);
  return Status::OK();
}

}  // namespace retina::text
