#include "text/vocabulary.h"

namespace retina::text {

namespace {
const std::string kEmpty;
}

int Vocabulary::AddToken(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

int Vocabulary::GetId(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnknown : it->second;
}

const std::string& Vocabulary::GetToken(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= tokens_.size()) return kEmpty;
  return tokens_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(std::string_view token) const {
  return GetId(token) != kUnknown;
}

}  // namespace retina::text
