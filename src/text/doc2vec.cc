#include "text/doc2vec.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace retina::text {

Status Doc2Vec::Train(const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("Doc2Vec::Train: empty corpus");
  }
  // Vocabulary with min_count filter.
  std::unordered_map<std::string, size_t> counts;
  for (const auto& doc : docs)
    for (const auto& tok : doc) ++counts[tok];

  vocab_ = Vocabulary();
  std::vector<double> freq;
  {
    // Deterministic id order: sort tokens lexicographically.
    std::vector<std::pair<std::string, size_t>> items(counts.begin(),
                                                      counts.end());
    std::sort(items.begin(), items.end());
    for (auto& [tok, c] : items) {
      if (c < options_.min_count) continue;
      vocab_.AddToken(tok);
      freq.push_back(static_cast<double>(c));
    }
  }
  if (vocab_.size() == 0) {
    return Status::FailedPrecondition(
        "Doc2Vec::Train: no token satisfies min_count");
  }

  // Negative-sampling distribution: unigram^0.75 CDF.
  unigram_cdf_.resize(freq.size());
  double acc = 0.0;
  for (size_t i = 0; i < freq.size(); ++i) {
    acc += std::pow(freq[i], 0.75);
    unigram_cdf_[i] = acc;
  }
  for (double& v : unigram_cdf_) v /= acc;

  Rng rng(options_.seed);
  const double scale = 1.0 / static_cast<double>(options_.dim);
  word_vecs_ = Matrix(vocab_.size(), options_.dim);
  for (double& w : word_vecs_.data()) w = rng.Uniform(-scale, scale);
  doc_vecs_.assign(docs.size(), Vec(options_.dim));
  for (auto& d : doc_vecs_)
    for (double& x : d) x = rng.Uniform(-scale, scale);

  // Pre-map docs to word ids (dropping OOV).
  std::vector<std::vector<int>> ids(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    ids[i].reserve(docs[i].size());
    for (const auto& tok : docs[i]) {
      const int id = vocab_.GetId(tok);
      if (id != Vocabulary::kUnknown) ids[i].push_back(id);
    }
  }

  std::vector<size_t> order(docs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double lr0 = options_.learning_rate;
  const double lr_min = lr0 / 10.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const double lr =
        lr0 - (lr0 - lr_min) * static_cast<double>(epoch) /
                  std::max(1, options_.epochs - 1);
    rng.Shuffle(&order);
    for (size_t di : order) {
      Vec& d = doc_vecs_[di];
      for (int wid : ids[di]) {
        SgdStep(&d, wid, lr, &word_vecs_, &rng);
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

int Doc2Vec::SampleNegative(Rng* rng) const {
  const double u = rng->Uniform();
  auto it = std::upper_bound(unigram_cdf_.begin(), unigram_cdf_.end(), u);
  size_t idx = static_cast<size_t>(it - unigram_cdf_.begin());
  if (idx >= unigram_cdf_.size()) idx = unigram_cdf_.size() - 1;
  return static_cast<int>(idx);
}

void Doc2Vec::SgdStep(Vec* d, int target_word, double lr, Matrix* words,
                      Rng* rng) const {
  const size_t dim = options_.dim;
  Vec d_grad(dim, 0.0);
  // Positive pair plus `negative` sampled negatives.
  for (int k = 0; k <= options_.negative; ++k) {
    int wid;
    double label;
    if (k == 0) {
      wid = target_word;
      label = 1.0;
    } else {
      wid = SampleNegative(rng);
      if (wid == target_word) continue;
      label = 0.0;
    }
    const double* w = word_vecs_.Row(static_cast<size_t>(wid));
    double score = 0.0;
    for (size_t j = 0; j < dim; ++j) score += (*d)[j] * w[j];
    const double g = (label - Sigmoid(score)) * lr;
    for (size_t j = 0; j < dim; ++j) d_grad[j] += g * w[j];
    if (words != nullptr) {
      double* wm = words->Row(static_cast<size_t>(wid));
      for (size_t j = 0; j < dim; ++j) wm[j] += g * (*d)[j];
    }
  }
  for (size_t j = 0; j < dim; ++j) (*d)[j] += d_grad[j];
}

Vec Doc2Vec::InferVector(const std::vector<std::string>& doc,
                         int infer_epochs) const {
  Rng rng(options_.seed ^ 0x5DEECE66DULL);
  const double scale = 1.0 / static_cast<double>(options_.dim);
  Vec d(options_.dim);
  for (double& x : d) x = rng.Uniform(-scale, scale);
  if (!trained_) return d;

  std::vector<int> ids;
  ids.reserve(doc.size());
  for (const auto& tok : doc) {
    const int id = vocab_.GetId(tok);
    if (id != Vocabulary::kUnknown) ids.push_back(id);
  }
  if (ids.empty()) return d;

  const double lr0 = options_.learning_rate;
  const double lr_min = lr0 / 10.0;
  for (int epoch = 0; epoch < infer_epochs; ++epoch) {
    const double lr = lr0 - (lr0 - lr_min) * static_cast<double>(epoch) /
                                std::max(1, infer_epochs - 1);
    for (int wid : ids) {
      SgdStep(&d, wid, lr, /*words=*/nullptr, &rng);
    }
  }
  return d;
}

double Doc2Vec::TokenSimilarity(const Vec& doc_vec,
                                const std::string& token) const {
  const int id = vocab_.GetId(token);
  if (id == Vocabulary::kUnknown) return 0.0;
  const Vec w = word_vecs_.RowVec(static_cast<size_t>(id));
  return CosineSimilarity(doc_vec, w);
}

void Doc2Vec::SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const {
  ckpt->PutI64(prefix + "options/dim",
               static_cast<int64_t>(options_.dim));
  ckpt->PutI64(prefix + "options/epochs", options_.epochs);
  ckpt->PutF64(prefix + "options/learning_rate", options_.learning_rate);
  ckpt->PutI64(prefix + "options/negative", options_.negative);
  ckpt->PutI64(prefix + "options/min_count",
               static_cast<int64_t>(options_.min_count));
  ckpt->PutI64(prefix + "options/seed",
               static_cast<int64_t>(options_.seed));
  vocab_.SaveTo(ckpt, prefix + "vocab/");
  ckpt->PutTensor(prefix + "word_vecs", word_vecs_);
  Matrix docs(doc_vecs_.size(), options_.dim);
  for (size_t i = 0; i < doc_vecs_.size(); ++i) docs.SetRow(i, doc_vecs_[i]);
  ckpt->PutTensor(prefix + "doc_vecs", docs);
  ckpt->PutVec(prefix + "unigram_cdf", unigram_cdf_);
  ckpt->PutBool(prefix + "trained", trained_);
}

Status Doc2Vec::LoadFrom(const io::Checkpoint& ckpt,
                         const std::string& prefix) {
  Doc2Vec fresh;
  int64_t dim = 0, epochs = 0, negative = 0, min_count = 0, seed = 0;
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/dim", &dim));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/epochs", &epochs));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "options/learning_rate",
                                   &fresh.options_.learning_rate));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/negative", &negative));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "options/min_count", &min_count));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/seed", &seed));
  if (dim <= 0 || min_count < 0) {
    return Status::InvalidArgument("doc2vec options out of range");
  }
  fresh.options_.dim = static_cast<size_t>(dim);
  fresh.options_.epochs = static_cast<int>(epochs);
  fresh.options_.negative = static_cast<int>(negative);
  fresh.options_.min_count = static_cast<size_t>(min_count);
  fresh.options_.seed = static_cast<uint64_t>(seed);
  RETINA_RETURN_NOT_OK(fresh.vocab_.LoadFrom(ckpt, prefix + "vocab/"));
  RETINA_RETURN_NOT_OK(
      ckpt.GetTensor(prefix + "word_vecs", &fresh.word_vecs_));
  if (fresh.word_vecs_.rows() != fresh.vocab_.size() ||
      fresh.word_vecs_.cols() != fresh.options_.dim) {
    return Status::InvalidArgument(
        "doc2vec word embedding shape does not match vocabulary/dim");
  }
  Matrix docs;
  RETINA_RETURN_NOT_OK(ckpt.GetTensor(prefix + "doc_vecs", &docs));
  if (docs.rows() != 0 && docs.cols() != fresh.options_.dim) {
    return Status::InvalidArgument("doc2vec doc embedding width mismatch");
  }
  fresh.doc_vecs_.resize(docs.rows());
  for (size_t i = 0; i < docs.rows(); ++i) fresh.doc_vecs_[i] = docs.RowVec(i);
  RETINA_RETURN_NOT_OK(
      ckpt.GetVec(prefix + "unigram_cdf", &fresh.unigram_cdf_));
  if (fresh.unigram_cdf_.size() != fresh.vocab_.size()) {
    return Status::InvalidArgument(
        "doc2vec negative-sampling table does not match vocabulary");
  }
  RETINA_RETURN_NOT_OK(ckpt.GetBool(prefix + "trained", &fresh.trained_));
  *this = std::move(fresh);
  return Status::OK();
}

}  // namespace retina::text
