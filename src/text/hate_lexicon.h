// Hate lexicon (Kapoor et al. [17] analogue).
//
// The paper uses a manually pruned dictionary of 209 Hindi/English
// code-switched slur and colloquial terms. The real lexicon cannot be
// redistributed; MakeSyntheticLexicon() builds a 209-term synthetic stand-in
// whose terms are injected into hateful synthetic tweets by the world
// generator (src/datagen), preserving the lexicon's role as a
// high-precision / partial-recall hate signal. "Colloquial" terms also occur
// in non-hate text, matching the context-dependent terms the paper calls out
// (e.g. "mulla", "bakar").

#ifndef RETINA_TEXT_HATE_LEXICON_H_
#define RETINA_TEXT_HATE_LEXICON_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/vec.h"

namespace retina::text {

/// \brief Dictionary of hate terms with frequency-vector extraction.
///
/// The lexicon vector HL (Section IV-A) counts, over a set of documents,
/// how often each lexicon entry appears.
class HateLexicon {
 public:
  /// \param slur_terms Terms that are offensive wherever they appear.
  /// \param colloquial_terms Terms hateful only in context (weak signal).
  HateLexicon(std::vector<std::string> slur_terms,
              std::vector<std::string> colloquial_terms);

  /// Total number of entries |H| (slurs + colloquial).
  size_t size() const { return terms_.size(); }

  const std::vector<std::string>& terms() const { return terms_; }
  const std::vector<std::string>& slur_terms() const { return slurs_; }
  const std::vector<std::string>& colloquial_terms() const {
    return colloquials_;
  }

  /// True if `token` is any lexicon entry.
  bool Contains(const std::string& token) const;

  /// True if `token` is an unambiguous slur.
  bool IsSlur(const std::string& token) const;

  /// Frequency vector HL over the concatenation of `docs` (size() entries,
  /// one count per lexicon term).
  Vec FrequencyVector(
      const std::vector<std::vector<std::string>>& docs) const;

  /// Count of lexicon hits in a single token stream.
  size_t CountHits(const std::vector<std::string>& doc) const;

 private:
  std::vector<std::string> slurs_;
  std::vector<std::string> colloquials_;
  std::vector<std::string> terms_;  // slurs_ then colloquials_
  std::unordered_map<std::string, size_t> index_;
  std::unordered_set<std::string> slur_set_;
};

/// Builds the synthetic 209-term lexicon (`n_slurs` unambiguous terms,
/// the remainder colloquial). Term strings are deterministic.
HateLexicon MakeSyntheticLexicon(size_t n_terms = 209, size_t n_slurs = 160);

}  // namespace retina::text

#endif  // RETINA_TEXT_HATE_LEXICON_H_
