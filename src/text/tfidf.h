// Tf-idf vectorizer over unigram+bigram token streams.
//
// Reproduces the feature pipeline of Sections IV-A and IV-D: fit document
// frequencies on a corpus, keep the top-K features ranked by idf (the paper
// keeps the top 300 "sorted by their idf values"), and transform documents
// into dense K-dimensional tf-idf vectors.

#ifndef RETINA_TEXT_TFIDF_H_
#define RETINA_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/sparse_vec.h"
#include "common/status.h"
#include "common/vec.h"
#include "io/checkpoint.h"

namespace retina::text {

/// Options controlling vectorizer fitting.
struct TfIdfOptions {
  /// Number of features kept after ranking. 0 keeps all.
  size_t max_features = 300;
  /// Tokens must appear in at least this many documents.
  size_t min_df = 2;
  /// Rank retained features by idf (paper's choice) instead of by
  /// document frequency.
  bool rank_by_idf = true;
  /// L2-normalize transformed vectors (sklearn default).
  bool l2_normalize = true;
};

/// \brief Fit-then-transform tf-idf vectorizer.
///
/// idf uses the smoothed form log((1+N)/(1+df)) + 1.
class TfIdfVectorizer {
 public:
  explicit TfIdfVectorizer(TfIdfOptions options = {})
      : options_(options) {}

  /// Fits vocabulary and idf weights on tokenized documents.
  /// Returns InvalidArgument if `docs` is empty.
  Status Fit(const std::vector<std::vector<std::string>>& docs);

  /// Transforms one document into a dense feature vector of Dim() entries.
  Vec Transform(const std::vector<std::string>& doc) const;

  /// Native sparse transform: the same tf-idf vector as Transform but as
  /// sorted (index, value) pairs — only the document's active features are
  /// touched, so cost scales with the document instead of Dim().
  /// TransformSparse(doc).ToDense() == Transform(doc) exactly.
  SparseVec TransformSparse(const std::vector<std::string>& doc) const;

  /// Transforms a batch (rows follow input order).
  Matrix TransformBatch(
      const std::vector<std::vector<std::string>>& docs) const;

  /// Sparse batch transform (entries follow input order).
  std::vector<SparseVec> TransformBatchSparse(
      const std::vector<std::vector<std::string>>& docs) const;

  /// Average of transformed vectors over `docs` — used for the exogenous
  /// news feature (Section IV-D averages the 60 most recent headlines).
  /// Accumulates sparse transforms; each output entry sums the same terms
  /// in the same document order as the dense path, so the result is
  /// unchanged.
  Vec TransformAverage(
      const std::vector<std::vector<std::string>>& docs) const;

  /// Number of retained features (0 before Fit).
  size_t Dim() const { return feature_tokens_.size(); }

  /// Retained feature tokens in feature-index order.
  const std::vector<std::string>& feature_tokens() const {
    return feature_tokens_;
  }

  /// idf weight for feature index i.
  double IdfAt(size_t i) const { return idf_[i]; }

  bool fitted() const { return !feature_tokens_.empty(); }

  /// Writes the fitted state (options, feature tokens, idf weights) under
  /// `prefix`; Transform on a loaded vectorizer is bit-identical.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this vectorizer with the one saved under `prefix`
  /// (the token→index map is rebuilt from the token table).
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  TfIdfOptions options_;
  std::unordered_map<std::string, size_t> feature_index_;
  std::vector<std::string> feature_tokens_;
  Vec idf_;
};

}  // namespace retina::text

#endif  // RETINA_TEXT_TFIDF_H_
