// SIR contagion baseline (Kermack–McKendrick [19]).
//
// Retweeting is modeled as infection along follower edges with a global
// transmission rate and recovery rate; both are fit by grid search on
// training cascades. As the paper's Table VI shows, a homogeneous contagion
// cannot express per-user heterogeneity and collapses to macro-F1 ~ 0.04 on
// the retweeter-classification task.

#ifndef RETINA_DIFFUSION_SIR_H_
#define RETINA_DIFFUSION_SIR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/retweet_task.h"
#include "datagen/world.h"

namespace retina::diffusion {

struct SirOptions {
  /// Monte-Carlo runs per cascade when scoring.
  int simulations = 5;
  /// Maximum propagation rounds per simulation. Long enough that a
  /// supercritical epidemic reaches quiescence (the paper-regime collapse
  /// requires the flood to complete).
  int max_steps = 30;
  /// Literature-default rates used when Fit() is not called. With a mean
  /// follower count above ~10 these flood the graph — exactly the regime
  /// in which the paper's SIR row collapses to macro-F1 0.04.
  double default_beta = 0.25;
  double default_gamma = 0.3;
  /// Grid-search candidates for the tuned variant.
  std::vector<double> beta_grid = {0.01, 0.03, 0.05, 0.1, 0.2};
  std::vector<double> gamma_grid = {0.2, 0.5, 1.0};
  /// Training cascades used for the fit (cap for speed).
  size_t fit_cascades = 60;
  uint64_t seed = 61;
};

/// \brief SIR simulator + rate fitting on the information network.
class SirModel {
 public:
  SirModel(const datagen::SyntheticWorld* world, SirOptions options)
      : world_(world),
        options_(options),
        beta_(options.default_beta),
        gamma_(options.default_gamma) {}

  /// Grid-searches (beta, gamma) maximizing macro-F1 of the infected set
  /// against true retweeters on training cascades.
  Status Fit(const core::RetweetTask& task);

  /// P(candidate infected) over Monte-Carlo simulations seeded at the
  /// root author.
  Vec ScoreCandidates(const core::RetweetTask& task,
                      const std::vector<core::RetweetCandidate>& candidates);

  /// The paper's evaluation regime: the model predicts an infected set
  /// over the *whole population* for each test cascade; macro-F1 is
  /// computed against the true retweeter sets over all users. With
  /// flooding rates both per-class F1 scores collapse (Table VI: 0.04).
  double FullPopulationMacroF1(const core::RetweetTask& task);

  double beta() const { return beta_; }
  double gamma() const { return gamma_; }

 private:
  /// One stochastic SIR run from `root`; returns the ever-infected set as
  /// a node mask.
  std::vector<char> Simulate(datagen::NodeId root, double beta, double gamma,
                             Rng* rng) const;

  const datagen::SyntheticWorld* world_;
  SirOptions options_;
  double beta_, gamma_;
};

}  // namespace retina::diffusion

#endif  // RETINA_DIFFUSION_SIR_H_
