// Simplified architecturally-faithful ports of the neural microscopic
// diffusion baselines of Section VII-C.
//
// All three learn per-user diffusion embeddings from training cascades and
// score a candidate v for a root author u as
//     sigma( a * <e_u, phi(v)> + b * s(u, v) + c )
// where phi and s encode exactly the context each original model can see:
//
//  - TopoLSTM [26]: builds dynamic DAGs from cascades, so propagation
//    structure is available: s = 1/(1 + shortest-path(u, v)), phi(v) = e_v.
//  - FOREST [27]: samples the global graph for structural context:
//    phi(v) = mean(e_v, sampled followee embeddings), same s as TopoLSTM.
//  - HIDAN [28]: uses no global graph; only node identity (temporal
//    attention degenerates when prediction starts at the root, which is the
//    regime Table VI evaluates): phi(v) = e_v, b frozen at 0.
//
// None of them sees user history, tweet content or exogenous news — the
// comparative handicap the paper's Table VI quantifies. The RL-based
// macroscopic component of FOREST and the full attention stack of HIDAN are
// out of scope (DESIGN.md documents the reductions).

#ifndef RETINA_DIFFUSION_NEURAL_BASELINES_H_
#define RETINA_DIFFUSION_NEURAL_BASELINES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/retweet_task.h"
#include "datagen/world.h"
#include "io/checkpoint.h"

namespace retina::diffusion {

enum class NeuralBaselineKind { kTopoLstm, kForest, kHidan };

const char* NeuralBaselineName(NeuralBaselineKind kind);

struct NeuralBaselineOptions {
  size_t embed_dim = 32;
  int epochs = 8;
  double learning_rate = 0.08;
  /// Followees sampled for FOREST's structural aggregation.
  size_t neighbor_samples = 8;
  uint64_t seed = 71;
};

/// \brief Embedding-based retweeter ranker.
class NeuralDiffusionBaseline {
 public:
  NeuralDiffusionBaseline(const datagen::SyntheticWorld* world,
                          NeuralBaselineKind kind,
                          NeuralBaselineOptions options);

  Status Fit(const core::RetweetTask& task);

  Vec ScoreCandidates(
      const core::RetweetTask& task,
      const std::vector<core::RetweetCandidate>& candidates) const;

  std::string Name() const { return NeuralBaselineName(kind_); }

  /// Writes everything ScoreCandidates reads (kind, embeddings, the
  /// calibration scalars a/b/c, and the FOREST neighbor-sample width)
  /// under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces the trained state with the one saved under `prefix`; the
  /// world pointer this instance was constructed with is kept, and the
  /// saved embedding table must match its user count.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  // phi(v): candidate representation (may aggregate neighbors).
  Vec CandidateVector(datagen::NodeId v) const;

  // Structural score s(u, v) from the path feature embedded in the
  // candidate's user feature vector.
  double StructScore(const core::RetweetTask& task,
                     const core::RetweetCandidate& cand) const;

  double Logit(const core::RetweetTask& task,
               const core::RetweetCandidate& cand) const;

  const datagen::SyntheticWorld* world_;
  NeuralBaselineKind kind_;
  NeuralBaselineOptions options_;

  Matrix embeddings_;  // n_users x embed_dim
  double a_ = 1.0, b_ = 1.0, c_ = 0.0;
};

}  // namespace retina::diffusion

#endif  // RETINA_DIFFUSION_NEURAL_BASELINES_H_
