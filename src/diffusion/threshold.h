// General Threshold model baseline (Kempe, Kleinberg & Tardos [40]).
//
// Each node draws a threshold uniformly at random; a node activates when
// the weighted fraction of its active followees exceeds the threshold.
// Scored as the Monte-Carlo activation frequency of each candidate when the
// cascade is seeded at the root author.

#ifndef RETINA_DIFFUSION_THRESHOLD_H_
#define RETINA_DIFFUSION_THRESHOLD_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/retweet_task.h"
#include "datagen/world.h"

namespace retina::diffusion {

struct ThresholdOptions {
  int simulations = 5;
  int max_rounds = 25;
  /// Influence scale used when Fit() is not called; high enough that the
  /// cascade floods (the regime of the paper's Table VI row).
  double default_influence = 4.0;
  /// Scales edge influence 1/followee_count; fit by grid search.
  std::vector<double> influence_grid = {0.5, 1.0, 2.0, 4.0};
  size_t fit_cascades = 60;
  uint64_t seed = 67;
};

/// \brief Linear-threshold cascade simulator with influence fitting.
class ThresholdModel {
 public:
  ThresholdModel(const datagen::SyntheticWorld* world,
                 ThresholdOptions options)
      : world_(world),
        options_(options),
        influence_(options.default_influence) {}

  /// Fits the influence scale on training cascades (macro-F1 objective).
  Status Fit(const core::RetweetTask& task);

  /// P(candidate activated) over Monte-Carlo simulations.
  Vec ScoreCandidates(const core::RetweetTask& task,
                      const std::vector<core::RetweetCandidate>& candidates);

  /// Full-population macro-F1 (see SirModel::FullPopulationMacroF1).
  double FullPopulationMacroF1(const core::RetweetTask& task);

  double influence() const { return influence_; }

 private:
  std::vector<char> Simulate(datagen::NodeId root, double influence,
                             Rng* rng) const;

  const datagen::SyntheticWorld* world_;
  ThresholdOptions options_;
  double influence_;
};

}  // namespace retina::diffusion

#endif  // RETINA_DIFFUSION_THRESHOLD_H_
