#include "diffusion/neural_baselines.h"

#include <algorithm>
#include <cmath>

namespace retina::diffusion {

const char* NeuralBaselineName(NeuralBaselineKind kind) {
  switch (kind) {
    case NeuralBaselineKind::kTopoLstm:
      return "TopoLSTM";
    case NeuralBaselineKind::kForest:
      return "FOREST";
    case NeuralBaselineKind::kHidan:
      return "HIDAN";
  }
  return "?";
}

NeuralDiffusionBaseline::NeuralDiffusionBaseline(
    const datagen::SyntheticWorld* world, NeuralBaselineKind kind,
    NeuralBaselineOptions options)
    : world_(world), kind_(kind), options_(options) {
  Rng rng(options_.seed);
  embeddings_ = Matrix(world->NumUsers(), options_.embed_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(options_.embed_dim));
  for (double& v : embeddings_.data()) v = rng.Normal(0.0, scale);
  if (kind_ == NeuralBaselineKind::kHidan) b_ = 0.0;  // no graph access
}

Vec NeuralDiffusionBaseline::CandidateVector(datagen::NodeId v) const {
  Vec phi = embeddings_.RowVec(v);
  if (kind_ == NeuralBaselineKind::kForest) {
    // Structural aggregation: mean over a deterministic sample of
    // followees (the users v receives content from).
    const auto followees = world_->network().Followees(v);
    if (!followees.empty()) {
      Vec agg(phi.size(), 0.0);
      const size_t take = std::min(options_.neighbor_samples,
                                   followees.size());
      for (size_t i = 0; i < take; ++i) {
        const size_t stride = followees.size() / take;
        const datagen::NodeId u = followees[i * stride];
        Axpy(1.0, embeddings_.RowVec(u), &agg);
      }
      Scale(1.0 / static_cast<double>(take), &agg);
      for (size_t i = 0; i < phi.size(); ++i) {
        phi[i] = 0.5 * (phi[i] + agg[i]);
      }
    }
  }
  return phi;
}

double NeuralDiffusionBaseline::StructScore(
    const core::RetweetTask& task,
    const core::RetweetCandidate& cand) const {
  if (kind_ == NeuralBaselineKind::kHidan) return 0.0;
  // The path feature is the penultimate entry of the user feature vector
  // (see FeatureExtractor::RetweetUserFeatures).
  const double path = cand.user_features[task.user_dim - 2];
  return 1.0 / (1.0 + path);
}

double NeuralDiffusionBaseline::Logit(
    const core::RetweetTask& task,
    const core::RetweetCandidate& cand) const {
  const datagen::NodeId root =
      world_->tweets()[task.tweets[cand.tweet_pos].tweet_id].author;
  const Vec phi = CandidateVector(cand.user);
  const Vec eu = embeddings_.RowVec(root);
  return a_ * Dot(eu, phi) + b_ * StructScore(task, cand) + c_;
}

Status NeuralDiffusionBaseline::Fit(const core::RetweetTask& task) {
  if (task.train.empty()) {
    return Status::FailedPrecondition("NeuralDiffusionBaseline: empty train");
  }
  Rng rng(options_.seed ^ 0x1234ULL);
  std::vector<size_t> order(task.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const double lr = options_.learning_rate /
                      (1.0 + 0.3 * static_cast<double>(epoch));
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const core::RetweetCandidate& cand = task.train[idx];
      const datagen::NodeId root =
          world_->tweets()[task.tweets[cand.tweet_pos].tweet_id].author;
      const Vec phi = CandidateVector(cand.user);
      const Vec eu = embeddings_.RowVec(root);
      const double dot = Dot(eu, phi);
      const double s = StructScore(task, cand);
      const double z = a_ * dot + b_ * s + c_;
      const double err = Sigmoid(z) - static_cast<double>(cand.label);

      // Scalar parameters.
      a_ -= lr * err * dot;
      if (kind_ != NeuralBaselineKind::kHidan) b_ -= lr * err * s;
      c_ -= lr * err;

      // Embedding updates (candidate's own embedding carries weight 1 for
      // TopoLSTM/HIDAN, 1/2 under FOREST's aggregation).
      const double phi_self_w =
          kind_ == NeuralBaselineKind::kForest ? 0.5 : 1.0;
      double* ev = embeddings_.Row(cand.user);
      double* eru = embeddings_.Row(root);
      const double g = lr * err * a_;
      for (size_t k = 0; k < options_.embed_dim; ++k) {
        const double du = g * phi[k];
        const double dv = g * eu[k] * phi_self_w;
        eru[k] -= du;
        ev[k] -= dv;
      }
    }
  }
  return Status::OK();
}

Vec NeuralDiffusionBaseline::ScoreCandidates(
    const core::RetweetTask& task,
    const std::vector<core::RetweetCandidate>& candidates) const {
  Vec scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = Sigmoid(Logit(task, candidates[i]));
  }
  return scores;
}

void NeuralDiffusionBaseline::SaveTo(io::Checkpoint* ckpt,
                                     const std::string& prefix) const {
  ckpt->PutI64(prefix + "kind", static_cast<int64_t>(kind_));
  ckpt->PutI64(prefix + "neighbor_samples",
               static_cast<int64_t>(options_.neighbor_samples));
  ckpt->PutTensor(prefix + "embeddings", embeddings_);
  ckpt->PutF64(prefix + "a", a_);
  ckpt->PutF64(prefix + "b", b_);
  ckpt->PutF64(prefix + "c", c_);
}

Status NeuralDiffusionBaseline::LoadFrom(const io::Checkpoint& ckpt,
                                         const std::string& prefix) {
  int64_t kind = 0, neighbor_samples = 0;
  Matrix embeddings;
  double a = 0.0, b = 0.0, c = 0.0;
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "kind", &kind));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "neighbor_samples", &neighbor_samples));
  RETINA_RETURN_NOT_OK(ckpt.GetTensor(prefix + "embeddings", &embeddings));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "a", &a));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "b", &b));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "c", &c));
  if (kind < static_cast<int64_t>(NeuralBaselineKind::kTopoLstm) ||
      kind > static_cast<int64_t>(NeuralBaselineKind::kHidan)) {
    return Status::InvalidArgument("unknown neural baseline kind");
  }
  if (neighbor_samples < 0) {
    return Status::InvalidArgument("negative neighbor sample count");
  }
  if (embeddings.rows() != world_->NumUsers() || embeddings.cols() == 0) {
    return Status::InvalidArgument(
        "neural baseline embedding table does not match the world's users");
  }
  kind_ = static_cast<NeuralBaselineKind>(kind);
  options_.neighbor_samples = static_cast<size_t>(neighbor_samples);
  options_.embed_dim = embeddings.cols();
  embeddings_ = std::move(embeddings);
  a_ = a;
  b_ = b;
  c_ = c;
  return Status::OK();
}

}  // namespace retina::diffusion
