#include "diffusion/sir.h"

#include <algorithm>

#include "ml/metrics.h"

namespace retina::diffusion {

std::vector<char> SirModel::Simulate(datagen::NodeId root, double beta,
                                     double gamma, Rng* rng) const {
  const auto& net = world_->network();
  std::vector<char> ever_infected(net.NumNodes(), 0);
  std::vector<datagen::NodeId> active{root};
  ever_infected[root] = 1;
  for (int step = 0; step < options_.max_steps && !active.empty(); ++step) {
    std::vector<datagen::NodeId> next;
    for (datagen::NodeId u : active) {
      for (datagen::NodeId v : net.Followers(u)) {
        if (ever_infected[v]) continue;
        if (rng->Bernoulli(beta)) {
          ever_infected[v] = 1;
          next.push_back(v);
        }
      }
      // Recovery: an infected node stays contagious with prob 1-gamma.
      if (!rng->Bernoulli(gamma)) next.push_back(u);
    }
    active = std::move(next);
  }
  return ever_infected;
}

Status SirModel::Fit(const core::RetweetTask& task) {
  if (task.train.empty()) {
    return Status::FailedPrecondition("SirModel::Fit: empty train split");
  }
  Rng rng(options_.seed);
  // Use the first fit_cascades distinct train tweets.
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t i = 0; i < task.train.size();) {
    size_t j = i + 1;
    while (j < task.train.size() &&
           task.train[j].tweet_pos == task.train[i].tweet_pos) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
    if (groups.size() >= options_.fit_cascades) break;
  }

  double best_f1 = -1.0;
  for (double beta : options_.beta_grid) {
    for (double gamma : options_.gamma_grid) {
      std::vector<int> y_true, y_pred;
      for (const auto& [begin, end] : groups) {
        const auto& ctx = task.tweets[task.train[begin].tweet_pos];
        const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
        const std::vector<char> infected =
            Simulate(root, beta, gamma, &rng);
        for (size_t s = begin; s < end; ++s) {
          y_true.push_back(task.train[s].label);
          y_pred.push_back(infected[task.train[s].user] ? 1 : 0);
        }
      }
      const double f1 = ml::MacroF1(y_true, y_pred);
      if (f1 > best_f1) {
        best_f1 = f1;
        beta_ = beta;
        gamma_ = gamma;
      }
    }
  }
  return Status::OK();
}

Vec SirModel::ScoreCandidates(
    const core::RetweetTask& task,
    const std::vector<core::RetweetCandidate>& candidates) {
  Rng rng(options_.seed ^ 0xABCDULL);
  Vec scores(candidates.size(), 0.0);
  // Group by tweet so each simulation batch is reused for its candidates.
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    const auto& ctx = task.tweets[candidates[i].tweet_pos];
    const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
    for (int sim = 0; sim < options_.simulations; ++sim) {
      const std::vector<char> infected = Simulate(root, beta_, gamma_, &rng);
      for (size_t s = i; s < j; ++s) {
        if (infected[candidates[s].user]) scores[s] += 1.0;
      }
    }
    for (size_t s = i; s < j; ++s) {
      scores[s] /= static_cast<double>(options_.simulations);
    }
    i = j;
  }
  return scores;
}

double SirModel::FullPopulationMacroF1(const core::RetweetTask& task) {
  Rng rng(options_.seed ^ 0xF00DULL);
  // Distinct test cascades.
  std::vector<size_t> tweet_positions;
  for (const auto& cand : task.test) {
    if (tweet_positions.empty() || tweet_positions.back() != cand.tweet_pos) {
      tweet_positions.push_back(cand.tweet_pos);
    }
  }
  std::vector<int> y_true, y_pred;
  const size_t n_users = world_->NumUsers();
  for (size_t pos : tweet_positions) {
    const size_t tweet_id = task.tweets[pos].tweet_id;
    const datagen::NodeId root = world_->tweets()[tweet_id].author;
    const std::vector<char> infected = Simulate(root, beta_, gamma_, &rng);
    std::vector<char> retweeted(n_users, 0);
    for (const auto& rt : world_->cascades()[tweet_id].retweets) {
      retweeted[rt.user] = 1;
    }
    for (size_t u = 0; u < n_users; ++u) {
      if (u == root) continue;
      y_true.push_back(retweeted[u]);
      y_pred.push_back(infected[u]);
    }
  }
  return ml::MacroF1(y_true, y_pred);
}

}  // namespace retina::diffusion
