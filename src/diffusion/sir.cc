#include "diffusion/sir.h"

#include <algorithm>

#include "common/obs.h"
#include "common/parallel.h"
#include "ml/metrics.h"

namespace retina::diffusion {

std::vector<char> SirModel::Simulate(datagen::NodeId root, double beta,
                                     double gamma, Rng* rng) const {
  const auto& net = world_->network();
  std::vector<char> ever_infected(net.NumNodes(), 0);
  std::vector<datagen::NodeId> active{root};
  ever_infected[root] = 1;
  for (int step = 0; step < options_.max_steps && !active.empty(); ++step) {
    std::vector<datagen::NodeId> next;
    for (datagen::NodeId u : active) {
      for (datagen::NodeId v : net.Followers(u)) {
        if (ever_infected[v]) continue;
        if (rng->Bernoulli(beta)) {
          ever_infected[v] = 1;
          next.push_back(v);
        }
      }
      // Recovery: an infected node stays contagious with prob 1-gamma.
      if (!rng->Bernoulli(gamma)) next.push_back(u);
    }
    active = std::move(next);
  }
  if (obs::Enabled()) {
    static obs::Counter* sims =
        obs::Registry::Global().GetCounter("diffusion.sir.simulations");
    static obs::Counter* infected =
        obs::Registry::Global().GetCounter("diffusion.sir.infected_nodes");
    sims->Add(1);
    infected->Add(static_cast<uint64_t>(
        std::count(ever_infected.begin(), ever_infected.end(), char{1})));
  }
  return ever_infected;
}

Status SirModel::Fit(const core::RetweetTask& task) {
  if (task.train.empty()) {
    return Status::FailedPrecondition("SirModel::Fit: empty train split");
  }
  // Use the first fit_cascades distinct train tweets.
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t i = 0; i < task.train.size();) {
    size_t j = i + 1;
    while (j < task.train.size() &&
           task.train[j].tweet_pos == task.train[i].tweet_pos) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
    if (groups.size() >= options_.fit_cascades) break;
  }

  double best_f1 = -1.0;
  size_t grid_point = 0;
  for (double beta : options_.beta_grid) {
    for (double gamma : options_.gamma_grid) {
      // Each (grid point, cascade) flood draws from its own seed-derived
      // stream, so the grid search parallelizes over cascades without the
      // thread count perturbing any simulation.
      std::vector<std::vector<int>> preds(groups.size());
      par::ParallelFor(groups.size(), 1, [&](size_t g) {
        const auto& [begin, end] = groups[g];
        const auto& ctx = task.tweets[task.train[begin].tweet_pos];
        const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
        Rng sim_rng =
            Rng::Stream(options_.seed, grid_point * groups.size() + g);
        const std::vector<char> infected =
            Simulate(root, beta, gamma, &sim_rng);
        preds[g].reserve(end - begin);
        for (size_t s = begin; s < end; ++s) {
          preds[g].push_back(infected[task.train[s].user] ? 1 : 0);
        }
      });
      std::vector<int> y_true, y_pred;
      for (size_t g = 0; g < groups.size(); ++g) {
        const auto& [begin, end] = groups[g];
        for (size_t s = begin; s < end; ++s) {
          y_true.push_back(task.train[s].label);
        }
        y_pred.insert(y_pred.end(), preds[g].begin(), preds[g].end());
      }
      const double f1 = ml::MacroF1(y_true, y_pred);
      if (f1 > best_f1) {
        best_f1 = f1;
        beta_ = beta;
        gamma_ = gamma;
      }
      ++grid_point;
    }
  }
  return Status::OK();
}

Vec SirModel::ScoreCandidates(
    const core::RetweetTask& task,
    const std::vector<core::RetweetCandidate>& candidates) {
  const uint64_t base_seed = options_.seed ^ 0xABCDULL;
  Vec scores(candidates.size(), 0.0);
  const size_t n_sims = static_cast<size_t>(std::max(options_.simulations, 0));
  // Group by tweet so each simulation batch is reused for its candidates.
  size_t group_ordinal = 0;
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    const auto& ctx = task.tweets[candidates[i].tweet_pos];
    const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
    // Monte-Carlo floods run in parallel, one seed-derived stream per
    // (group, simulation); per-chunk hit counts reduce in chunk order.
    const Vec counts = par::ParallelReduce<Vec>(
        n_sims, 1, Vec(j - i, 0.0),
        [&](const par::ChunkRange& chunk) {
          Vec local(j - i, 0.0);
          for (size_t sim = chunk.begin; sim < chunk.end; ++sim) {
            Rng sim_rng =
                Rng::Stream(base_seed, group_ordinal * n_sims + sim);
            const std::vector<char> infected =
                Simulate(root, beta_, gamma_, &sim_rng);
            for (size_t s = i; s < j; ++s) {
              if (infected[candidates[s].user]) local[s - i] += 1.0;
            }
          }
          return local;
        },
        [](Vec acc, Vec chunk_counts) {
          Axpy(1.0, chunk_counts, &acc);
          return acc;
        });
    for (size_t s = i; s < j; ++s) {
      scores[s] = counts[s - i] / static_cast<double>(options_.simulations);
    }
    i = j;
    ++group_ordinal;
  }
  return scores;
}

double SirModel::FullPopulationMacroF1(const core::RetweetTask& task) {
  const uint64_t base_seed = options_.seed ^ 0xF00DULL;
  // Distinct test cascades.
  std::vector<size_t> tweet_positions;
  for (const auto& cand : task.test) {
    if (tweet_positions.empty() || tweet_positions.back() != cand.tweet_pos) {
      tweet_positions.push_back(cand.tweet_pos);
    }
  }
  const size_t n_users = world_->NumUsers();
  // Every cascade owns a disjoint slice of the flat label arrays; floods
  // draw from per-cascade streams, so the parallel fill is deterministic.
  const size_t stride = n_users == 0 ? 0 : n_users - 1;
  std::vector<int> y_true(tweet_positions.size() * stride, 0);
  std::vector<int> y_pred(tweet_positions.size() * stride, 0);
  par::ParallelFor(tweet_positions.size(), 1, [&](size_t k) {
    const size_t pos = tweet_positions[k];
    const size_t tweet_id = task.tweets[pos].tweet_id;
    const datagen::NodeId root = world_->tweets()[tweet_id].author;
    Rng sim_rng = Rng::Stream(base_seed, k);
    const std::vector<char> infected = Simulate(root, beta_, gamma_, &sim_rng);
    std::vector<char> retweeted(n_users, 0);
    for (const auto& rt : world_->cascades()[tweet_id].retweets) {
      retweeted[rt.user] = 1;
    }
    size_t out = k * stride;
    for (size_t u = 0; u < n_users; ++u) {
      if (u == root) continue;
      y_true[out] = retweeted[u];
      y_pred[out] = infected[u];
      ++out;
    }
  });
  return ml::MacroF1(y_true, y_pred);
}

}  // namespace retina::diffusion
