#include "diffusion/threshold.h"

#include <algorithm>

#include "ml/metrics.h"

namespace retina::diffusion {

std::vector<char> ThresholdModel::Simulate(datagen::NodeId root,
                                           double influence,
                                           Rng* rng) const {
  const auto& net = world_->network();
  const size_t n = net.NumNodes();
  std::vector<char> active(n, 0);
  active[root] = 1;
  std::vector<datagen::NodeId> frontier{root};

  // Thresholds drawn lazily per node, deterministic within one simulation.
  std::vector<double> threshold(n, -1.0);
  std::vector<double> pressure(n, 0.0);

  for (int round = 0; round < options_.max_rounds && !frontier.empty();
       ++round) {
    std::vector<datagen::NodeId> next;
    for (datagen::NodeId u : frontier) {
      for (datagen::NodeId v : net.Followers(u)) {
        if (active[v]) continue;
        const size_t followees = net.FolloweeCount(v);
        if (followees == 0) continue;
        pressure[v] += influence / static_cast<double>(followees);
        if (threshold[v] < 0.0) threshold[v] = rng->Uniform();
        if (pressure[v] >= threshold[v]) {
          active[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return active;
}

Status ThresholdModel::Fit(const core::RetweetTask& task) {
  if (task.train.empty()) {
    return Status::FailedPrecondition("ThresholdModel::Fit: empty train");
  }
  Rng rng(options_.seed);
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t i = 0; i < task.train.size();) {
    size_t j = i + 1;
    while (j < task.train.size() &&
           task.train[j].tweet_pos == task.train[i].tweet_pos) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
    if (groups.size() >= options_.fit_cascades) break;
  }

  double best_f1 = -1.0;
  for (double influence : options_.influence_grid) {
    std::vector<int> y_true, y_pred;
    for (const auto& [begin, end] : groups) {
      const auto& ctx = task.tweets[task.train[begin].tweet_pos];
      const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
      const std::vector<char> active = Simulate(root, influence, &rng);
      for (size_t s = begin; s < end; ++s) {
        y_true.push_back(task.train[s].label);
        y_pred.push_back(active[task.train[s].user] ? 1 : 0);
      }
    }
    const double f1 = ml::MacroF1(y_true, y_pred);
    if (f1 > best_f1) {
      best_f1 = f1;
      influence_ = influence;
    }
  }
  return Status::OK();
}

Vec ThresholdModel::ScoreCandidates(
    const core::RetweetTask& task,
    const std::vector<core::RetweetCandidate>& candidates) {
  Rng rng(options_.seed ^ 0x7777ULL);
  Vec scores(candidates.size(), 0.0);
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    const auto& ctx = task.tweets[candidates[i].tweet_pos];
    const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
    for (int sim = 0; sim < options_.simulations; ++sim) {
      const std::vector<char> active = Simulate(root, influence_, &rng);
      for (size_t s = i; s < j; ++s) {
        if (active[candidates[s].user]) scores[s] += 1.0;
      }
    }
    for (size_t s = i; s < j; ++s) {
      scores[s] /= static_cast<double>(options_.simulations);
    }
    i = j;
  }
  return scores;
}

double ThresholdModel::FullPopulationMacroF1(const core::RetweetTask& task) {
  Rng rng(options_.seed ^ 0xF00DULL);
  std::vector<size_t> tweet_positions;
  for (const auto& cand : task.test) {
    if (tweet_positions.empty() || tweet_positions.back() != cand.tweet_pos) {
      tweet_positions.push_back(cand.tweet_pos);
    }
  }
  std::vector<int> y_true, y_pred;
  const size_t n_users = world_->NumUsers();
  for (size_t pos : tweet_positions) {
    const size_t tweet_id = task.tweets[pos].tweet_id;
    const datagen::NodeId root = world_->tweets()[tweet_id].author;
    const std::vector<char> active = Simulate(root, influence_, &rng);
    std::vector<char> retweeted(n_users, 0);
    for (const auto& rt : world_->cascades()[tweet_id].retweets) {
      retweeted[rt.user] = 1;
    }
    for (size_t u = 0; u < n_users; ++u) {
      if (u == root) continue;
      y_true.push_back(retweeted[u]);
      y_pred.push_back(active[u]);
    }
  }
  return ml::MacroF1(y_true, y_pred);
}

}  // namespace retina::diffusion
