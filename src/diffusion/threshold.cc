#include "diffusion/threshold.h"

#include <algorithm>

#include "common/obs.h"
#include "common/parallel.h"
#include "ml/metrics.h"

namespace retina::diffusion {

std::vector<char> ThresholdModel::Simulate(datagen::NodeId root,
                                           double influence,
                                           Rng* rng) const {
  const auto& net = world_->network();
  const size_t n = net.NumNodes();
  std::vector<char> active(n, 0);
  active[root] = 1;
  std::vector<datagen::NodeId> frontier{root};

  // Thresholds drawn lazily per node, deterministic within one simulation.
  std::vector<double> threshold(n, -1.0);
  std::vector<double> pressure(n, 0.0);

  for (int round = 0; round < options_.max_rounds && !frontier.empty();
       ++round) {
    std::vector<datagen::NodeId> next;
    for (datagen::NodeId u : frontier) {
      for (datagen::NodeId v : net.Followers(u)) {
        if (active[v]) continue;
        const size_t followees = net.FolloweeCount(v);
        if (followees == 0) continue;
        pressure[v] += influence / static_cast<double>(followees);
        if (threshold[v] < 0.0) threshold[v] = rng->Uniform();
        if (pressure[v] >= threshold[v]) {
          active[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  if (obs::Enabled()) {
    static obs::Counter* sims =
        obs::Registry::Global().GetCounter("diffusion.threshold.simulations");
    static obs::Counter* activated =
        obs::Registry::Global().GetCounter("diffusion.threshold.active_nodes");
    sims->Add(1);
    activated->Add(static_cast<uint64_t>(
        std::count(active.begin(), active.end(), char{1})));
  }
  return active;
}

Status ThresholdModel::Fit(const core::RetweetTask& task) {
  if (task.train.empty()) {
    return Status::FailedPrecondition("ThresholdModel::Fit: empty train");
  }
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t i = 0; i < task.train.size();) {
    size_t j = i + 1;
    while (j < task.train.size() &&
           task.train[j].tweet_pos == task.train[i].tweet_pos) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
    if (groups.size() >= options_.fit_cascades) break;
  }

  double best_f1 = -1.0;
  size_t grid_point = 0;
  for (double influence : options_.influence_grid) {
    // Per-(grid point, cascade) streams keep the parallel grid search
    // independent of the thread count.
    std::vector<std::vector<int>> preds(groups.size());
    par::ParallelFor(groups.size(), 1, [&](size_t g) {
      const auto& [begin, end] = groups[g];
      const auto& ctx = task.tweets[task.train[begin].tweet_pos];
      const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
      Rng sim_rng =
          Rng::Stream(options_.seed, grid_point * groups.size() + g);
      const std::vector<char> active = Simulate(root, influence, &sim_rng);
      preds[g].reserve(end - begin);
      for (size_t s = begin; s < end; ++s) {
        preds[g].push_back(active[task.train[s].user] ? 1 : 0);
      }
    });
    std::vector<int> y_true, y_pred;
    for (size_t g = 0; g < groups.size(); ++g) {
      const auto& [begin, end] = groups[g];
      for (size_t s = begin; s < end; ++s) {
        y_true.push_back(task.train[s].label);
      }
      y_pred.insert(y_pred.end(), preds[g].begin(), preds[g].end());
    }
    const double f1 = ml::MacroF1(y_true, y_pred);
    if (f1 > best_f1) {
      best_f1 = f1;
      influence_ = influence;
    }
    ++grid_point;
  }
  return Status::OK();
}

Vec ThresholdModel::ScoreCandidates(
    const core::RetweetTask& task,
    const std::vector<core::RetweetCandidate>& candidates) {
  const uint64_t base_seed = options_.seed ^ 0x7777ULL;
  Vec scores(candidates.size(), 0.0);
  const size_t n_sims = static_cast<size_t>(std::max(options_.simulations, 0));
  size_t group_ordinal = 0;
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    const auto& ctx = task.tweets[candidates[i].tweet_pos];
    const datagen::NodeId root = world_->tweets()[ctx.tweet_id].author;
    // Parallel Monte-Carlo floods; per-chunk activation counts reduce in
    // chunk order (see sir.cc for the stream-derivation convention).
    const Vec counts = par::ParallelReduce<Vec>(
        n_sims, 1, Vec(j - i, 0.0),
        [&](const par::ChunkRange& chunk) {
          Vec local(j - i, 0.0);
          for (size_t sim = chunk.begin; sim < chunk.end; ++sim) {
            Rng sim_rng =
                Rng::Stream(base_seed, group_ordinal * n_sims + sim);
            const std::vector<char> active =
                Simulate(root, influence_, &sim_rng);
            for (size_t s = i; s < j; ++s) {
              if (active[candidates[s].user]) local[s - i] += 1.0;
            }
          }
          return local;
        },
        [](Vec acc, Vec chunk_counts) {
          Axpy(1.0, chunk_counts, &acc);
          return acc;
        });
    for (size_t s = i; s < j; ++s) {
      scores[s] = counts[s - i] / static_cast<double>(options_.simulations);
    }
    i = j;
    ++group_ordinal;
  }
  return scores;
}

double ThresholdModel::FullPopulationMacroF1(const core::RetweetTask& task) {
  const uint64_t base_seed = options_.seed ^ 0xF00DULL;
  std::vector<size_t> tweet_positions;
  for (const auto& cand : task.test) {
    if (tweet_positions.empty() || tweet_positions.back() != cand.tweet_pos) {
      tweet_positions.push_back(cand.tweet_pos);
    }
  }
  const size_t n_users = world_->NumUsers();
  const size_t stride = n_users == 0 ? 0 : n_users - 1;
  std::vector<int> y_true(tweet_positions.size() * stride, 0);
  std::vector<int> y_pred(tweet_positions.size() * stride, 0);
  par::ParallelFor(tweet_positions.size(), 1, [&](size_t k) {
    const size_t pos = tweet_positions[k];
    const size_t tweet_id = task.tweets[pos].tweet_id;
    const datagen::NodeId root = world_->tweets()[tweet_id].author;
    Rng sim_rng = Rng::Stream(base_seed, k);
    const std::vector<char> active = Simulate(root, influence_, &sim_rng);
    std::vector<char> retweeted(n_users, 0);
    for (const auto& rt : world_->cascades()[tweet_id].retweets) {
      retweeted[rt.user] = 1;
    }
    size_t out = k * stride;
    for (size_t u = 0; u < n_users; ++u) {
      if (u == root) continue;
      y_true[out] = retweeted[u];
      y_pred[out] = active[u];
      ++out;
    }
  });
  return ml::MacroF1(y_true, y_pred);
}

}  // namespace retina::diffusion
