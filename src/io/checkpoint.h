// Versioned binary checkpoint container.
//
// A Checkpoint is an in-memory table of named, typed entries (tensors,
// scalars, strings, integer lists) that serializes to a single file:
//
//   offset  size  field
//   0       8     magic "RETINAc1"
//   8       4     format version (u32, little-endian)
//   12      1     endianness tag (1 = little-endian payload)
//   13      3     reserved (zero)
//   16      8     entry count (u64)
//   24      ...   entries, each:
//                   u32  name length, then name bytes (UTF-8, no NUL)
//                   u8   type tag (EntryType)
//                   ...  typed payload (see checkpoint.cc)
//   end-8   8     FNV-1a 64 checksum of every preceding byte
//
// All integers are little-endian; doubles are stored as their IEEE-754
// bit pattern in a little-endian u64, so a save→load round trip is
// bit-exact. ReadFile returns a Status error — never crashes, never
// yields silent garbage — on wrong magic, unsupported version,
// endianness mismatch, truncation, or checksum failure.

#ifndef RETINA_IO_CHECKPOINT_H_
#define RETINA_IO_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"

namespace retina::io {

inline constexpr char kCheckpointMagic[8] = {'R', 'E', 'T', 'I',
                                             'N', 'A', 'c', '1'};
inline constexpr uint32_t kCheckpointVersion = 1;

/// Payload type of one named entry.
enum class EntryType : uint8_t {
  kTensor = 1,      // u64 rows, u64 cols, rows*cols f64
  kI64List = 2,     // u64 count, count i64
  kString = 3,      // u64 length, bytes
  kStringList = 4,  // u64 count, count * (u64 length, bytes)
  kF64 = 5,         // one f64
  kI64 = 6,         // one i64
};

const char* EntryTypeName(EntryType type);

/// \brief Named typed table of model state, save/load bit-exactly.
///
/// Put* overwrite on duplicate names. Get* return a Status error if the
/// name is missing or holds a different type. Vec entries are stored as
/// 1×n tensors, so GetVec accepts any tensor and flattens it.
class Checkpoint {
 public:
  void PutTensor(const std::string& name, const Matrix& value);
  void PutVec(const std::string& name, const Vec& value);
  void PutI64List(const std::string& name, std::vector<int64_t> value);
  void PutString(const std::string& name, std::string value);
  void PutStringList(const std::string& name,
                     std::vector<std::string> value);
  void PutF64(const std::string& name, double value);
  void PutI64(const std::string& name, int64_t value);
  void PutBool(const std::string& name, bool value) {
    PutI64(name, value ? 1 : 0);
  }

  Status GetTensor(const std::string& name, Matrix* out) const;
  Status GetVec(const std::string& name, Vec* out) const;
  Status GetI64List(const std::string& name,
                    std::vector<int64_t>* out) const;
  Status GetString(const std::string& name, std::string* out) const;
  Status GetStringList(const std::string& name,
                       std::vector<std::string>* out) const;
  Status GetF64(const std::string& name, double* out) const;
  Status GetI64(const std::string& name, int64_t* out) const;
  Status GetBool(const std::string& name, bool* out) const;

  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }
  size_t NumEntries() const { return entries_.size(); }
  /// All entry names in lexicographic order.
  std::vector<std::string> Names() const;

  /// Serializes the table to `path` (atomically: temp file + rename).
  Status WriteFile(const std::string& path) const;

  /// Parses a checkpoint file; validates magic, version, endianness tag,
  /// entry framing, and the trailing checksum before returning.
  static Result<Checkpoint> ReadFile(const std::string& path);

  /// In-memory (de)serialization used by WriteFile/ReadFile; exposed so
  /// tests can corrupt bytes deliberately.
  std::string SerializeToBytes() const;
  static Result<Checkpoint> DeserializeFromBytes(const std::string& bytes);

 private:
  struct Entry {
    EntryType type = EntryType::kTensor;
    Matrix tensor;                    // kTensor
    std::vector<int64_t> i64s;        // kI64List
    std::string str;                  // kString
    std::vector<std::string> strs;    // kStringList
    double f64 = 0.0;                 // kF64
    int64_t i64 = 0;                  // kI64
  };

  const Entry* FindTyped(const std::string& name, EntryType type,
                         Status* error) const;

  // Ordered map: serialization order (and thus file bytes) depend only on
  // entry names, not on insertion history.
  std::map<std::string, Entry> entries_;
};

}  // namespace retina::io

#endif  // RETINA_IO_CHECKPOINT_H_
