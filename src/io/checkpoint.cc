#include "io/checkpoint.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace retina::io {
namespace {

// FNV-1a 64-bit over a byte range.
uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendBytes(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

/// Bounds-checked little-endian reader over a byte string.
class Reader {
 public:
  Reader(const std::string& bytes, size_t pos, size_t end)
      : bytes_(bytes), pos_(pos), end_(end) {}

  size_t pos() const { return pos_; }

  Status ReadU8(uint8_t* out) {
    if (pos_ + 1 > end_) return Truncated();
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (pos_ + 4 > end_) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (pos_ + 8 > end_) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status ReadI64(int64_t* out) {
    uint64_t v;
    RETINA_RETURN_NOT_OK(ReadU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status ReadF64(double* out) {
    uint64_t bits;
    RETINA_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > end_ - pos_) return Truncated();
    pos_ += n;
    return Status::OK();
  }

  /// Reads a u64 length prefix followed by that many raw bytes.
  Status ReadBytes(std::string* out) {
    uint64_t n = 0;
    RETINA_RETURN_NOT_OK(ReadU64(&n));
    if (n > end_ - pos_) return Truncated();
    out->assign(bytes_, pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Guards multiplication-based allocations against hostile sizes.
  Status CheckRoom(uint64_t count, uint64_t elem_size) {
    const uint64_t room = end_ - pos_;
    if (elem_size != 0 && count > room / elem_size) return Truncated();
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::IOError("corrupt checkpoint: truncated entry data");
  }

  const std::string& bytes_;
  size_t pos_;
  size_t end_;
};

}  // namespace

const char* EntryTypeName(EntryType type) {
  switch (type) {
    case EntryType::kTensor: return "tensor";
    case EntryType::kI64List: return "i64-list";
    case EntryType::kString: return "string";
    case EntryType::kStringList: return "string-list";
    case EntryType::kF64: return "f64";
    case EntryType::kI64: return "i64";
  }
  return "unknown";
}

void Checkpoint::PutTensor(const std::string& name, const Matrix& value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kTensor;
  e.tensor = value;
}

void Checkpoint::PutVec(const std::string& name, const Vec& value) {
  Matrix m(1, value.size());
  m.data() = value;
  PutTensor(name, m);
}

void Checkpoint::PutI64List(const std::string& name,
                            std::vector<int64_t> value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kI64List;
  e.i64s = std::move(value);
}

void Checkpoint::PutString(const std::string& name, std::string value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kString;
  e.str = std::move(value);
}

void Checkpoint::PutStringList(const std::string& name,
                               std::vector<std::string> value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kStringList;
  e.strs = std::move(value);
}

void Checkpoint::PutF64(const std::string& name, double value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kF64;
  e.f64 = value;
}

void Checkpoint::PutI64(const std::string& name, int64_t value) {
  Entry& e = entries_[name];
  e = Entry{};
  e.type = EntryType::kI64;
  e.i64 = value;
}

const Checkpoint::Entry* Checkpoint::FindTyped(const std::string& name,
                                               EntryType type,
                                               Status* error) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    *error = Status::NotFound("checkpoint entry not found: " + name);
    return nullptr;
  }
  if (it->second.type != type) {
    *error = Status::InvalidArgument(
        "checkpoint entry " + name + " is " +
        EntryTypeName(it->second.type) + ", expected " + EntryTypeName(type));
    return nullptr;
  }
  return &it->second;
}

Status Checkpoint::GetTensor(const std::string& name, Matrix* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kTensor, &error);
  if (e == nullptr) return error;
  *out = e->tensor;
  return Status::OK();
}

Status Checkpoint::GetVec(const std::string& name, Vec* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kTensor, &error);
  if (e == nullptr) return error;
  *out = e->tensor.data();
  return Status::OK();
}

Status Checkpoint::GetI64List(const std::string& name,
                              std::vector<int64_t>* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kI64List, &error);
  if (e == nullptr) return error;
  *out = e->i64s;
  return Status::OK();
}

Status Checkpoint::GetString(const std::string& name,
                             std::string* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kString, &error);
  if (e == nullptr) return error;
  *out = e->str;
  return Status::OK();
}

Status Checkpoint::GetStringList(const std::string& name,
                                 std::vector<std::string>* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kStringList, &error);
  if (e == nullptr) return error;
  *out = e->strs;
  return Status::OK();
}

Status Checkpoint::GetF64(const std::string& name, double* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kF64, &error);
  if (e == nullptr) return error;
  *out = e->f64;
  return Status::OK();
}

Status Checkpoint::GetI64(const std::string& name, int64_t* out) const {
  Status error;
  const Entry* e = FindTyped(name, EntryType::kI64, &error);
  if (e == nullptr) return error;
  *out = e->i64;
  return Status::OK();
}

Status Checkpoint::GetBool(const std::string& name, bool* out) const {
  int64_t v = 0;
  RETINA_RETURN_NOT_OK(GetI64(name, &v));
  *out = v != 0;
  return Status::OK();
}

std::vector<std::string> Checkpoint::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::string Checkpoint::SerializeToBytes() const {
  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendU32(&out, kCheckpointVersion);
  AppendU8(&out, std::endian::native == std::endian::little ? 1 : 2);
  out.append(3, '\0');  // reserved
  AppendU64(&out, entries_.size());
  for (const auto& [name, e] : entries_) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    AppendU8(&out, static_cast<uint8_t>(e.type));
    switch (e.type) {
      case EntryType::kTensor:
        AppendU64(&out, e.tensor.rows());
        AppendU64(&out, e.tensor.cols());
        for (double v : e.tensor.data()) AppendF64(&out, v);
        break;
      case EntryType::kI64List:
        AppendU64(&out, e.i64s.size());
        for (int64_t v : e.i64s) AppendI64(&out, v);
        break;
      case EntryType::kString:
        AppendBytes(&out, e.str);
        break;
      case EntryType::kStringList:
        AppendU64(&out, e.strs.size());
        for (const std::string& s : e.strs) AppendBytes(&out, s);
        break;
      case EntryType::kF64:
        AppendF64(&out, e.f64);
        break;
      case EntryType::kI64:
        AppendI64(&out, e.i64);
        break;
    }
  }
  AppendU64(&out, Fnv1a(out.data(), out.size()));
  return out;
}

Result<Checkpoint> Checkpoint::DeserializeFromBytes(
    const std::string& bytes) {
  constexpr size_t kHeaderSize = 8 + 4 + 1 + 3 + 8;
  constexpr size_t kChecksumSize = 8;
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    return Status::IOError("corrupt checkpoint: file too small");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::IOError("corrupt checkpoint: bad magic");
  }

  const size_t body_end = bytes.size() - kChecksumSize;
  Reader reader(bytes, sizeof(kCheckpointMagic), bytes.size());
  uint32_t version = 0;
  RETINA_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::IOError("unsupported checkpoint version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kCheckpointVersion) + ")");
  }
  uint8_t endian_tag = 0;
  RETINA_RETURN_NOT_OK(reader.ReadU8(&endian_tag));
  const uint8_t host_tag =
      std::endian::native == std::endian::little ? 1 : 2;
  if (endian_tag != host_tag) {
    return Status::IOError(
        "checkpoint endianness mismatch: file tag " +
        std::to_string(endian_tag) + ", host tag " +
        std::to_string(host_tag));
  }

  {
    Reader tail(bytes, body_end, bytes.size());
    uint64_t stored = 0;
    RETINA_RETURN_NOT_OK(tail.ReadU64(&stored));
    const uint64_t actual = Fnv1a(bytes.data(), body_end);
    if (stored != actual) {
      return Status::IOError("corrupt checkpoint: checksum mismatch");
    }
  }

  Reader body(bytes, kHeaderSize - 8, body_end);
  uint64_t count = 0;
  RETINA_RETURN_NOT_OK(body.ReadU64(&count));
  Checkpoint ckpt;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    RETINA_RETURN_NOT_OK(body.ReadU32(&name_len));
    if (name_len > body_end - body.pos()) {
      return Status::IOError("corrupt checkpoint: truncated entry name");
    }
    const std::string name = bytes.substr(body.pos(), name_len);
    RETINA_RETURN_NOT_OK(body.Skip(name_len));
    uint8_t raw_type = 0;
    RETINA_RETURN_NOT_OK(body.ReadU8(&raw_type));
    Entry e;
    e.type = static_cast<EntryType>(raw_type);
    switch (e.type) {
      case EntryType::kTensor: {
        uint64_t rows = 0, cols = 0;
        RETINA_RETURN_NOT_OK(body.ReadU64(&rows));
        RETINA_RETURN_NOT_OK(body.ReadU64(&cols));
        if (rows != 0 && cols > UINT64_MAX / rows) {
          return Status::IOError("corrupt checkpoint: tensor too large");
        }
        RETINA_RETURN_NOT_OK(body.CheckRoom(rows * cols, 8));
        e.tensor = Matrix(rows, cols);
        for (double& v : e.tensor.data()) {
          RETINA_RETURN_NOT_OK(body.ReadF64(&v));
        }
        break;
      }
      case EntryType::kI64List: {
        uint64_t n = 0;
        RETINA_RETURN_NOT_OK(body.ReadU64(&n));
        RETINA_RETURN_NOT_OK(body.CheckRoom(n, 8));
        e.i64s.resize(n);
        for (int64_t& v : e.i64s) {
          RETINA_RETURN_NOT_OK(body.ReadI64(&v));
        }
        break;
      }
      case EntryType::kString:
        RETINA_RETURN_NOT_OK(body.ReadBytes(&e.str));
        break;
      case EntryType::kStringList: {
        uint64_t n = 0;
        RETINA_RETURN_NOT_OK(body.ReadU64(&n));
        RETINA_RETURN_NOT_OK(body.CheckRoom(n, 8));
        e.strs.resize(n);
        for (std::string& s : e.strs) {
          RETINA_RETURN_NOT_OK(body.ReadBytes(&s));
        }
        break;
      }
      case EntryType::kF64:
        RETINA_RETURN_NOT_OK(body.ReadF64(&e.f64));
        break;
      case EntryType::kI64:
        RETINA_RETURN_NOT_OK(body.ReadI64(&e.i64));
        break;
      default:
        return Status::IOError(
            "corrupt checkpoint: unknown entry type " +
            std::to_string(raw_type) + " for entry " + name);
    }
    ckpt.entries_[name] = std::move(e);
  }
  if (body.pos() != body_end) {
    return Status::IOError("corrupt checkpoint: trailing bytes after table");
  }
  return ckpt;
}

Status Checkpoint::WriteFile(const std::string& path) const {
  const std::string bytes = SerializeToBytes();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + tmp);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != bytes.size() || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<Checkpoint> Checkpoint::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open checkpoint: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error on checkpoint: " + path);
  }
  auto result = DeserializeFromBytes(bytes);
  if (!result.ok()) {
    return Status::IOError(result.status().message() + " (" + path + ")");
  }
  return result;
}

}  // namespace retina::io
