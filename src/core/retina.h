// RETINA — Retweeter Identifier Network with Exogenous Attention
// (Section V-B, Figure 4).
//
// Static mode (Figure 4b): the candidate feature X^{u_j} (user history +
// endogenous + peer + root-tweet content) is layer-normalized, passed
// through a feed-forward layer, concatenated with the exogenous attention
// output X^{T,N}, and a final feed-forward layer with sigmoid produces the
// retweet probability P^{u_j}.
//
// Dynamic mode (Figure 4c): the last feed-forward layer is replaced by a
// GRU unrolled over consecutive time intervals; each step emits the
// probability of the user retweeting inside that interval.
//
// The exogenous attention block is shared per tweet: because X^{T,N}
// depends only on the root tweet and the news stream, the trainer batches
// all candidates of one tweet together, computing attention once and
// accumulating its gradient across the batch (paper batch sizes: 16 static
// / 32 dynamic — one tweet's candidate set is the same order of magnitude).
//
// Ablation (†): use_exogenous=false removes the attention block, matching
// RETINA-S† / RETINA-D† in Table VI.

#ifndef RETINA_CORE_RETINA_H_
#define RETINA_CORE_RETINA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "core/retweet_task.h"
#include "io/checkpoint.h"
#include "nn/attention.h"
#include "nn/param_registry.h"
#include "nn/recurrent.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace retina::core {

struct RetinaOptions {
  /// hdim and hidden sizes (paper: 64 everywhere).
  size_t hidden = 64;
  /// Dynamic (GRU) vs static (feed-forward) head.
  bool dynamic = false;
  /// Exogenous attention on/off (off = the † ablation).
  bool use_exogenous = true;
  int epochs = 5;
  /// Optimizer: Adam (static best) or SGD lr=1e-2 (dynamic best).
  bool use_adam = true;
  double learning_rate = 1e-3;
  /// Class-imbalance constant lambda in w = lambda(log C - log C+)
  /// (paper: 2.0 static, 2.5 dynamic).
  double lambda = 2.0;
  /// Recurrent cell of the dynamic head. The paper settled on the GRU
  /// after trying a simple RNN (worse) and an LSTM (no gain) — see
  /// bench_ablation_recurrent.
  nn::RecurrentKind recurrent = nn::RecurrentKind::kGru;
  /// Tweet groups per optimizer step. 1 reproduces the paper's per-tweet
  /// stepping (parallelism then comes from splitting the group's candidate
  /// set); larger values macro-batch whole groups per step, which scales
  /// better but takes proportionally fewer optimizer steps per epoch.
  /// Either way gradients accumulate into per-chunk buffers that are
  /// reduced in chunk order, so results are bit-identical at any thread
  /// count (see DESIGN.md "Threading model").
  size_t batch_groups = 1;
  uint64_t seed = 42;
};

/// \brief The RETINA model (static or dynamic head).
class Retina {
 public:
  /// \param user_dim Dimensionality of X^{u_j} (user-side features).
  /// \param content_dim Dimensionality of root-tweet content features.
  /// \param embed_dim Doc2Vec dimensionality (attention inputs).
  Retina(size_t user_dim, size_t content_dim, size_t embed_dim,
         size_t num_intervals, RetinaOptions options);

  /// Trains on the task's train split.
  Status Train(const RetweetTask& task);

  /// Mean per-candidate training loss of each epoch of the last Train
  /// call. Chunk-ordered reduction makes the trajectory bit-identical at
  /// any thread count — the determinism regression tests pin this.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  /// Static retweet probability P^{u_j}.
  double PredictStatic(const TweetContext& ctx,
                       const Vec& user_features) const;

  /// Per-interval probabilities P^{u_j}_m (dynamic mode).
  Vec PredictDynamic(const TweetContext& ctx, const Vec& user_features) const;

  /// Batched dynamic inference over one tweet's candidate list: row i
  /// equals PredictDynamic(ctx, *user_features[i]) bit-for-bit. The
  /// attention and each candidate's ff1 row are computed once; the GRU
  /// unrolls per candidate in interval lockstep so the head layer runs as
  /// one GEMM per interval instead of one MatVec per (candidate,
  /// interval).
  Matrix PredictDynamicBatch(
      const TweetContext& ctx,
      const std::vector<const Vec*>& user_features) const;

  /// Batched scalar scores for one tweet's candidate list: entry i equals
  /// PredictScore(ctx, *user_features[i]) bit-for-bit. The attention
  /// forward is shared across the batch and the dense layers each run as a
  /// single blocked GEMM (see DESIGN.md "Batched serving").
  Vec ScoreBatch(const TweetContext& ctx,
                 const std::vector<const Vec*>& user_features) const;

  /// Arena-backed ScoreBatch over raw candidate feature rows (each
  /// `user_rows[i]` holds user_dim entries): scores[i] equals
  /// PredictScore(ctx, row i) bit-for-bit. Every temporary comes from
  /// `arena` — bumped, never reset here, so the caller owns the request
  /// epoch — and on a warm arena the static forward performs zero heap
  /// allocations. Dynamic mode falls back to the Matrix-based batched
  /// unroll, which still allocates.
  void ScoreBatchRows(const TweetContext& ctx, const double* const* user_rows,
                      size_t n, double* scores, ScratchArena* arena) const;

  /// Scalar score for ranking/classification: the static probability, or
  /// in dynamic mode 1 - prod_m(1 - P_m) (probability of retweeting in any
  /// interval).
  double PredictScore(const TweetContext& ctx, const Vec& user_features) const;

  /// Scores for a candidate list.
  Vec ScoreCandidates(const RetweetTask& task,
                      const std::vector<RetweetCandidate>& candidates) const;

  /// Dynamic-mode classification metrics computed per (candidate,
  /// interval) sample — the paper's evaluation unit for RETINA-D (its
  /// Table VI row reports P^{u_i}_j against per-interval ground truth).
  /// The weighted loss (Eq. 6) inflates the per-interval probabilities, so
  /// pass a `threshold` calibrated on the training split.
  BinaryEval EvaluatePerInterval(const RetweetTask& task,
                                 const std::vector<RetweetCandidate>& candidates,
                                 double threshold = 0.5) const;

  /// Grid-searches the per-interval decision threshold maximizing
  /// macro-F1 on `candidates` (use the train split).
  double CalibrateIntervalThreshold(
      const RetweetTask& task,
      const std::vector<RetweetCandidate>& candidates) const;

  /// Cumulative per-interval metrics: sample (candidate, j) asks "has the
  /// user retweeted by the end of interval j" (Eq. 2 integrates the
  /// retweet density over [t0, t0+Δt]); the prediction is
  /// 1 - prod_{k<=j}(1 - P_k). `threshold` from
  /// CalibrateCumulativeThreshold on the train split.
  BinaryEval EvaluateCumulative(const RetweetTask& task,
                                const std::vector<RetweetCandidate>& candidates,
                                double threshold = 0.5) const;

  double CalibrateCumulativeThreshold(
      const RetweetTask& task,
      const std::vector<RetweetCandidate>& candidates) const;

  const RetinaOptions& options() const { return options_; }
  size_t input_dim() const { return input_dim_; }

  /// Writes architecture (options + dimensions), every registered
  /// parameter, and the optimizer's dynamic state under `prefix`. A
  /// loaded model predicts — and continues training — bit-identically.
  Status Save(io::Checkpoint* ckpt,
              const std::string& prefix = "retina/") const;

  /// Rebuilds a model from Save output: architecture from the saved
  /// options, then parameters and optimizer state restored by name.
  static Result<std::unique_ptr<Retina>> Load(
      const io::Checkpoint& ckpt, const std::string& prefix = "retina/");

 private:
  // Per-chunk model replica for data-parallel gradient accumulation: each
  // work chunk trains against its own copy of the layers and the replica
  // gradients are reduced back into the master parameters in chunk order.
  struct Replica;

  // Forward pieces shared by train and predict. `exo` is the attended
  // exogenous vector for the sample's tweet (empty when disabled).
  Vec HiddenForward(const Vec& user_features, const Vec& content) const;

  // Batched HiddenForward: row i is HiddenForward(*user_features[i],
  // ctx.content) (pre-activation). LayerNorm stays per dense row — its
  // mean/variance must accumulate over every entry, zeros included, in
  // index order — then ff1 runs as one GEMM over the batch.
  Matrix HiddenForwardBatch(const TweetContext& ctx,
                            const std::vector<const Vec*>& user_features) const;

  // Per-interval probabilities for a batch of candidates whose ReLU'd ff1
  // rows are `h_relu`; row i matches the per-candidate unroll exactly.
  Matrix DynamicProbsBatch(const Matrix& h_relu, const Vec& exo) const;

  Vec StepInput(const Vec& hidden, const Vec& exo, size_t interval) const;

  // Forward + backward for one candidate against the given layers (master
  // or replica). Accumulates parameter gradients and the attention-output
  // gradient into `dexo`; returns the candidate's loss scaled by
  // `inv_batch`.
  double TrainCandidate(nn::Dense* ff1, nn::Dense* head,
                        nn::RecurrentCell* rnn, const RetweetCandidate& cand,
                        const TweetContext& ctx, const Vec& exo,
                        double inv_batch, const nn::WeightedBce& loss,
                        Vec* dexo) const;

  // Gradient accumulation + optimizer step for groups [g0, g1); returns
  // the batch's summed (inv_batch-scaled) loss.
  double TrainBatch(const RetweetTask& task,
                    const std::vector<std::pair<size_t, size_t>>& groups,
                    size_t g0, size_t g1, const nn::WeightedBce& loss);

  RetinaOptions options_;
  size_t input_dim_;
  size_t num_intervals_;
  std::vector<double> epoch_losses_;

  Rng init_rng_;
  std::unique_ptr<nn::Dense> ff1_;   // input -> hidden
  std::unique_ptr<nn::Dense> head_;  // concat -> 1 (static) / rnn out -> 1
  std::unique_ptr<nn::RecurrentCell> rnn_;  // dynamic only
  std::unique_ptr<nn::ExogenousAttention> attention_;
  // Named view over the live layers' tensors, in construction order
  // (ff1, attention, rnn, head) — the Glorot draw order and the
  // optimizer slot order. Entries point into the heap-allocated layers,
  // so they stay valid if the Retina object itself moves.
  nn::ParamRegistry registry_;
  std::unique_ptr<nn::Optimizer> optimizer_;
};

}  // namespace retina::core

#endif  // RETINA_CORE_RETINA_H_
