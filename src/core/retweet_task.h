// Retweeter-prediction task (Section V / VI-D, Table VI).
//
// Each qualifying root tweet (more than one retweet, full news coverage)
// yields a candidate set: its actual retweeters (positives) plus sampled
// inactive followers of the author (negative sampling, Section II). The
// split is by tweet (80:20) so no cascade leaks across train/test.

#ifndef RETINA_CORE_RETWEET_TASK_H_
#define RETINA_CORE_RETWEET_TASK_H_

#include <vector>

#include "common/status.h"
#include "core/feature_extractor.h"
#include "ml/metrics.h"

namespace retina::core {

struct RetweetTaskOptions {
  /// Tweets must have more than this many retweets (paper: > 1).
  size_t min_retweets = 2;
  /// Minimum news headlines before the tweet (paper: 60).
  size_t min_news = 60;
  /// Negative candidates sampled per tweet (inactive followers). A fixed
  /// count — rather than one proportional to the positives — keeps the
  /// per-tweet positive rate tied to the cascade's real size, so features
  /// that predict a tweet's virality (most importantly the exogenous news
  /// signal) carry measurable weight, as in the paper.
  size_t negatives_per_tweet = 16;
  /// Hard cap on candidates per tweet.
  size_t max_candidates = 48;
  /// Fraction of negatives drawn outside the follower set, exercising the
  /// "beyond organic diffusion" setting.
  double non_follower_negatives = 0.1;
  double test_fraction = 0.2;
  /// Interval edges (hours after the root tweet) for the dynamic task.
  std::vector<double> interval_edges = {0.0, 1.0,  3.0,   8.0,
                                        24.0, 72.0, 168.0, 336.0};
  uint64_t seed = 51;
};

/// Per-tweet context shared by all candidates of the tweet.
struct TweetContext {
  size_t tweet_id = 0;  ///< index into world.tweets()
  bool hateful = false;  ///< gold label of the root
  size_t cascade_size = 0;
  Vec content;         ///< tf-idf + lexicon features of the root tweet
  Vec embedding;       ///< Doc2Vec X^T (attention Query input)
  Matrix news_window;  ///< Doc2Vec X^N rows (attention Key/Value input)
  Vec news_tfidf;      ///< averaged news tf-idf (feature-engineered models)
};

/// One (tweet, candidate user) sample.
struct RetweetCandidate {
  size_t tweet_pos = 0;  ///< index into RetweetTask::tweets
  NodeId user = 0;
  int label = 0;
  /// Dynamic labels: one per interval (1 = retweeted in that interval).
  std::vector<int> interval_labels;
  Vec user_features;  ///< X^{u_j} (history + endogenous + peer)
};

/// Materialized task.
struct RetweetTask {
  std::vector<TweetContext> tweets;
  std::vector<RetweetCandidate> train;
  std::vector<RetweetCandidate> test;
  std::vector<double> interval_edges;
  size_t user_dim = 0;
  size_t content_dim = 0;
  size_t embed_dim = 0;

  size_t NumIntervals() const { return interval_edges.size() - 1; }
};

Result<RetweetTask> BuildRetweetTask(const FeatureExtractor& extractor,
                                     const RetweetTaskOptions& options);

/// Classification metrics over a candidate set given per-candidate scores.
struct BinaryEval {
  double macro_f1 = 0.0;
  double accuracy = 0.0;
  double auc = 0.0;
};
BinaryEval EvaluateBinary(const std::vector<RetweetCandidate>& candidates,
                          const Vec& scores);

/// Groups candidate scores into per-tweet ranking queries for MAP@k /
/// HITS@k. `hate_filter`: -1 = all tweets, 0 = non-hate roots only,
/// 1 = hateful roots only.
std::vector<ml::RankingQuery> MakeRankingQueries(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates, const Vec& scores,
    int hate_filter = -1);

}  // namespace retina::core

#endif  // RETINA_CORE_RETWEET_TASK_H_
