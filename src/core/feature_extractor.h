// Feature engineering of Sections IV and V-A.
//
// One FeatureExtractor is built per world: it fits the tf-idf vectorizers
// (user-history, news, root-tweet), trains the shared Doc2Vec embedding on
// tweets+headlines, and caches per-user history blocks. The extractor then
// serves:
//   - hate-generation feature vectors f_1(S_en, S_ex, H_it, T)  (Eq. 1)
//   - retweet-prediction user vectors including peer signals     (Eq. 2)
//   - attention inputs: tweet Doc2Vec query + news Doc2Vec windows.
//
// History labels seen by the features are the *machine-annotated* view
// (gold labels with a configurable flip noise), matching the paper's use of
// the fine-tuned detector to label activity histories.

#ifndef RETINA_CORE_FEATURE_EXTRACTOR_H_
#define RETINA_CORE_FEATURE_EXTRACTOR_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sparse_vec.h"
#include "common/status.h"
#include "common/vec.h"
#include "datagen/world.h"
#include "io/checkpoint.h"
#include "text/doc2vec.h"
#include "text/tfidf.h"

namespace retina::core {

using datagen::NodeId;

/// BFS depth cutoff used for the peer shortest-path feature; distances
/// beyond it are encoded as kPeerPathCutoff + 1.
inline constexpr int kPeerPathCutoff = 4;

/// Feature-group mask for the Table V ablations.
struct FeatureMask {
  bool history = true;   ///< H_{i,t}: tf-idf, hate ratio, lexicon, RT ratios…
  bool topic = true;     ///< T: Doc2Vec hashtag relatedness
  bool endogenous = true;  ///< S_en: trending-hashtag indicator
  bool exogenous = true;   ///< S_ex: recent-news tf-idf average

  static FeatureMask All() { return {}; }
  static FeatureMask Without(const char* group);
};

struct FeatureConfig {
  /// Most recent history tweets considered (paper: 30; Figure 7 ablates).
  size_t history_size = 30;
  size_t history_tfidf_dim = 300;
  size_t news_tfidf_dim = 300;
  size_t tweet_tfidf_dim = 300;
  /// News headlines in the exogenous window (paper tunes to 60).
  size_t news_window = 60;
  size_t trending_dim = 50;
  size_t doc2vec_dim = 50;
  int doc2vec_epochs = 8;
  /// Machine-annotation flip noise applied to history labels.
  double history_label_noise = 0.12;
  uint64_t seed = 21;
};

/// \brief Fitted feature pipeline over one SyntheticWorld.
class FeatureExtractor {
 public:
  /// Fits vectorizers and Doc2Vec; caches per-user blocks.
  static Result<FeatureExtractor> Build(const datagen::SyntheticWorld& world,
                                        const FeatureConfig& config);

  /// Writes the fitted state under `prefix`: config, the three tf-idf
  /// vectorizers, the Doc2Vec model, and the machine-annotated history
  /// labels. Per-user caches and news embeddings are NOT written — they
  /// are pure functions of this state plus the world, and Restore
  /// re-derives them bit-identically.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Rebuilds an extractor over `world` from the state saved under
  /// `prefix`. Returns InvalidArgument when the checkpoint does not match
  /// the world (label table sizes, Doc2Vec corpus size).
  static Result<FeatureExtractor> Restore(const datagen::SyntheticWorld& world,
                                          const io::Checkpoint& ckpt,
                                          const std::string& prefix);

  // ---- Section IV: hate generation ------------------------------------

  /// Full feature vector for (user, hashtag, prediction time) with groups
  /// selected by `mask`. Layout: [history | topic | endogenous | exogenous]
  /// with masked groups omitted (not zeroed) as in the paper's ablation.
  Vec HateGenFeatures(NodeId user, size_t hashtag, double t0,
                      const FeatureMask& mask = {}) const;

  /// Dimensionality of HateGenFeatures under `mask`.
  size_t HateGenDim(const FeatureMask& mask = {}) const;

  // ---- Section V-A: retweet prediction ---------------------------------

  /// User-side feature vector X^{u_j} for candidate `user` on root tweet
  /// `tweet`: history block + endogenous + peer signals (shortest path
  /// from the root author, past retweets of the author by this user).
  /// `path_length` is the BFS distance author->user (graph::kUnreachable
  /// if none); the task builder computes one BFS per tweet and shares it
  /// across candidates.
  Vec RetweetUserFeatures(const datagen::Tweet& tweet, NodeId user,
                          int path_length) const;
  size_t RetweetUserDim() const;

  /// Assembles X^{u_j} from a caller-supplied (typically cache-served)
  /// history block plus a trending vector shared across the tweet's whole
  /// candidate list. Layout and values are identical to
  /// RetweetUserFeatures; only the redundant per-candidate recomputation
  /// of the invariants is skipped. `trending` must be
  /// TrendingIndicator(tweet.time, config.trending_dim).
  Vec AssembleRetweetUserFeatures(const datagen::Tweet& tweet, NodeId user,
                                  const SparseVec& history_block,
                                  const Vec& trending,
                                  int path_length) const;

  /// AssembleRetweetUserFeatures into a caller-owned row of
  /// RetweetUserDim() entries (need not be zeroed) — the serving engine
  /// assembles candidate rows directly into its scratch arena with this.
  void AssembleRetweetUserFeaturesInto(const datagen::Tweet& tweet,
                                       NodeId user,
                                       const SparseVec& history_block,
                                       const Vec& trending, int path_length,
                                       double* out) const;

  /// Recomputes user's history block from scratch — the uncached path
  /// behind ScoringEngine's per-user LRU (at serving scale the per-user
  /// invariants cannot all be precomputed). Equal to UserHistoryBlock for
  /// any user. When `concat_tokens` is non-null it receives the
  /// concatenated recent-history document (Build reuses it for the user
  /// Doc2Vec embedding).
  Vec ComputeHistoryBlock(NodeId user,
                          std::vector<std::string>* concat_tokens =
                              nullptr) const;

  /// Root-tweet content features: tweet tf-idf + hate-lexicon vector.
  Vec TweetContentFeatures(const datagen::Tweet& tweet) const;

  /// Sparse view of TweetContentFeatures (tf-idf and lexicon blocks are
  /// both mostly zeros); ToDense() equals the dense call.
  SparseVec TweetContentFeaturesSparse(const datagen::Tweet& tweet) const;

  size_t TweetContentDim() const;

  /// Doc2Vec embedding of the root tweet (attention Query input X^T).
  Vec TweetEmbedding(const datagen::Tweet& tweet) const;

  /// Doc2Vec features of the `news_window` most recent headlines before
  /// t0, one row each, most recent first (attention Key/Value input X^N).
  Matrix NewsEmbeddingWindow(double t0, size_t window = 0) const;

  /// Average news tf-idf over the window (exogenous feature for the
  /// feature-engineered models; Section IV-D). `window`=0 uses config.
  Vec NewsTfIdfAverage(double t0, size_t window = 0) const;

  /// Scalar tweet-news interaction features for the feature-engineered
  /// models: [cosine(tweet tf-idf, news tf-idf average),
  /// cosine(tweet Doc2Vec, mean news Doc2Vec), 24h news volume relative to
  /// the horizon average]. RETINA forms the same interaction inside its
  /// attention block; linear baselines need it spelled out to consume the
  /// exogenous signal at all.
  Vec NewsAlignmentFeatures(const datagen::Tweet& tweet,
                            size_t window = 0) const;
  static constexpr size_t kNewsAlignmentDim = 3;

  /// Per-user history block (cached; shared by both tasks).
  const Vec& UserHistoryBlock(NodeId user) const {
    return history_blocks_[user];
  }
  size_t HistoryBlockDim() const;

  /// Doc2Vec topical relatedness of user to hashtag (Section IV-B).
  double TopicRelatedness(NodeId user, size_t hashtag) const;

  const FeatureConfig& config() const { return config_; }
  const datagen::SyntheticWorld& world() const { return *world_; }
  const text::Doc2Vec& doc2vec() const { return doc2vec_; }

  /// Re-derives per-user caches with a different history size (Figure 7's
  /// history ablation). Cheap relative to Build.
  void SetHistorySize(size_t history_size);

 private:
  FeatureExtractor() = default;

  void RebuildUserCaches();

  FeatureConfig config_;
  const datagen::SyntheticWorld* world_ = nullptr;

  text::TfIdfVectorizer history_tfidf_;
  text::TfIdfVectorizer news_tfidf_;
  text::TfIdfVectorizer tweet_tfidf_;
  text::Doc2Vec doc2vec_;

  /// Noisy (machine-annotated) view of history hate labels, per user.
  std::vector<std::vector<bool>> history_machine_labels_;

  std::vector<Vec> history_blocks_;     // per user
  std::vector<Vec> user_embeddings_;    // per user: Doc2Vec of recent history
  std::vector<Vec> news_embeddings_;    // per article

  /// std::shared_mutex with move semantics: a move constructs a fresh
  /// unlocked mutex. Safe because the extractor is only moved during
  /// construction (Result<FeatureExtractor> plumbing), never while other
  /// threads hold a lock.
  class MovableSharedMutex {
   public:
    MovableSharedMutex() = default;
    MovableSharedMutex(MovableSharedMutex&&) noexcept {}
    MovableSharedMutex& operator=(MovableSharedMutex&&) noexcept {
      return *this;
    }
    std::shared_mutex& get() const { return mu_; }

   private:
    mutable std::shared_mutex mu_;
  };

  /// Memoized per-(hour bucket, window) news tf-idf averages. The values
  /// are pure functions of the key, so the lock only protects the map
  /// structure, not determinism: the read-mostly steady state (every
  /// bucket computed once, then looked up by every candidate) takes the
  /// shared lock and scales across scoring threads.
  mutable MovableSharedMutex news_tfidf_mu_;
  mutable std::unordered_map<long, Vec> news_tfidf_cache_;  // hour bucket
};

}  // namespace retina::core

#endif  // RETINA_CORE_FEATURE_EXTRACTOR_H_
