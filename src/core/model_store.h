// On-disk layout for a trained scoring bundle (train-once / serve-many).
//
// A bundle directory holds one checkpoint file, `model.ckpt`, containing
//   retina/...      the RETINA model + optimizer state (Retina::Save)
//   features/...    the fitted feature pipeline (FeatureExtractor::SaveTo)
//   meta/task_seed  the retweet-task split seed used at training time
// The task seed lets `retina eval --model DIR` rebuild the exact
// train/test split the model was trained against, so evaluation of a
// loaded model reproduces the in-process run bit-for-bit.

#ifndef RETINA_CORE_MODEL_STORE_H_
#define RETINA_CORE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/feature_extractor.h"
#include "core/retina.h"
#include "datagen/world.h"
#include "io/checkpoint.h"

namespace retina::core {

/// Checkpoint filename inside a bundle directory.
inline constexpr char kModelCheckpointFile[] = "model.ckpt";

struct ScoringBundleMeta {
  /// Seed the retweet task was built with (split + negative sampling).
  uint64_t task_seed = 0;
};

/// Writes `<dir>/model.ckpt` (creating `dir` if needed) with the model,
/// extractor, and metadata. Atomic: the file appears complete or not at
/// all.
Status SaveScoringBundle(const std::string& dir, const Retina& model,
                         const FeatureExtractor& extractor,
                         const ScoringBundleMeta& meta);

struct LoadedScoringBundle {
  std::unique_ptr<Retina> model;
  std::unique_ptr<FeatureExtractor> extractor;
  ScoringBundleMeta meta;
};

/// Reads `<dir>/model.ckpt` and restores the model and extractor over
/// `world` (which must outlive the returned bundle). Any corruption or
/// world mismatch is reported as a Status error.
Result<LoadedScoringBundle> LoadScoringBundle(
    const std::string& dir, const datagen::SyntheticWorld& world);

}  // namespace retina::core

#endif  // RETINA_CORE_MODEL_STORE_H_
