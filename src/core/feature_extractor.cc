#include "core/feature_extractor.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>

#include "common/obs.h"
#include "common/rng.h"

namespace retina::core {

FeatureMask FeatureMask::Without(const char* group) {
  FeatureMask mask;
  if (std::strcmp(group, "history") == 0) mask.history = false;
  if (std::strcmp(group, "topic") == 0) mask.topic = false;
  if (std::strcmp(group, "endogenous") == 0) mask.endogenous = false;
  if (std::strcmp(group, "exogenous") == 0) mask.exogenous = false;
  return mask;
}

Result<FeatureExtractor> FeatureExtractor::Build(
    const datagen::SyntheticWorld& world, const FeatureConfig& config) {
  FeatureExtractor fx;
  fx.config_ = config;
  fx.world_ = &world;

  // ---- Fit vectorizers ---------------------------------------------------
  {
    std::vector<std::vector<std::string>> history_docs;
    for (NodeId u = 0; u < world.NumUsers(); ++u) {
      for (const auto& ht : world.History(u)) {
        history_docs.push_back(ht.tokens);
      }
    }
    text::TfIdfOptions opts;
    opts.max_features = config.history_tfidf_dim;
    opts.min_df = 3;
    fx.history_tfidf_ = text::TfIdfVectorizer(opts);
    RETINA_RETURN_NOT_OK(fx.history_tfidf_.Fit(history_docs));
  }
  {
    std::vector<std::vector<std::string>> news_docs;
    news_docs.reserve(world.news().articles().size());
    for (const auto& a : world.news().articles()) news_docs.push_back(a.tokens);
    if (news_docs.empty()) {
      return Status::FailedPrecondition("FeatureExtractor: no news articles");
    }
    text::TfIdfOptions opts;
    opts.max_features = config.news_tfidf_dim;
    opts.min_df = 3;
    fx.news_tfidf_ = text::TfIdfVectorizer(opts);
    RETINA_RETURN_NOT_OK(fx.news_tfidf_.Fit(news_docs));
  }
  std::vector<std::vector<std::string>> tweet_docs;
  {
    tweet_docs.reserve(world.tweets().size());
    for (const auto& tw : world.tweets()) tweet_docs.push_back(tw.tokens);
    if (tweet_docs.empty()) {
      return Status::FailedPrecondition("FeatureExtractor: no tweets");
    }
    text::TfIdfOptions opts;
    opts.max_features = config.tweet_tfidf_dim;
    opts.min_df = 2;
    fx.tweet_tfidf_ = text::TfIdfVectorizer(opts);
    RETINA_RETURN_NOT_OK(fx.tweet_tfidf_.Fit(tweet_docs));
  }

  // ---- Doc2Vec over tweets + headlines (shared embedding space) ---------
  {
    std::vector<std::vector<std::string>> corpus = tweet_docs;
    for (const auto& a : world.news().articles()) corpus.push_back(a.tokens);
    text::Doc2VecOptions opts;
    opts.dim = config.doc2vec_dim;
    opts.epochs = config.doc2vec_epochs;
    opts.seed = config.seed;
    fx.doc2vec_ = text::Doc2Vec(opts);
    RETINA_RETURN_NOT_OK(fx.doc2vec_.Train(corpus));
    // Trained doc vectors: tweets occupy [0, n_tweets), news the rest.
    const size_t n_tweets = world.tweets().size();
    fx.news_embeddings_.resize(world.news().articles().size());
    for (size_t j = 0; j < fx.news_embeddings_.size(); ++j) {
      fx.news_embeddings_[j] = fx.doc2vec_.DocVector(n_tweets + j);
    }
  }

  // ---- Noisy machine view of history labels ------------------------------
  Rng rng(config.seed ^ 0xFEEDFACEULL);
  fx.history_machine_labels_.resize(world.NumUsers());
  for (NodeId u = 0; u < world.NumUsers(); ++u) {
    const auto& hist = world.History(u);
    auto& labels = fx.history_machine_labels_[u];
    labels.resize(hist.size());
    for (size_t i = 0; i < hist.size(); ++i) {
      bool label = hist[i].is_hateful;
      if (rng.Bernoulli(config.history_label_noise)) label = !label;
      labels[i] = label;
    }
  }

  fx.RebuildUserCaches();
  return fx;
}

void FeatureExtractor::SaveTo(io::Checkpoint* ckpt,
                              const std::string& prefix) const {
  ckpt->PutI64(prefix + "config/history_size",
               static_cast<int64_t>(config_.history_size));
  ckpt->PutI64(prefix + "config/history_tfidf_dim",
               static_cast<int64_t>(config_.history_tfidf_dim));
  ckpt->PutI64(prefix + "config/news_tfidf_dim",
               static_cast<int64_t>(config_.news_tfidf_dim));
  ckpt->PutI64(prefix + "config/tweet_tfidf_dim",
               static_cast<int64_t>(config_.tweet_tfidf_dim));
  ckpt->PutI64(prefix + "config/news_window",
               static_cast<int64_t>(config_.news_window));
  ckpt->PutI64(prefix + "config/trending_dim",
               static_cast<int64_t>(config_.trending_dim));
  ckpt->PutI64(prefix + "config/doc2vec_dim",
               static_cast<int64_t>(config_.doc2vec_dim));
  ckpt->PutI64(prefix + "config/doc2vec_epochs", config_.doc2vec_epochs);
  ckpt->PutF64(prefix + "config/history_label_noise",
               config_.history_label_noise);
  ckpt->PutI64(prefix + "config/seed", static_cast<int64_t>(config_.seed));
  history_tfidf_.SaveTo(ckpt, prefix + "history_tfidf/");
  news_tfidf_.SaveTo(ckpt, prefix + "news_tfidf/");
  tweet_tfidf_.SaveTo(ckpt, prefix + "tweet_tfidf/");
  doc2vec_.SaveTo(ckpt, prefix + "doc2vec/");
  // Machine labels: per-user lengths + flattened 0/1 bits. These came from
  // a one-shot noise draw at Build time, so they must be persisted — they
  // cannot be re-derived from the seed without replaying Build's RNG.
  std::vector<int64_t> lengths(history_machine_labels_.size());
  std::vector<int64_t> bits;
  for (size_t u = 0; u < history_machine_labels_.size(); ++u) {
    lengths[u] = static_cast<int64_t>(history_machine_labels_[u].size());
    for (bool b : history_machine_labels_[u]) bits.push_back(b ? 1 : 0);
  }
  ckpt->PutI64List(prefix + "machine_labels/lengths", lengths);
  ckpt->PutI64List(prefix + "machine_labels/bits", bits);
}

Result<FeatureExtractor> FeatureExtractor::Restore(
    const datagen::SyntheticWorld& world, const io::Checkpoint& ckpt,
    const std::string& prefix) {
  FeatureExtractor fx;
  fx.world_ = &world;
  int64_t history_size = 0, history_tfidf_dim = 0, news_tfidf_dim = 0;
  int64_t tweet_tfidf_dim = 0, news_window = 0, trending_dim = 0;
  int64_t doc2vec_dim = 0, doc2vec_epochs = 0, seed = 0;
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/history_size", &history_size));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/history_tfidf_dim", &history_tfidf_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/news_tfidf_dim", &news_tfidf_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/tweet_tfidf_dim", &tweet_tfidf_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/news_window", &news_window));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/trending_dim", &trending_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/doc2vec_dim", &doc2vec_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "config/doc2vec_epochs", &doc2vec_epochs));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "config/history_label_noise",
                                   &fx.config_.history_label_noise));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "config/seed", &seed));
  if (history_size < 0 || history_tfidf_dim < 0 || news_tfidf_dim < 0 ||
      tweet_tfidf_dim < 0 || news_window < 0 || trending_dim < 0 ||
      doc2vec_dim <= 0) {
    return Status::InvalidArgument("feature config out of range");
  }
  fx.config_.history_size = static_cast<size_t>(history_size);
  fx.config_.history_tfidf_dim = static_cast<size_t>(history_tfidf_dim);
  fx.config_.news_tfidf_dim = static_cast<size_t>(news_tfidf_dim);
  fx.config_.tweet_tfidf_dim = static_cast<size_t>(tweet_tfidf_dim);
  fx.config_.news_window = static_cast<size_t>(news_window);
  fx.config_.trending_dim = static_cast<size_t>(trending_dim);
  fx.config_.doc2vec_dim = static_cast<size_t>(doc2vec_dim);
  fx.config_.doc2vec_epochs = static_cast<int>(doc2vec_epochs);
  fx.config_.seed = static_cast<uint64_t>(seed);

  RETINA_RETURN_NOT_OK(
      fx.history_tfidf_.LoadFrom(ckpt, prefix + "history_tfidf/"));
  RETINA_RETURN_NOT_OK(fx.news_tfidf_.LoadFrom(ckpt, prefix + "news_tfidf/"));
  RETINA_RETURN_NOT_OK(
      fx.tweet_tfidf_.LoadFrom(ckpt, prefix + "tweet_tfidf/"));
  RETINA_RETURN_NOT_OK(fx.doc2vec_.LoadFrom(ckpt, prefix + "doc2vec/"));

  // The Doc2Vec corpus was tweets then headlines; the doc-vector table must
  // cover both or TweetEmbedding/news windows would index out of range.
  const size_t n_tweets = world.tweets().size();
  const size_t n_news = world.news().articles().size();
  if (fx.doc2vec_.NumDocs() != n_tweets + n_news) {
    return Status::InvalidArgument(
        "checkpoint doc2vec corpus does not match the world's "
        "tweets+headlines");
  }
  fx.news_embeddings_.resize(n_news);
  for (size_t j = 0; j < n_news; ++j) {
    fx.news_embeddings_[j] = fx.doc2vec_.DocVector(n_tweets + j);
  }

  std::vector<int64_t> lengths, bits;
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64List(prefix + "machine_labels/lengths", &lengths));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64List(prefix + "machine_labels/bits", &bits));
  if (lengths.size() != world.NumUsers()) {
    return Status::InvalidArgument(
        "checkpoint machine-label table does not match the world's users");
  }
  fx.history_machine_labels_.resize(lengths.size());
  size_t pos = 0;
  for (size_t u = 0; u < lengths.size(); ++u) {
    if (lengths[u] < 0 ||
        static_cast<size_t>(lengths[u]) != world.History(u).size() ||
        pos + static_cast<size_t>(lengths[u]) > bits.size()) {
      return Status::InvalidArgument(
          "checkpoint machine-label rows do not match user histories");
    }
    auto& labels = fx.history_machine_labels_[u];
    labels.resize(static_cast<size_t>(lengths[u]));
    for (size_t i = 0; i < labels.size(); ++i) labels[i] = bits[pos++] != 0;
  }
  if (pos != bits.size()) {
    return Status::InvalidArgument(
        "checkpoint machine-label bits have trailing entries");
  }

  // Per-user blocks and embeddings are pure functions of the restored
  // state, so this reproduces Build's caches bit-for-bit.
  fx.RebuildUserCaches();
  return fx;
}

void FeatureExtractor::SetHistorySize(size_t history_size) {
  config_.history_size = history_size;
  news_tfidf_cache_.clear();
  RebuildUserCaches();
}

size_t FeatureExtractor::HistoryBlockDim() const {
  // tf-idf + hate ratio + lexicon + 2 RT ratios + followers + age + #topics
  return config_.history_tfidf_dim + 1 + world_->lexicon().size() + 2 + 1 +
         1 + 1;
}

Vec FeatureExtractor::ComputeHistoryBlock(
    NodeId user, std::vector<std::string>* concat_tokens) const {
  // Cache-miss cost center of the serving path: every call here is a
  // history block the ScoringEngine could not serve from its LRU.
  static obs::Counter* computed =
      obs::Registry::Global().GetCounter("features.history_blocks_computed");
  computed->Add(1);
  const datagen::SyntheticWorld& world = *world_;
  const auto& hist = world.History(user);
  const auto& labels = history_machine_labels_[user];
  const size_t take = std::min(config_.history_size, hist.size());
  const size_t start = hist.size() - take;

  // Concatenate the most recent `take` tweets into one document.
  std::vector<std::string> concat;
  std::vector<std::vector<std::string>> docs;
  size_t n_hate = 0;
  double rt_hate = 0.0, rt_nonhate = 0.0;
  size_t cnt_rt_hate = 0, cnt_rt_nonhate = 0;
  std::unordered_set<size_t> topics_used;
  for (size_t i = start; i < hist.size(); ++i) {
    concat.insert(concat.end(), hist[i].tokens.begin(),
                  hist[i].tokens.end());
    docs.push_back(hist[i].tokens);
    const bool hateful = labels[i];
    if (hateful) {
      ++n_hate;
      rt_hate += hist[i].retweets_received;
      cnt_rt_hate += hist[i].retweets_received > 0;
    } else {
      rt_nonhate += hist[i].retweets_received;
      cnt_rt_nonhate += hist[i].retweets_received > 0;
    }
    if (hist[i].hashtag != SIZE_MAX) topics_used.insert(hist[i].hashtag);
  }

  Vec block = history_tfidf_.Transform(concat);
  block.reserve(HistoryBlockDim());
  // Hate ratio among recent tweets.
  block.push_back(take > 0 ? static_cast<double>(n_hate) /
                                 static_cast<double>(take)
                           : 0.0);
  // Hate-lexicon frequency vector HL.
  const Vec hl = world.lexicon().FrequencyVector(docs);
  block.insert(block.end(), hl.begin(), hl.end());
  // RT attention ratios (smoothed, log-scaled).
  block.push_back(std::log((rt_hate + 1.0) / (rt_nonhate + 1.0)));
  block.push_back(std::log(
      (static_cast<double>(cnt_rt_hate) + 1.0) /
      (static_cast<double>(cnt_rt_nonhate) + 1.0)));
  // Account-level features.
  block.push_back(std::log(
      1.0 + static_cast<double>(world.network().FollowerCount(user))));
  block.push_back(world.users()[user].account_age_days / 1000.0);
  block.push_back(static_cast<double>(topics_used.size()) / 10.0);

  if (concat_tokens != nullptr) *concat_tokens = std::move(concat);
  return block;
}

void FeatureExtractor::RebuildUserCaches() {
  const size_t n_users = world_->NumUsers();
  history_blocks_.assign(n_users, Vec());
  user_embeddings_.assign(n_users, Vec());

  for (NodeId u = 0; u < n_users; ++u) {
    std::vector<std::string> concat;
    history_blocks_[u] = ComputeHistoryBlock(u, &concat);

    // Cap the inference document length: the embedding converges long
    // before 150 tokens and inference cost is linear in length.
    std::vector<std::string> infer_doc = concat;
    if (infer_doc.size() > 150) {
      infer_doc.assign(concat.end() - 150, concat.end());
    }
    user_embeddings_[u] = doc2vec_.InferVector(infer_doc,
                                               /*infer_epochs=*/8);
  }
}

double FeatureExtractor::TopicRelatedness(NodeId user, size_t hashtag) const {
  const std::string& tag = world_->hashtags()[hashtag].tag;
  // Hashtags appear lowercased as tokens in tweets.
  std::string token;
  token.reserve(tag.size());
  for (char c : tag) token += static_cast<char>(std::tolower(c));
  return doc2vec_.TokenSimilarity(user_embeddings_[user], token);
}

Vec FeatureExtractor::NewsTfIdfAverage(double t0, size_t window) const {
  if (window == 0) window = config_.news_window;
  const long bucket =
      static_cast<long>(t0) * 1000 + static_cast<long>(window);
  {
    std::shared_lock<std::shared_mutex> lock(news_tfidf_mu_.get());
    auto it = news_tfidf_cache_.find(bucket);
    if (it != news_tfidf_cache_.end()) return it->second;
  }
  const auto idx = world_->news().MostRecentBefore(t0, window);
  std::vector<std::vector<std::string>> docs;
  docs.reserve(idx.size());
  for (size_t j : idx) docs.push_back(world_->news().articles()[j].tokens);
  Vec avg = docs.empty() ? Vec(news_tfidf_.Dim(), 0.0)
                         : news_tfidf_.TransformAverage(docs);
  // Racing computers produce identical values (pure function of the key),
  // so losing the emplace race is harmless.
  std::unique_lock<std::shared_mutex> lock(news_tfidf_mu_.get());
  news_tfidf_cache_.emplace(bucket, avg);
  return avg;
}

Vec FeatureExtractor::NewsAlignmentFeatures(const datagen::Tweet& tweet,
                                            size_t window) const {
  if (window == 0) window = config_.news_window;
  Vec out(kNewsAlignmentDim, 0.0);
  // (1) cosine between the tweet and the averaged news tf-idf; the tweet
  // is transformed through the *news* vectorizer so both vectors live in
  // one basis.
  const Vec news_avg = NewsTfIdfAverage(tweet.time, window);
  const Vec tweet_in_news_space = news_tfidf_.Transform(tweet.tokens);
  out[0] = CosineSimilarity(tweet_in_news_space, news_avg);
  // (2) Doc2Vec alignment with the mean headline embedding.
  const auto idx = world_->news().MostRecentBefore(tweet.time, window);
  if (!idx.empty()) {
    Vec mean_embed(config_.doc2vec_dim, 0.0);
    for (size_t j : idx) Axpy(1.0, news_embeddings_[j], &mean_embed);
    Scale(1.0 / static_cast<double>(idx.size()), &mean_embed);
    out[1] = CosineSimilarity(TweetEmbedding(tweet), mean_embed);
  }
  // (3) 24h news volume relative to the horizon average.
  const auto& articles = world_->news().articles();
  if (!articles.empty() && world_->config().horizon_days > 0.0) {
    const auto recent = world_->news().MostRecentBefore(tweet.time, 100000);
    size_t last24 = 0;
    for (size_t j : recent) {
      if (articles[j].time >= tweet.time - 24.0) {
        ++last24;
      } else {
        break;  // recent is ordered most-recent first
      }
    }
    const double daily_avg = static_cast<double>(articles.size()) /
                             world_->config().horizon_days;
    out[2] = static_cast<double>(last24) / std::max(1.0, daily_avg);
  }
  return out;
}

Matrix FeatureExtractor::NewsEmbeddingWindow(double t0, size_t window) const {
  if (window == 0) window = config_.news_window;
  const auto idx = world_->news().MostRecentBefore(t0, window);
  Matrix out(idx.size(), config_.doc2vec_dim);
  for (size_t r = 0; r < idx.size(); ++r) {
    out.SetRow(r, news_embeddings_[idx[r]]);
  }
  return out;
}

size_t FeatureExtractor::HateGenDim(const FeatureMask& mask) const {
  size_t dim = 0;
  if (mask.history) dim += HistoryBlockDim();
  if (mask.topic) dim += 1;
  if (mask.endogenous) dim += config_.trending_dim;
  if (mask.exogenous) dim += news_tfidf_.Dim();
  return dim;
}

Vec FeatureExtractor::HateGenFeatures(NodeId user, size_t hashtag, double t0,
                                      const FeatureMask& mask) const {
  Vec out;
  out.reserve(HateGenDim(mask));
  if (mask.history) {
    const Vec& block = history_blocks_[user];
    out.insert(out.end(), block.begin(), block.end());
  }
  if (mask.topic) out.push_back(TopicRelatedness(user, hashtag));
  if (mask.endogenous) {
    const Vec trending = world_->TrendingIndicator(t0, config_.trending_dim);
    out.insert(out.end(), trending.begin(), trending.end());
  }
  if (mask.exogenous) {
    const Vec news = NewsTfIdfAverage(t0);
    out.insert(out.end(), news.begin(), news.end());
  }
  return out;
}

size_t FeatureExtractor::RetweetUserDim() const {
  return HistoryBlockDim() + config_.trending_dim + 2;
}

Vec FeatureExtractor::RetweetUserFeatures(const datagen::Tweet& tweet,
                                          NodeId user,
                                          int path_length) const {
  Vec out;
  out.reserve(RetweetUserDim());
  const Vec& block = history_blocks_[user];
  out.insert(out.end(), block.begin(), block.end());
  const Vec trending =
      world_->TrendingIndicator(tweet.time, config_.trending_dim);
  out.insert(out.end(), trending.begin(), trending.end());
  // Peer signals: shortest path root author -> user (kPeerPathCutoff+1 when
  // not organically reachable), and past retweets of this author.
  out.push_back(path_length == graph::kUnreachable
                    ? static_cast<double>(kPeerPathCutoff + 1)
                    : static_cast<double>(path_length));
  out.push_back(std::log(1.0 + static_cast<double>(world_->PastRetweetCount(
                                   tweet.author, user, tweet.time))));
  return out;
}

Vec FeatureExtractor::AssembleRetweetUserFeatures(
    const datagen::Tweet& tweet, NodeId user, const SparseVec& history_block,
    const Vec& trending, int path_length) const {
  Vec out(RetweetUserDim());
  AssembleRetweetUserFeaturesInto(tweet, user, history_block, trending,
                                  path_length, out.data());
  return out;
}

void FeatureExtractor::AssembleRetweetUserFeaturesInto(
    const datagen::Tweet& tweet, NodeId user, const SparseVec& history_block,
    const Vec& trending, int path_length, double* out) const {
  assert(history_block.dim() == HistoryBlockDim());
  assert(trending.size() == config_.trending_dim);
  std::fill(out, out + HistoryBlockDim(), 0.0);
  history_block.ScatterInto(out);
  std::copy(trending.begin(), trending.end(), out + HistoryBlockDim());
  const size_t tail = HistoryBlockDim() + config_.trending_dim;
  out[tail] = path_length == graph::kUnreachable
                  ? static_cast<double>(kPeerPathCutoff + 1)
                  : static_cast<double>(path_length);
  out[tail + 1] = std::log(1.0 + static_cast<double>(world_->PastRetweetCount(
                               tweet.author, user, tweet.time)));
}

size_t FeatureExtractor::TweetContentDim() const {
  return tweet_tfidf_.Dim() + world_->lexicon().size();
}

Vec FeatureExtractor::TweetContentFeatures(
    const datagen::Tweet& tweet) const {
  Vec out = tweet_tfidf_.Transform(tweet.tokens);
  const Vec hl = world_->lexicon().FrequencyVector({tweet.tokens});
  out.insert(out.end(), hl.begin(), hl.end());
  return out;
}

SparseVec FeatureExtractor::TweetContentFeaturesSparse(
    const datagen::Tweet& tweet) const {
  const SparseVec tfidf = tweet_tfidf_.TransformSparse(tweet.tokens);
  const Vec hl = world_->lexicon().FrequencyVector({tweet.tokens});
  SparseVec out(tfidf.dim() + hl.size());
  for (size_t k = 0; k < tfidf.nnz(); ++k) {
    out.PushBack(tfidf.indices()[k], tfidf.values()[k]);
  }
  const size_t offset = tfidf.dim();
  for (size_t i = 0; i < hl.size(); ++i) {
    if (hl[i] != 0.0) out.PushBack(offset + i, hl[i]);
  }
  return out;
}

Vec FeatureExtractor::TweetEmbedding(const datagen::Tweet& tweet) const {
  // Root tweets are Doc2Vec training docs [0, n_tweets).
  if (tweet.id < doc2vec_.NumDocs() && tweet.id < world_->tweets().size()) {
    return doc2vec_.DocVector(tweet.id);
  }
  return doc2vec_.InferVector(tweet.tokens);
}

}  // namespace retina::core
