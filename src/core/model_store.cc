#include "core/model_store.h"

#include <filesystem>
#include <system_error>
#include <utility>

namespace retina::core {

namespace {

std::string BundlePath(const std::string& dir) {
  return (std::filesystem::path(dir) / kModelCheckpointFile).string();
}

}  // namespace

Status SaveScoringBundle(const std::string& dir, const Retina& model,
                         const FeatureExtractor& extractor,
                         const ScoringBundleMeta& meta) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create bundle directory '" + dir +
                           "': " + ec.message());
  }
  io::Checkpoint ckpt;
  RETINA_RETURN_NOT_OK(model.Save(&ckpt, "retina/"));
  extractor.SaveTo(&ckpt, "features/");
  ckpt.PutI64("meta/task_seed", static_cast<int64_t>(meta.task_seed));
  return ckpt.WriteFile(BundlePath(dir));
}

Result<LoadedScoringBundle> LoadScoringBundle(
    const std::string& dir, const datagen::SyntheticWorld& world) {
  auto ckpt_result = io::Checkpoint::ReadFile(BundlePath(dir));
  RETINA_RETURN_NOT_OK(ckpt_result.status());
  const io::Checkpoint& ckpt = ckpt_result.ValueOrDie();

  LoadedScoringBundle bundle;
  auto model_result = Retina::Load(ckpt, "retina/");
  RETINA_RETURN_NOT_OK(model_result.status());
  bundle.model = std::move(model_result).ValueOrDie();

  auto fx_result = FeatureExtractor::Restore(world, ckpt, "features/");
  RETINA_RETURN_NOT_OK(fx_result.status());
  bundle.extractor =
      std::make_unique<FeatureExtractor>(std::move(fx_result).ValueOrDie());

  int64_t task_seed = 0;
  RETINA_RETURN_NOT_OK(ckpt.GetI64("meta/task_seed", &task_seed));
  bundle.meta.task_seed = static_cast<uint64_t>(task_seed);

  // The model's first layer consumes [user_features ; tweet_content].
  const size_t feature_dim = bundle.extractor->RetweetUserDim() +
                             bundle.extractor->TweetContentDim();
  if (feature_dim != bundle.model->input_dim()) {
    return Status::InvalidArgument(
        "bundle mismatch: extractor feature width does not match the "
        "model's input dimension");
  }
  return bundle;
}

}  // namespace retina::core
