#include "core/hategen_task.h"

#include <algorithm>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/preprocess.h"
#include "ml/svm.h"

namespace retina::core {

Result<HateGenTask> BuildHateGenTask(const FeatureExtractor& extractor,
                                     const HateGenTaskOptions& options,
                                     const FeatureMask& mask) {
  const datagen::SyntheticWorld& world = extractor.world();
  const auto& tweets = world.tweets();
  if (tweets.empty()) {
    return Status::FailedPrecondition("BuildHateGenTask: no tweets");
  }

  // Qualifying tweets: enough mapped news before posting time.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < tweets.size(); ++i) {
    if (world.news().MostRecentBefore(tweets[i].time, options.min_news)
            .size() >= options.min_news) {
      eligible.push_back(i);
    }
  }
  if (eligible.size() < 50) {
    return Status::FailedPrecondition(
        "BuildHateGenTask: too few tweets with full news coverage");
  }

  Rng rng(options.seed);
  rng.Shuffle(&eligible);
  const size_t n_test = static_cast<size_t>(options.test_fraction *
                                            static_cast<double>(eligible.size()));

  HateGenTask task;
  task.dim = extractor.HateGenDim(mask);
  const size_t n_train = eligible.size() - n_test;
  task.train.X = Matrix(n_train, task.dim);
  task.train.y.resize(n_train);
  task.test.X = Matrix(n_test, task.dim);
  task.test.y.resize(n_test);

  for (size_t k = 0; k < eligible.size(); ++k) {
    const datagen::Tweet& tw = tweets[eligible[k]];
    const Vec x =
        extractor.HateGenFeatures(tw.author, tw.hashtag, tw.time, mask);
    if (k < n_test) {
      task.test.X.SetRow(k, x);
      task.test.y[k] = tw.is_hateful ? 1 : 0;  // gold
    } else {
      task.train.X.SetRow(k - n_test, x);
      task.train.y[k - n_test] = tw.machine_hateful ? 1 : 0;  // machine
    }
  }
  return task;
}

const char* ProcVariantName(ProcVariant v) {
  switch (v) {
    case ProcVariant::kNone:
      return "None";
    case ProcVariant::kDownsample:
      return "DS";
    case ProcVariant::kUpDownsample:
      return "US+DS";
    case ProcVariant::kPca:
      return "PCA";
    case ProcVariant::kTopK:
      return "top-K";
  }
  return "?";
}

Result<EvalResult> RunHateGenPipeline(const HateGenTask& task,
                                      ml::BinaryClassifier* model,
                                      ProcVariant proc, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset train = task.train;
  Matrix test_x = task.test.X;

  // Feature reduction first (fit on the full training set), sampling after.
  if (proc == ProcVariant::kPca) {
    ml::Pca pca;
    RETINA_RETURN_NOT_OK(pca.Fit(train.X));
    train.X = pca.TransformBatch(train.X);
    test_x = pca.TransformBatch(test_x);
  } else if (proc == ProcVariant::kTopK) {
    ml::KBestMutualInfo kbest(50);
    RETINA_RETURN_NOT_OK(kbest.Fit(train.X, train.y));
    train.X = kbest.TransformBatch(train.X);
    test_x = kbest.TransformBatch(test_x);
  }

  if (proc == ProcVariant::kDownsample) {
    train = ml::DownsampleMajority(train, &rng);
  } else if (proc == ProcVariant::kUpDownsample) {
    train = ml::UpDownsample(train, &rng);
  }

  RETINA_RETURN_NOT_OK(model->Fit(train.X, train.y));

  EvalResult result;
  result.model = model->Name();
  result.proc = ProcVariantName(proc);
  const Vec scores = model->PredictProbaBatch(test_x);
  const std::vector<int> pred = ml::Threshold(scores);
  result.macro_f1 = ml::MacroF1(task.test.y, pred);
  result.accuracy = ml::Accuracy(task.test.y, pred);
  result.auc = ml::RocAuc(task.test.y, scores);
  return result;
}

std::vector<std::unique_ptr<ml::BinaryClassifier>> MakeHateGenModelZoo() {
  std::vector<std::unique_ptr<ml::BinaryClassifier>> zoo;
  // SVM-linear: penalty=l2, class_weight=balanced (Table III).
  {
    ml::LinearSVMOptions opts;
    opts.balanced_class_weight = true;
    zoo.push_back(std::make_unique<ml::LinearSVM>(opts));
  }
  // SVM-rbf: class_weight=balanced.
  {
    ml::KernelSVMOptions opts;
    opts.linear.balanced_class_weight = true;
    zoo.push_back(std::make_unique<ml::KernelSVM>(opts));
  }
  // Logistic regression: random_state=0.
  {
    ml::LogisticRegressionOptions opts;
    opts.seed = 0;
    opts.balanced_class_weight = false;
    zoo.push_back(std::make_unique<ml::LogisticRegression>(opts));
  }
  // Decision tree: class_weight=balanced, max_depth=5.
  {
    ml::DecisionTreeOptions opts;
    opts.max_depth = 5;
    opts.balanced_class_weight = true;
    zoo.push_back(std::make_unique<ml::DecisionTree>(opts));
  }
  // AdaBoost: random_state=1.
  {
    ml::AdaBoostOptions opts;
    opts.seed = 1;
    zoo.push_back(std::make_unique<ml::AdaBoost>(opts));
  }
  // XGBoost: eta=0.4 overridden by learning_rate=1e-4 (the alias xgboost
  // honors), objective=binary:logistic, reg_alpha=0.9.
  {
    ml::GradientBoostingOptions opts;
    opts.learning_rate = 1e-4;
    opts.reg_alpha = 0.9;
    opts.n_estimators = 60;
    opts.max_depth = 4;
    zoo.push_back(std::make_unique<ml::GradientBoosting>(opts));
  }
  return zoo;
}

}  // namespace retina::core
