// Hate-generation prediction task (Section IV / VI-C, Tables IV & V).
//
// Each root tweet yields one sample "will this user post something hateful
// under this hashtag?": features come from the user's history, topical
// relatedness, trending hashtags, and recent news; the label is the tweet's
// hate tag. Following Section VI-B, *training* labels are the
// machine-annotated tags while *evaluation* stays on gold-standard labels.

#ifndef RETINA_CORE_HATEGEN_TASK_H_
#define RETINA_CORE_HATEGEN_TASK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/feature_extractor.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace retina::core {

struct HateGenTaskOptions {
  double test_fraction = 0.2;
  /// Minimum news headlines that must exist before the tweet (the paper
  /// keeps tweets with at least 60 mapped news items).
  size_t min_news = 60;
  uint64_t seed = 33;
};

/// Materialized train/test split of the task.
struct HateGenTask {
  ml::Dataset train;  ///< machine labels
  ml::Dataset test;   ///< gold labels
  size_t dim = 0;
};

/// Builds the task under a feature mask (Table V removes groups).
Result<HateGenTask> BuildHateGenTask(const FeatureExtractor& extractor,
                                     const HateGenTaskOptions& options,
                                     const FeatureMask& mask = {});

/// Sampling / feature-reduction pipeline variants of Table IV.
enum class ProcVariant { kNone, kDownsample, kUpDownsample, kPca, kTopK };

const char* ProcVariantName(ProcVariant v);

/// Result row of Table IV.
struct EvalResult {
  std::string model;
  std::string proc;
  double macro_f1 = 0.0;
  double accuracy = 0.0;
  double auc = 0.0;
};

/// Trains `model` on the task under the given processing variant and
/// evaluates on gold test labels. PCA/top-K use 50 components/features as
/// in the paper.
Result<EvalResult> RunHateGenPipeline(const HateGenTask& task,
                                      ml::BinaryClassifier* model,
                                      ProcVariant proc, uint64_t seed);

/// The six Table III classifiers with the paper's parameters.
std::vector<std::unique_ptr<ml::BinaryClassifier>> MakeHateGenModelZoo();

}  // namespace retina::core

#endif  // RETINA_CORE_HATEGEN_TASK_H_
