// Serving-side scoring engine: batched RETINA inference plus per-user
// feature caching.
//
// A serving request is "score this candidate list for this root tweet".
// The request cost splits into
//   (a) tweet-side work shared by every candidate (content tf-idf, Doc2Vec
//       query, news window, one BFS from the author, trending vector),
//   (b) per-user invariants independent of the tweet (the history block:
//       history tf-idf, hate ratio, lexicon counts, RT ratios, account
//       features), and
//   (c) the model forward.
// The engine computes (a) once per request, serves (b) from a bounded LRU
// keyed by user (stored sparse — the block is dominated by a ~300-dim
// tf-idf vector with a few dozen nonzeros), and runs (c) through the
// batched GEMM path (Retina::ScoreBatch). Every mode produces bit-identical
// scores: caching only skips recomputation of pure functions, and the
// batched forward matches the per-candidate forward entry for entry (see
// DESIGN.md "Batched serving").
//
// Not thread-safe: one engine per serving thread. Parallelism lives below
// the engine, inside the batched model forward.
//
// Tiered user features: with a store::FeatureStore attached (AttachStore),
// the per-user miss path becomes LRU miss -> store lookup -> compute. The
// store holds exactly the SparseVec the builder was handed (f64 bit
// patterns round-trip), so scores are bit-identical across all three
// tiers; a corrupt store block logs a warning and falls back to
// recomputation instead of failing the request.
//
// Observability: beyond the aggregate counters/histograms, every
// ScoreTweet call opens a per-request timeline trace id (ScoreCandidates
// opens one per batch that its requests inherit), and cache hit/miss
// instants plus the model-forward chunk work carry that id in the
// exported Chrome trace (see common/trace.h and --trace-out).

#ifndef RETINA_CORE_SCORING_ENGINE_H_
#define RETINA_CORE_SCORING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/obs.h"
#include "common/sparse_vec.h"
#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "io/checkpoint.h"
#include "store/feature_store.h"

namespace retina::core {

struct ScoringEngineOptions {
  /// Per-user history-block LRU capacity.
  size_t user_cache_capacity = 4096;
  /// Optional byte budget for the per-user LRU (0 = entry count only).
  /// Entries are costed as their sparse payload plus container overhead,
  /// so the warm tier's RAM footprint is bounded even when history blocks
  /// are dense.
  size_t user_cache_bytes = 0;
  /// Per-tweet context LRU capacity (content, embedding, news window, BFS).
  size_t tweet_cache_capacity = 256;
  /// Score through Retina::ScoreBatch (one GEMM per layer) instead of one
  /// PredictScore per candidate.
  bool batched = true;
  /// Serve per-user and per-tweet invariants from the LRUs instead of
  /// recomputing them on every request.
  bool cache_features = true;
};

struct ScoringEngineStats {
  uint64_t requests = 0;    ///< ScoreTweet calls
  uint64_t candidates = 0;  ///< total candidates scored
  uint64_t user_hits = 0;
  uint64_t user_misses = 0;
  uint64_t user_evictions = 0;
  uint64_t tweet_hits = 0;
  uint64_t tweet_misses = 0;
  uint64_t store_hits = 0;      ///< user blocks served from the disk store
  uint64_t store_misses = 0;    ///< store consulted, user absent -> computed
  uint64_t store_promotes = 0;  ///< store hits promoted into the LRU
  uint64_t store_errors = 0;    ///< corrupt store reads (fell back to compute)
};

/// \brief Wraps a trained Retina + FeatureExtractor behind a serving API.
class ScoringEngine {
 public:
  /// The model and extractor must outlive the engine.
  ScoringEngine(const Retina* model, const FeatureExtractor* extractor,
                ScoringEngineOptions options = {});

  /// Train-once / serve-many entry point: builds an engine that OWNS its
  /// model and extractor, both restored from a checkpoint written by
  /// io::SaveScoringBundle (model under "retina/", extractor under
  /// "features/"). `world` must be the world the bundle was trained on
  /// and must outlive the engine. Scores are bit-identical to an engine
  /// wrapping the in-process trained model.
  static Result<std::unique_ptr<ScoringEngine>> FromCheckpoint(
      const datagen::SyntheticWorld& world, const io::Checkpoint& ckpt,
      ScoringEngineOptions options = {});

  /// Scores `users` as retweet candidates for `tweet` (one serving
  /// request). Entry i equals the per-candidate
  /// Retina::PredictScore(ctx, X^{u_i}) with features built from the raw
  /// world — the engine never reads the extractor's precomputed per-user
  /// arrays, so the uncached modes reflect a stateless server honestly.
  Vec ScoreTweet(const datagen::Tweet& tweet,
                 const std::vector<NodeId>& users);

  /// ScoreTweet writing into a caller-owned (and ideally reused) vector —
  /// `scores` is resized to users.size(). Candidate feature rows live in
  /// the thread's scratch arena and the batched forward runs through
  /// Retina::ScoreBatchRows, so once the arena and caches are warm a
  /// batched static-head request performs zero heap allocations (pinned
  /// by the allocation-regression test). Scores are bit-identical to
  /// ScoreTweet.
  void ScoreTweetInto(const datagen::Tweet& tweet,
                      const std::vector<NodeId>& users, Vec* scores);

  /// Serving-path equivalent of Retina::ScoreCandidates: replays the
  /// candidate list as one request per tweet group, rebuilding every
  /// feature vector from the raw world. Bit-identical to the model's own
  /// ScoreCandidates over the task-built features.
  Vec ScoreCandidates(const RetweetTask& task,
                      const std::vector<RetweetCandidate>& candidates);

  /// ScoreCandidates into a caller-owned vector; the per-run user list and
  /// score buffer are engine members reused across runs, so warm replays
  /// allocate nothing beyond what ScoreTweetInto's contract states.
  void ScoreCandidatesInto(const RetweetTask& task,
                           const std::vector<RetweetCandidate>& candidates,
                           Vec* scores);

  /// Opens a disk-backed user feature store (see store/feature_store.h)
  /// and slots it in as the tier between the LRU and recomputation. The
  /// store's dim must match the extractor's history-block dim. Replaces
  /// any previously attached store.
  Status AttachStore(const std::string& dir);

  /// Builds a store directory covering every user of the extractor's
  /// world, in id order, holding exactly the SparseVec the engine's miss
  /// path would compute — the prerequisite for tier bit-identity.
  static Status BuildStore(const FeatureExtractor& extractor,
                           const std::string& dir,
                           store::FeatureStoreOptions store_options = {});

  /// Attached store, or nullptr. Exposes the store's own lookup stats.
  const store::FeatureStore* store() const { return store_.get(); }

  const ScoringEngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }
  const ScoringEngineOptions& options() const { return options_; }
  /// Current byte footprint of the per-user LRU (accounted costs).
  size_t user_cache_bytes() const { return user_cache_.bytes(); }

 private:
  /// Tweet-side request state shared by all candidates of one request.
  struct TweetEntry {
    TweetContext ctx;
    std::vector<int> dist;  ///< BFS distances from the root author
    Vec trending;           ///< endogenous indicator at tweet.time
  };

  TweetEntry BuildTweetEntry(const datagen::Tweet& tweet) const;
  /// Cache-or-compute; the reference is valid until the next engine call.
  const TweetEntry& GetTweetEntry(const datagen::Tweet& tweet);

  /// Which tier resolved a user's history block.
  enum class BlockSource : uint8_t { kWarm, kStore, kCompute };

  /// Store-then-compute fallback for an LRU miss. Never fails: a store
  /// error is counted, logged, and answered by recomputing.
  SparseVec FetchHistoryBlock(NodeId u, BlockSource* source);

  const Retina* model_;
  const FeatureExtractor* extractor_;
  /// Set only by FromCheckpoint; model_/extractor_ alias these.
  std::unique_ptr<Retina> owned_model_;
  std::unique_ptr<FeatureExtractor> owned_extractor_;
  /// Cold tier behind the LRU; nullptr until AttachStore.
  std::unique_ptr<store::FeatureStore> store_;
  ScoringEngineOptions options_;
  ScoringEngineStats stats_;

  LruCache<NodeId, SparseVec> user_cache_;
  LruCache<size_t, TweetEntry> tweet_cache_;  // keyed by tweet id
  TweetEntry scratch_entry_;  // uncached mode
  std::vector<NodeId> users_scratch_;  // per-run user list (replay path)
  Vec run_scores_;                     // per-run output buffer (replay path)

  /// Registry instruments, resolved once at construction. Purely
  /// observational mirrors of stats_ plus request-latency histograms with
  /// warm (every user-block served from cache) vs cold attribution.
  struct ObsHooks {
    static ObsHooks Resolve();

    obs::Counter* requests;
    obs::Counter* candidates;
    obs::Counter* user_hits;
    obs::Counter* user_misses;
    obs::Counter* tweet_hits;
    obs::Counter* tweet_misses;
    obs::Gauge* user_evictions;
    obs::Counter* store_hits;        ///< store.tier.hits
    obs::Counter* store_misses;      ///< store.tier.misses
    obs::Counter* store_promotes;    ///< store.tier.promotes
    obs::Counter* store_bloom_skips;  ///< store.tier.bloom_skips
    obs::Counter* store_errors;      ///< store.tier.errors
    obs::Histogram* request_warm_ns;
    obs::Histogram* request_cold_ns;
    obs::Histogram* lookup_warm_ns;     ///< per-user lookup, LRU hit
    obs::Histogram* lookup_store_ns;    ///< per-user lookup, store tier
    obs::Histogram* lookup_compute_ns;  ///< per-user lookup, recomputed
    obs::Gauge* arena_reserved;    ///< arena.bytes_reserved (this thread)
    obs::Gauge* arena_high_water;  ///< arena.high_water_bytes (this thread)
    obs::Counter* score_alloc_bytes;  ///< cumulative arena bytes per request
  };
  ObsHooks hooks_;
};

}  // namespace retina::core

#endif  // RETINA_CORE_SCORING_ENGINE_H_
