#include "core/retina.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/obs.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace retina::core {

namespace {

// Candidates per work chunk when splitting one tweet group. Groups carry at
// most max_candidates (~48) candidates, so a grain of 8 yields up to six
// chunks — enough slack for the pool without drowning in replica copies.
constexpr size_t kCandidateGrain = 8;

// Adds each replica parameter's gradient into the matching master
// parameter. Called once per chunk, in chunk order.
void AccumulateGrads(const std::vector<nn::Param*>& master,
                     const std::vector<nn::Param*>& replica) {
  for (size_t i = 0; i < master.size(); ++i) {
    master[i]->grad.Axpy(1.0, replica[i]->grad);
  }
}

// Contiguous [begin, end) runs of the same tweet_pos. The task builder
// emits candidates grouped by tweet, so these runs cover each tweet's full
// candidate set — the natural unit for sharing the attention forward and
// batching the dense layers.
std::vector<std::pair<size_t, size_t>> GroupByTweet(
    const std::vector<RetweetCandidate>& candidates) {
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
  }
  return groups;
}

}  // namespace

// Chunk-local copies of the trainable layers. The attention replica is
// only materialized on the multi-group path; the single-group path shares
// the master's attention forward and defers its backward to the reducer.
struct Retina::Replica {
  std::unique_ptr<nn::Dense> ff1, head;
  std::unique_ptr<nn::RecurrentCell> rnn;
  std::unique_ptr<nn::ExogenousAttention> attention;
  Vec dexo;          // attention-output gradient (single-group path)
  double loss = 0.0;

  std::vector<nn::Param*> Params() const {
    return LayerParams(ff1.get(), attention.get(), rnn.get(), head.get());
  }

  // Flat tensor list over a set of live layers, in a fixed order shared
  // by the master and every replica so gradient reduction pairs master
  // and replica tensors by index. Null layers are skipped on both sides
  // identically.
  static std::vector<nn::Param*> LayerParams(nn::Dense* ff1,
                                             nn::ExogenousAttention* att,
                                             nn::RecurrentCell* rnn,
                                             nn::Dense* head) {
    nn::ParamRegistry registry;
    ff1->RegisterParams(&registry, "ff1");
    if (att != nullptr) att->RegisterParams(&registry, "attention");
    if (rnn != nullptr) rnn->RegisterParams(&registry, "rnn");
    if (head != nullptr) head->RegisterParams(&registry, "head");
    return registry.params();
  }
};

Retina::Retina(size_t user_dim, size_t content_dim, size_t embed_dim,
               size_t num_intervals, RetinaOptions options)
    : options_(options),
      input_dim_(user_dim + content_dim),
      num_intervals_(std::max<size_t>(1, num_intervals)),
      init_rng_(options.seed) {
  const size_t H = options_.hidden;
  ff1_ = std::make_unique<nn::Dense>(input_dim_, H);
  if (options_.use_exogenous) {
    attention_ =
        std::make_unique<nn::ExogenousAttention>(embed_dim, embed_dim, H);
  }
  const size_t concat_dim = H + (options_.use_exogenous ? H : 0);
  if (options_.dynamic) {
    rnn_ = nn::MakeRecurrentCell(options_.recurrent, concat_dim + 2, H);
    head_ = std::make_unique<nn::Dense>(H, 1);
  } else {
    head_ = std::make_unique<nn::Dense>(concat_dim, 1);
  }

  // Registration order = construction order = the pre-registry Glorot
  // draw order, so a given (architecture, seed) yields the same initial
  // weights as it always has.
  ff1_->RegisterParams(&registry_, "ff1");
  if (attention_ != nullptr) {
    attention_->RegisterParams(&registry_, "attention");
  }
  if (rnn_ != nullptr) rnn_->RegisterParams(&registry_, "rnn");
  head_->RegisterParams(&registry_, "head");
  registry_.InitGlorot(&init_rng_);

  if (options_.use_adam) {
    optimizer_ = std::make_unique<nn::Adam>(options_.learning_rate);
  } else {
    // Momentum stabilizes the per-tweet-group steps whose gradient
    // magnitudes vary with the candidate-set size.
    optimizer_ = std::make_unique<nn::Sgd>(options_.learning_rate,
                                           /*momentum=*/0.9);
  }
  optimizer_->Register(registry_);
}

Vec Retina::HiddenForward(const Vec& user_features,
                          const Vec& content) const {
  Vec x = Concat(user_features, content);
  x = nn::LayerNorm(x);
  return ff1_->Forward(x);  // pre-activation; callers apply ReLU
}

Vec Retina::StepInput(const Vec& hidden, const Vec& exo,
                      size_t interval) const {
  Vec in = Concat(hidden, exo);
  // Interval encoding: log end-edge + relative position.
  in.push_back(std::log1p(static_cast<double>(interval + 1)) / 3.0);
  in.push_back(static_cast<double>(interval + 1) /
               static_cast<double>(num_intervals_));
  return in;
}

double Retina::TrainCandidate(nn::Dense* ff1, nn::Dense* head,
                              nn::RecurrentCell* rnn,
                              const RetweetCandidate& cand,
                              const TweetContext& ctx, const Vec& exo,
                              double inv_batch, const nn::WeightedBce& loss,
                              Vec* dexo) const {
  const size_t H = options_.hidden;
  const size_t J = num_intervals_;
  const bool has_exo = !exo.empty();
  double sample_loss = 0.0;

  Vec x = Concat(cand.user_features, ctx.content);
  x = nn::LayerNorm(x);
  const Vec h_pre = ff1->Forward(x);
  const Vec h = nn::Relu(h_pre);

  Vec dh(H, 0.0);
  if (!options_.dynamic) {
    const Vec concat = Concat(h, exo);
    const Vec logit = head->Forward(concat);
    const double p = Sigmoid(logit[0]);
    sample_loss = inv_batch * loss.Loss(p, cand.label);
    const double dlogit = inv_batch * loss.GradLogit(p, cand.label);
    const Vec dconcat = head->Backward(concat, {dlogit});
    for (size_t k = 0; k < H; ++k) dh[k] += dconcat[k];
    if (has_exo) {
      for (size_t k = 0; k < H; ++k) (*dexo)[k] += dconcat[H + k];
    }
  } else {
    // Unroll the recurrent cell over intervals. The observable output is
    // the first H entries of the cell state.
    const size_t S = rnn->state_dim();
    std::vector<nn::RecCache> caches(J);
    std::vector<Vec> hidden_states(J);
    std::vector<double> dlogits(J);
    Vec state(S, 0.0);
    for (size_t j = 0; j < J; ++j) {
      const Vec input = StepInput(h, exo, j);
      state = rnn->Forward(input, state, &caches[j]);
      hidden_states[j] = Vec(state.begin(), state.begin() + H);
      const Vec logit = head->Forward(hidden_states[j]);
      const double p = Sigmoid(logit[0]);
      sample_loss += inv_batch * loss.Loss(p, cand.interval_labels[j]);
      dlogits[j] = inv_batch * loss.GradLogit(p, cand.interval_labels[j]);
    }
    // BPTT.
    Vec dstate_carry(S, 0.0);
    for (size_t j = J; j-- > 0;) {
      const Vec dh_head = head->Backward(hidden_states[j], {dlogits[j]});
      Vec dstate = dstate_carry;
      for (size_t k = 0; k < H; ++k) dstate[k] += dh_head[k];
      Vec dx;
      rnn->Backward(caches[j], dstate, &dx, &dstate_carry);
      for (size_t k = 0; k < H; ++k) dh[k] += dx[k];
      if (has_exo) {
        for (size_t k = 0; k < H; ++k) (*dexo)[k] += dx[H + k];
      }
    }
  }
  const Vec dh_pre = nn::ReluBackward(h_pre, dh);
  ff1->Backward(x, dh_pre);
  return sample_loss;
}

double Retina::TrainBatch(
    const RetweetTask& task,
    const std::vector<std::pair<size_t, size_t>>& groups, size_t g0,
    size_t g1, const nn::WeightedBce& loss) {
  const auto& train = task.train;
  const size_t H = options_.hidden;
  double batch_loss = 0.0;

  if (g1 - g0 == 1) {
    // Single-group step (the paper's regime): the attention forward is
    // shared, parallelism splits the group's candidate set. Chunk layout
    // depends only on the candidate count, so any thread count produces
    // the same chunk-ordered gradient sums.
    const auto& [begin, end] = groups[g0];
    const TweetContext& ctx = task.tweets[train[begin].tweet_pos];
    // Mean (not summed) gradient over the mini-batch keeps step sizes
    // independent of the candidate-set size.
    const double inv_batch = 1.0 / static_cast<double>(end - begin);

    nn::AttentionCache att_cache;
    Vec exo;
    if (attention_ != nullptr) {
      exo = attention_->Forward(ctx.embedding, ctx.news_window, &att_cache);
    }

    const size_t n = end - begin;
    const std::vector<par::ChunkRange> chunks =
        par::MakeChunks(n, kCandidateGrain);
    Vec dexo(H, 0.0);
    if (chunks.size() <= 1) {
      // One chunk: train straight against the master layers. Identical
      // arithmetic to the replica path (replica grads start at the
      // master's zeros), minus the copy.
      for (size_t s = begin; s < end; ++s) {
        batch_loss += TrainCandidate(ff1_.get(), head_.get(), rnn_.get(),
                                     train[s], ctx, exo, inv_batch, loss,
                                     &dexo);
      }
    } else {
      std::vector<Replica> reps(chunks.size());
      par::ParallelForChunks(n, kCandidateGrain,
                             [&](const par::ChunkRange& chunk) {
        Replica& rep = reps[chunk.index];
        rep.ff1 = std::make_unique<nn::Dense>(*ff1_);
        rep.head = std::make_unique<nn::Dense>(*head_);
        if (rnn_ != nullptr) rep.rnn = rnn_->Clone();
        rep.dexo.assign(H, 0.0);
        for (size_t s = begin + chunk.begin; s < begin + chunk.end; ++s) {
          rep.loss += TrainCandidate(rep.ff1.get(), rep.head.get(),
                                     rep.rnn.get(), train[s], ctx, exo,
                                     inv_batch, loss, &rep.dexo);
        }
      });
      // Ordered reduction: chunk index order, so the gradient sums do not
      // depend on scheduling.
      const std::vector<nn::Param*> master = Replica::LayerParams(
          ff1_.get(), nullptr, rnn_.get(), head_.get());
      for (const Replica& rep : reps) {
        AccumulateGrads(master, rep.Params());
        Axpy(1.0, rep.dexo, &dexo);
        batch_loss += rep.loss;
      }
    }
    if (attention_ != nullptr && !att_cache.weights.empty()) {
      attention_->Backward(att_cache, dexo);
    }
    return batch_loss;
  }

  // Macro-batch: whole groups per chunk; each replica also owns an
  // attention copy since the attention backward runs inside the chunk.
  const size_t n_groups = g1 - g0;
  const std::vector<par::ChunkRange> chunks = par::MakeChunks(n_groups, 1);
  std::vector<Replica> reps(chunks.size());
  par::ParallelForChunks(n_groups, 1, [&](const par::ChunkRange& chunk) {
    Replica& rep = reps[chunk.index];
    rep.ff1 = std::make_unique<nn::Dense>(*ff1_);
    rep.head = std::make_unique<nn::Dense>(*head_);
    if (rnn_ != nullptr) rep.rnn = rnn_->Clone();
    if (attention_ != nullptr) {
      rep.attention = std::make_unique<nn::ExogenousAttention>(*attention_);
    }
    for (size_t g = chunk.begin; g < chunk.end; ++g) {
      const auto& [begin, end] = groups[g0 + g];
      const TweetContext& ctx = task.tweets[train[begin].tweet_pos];
      const double inv_batch = 1.0 / static_cast<double>(end - begin);
      nn::AttentionCache att_cache;
      Vec exo;
      if (rep.attention != nullptr) {
        exo = rep.attention->Forward(ctx.embedding, ctx.news_window,
                                     &att_cache);
      }
      Vec dexo(H, 0.0);
      for (size_t s = begin; s < end; ++s) {
        rep.loss += TrainCandidate(rep.ff1.get(), rep.head.get(),
                                   rep.rnn.get(), train[s], ctx, exo,
                                   inv_batch, loss, &dexo);
      }
      if (rep.attention != nullptr && !att_cache.weights.empty()) {
        rep.attention->Backward(att_cache, dexo);
      }
    }
  });
  const std::vector<nn::Param*> master = registry_.params();
  for (const Replica& rep : reps) {
    AccumulateGrads(master, rep.Params());
    batch_loss += rep.loss;
  }
  return batch_loss;
}

Status Retina::Train(const RetweetTask& task) {
  const auto& train = task.train;
  if (train.empty()) {
    return Status::FailedPrecondition("Retina::Train: empty train split");
  }
  // Class-imbalance weight w = lambda (log C - log C+).
  size_t total = 0, positives = 0;
  if (options_.dynamic) {
    for (const auto& cand : train) {
      total += cand.interval_labels.size();
      for (int l : cand.interval_labels) positives += (l == 1);
    }
  } else {
    total = train.size();
    for (const auto& cand : train) positives += (cand.label == 1);
  }
  nn::WeightedBce loss;
  loss.pos_weight = nn::PositiveClassWeight(total, positives, options_.lambda);

  // Contiguous runs of the same tweet form natural mini-batches sharing the
  // attention computation.
  std::vector<std::pair<size_t, size_t>> groups = GroupByTweet(train);

  Rng rng(options_.seed ^ 0xB0B0B0B0ULL);
  const size_t batch = std::max<size_t>(1, options_.batch_groups);
  epoch_losses_.assign(static_cast<size_t>(std::max(0, options_.epochs)),
                       0.0);

  // Observability: per-epoch loss / grad-norm / step-time trajectories plus
  // a per-step latency histogram. Everything below is read-only over the
  // training state (the grad norm is computed from the already-accumulated
  // master gradients before Step zeroes them), so obs on/off runs are
  // bit-identical — obs_test pins this.
  // The whole training run shares one trace id, so epoch spans and the
  // per-chunk pool events of every ParallelFor below group under a single
  // timeline trace (unless a caller already established one).
  obs::TraceRequestScope trace_run;
  RETINA_OBS_SPAN("retina.train");
  RETINA_LOG(Debug) << "training " << (options_.dynamic ? "RETINA-D" : "RETINA")
                    << ": " << train.size() << " candidates, "
                    << options_.epochs << " epochs";
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* step_counter = reg.GetCounter("train.steps");
  obs::Histogram* step_ns = reg.GetHistogram("train.step_ns");
  obs::Series* loss_series = reg.GetSeries("train.epoch_loss");
  obs::Series* grad_series = reg.GetSeries("train.epoch_grad_norm");
  obs::Series* time_series = reg.GetSeries("train.epoch_seconds");
  reg.GetCounter("train.epochs")->Add(
      static_cast<uint64_t>(std::max(0, options_.epochs)));
  reg.GetCounter("train.candidates")
      ->Add(static_cast<uint64_t>(train.size()) *
            static_cast<uint64_t>(std::max(0, options_.epochs)));
  const std::vector<nn::Param*> master_params = registry_.params();
  // Snapshot the kill switch once: when off, the loop below pays exactly
  // one predictable branch per step and no clock reads.
  const bool obs_on = obs::Enabled();

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    RETINA_OBS_SPAN("retina.train.epoch");
    std::chrono::steady_clock::time_point epoch_start;
    if (obs_on) epoch_start = std::chrono::steady_clock::now();
    rng.Shuffle(&groups);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    size_t steps = 0;
    for (size_t g0 = 0; g0 < groups.size(); g0 += batch) {
      const size_t g1 = std::min(groups.size(), g0 + batch);
      if (!obs_on) {
        epoch_loss += TrainBatch(task, groups, g0, g1, loss);
        optimizer_->Step();
        continue;
      }
      const auto step_start = std::chrono::steady_clock::now();
      epoch_loss += TrainBatch(task, groups, g0, g1, loss);
      double sq = 0.0;
      for (const nn::Param* p : master_params) {
        for (const double g : p->grad.data()) sq += g * g;
      }
      grad_norm_sum += std::sqrt(sq);
      optimizer_->Step();
      ++steps;
      step_counter->Add(1);
      step_ns->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - step_start)
              .count()));
    }
    epoch_losses_[static_cast<size_t>(epoch)] =
        epoch_loss / static_cast<double>(groups.size());
    if (obs_on) {
      loss_series->Append(epoch_losses_[static_cast<size_t>(epoch)]);
      grad_series->Append(
          steps > 0 ? grad_norm_sum / static_cast<double>(steps) : 0.0);
      time_series->Append(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch_start)
              .count());
    }
  }
  return Status::OK();
}

double Retina::PredictStatic(const TweetContext& ctx,
                             const Vec& user_features) const {
  Vec exo;
  if (attention_ != nullptr) {
    exo = attention_->Forward(ctx.embedding, ctx.news_window, nullptr);
  }
  const Vec h = nn::Relu(HiddenForward(user_features, ctx.content));
  const Vec concat = Concat(h, exo);
  return Sigmoid(head_->Forward(concat)[0]);
}

Vec Retina::PredictDynamic(const TweetContext& ctx,
                           const Vec& user_features) const {
  Vec exo;
  if (attention_ != nullptr) {
    exo = attention_->Forward(ctx.embedding, ctx.news_window, nullptr);
  }
  const Vec h = nn::Relu(HiddenForward(user_features, ctx.content));
  Vec probs(num_intervals_);
  Vec state(rnn_->state_dim(), 0.0);
  const size_t H = options_.hidden;
  for (size_t j = 0; j < num_intervals_; ++j) {
    const Vec in = StepInput(h, exo, j);
    state = rnn_->Forward(in, state, nullptr);
    const Vec hidden(state.begin(), state.begin() + H);
    probs[j] = Sigmoid(head_->Forward(hidden)[0]);
  }
  return probs;
}

double Retina::PredictScore(const TweetContext& ctx,
                            const Vec& user_features) const {
  if (!options_.dynamic) return PredictStatic(ctx, user_features);
  const Vec probs = PredictDynamic(ctx, user_features);
  double none = 1.0;
  for (double p : probs) none *= (1.0 - p);
  return 1.0 - none;
}

Matrix Retina::HiddenForwardBatch(
    const TweetContext& ctx,
    const std::vector<const Vec*>& user_features) const {
  const size_t n = user_features.size();
  Matrix x(n, input_dim_);
  for (size_t i = 0; i < n; ++i) {
    // Assemble + normalize in place: Concat's copies followed by the
    // LayerNorm loops, without the two intermediate Vecs per row.
    double* row = x.Row(i);
    const Vec& u = *user_features[i];
    std::copy(u.begin(), u.end(), row);
    std::copy(ctx.content.begin(), ctx.content.end(), row + u.size());
    nn::LayerNormInPlace(row, input_dim_);
  }
  return ff1_->ForwardBatch(x);
}

Matrix Retina::DynamicProbsBatch(const Matrix& h_relu, const Vec& exo) const {
  const size_t n = h_relu.rows();
  const size_t H = options_.hidden;
  const size_t J = num_intervals_;
  const size_t S = rnn_->state_dim();
  Matrix probs(n, J);
  // The recurrent unroll stays per candidate (its arithmetic is inherently
  // sequential), but running all candidates in interval lockstep lets the
  // head score each interval's batch as one GEMM.
  std::vector<Vec> states(n, Vec(S, 0.0));
  Matrix hidden(n, H);
  // One reused step-input buffer instead of two fresh Vecs per
  // (candidate, interval); the entries match StepInput's exactly.
  const size_t E = exo.size();
  Vec in(H + E + 2);
  for (size_t j = 0; j < J; ++j) {
    in[H + E] = std::log1p(static_cast<double>(j + 1)) / 3.0;
    in[H + E + 1] = static_cast<double>(j + 1) /
                    static_cast<double>(num_intervals_);
    for (size_t i = 0; i < n; ++i) {
      const double* hrow = h_relu.Row(i);
      std::copy(hrow, hrow + H, in.begin());
      std::copy(exo.begin(), exo.end(), in.begin() + H);
      states[i] = rnn_->Forward(in, states[i], nullptr);
      std::copy(states[i].begin(), states[i].begin() + H, hidden.Row(i));
    }
    const Matrix logits = head_->ForwardBatch(hidden);
    for (size_t i = 0; i < n; ++i) {
      probs.Row(i)[j] = Sigmoid(logits.Row(i)[0]);
    }
  }
  return probs;
}

Matrix Retina::PredictDynamicBatch(
    const TweetContext& ctx,
    const std::vector<const Vec*>& user_features) const {
  if (user_features.empty()) return Matrix(0, num_intervals_);
  Vec exo;
  if (attention_ != nullptr) {
    // Pure function of the tweet context — one forward serves the batch.
    exo = attention_->Forward(ctx.embedding, ctx.news_window, nullptr);
  }
  Matrix h = HiddenForwardBatch(ctx, user_features);
  nn::ReluInPlace(&h);
  return DynamicProbsBatch(h, exo);
}

Vec Retina::ScoreBatch(const TweetContext& ctx,
                       const std::vector<const Vec*>& user_features) const {
  const size_t n = user_features.size();
  Vec scores(n);
  if (n == 0) return scores;
  // Outermost request entry: reset this thread's arena (recording the
  // high-water mark) and run the raw-row core against it.
  ScratchArena& arena = TlsScratchArena();
  arena.Reset();
  auto** rows = static_cast<const double**>(arena.Allocate(
      n * sizeof(const double*), alignof(const double*)));
  for (size_t i = 0; i < n; ++i) rows[i] = user_features[i]->data();
  ScoreBatchRows(ctx, rows, n, scores.data(), &arena);
  return scores;
}

void Retina::ScoreBatchRows(const TweetContext& ctx,
                            const double* const* user_rows, size_t n,
                            double* scores, ScratchArena* arena) const {
  if (n == 0) return;
  const size_t H = options_.hidden;
  const size_t E = attention_ != nullptr ? attention_->hdim() : 0;
  double* exo = arena->AllocDoubles(E);
  if (attention_ != nullptr) {
    attention_->ForwardInto(ctx.embedding, ctx.news_window, arena, exo);
  }

  // Feature rows: user block + tweet content, layer-normalized in place —
  // the same copy + normalize sequence as HiddenForwardBatch.
  const size_t user_dim = input_dim_ - ctx.content.size();
  double* x = arena->AllocDoubles(n * input_dim_);
  for (size_t i = 0; i < n; ++i) {
    double* row = x + i * input_dim_;
    std::copy(user_rows[i], user_rows[i] + user_dim, row);
    std::copy(ctx.content.begin(), ctx.content.end(), row + user_dim);
    nn::LayerNormInPlace(row, input_dim_);
  }
  double* h = arena->AllocDoubles(n * H);
  ff1_->ForwardBatchRaw(x, n, h);
  for (size_t i = 0; i < n * H; ++i) h[i] = std::max(0.0, h[i]);

  if (!options_.dynamic) {
    double* concat = arena->AllocDoubles(n * (H + E));
    for (size_t i = 0; i < n; ++i) {
      const double* hrow = h + i * H;
      double* crow = concat + i * (H + E);
      std::copy(hrow, hrow + H, crow);
      std::copy(exo, exo + E, crow + H);
    }
    double* logits = arena->AllocDoubles(n);
    head_->ForwardBatchRaw(concat, n, logits);
    for (size_t i = 0; i < n; ++i) scores[i] = Sigmoid(logits[i]);
    return;
  }

  // Dynamic head: the recurrent unroll still runs on Vec/Matrix state, so
  // this path allocates; the zero-allocation contract covers the static
  // head only.
  Matrix h_relu(n, H);
  std::copy(h, h + n * H, h_relu.Row(0));
  const Vec exo_vec(exo, exo + E);
  const Matrix probs = DynamicProbsBatch(h_relu, exo_vec);
  for (size_t i = 0; i < n; ++i) {
    const double* prow = probs.Row(i);
    double none = 1.0;
    for (size_t j = 0; j < num_intervals_; ++j) none *= (1.0 - prow[j]);
    scores[i] = 1.0 - none;
  }
}

namespace {

// Flattens per-interval labels and probabilities over a candidate list.
// With `cumulative`, sample (candidate, j) carries the label "retweeted by
// the end of interval j" and the probability 1 - prod_{k<=j}(1 - P_k).
void CollectIntervalSamples(const Retina& model, const RetweetTask& task,
                            const std::vector<RetweetCandidate>& candidates,
                            size_t num_intervals, bool cumulative,
                            std::vector<int>* y, Vec* p) {
  y->assign(candidates.size() * num_intervals, 0);
  p->assign(candidates.size() * num_intervals, 0.0);
  // One batched forward per tweet group. Inference is pure and every group
  // owns a disjoint slice of the output arrays, so parallel order cannot
  // change the result.
  const auto groups = GroupByTweet(candidates);
  par::ParallelFor(groups.size(), 1, [&](size_t g) {
    const auto& [begin, end] = groups[g];
    std::vector<const Vec*> users;
    users.reserve(end - begin);
    for (size_t s = begin; s < end; ++s) {
      users.push_back(&candidates[s].user_features);
    }
    const Matrix probs = model.PredictDynamicBatch(
        task.tweets[candidates[begin].tweet_pos], users);
    for (size_t i = begin; i < end; ++i) {
      const RetweetCandidate& cand = candidates[i];
      const double* prow = probs.Row(i - begin);
      int label_so_far = 0;
      double none_so_far = 1.0;
      for (size_t j = 0; j < num_intervals; ++j) {
        const size_t out = i * num_intervals + j;
        if (cumulative) {
          label_so_far |= cand.interval_labels[j];
          none_so_far *= 1.0 - prow[j];
          (*y)[out] = label_so_far;
          (*p)[out] = 1.0 - none_so_far;
        } else {
          (*y)[out] = cand.interval_labels[j];
          (*p)[out] = prow[j];
        }
      }
    }
  });
}

BinaryEval EvalFlat(const std::vector<int>& y, const Vec& p,
                    double threshold) {
  BinaryEval eval;
  const std::vector<int> pred = ml::Threshold(p, threshold);
  eval.macro_f1 = ml::MacroF1(y, pred);
  eval.accuracy = ml::Accuracy(y, pred);
  eval.auc = ml::RocAuc(y, p);
  return eval;
}

double BestThreshold(const std::vector<int>& y, const Vec& p) {
  double best_threshold = 0.5, best_f1 = -1.0;
  for (double threshold = 0.05; threshold < 0.96; threshold += 0.05) {
    const double f1 = ml::MacroF1(y, ml::Threshold(p, threshold));
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

}  // namespace

BinaryEval Retina::EvaluatePerInterval(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates,
    double threshold) const {
  std::vector<int> y;
  Vec p;
  CollectIntervalSamples(*this, task, candidates, num_intervals_,
                         /*cumulative=*/false, &y, &p);
  return EvalFlat(y, p, threshold);
}

double Retina::CalibrateIntervalThreshold(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates) const {
  std::vector<int> y;
  Vec p;
  CollectIntervalSamples(*this, task, candidates, num_intervals_,
                         /*cumulative=*/false, &y, &p);
  return BestThreshold(y, p);
}

BinaryEval Retina::EvaluateCumulative(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates,
    double threshold) const {
  std::vector<int> y;
  Vec p;
  CollectIntervalSamples(*this, task, candidates, num_intervals_,
                         /*cumulative=*/true, &y, &p);
  return EvalFlat(y, p, threshold);
}

double Retina::CalibrateCumulativeThreshold(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates) const {
  std::vector<int> y;
  Vec p;
  CollectIntervalSamples(*this, task, candidates, num_intervals_,
                         /*cumulative=*/true, &y, &p);
  return BestThreshold(y, p);
}

Vec Retina::ScoreCandidates(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates) const {
  Vec scores(candidates.size());
  // Batched forward per tweet group (shared attention, GEMM dense layers);
  // groups write disjoint slices of `scores`, so any thread count produces
  // the same vector.
  const auto groups = GroupByTweet(candidates);
  par::ParallelFor(groups.size(), 1, [&](size_t g) {
    const auto& [begin, end] = groups[g];
    std::vector<const Vec*> users;
    users.reserve(end - begin);
    for (size_t s = begin; s < end; ++s) {
      users.push_back(&candidates[s].user_features);
    }
    const Vec out =
        ScoreBatch(task.tweets[candidates[begin].tweet_pos], users);
    std::copy(out.begin(), out.end(),
              scores.begin() + static_cast<ptrdiff_t>(begin));
  });
  return scores;
}

Status Retina::Save(io::Checkpoint* ckpt, const std::string& prefix) const {
  ckpt->PutI64(prefix + "meta/input_dim",
               static_cast<int64_t>(input_dim_));
  ckpt->PutI64(prefix + "meta/embed_dim",
               static_cast<int64_t>(
                   attention_ != nullptr ? attention_->tweet_dim() : 0));
  ckpt->PutI64(prefix + "meta/num_intervals",
               static_cast<int64_t>(num_intervals_));
  ckpt->PutI64(prefix + "options/hidden",
               static_cast<int64_t>(options_.hidden));
  ckpt->PutBool(prefix + "options/dynamic", options_.dynamic);
  ckpt->PutBool(prefix + "options/use_exogenous", options_.use_exogenous);
  ckpt->PutI64(prefix + "options/epochs", options_.epochs);
  ckpt->PutBool(prefix + "options/use_adam", options_.use_adam);
  ckpt->PutF64(prefix + "options/learning_rate", options_.learning_rate);
  ckpt->PutF64(prefix + "options/lambda", options_.lambda);
  ckpt->PutI64(prefix + "options/recurrent",
               static_cast<int64_t>(options_.recurrent));
  ckpt->PutI64(prefix + "options/batch_groups",
               static_cast<int64_t>(options_.batch_groups));
  ckpt->PutI64(prefix + "options/seed",
               static_cast<int64_t>(options_.seed));
  nn::SaveParams(registry_, ckpt, prefix + "params/");
  return optimizer_->SaveState(ckpt, prefix + "optim/");
}

Result<std::unique_ptr<Retina>> Retina::Load(const io::Checkpoint& ckpt,
                                             const std::string& prefix) {
  int64_t input_dim, embed_dim, num_intervals;
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "meta/input_dim", &input_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "meta/embed_dim", &embed_dim));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "meta/num_intervals", &num_intervals));

  RetinaOptions options;
  int64_t hidden, epochs, recurrent, batch_groups, seed;
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/hidden", &hidden));
  RETINA_RETURN_NOT_OK(
      ckpt.GetBool(prefix + "options/dynamic", &options.dynamic));
  RETINA_RETURN_NOT_OK(ckpt.GetBool(prefix + "options/use_exogenous",
                                    &options.use_exogenous));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/epochs", &epochs));
  RETINA_RETURN_NOT_OK(
      ckpt.GetBool(prefix + "options/use_adam", &options.use_adam));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "options/learning_rate",
                                   &options.learning_rate));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "options/lambda",
                                   &options.lambda));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "options/recurrent", &recurrent));
  RETINA_RETURN_NOT_OK(
      ckpt.GetI64(prefix + "options/batch_groups", &batch_groups));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "options/seed", &seed));

  if (input_dim <= 0 || num_intervals <= 0 || hidden <= 0 ||
      embed_dim < 0) {
    return Status::InvalidArgument(
        "checkpoint carries non-positive model dimensions");
  }
  if (recurrent < 0 ||
      recurrent > static_cast<int64_t>(nn::RecurrentKind::kSimpleRnn)) {
    return Status::InvalidArgument("unknown recurrent cell kind " +
                                   std::to_string(recurrent));
  }
  if (options.use_exogenous && embed_dim == 0) {
    return Status::InvalidArgument(
        "exogenous attention enabled but embed_dim is 0");
  }
  options.hidden = static_cast<size_t>(hidden);
  options.epochs = static_cast<int>(epochs);
  options.recurrent = static_cast<nn::RecurrentKind>(recurrent);
  options.batch_groups = static_cast<size_t>(batch_groups);
  options.seed = static_cast<uint64_t>(seed);

  auto model = std::make_unique<Retina>(
      static_cast<size_t>(input_dim), /*content_dim=*/0,
      static_cast<size_t>(embed_dim),
      static_cast<size_t>(num_intervals), options);
  RETINA_RETURN_NOT_OK(
      nn::LoadParams(ckpt, prefix + "params/", model->registry_));
  RETINA_RETURN_NOT_OK(
      model->optimizer_->LoadState(ckpt, prefix + "optim/"));
  return model;
}

}  // namespace retina::core
