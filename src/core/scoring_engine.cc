#include "core/scoring_engine.h"

#include <algorithm>
#include <chrono>

#include "common/arena.h"
#include "common/logging.h"

#include "common/trace.h"

namespace retina::core {

ScoringEngine::ObsHooks ScoringEngine::ObsHooks::Resolve() {
  obs::Registry& reg = obs::Registry::Global();
  return {
      reg.GetCounter("serving.requests"),
      reg.GetCounter("serving.candidates"),
      reg.GetCounter("serving.user_cache.hits"),
      reg.GetCounter("serving.user_cache.misses"),
      reg.GetCounter("serving.tweet_cache.hits"),
      reg.GetCounter("serving.tweet_cache.misses"),
      reg.GetGauge("serving.user_cache.evictions"),
      reg.GetCounter("store.tier.hits"),
      reg.GetCounter("store.tier.misses"),
      reg.GetCounter("store.tier.promotes"),
      reg.GetCounter("store.tier.bloom_skips"),
      reg.GetCounter("store.tier.errors"),
      reg.GetHistogram("serving.request_warm_ns"),
      reg.GetHistogram("serving.request_cold_ns"),
      reg.GetHistogram("store.lookup_warm_ns"),
      reg.GetHistogram("store.lookup_store_ns"),
      reg.GetHistogram("store.lookup_compute_ns"),
      reg.GetGauge("arena.bytes_reserved"),
      reg.GetGauge("arena.high_water_bytes"),
      reg.GetCounter("score.alloc_bytes"),
  };
}

ScoringEngine::ScoringEngine(const Retina* model,
                             const FeatureExtractor* extractor,
                             ScoringEngineOptions options)
    : model_(model),
      extractor_(extractor),
      options_(options),
      user_cache_(std::max<size_t>(1, options.user_cache_capacity),
                  options.user_cache_bytes),
      tweet_cache_(std::max<size_t>(1, options.tweet_cache_capacity)),
      hooks_(ObsHooks::Resolve()) {
  RETINA_LOG(Debug) << "scoring engine up: user_cache="
                    << options_.user_cache_capacity
                    << " tweet_cache=" << options_.tweet_cache_capacity
                    << (options_.cache_features ? "" : " (caching off)");
}

Result<std::unique_ptr<ScoringEngine>> ScoringEngine::FromCheckpoint(
    const datagen::SyntheticWorld& world, const io::Checkpoint& ckpt,
    ScoringEngineOptions options) {
  auto model_result = Retina::Load(ckpt, "retina/");
  RETINA_RETURN_NOT_OK(model_result.status());
  std::unique_ptr<Retina> model = std::move(model_result).ValueOrDie();

  auto fx_result = FeatureExtractor::Restore(world, ckpt, "features/");
  RETINA_RETURN_NOT_OK(fx_result.status());
  auto extractor =
      std::make_unique<FeatureExtractor>(std::move(fx_result).ValueOrDie());

  // The restored extractor must produce vectors the model was trained on:
  // the first layer consumes [user_features ; tweet_content].
  if (extractor->RetweetUserDim() + extractor->TweetContentDim() !=
      model->input_dim()) {
    return Status::InvalidArgument(
        "checkpoint mismatch: extractor feature width does not match "
        "the model's input dimension");
  }

  auto engine = std::unique_ptr<ScoringEngine>(
      new ScoringEngine(model.get(), extractor.get(), options));
  engine->owned_model_ = std::move(model);
  engine->owned_extractor_ = std::move(extractor);
  return engine;
}

namespace {

// Accounted LRU cost of a cached history block: the sparse payload plus
// the container object itself. Approximate (ignores vector slack), but
// monotone in nnz, which is what a byte budget needs.
size_t HistoryBlockCost(const SparseVec& block) {
  return sizeof(SparseVec) +
         block.nnz() * (sizeof(uint32_t) + sizeof(double));
}

}  // namespace

Status ScoringEngine::AttachStore(const std::string& dir) {
  auto store_result = store::FeatureStore::Open(dir);
  RETINA_RETURN_NOT_OK(store_result.status());
  std::unique_ptr<store::FeatureStore> opened =
      std::move(store_result).ValueOrDie();
  if (opened->dim() != extractor_->HistoryBlockDim()) {
    return Status::InvalidArgument(
        "user store dim " + std::to_string(opened->dim()) +
        " does not match the extractor history-block dim " +
        std::to_string(extractor_->HistoryBlockDim()));
  }
  store_ = std::move(opened);
  RETINA_LOG(Debug) << "user store attached: " << store_->num_entries()
                    << " users in " << store_->num_blocks() << " blocks";
  return Status::OK();
}

Status ScoringEngine::BuildStore(const FeatureExtractor& extractor,
                                 const std::string& dir,
                                 store::FeatureStoreOptions store_options) {
  auto builder_result = store::FeatureStoreBuilder::Create(
      dir, extractor.HistoryBlockDim(), store_options);
  RETINA_RETURN_NOT_OK(builder_result.status());
  std::unique_ptr<store::FeatureStoreBuilder> builder =
      std::move(builder_result).ValueOrDie();
  const size_t num_users = extractor.world().NumUsers();
  for (size_t u = 0; u < num_users; ++u) {
    RETINA_RETURN_NOT_OK(builder->Add(
        u, SparseVec::FromDense(
               extractor.ComputeHistoryBlock(static_cast<NodeId>(u)))));
  }
  return builder->Finish();
}

SparseVec ScoringEngine::FetchHistoryBlock(NodeId u, BlockSource* source) {
  if (store_ != nullptr) {
    SparseVec from_store;
    store::LookupOutcome outcome;
    Status st = store_->Lookup(u, &from_store, &outcome);
    if (!st.ok()) {
      ++stats_.store_errors;
      hooks_.store_errors->Add(1);
      RETINA_LOG(Warning) << "user store lookup failed for user " << u
                          << ": " << st.message() << "; recomputing";
    } else if (outcome == store::LookupOutcome::kFound) {
      ++stats_.store_hits;
      hooks_.store_hits->Add(1);
      obs::TraceInstant("store.tier.hit");
      *source = BlockSource::kStore;
      return from_store;
    } else {
      ++stats_.store_misses;
      hooks_.store_misses->Add(1);
      if (outcome != store::LookupOutcome::kAbsentBlock) {
        // Range or Bloom skip: the store answered without touching a block.
        hooks_.store_bloom_skips->Add(1);
      }
    }
  }
  *source = BlockSource::kCompute;
  return SparseVec::FromDense(extractor_->ComputeHistoryBlock(u));
}

ScoringEngine::TweetEntry ScoringEngine::BuildTweetEntry(
    const datagen::Tweet& tweet) const {
  const datagen::SyntheticWorld& world = extractor_->world();
  TweetEntry entry;
  entry.ctx.tweet_id = tweet.id;
  entry.ctx.hateful = tweet.is_hateful;
  entry.ctx.content = extractor_->TweetContentFeatures(tweet);
  entry.ctx.embedding = extractor_->TweetEmbedding(tweet);
  entry.ctx.news_window = extractor_->NewsEmbeddingWindow(tweet.time);
  entry.dist = world.network().BfsDistances(tweet.author, kPeerPathCutoff);
  entry.trending =
      world.TrendingIndicator(tweet.time, extractor_->config().trending_dim);
  return entry;
}

const ScoringEngine::TweetEntry& ScoringEngine::GetTweetEntry(
    const datagen::Tweet& tweet) {
  if (!options_.cache_features) {
    scratch_entry_ = BuildTweetEntry(tweet);
    return scratch_entry_;
  }
  if (TweetEntry* hit = tweet_cache_.Get(tweet.id)) {
    ++stats_.tweet_hits;
    hooks_.tweet_hits->Add(1);
    obs::TraceInstant("serving.tweet_cache.hit");
    return *hit;
  }
  ++stats_.tweet_misses;
  hooks_.tweet_misses->Add(1);
  obs::TraceInstant("serving.tweet_cache.miss");
  return *tweet_cache_.Put(tweet.id, BuildTweetEntry(tweet));
}

Vec ScoringEngine::ScoreTweet(const datagen::Tweet& tweet,
                              const std::vector<NodeId>& users) {
  Vec scores;
  ScoreTweetInto(tweet, users, &scores);
  return scores;
}

void ScoringEngine::ScoreTweetInto(const datagen::Tweet& tweet,
                                   const std::vector<NodeId>& users,
                                   Vec* scores) {
  // Mint a per-request trace id (requests replayed inside ScoreCandidates
  // inherit that batch's id instead), then open the request span under it
  // so every event below — cache hits/misses, chunk work on pool threads —
  // carries the request identity in the exported timeline.
  obs::TraceRequestScope trace_request;
  RETINA_OBS_SPAN("serving.score_tweet");
  const bool obs_on = obs::Enabled();
  std::chrono::steady_clock::time_point request_start;
  if (obs_on) request_start = std::chrono::steady_clock::now();

  ++stats_.requests;
  stats_.candidates += users.size();
  hooks_.requests->Add(1);
  hooks_.candidates->Add(users.size());
  const uint64_t misses_before = stats_.user_misses + stats_.tweet_misses;
  const TweetEntry& entry = GetTweetEntry(tweet);

  // Request epoch: candidate feature rows are assembled straight into the
  // thread's scratch arena — no per-candidate Vec, no std::vector<Vec>.
  ScratchArena& arena = TlsScratchArena();
  arena.Reset();
  const size_t n = users.size();
  const size_t user_dim = extractor_->RetweetUserDim();
  double* rows = arena.AllocDoubles(n * user_dim);
  auto** row_ptrs = static_cast<const double**>(
      arena.Allocate(n * sizeof(const double*), alignof(const double*)));

  size_t batch_hits = 0, batch_misses = 0;
  for (size_t i = 0; i < n; ++i) {
    const NodeId u = users[i];
    const SparseVec* block = nullptr;
    SparseVec fresh;
    BlockSource source = BlockSource::kWarm;
    std::chrono::steady_clock::time_point lookup_start;
    if (obs_on) lookup_start = std::chrono::steady_clock::now();
    if (options_.cache_features) {
      block = user_cache_.Get(u);
      if (block != nullptr) {
        ++stats_.user_hits;
        ++batch_hits;
        obs::TraceInstant("serving.user_cache.hit");
      } else {
        ++stats_.user_misses;
        ++batch_misses;
        obs::TraceInstant("serving.user_cache.miss");
        SparseVec fetched = FetchHistoryBlock(u, &source);
        const size_t cost = HistoryBlockCost(fetched);
        block = user_cache_.Put(u, std::move(fetched), cost);
        if (source == BlockSource::kStore) {
          ++stats_.store_promotes;
          hooks_.store_promotes->Add(1);
        }
      }
    } else {
      fresh = FetchHistoryBlock(u, &source);
      block = &fresh;
    }
    if (obs_on) {
      // Per-tier lookup latency: warm = LRU hit, store = disk tier hit,
      // compute = full recomputation. Timed only with observability on —
      // the clock reads are observational and never feed a score.
      const uint64_t lookup_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - lookup_start)
              .count());
      (source == BlockSource::kWarm     ? hooks_.lookup_warm_ns
       : source == BlockSource::kStore  ? hooks_.lookup_store_ns
                                        : hooks_.lookup_compute_ns)
          ->Record(lookup_ns);
    }
    double* row = rows + i * user_dim;
    extractor_->AssembleRetweetUserFeaturesInto(tweet, u, *block,
                                                entry.trending, entry.dist[u],
                                                row);
    row_ptrs[i] = row;
  }
  stats_.user_evictions = user_cache_.evictions();
  hooks_.user_hits->Add(batch_hits);
  hooks_.user_misses->Add(batch_misses);
  hooks_.user_evictions->Set(static_cast<int64_t>(stats_.user_evictions));

  scores->resize(n);
  if (options_.batched) {
    model_->ScoreBatchRows(entry.ctx, row_ptrs, n, scores->data(), &arena);
  } else {
    for (size_t i = 0; i < n; ++i) {
      const Vec f(row_ptrs[i], row_ptrs[i] + user_dim);
      (*scores)[i] = model_->PredictScore(entry.ctx, f);
    }
  }

  // Memory telemetry: what this thread's arena holds, its historical
  // footprint, and the cumulative bytes the scoring path has bumped
  // through it.
  hooks_.arena_reserved->Set(static_cast<int64_t>(arena.bytes_reserved()));
  hooks_.arena_high_water->Set(
      static_cast<int64_t>(arena.high_water_bytes()));
  hooks_.score_alloc_bytes->Add(arena.bytes_used());

  if (obs_on) {
    // A request is "warm" when every per-user and per-tweet invariant came
    // out of a cache; any recomputation makes it "cold". Attribution is
    // purely observational — scores are bit-identical either way.
    const bool warm = options_.cache_features &&
                      stats_.user_misses + stats_.tweet_misses ==
                          misses_before;
    const uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - request_start)
            .count());
    (warm ? hooks_.request_warm_ns : hooks_.request_cold_ns)
        ->Record(elapsed);
  }
}

Vec ScoringEngine::ScoreCandidates(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates) {
  Vec scores;
  ScoreCandidatesInto(task, candidates, &scores);
  return scores;
}

void ScoringEngine::ScoreCandidatesInto(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates, Vec* scores) {
  // One trace id for the whole batch replay; the per-tweet ScoreTweet
  // requests below nest under it rather than minting their own.
  obs::TraceRequestScope trace_batch;
  const auto& tweets = extractor_->world().tweets();
  scores->resize(candidates.size());
  // Replay as one request per contiguous tweet run — the serving analogue
  // of the grouping inside Retina::ScoreCandidates. The run-local user
  // list and score buffer are members, so their capacity survives across
  // runs and calls.
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].tweet_pos == candidates[i].tweet_pos) {
      ++j;
    }
    users_scratch_.clear();
    users_scratch_.reserve(j - i);
    for (size_t s = i; s < j; ++s) users_scratch_.push_back(candidates[s].user);
    const datagen::Tweet& tweet =
        tweets[task.tweets[candidates[i].tweet_pos].tweet_id];
    ScoreTweetInto(tweet, users_scratch_, &run_scores_);
    std::copy(run_scores_.begin(), run_scores_.end(),
              scores->begin() + static_cast<ptrdiff_t>(i));
    i = j;
  }
}

}  // namespace retina::core
