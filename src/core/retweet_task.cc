#include "core/retweet_task.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"

namespace retina::core {

namespace {

// Work recorded by the serial selection pass for the parallel feature
// pass: which tweet, and which contiguous candidate slices of the train /
// test buckets belong to it.
struct TweetWork {
  size_t tweet_index = 0;  // index into world.tweets()
  size_t train_begin = 0, train_end = 0;
  size_t test_begin = 0, test_end = 0;
};

}  // namespace

Result<RetweetTask> BuildRetweetTask(const FeatureExtractor& extractor,
                                     const RetweetTaskOptions& options) {
  const datagen::SyntheticWorld& world = extractor.world();
  const auto& tweets = world.tweets();
  const auto& cascades = world.cascades();
  if (options.interval_edges.size() < 2) {
    return Status::InvalidArgument(
        "BuildRetweetTask: need at least two interval edges");
  }

  std::vector<size_t> eligible;
  for (size_t i = 0; i < tweets.size(); ++i) {
    if (cascades[i].retweets.size() < options.min_retweets) continue;
    if (world.news().MostRecentBefore(tweets[i].time, options.min_news)
            .size() < options.min_news) {
      continue;
    }
    eligible.push_back(i);
  }
  if (eligible.size() < 20) {
    return Status::FailedPrecondition(
        "BuildRetweetTask: too few qualifying cascades");
  }

  Rng rng(options.seed);
  rng.Shuffle(&eligible);
  const size_t n_test = static_cast<size_t>(
      options.test_fraction * static_cast<double>(eligible.size()));

  RetweetTask task;
  task.interval_edges = options.interval_edges;
  task.user_dim = extractor.RetweetUserDim();
  task.content_dim = extractor.TweetContentDim();
  task.embed_dim = extractor.config().doc2vec_dim;
  task.tweets.reserve(eligible.size());

  const size_t n_intervals = task.NumIntervals();
  const size_t n_users = world.NumUsers();

  // Pass 1 (serial): candidate selection. Consumes the task RNG in
  // exactly the order the fully serial builder did, so the emitted task is
  // bit-identical; the expensive deterministic work (content features,
  // BFS, per-candidate user features) is deferred to the parallel pass.
  std::vector<TweetWork> work(eligible.size());
  for (size_t k = 0; k < eligible.size(); ++k) {
    const size_t ti = eligible[k];
    const datagen::Tweet& tw = tweets[ti];
    const datagen::Cascade& cascade = cascades[ti];

    TweetContext ctx;
    ctx.tweet_id = ti;
    ctx.hateful = tw.is_hateful;
    ctx.cascade_size = cascade.retweets.size();
    const size_t tweet_pos = task.tweets.size();
    task.tweets.push_back(std::move(ctx));

    std::unordered_set<NodeId> in_cascade{tw.author};
    for (const auto& rt : cascade.retweets) in_cascade.insert(rt.user);

    const bool is_test = k < n_test;
    auto& bucket = is_test ? task.test : task.train;
    TweetWork& tw_work = work[k];
    tw_work.tweet_index = ti;
    (is_test ? tw_work.test_begin : tw_work.train_begin) = bucket.size();

    // Positives: actual retweeters (capped).
    size_t n_pos = 0;
    for (const auto& rt : cascade.retweets) {
      if (n_pos >= options.max_candidates / 2) break;
      RetweetCandidate cand;
      cand.tweet_pos = tweet_pos;
      cand.user = rt.user;
      cand.label = 1;
      cand.interval_labels.assign(n_intervals, 0);
      const double dt = rt.time - tw.time;
      size_t interval = n_intervals - 1;
      for (size_t j = 0; j + 1 < task.interval_edges.size(); ++j) {
        if (dt <= task.interval_edges[j + 1]) {
          interval = j;
          break;
        }
      }
      cand.interval_labels[interval] = 1;
      bucket.push_back(std::move(cand));
      ++n_pos;
    }

    // Negatives: inactive followers of the author (plus a slice of random
    // non-followers for the beyond-organic setting).
    const auto followers = world.network().Followers(tw.author);
    const size_t n_neg =
        std::min(options.max_candidates - n_pos, options.negatives_per_tweet);
    std::unordered_set<NodeId> chosen;
    size_t added = 0, attempts = 0;
    while (added < n_neg && attempts < n_neg * 20) {
      ++attempts;
      NodeId v;
      if (!followers.empty() &&
          !rng.Bernoulli(options.non_follower_negatives)) {
        v = followers[rng.UniformInt(followers.size())];
      } else {
        v = static_cast<NodeId>(rng.UniformInt(n_users));
      }
      if (in_cascade.count(v) > 0 || chosen.count(v) > 0) continue;
      chosen.insert(v);
      RetweetCandidate cand;
      cand.tweet_pos = tweet_pos;
      cand.user = v;
      cand.label = 0;
      cand.interval_labels.assign(n_intervals, 0);
      bucket.push_back(std::move(cand));
      ++added;
    }
    (is_test ? tw_work.test_end : tw_work.train_end) = bucket.size();
  }

  // Pass 2 (parallel): deterministic feature extraction. Each tweet owns
  // its TweetContext and disjoint candidate slices, so no locking and no
  // dependence on the thread count.
  par::ParallelFor(work.size(), 1, [&](size_t k) {
    const TweetWork& tw_work = work[k];
    const datagen::Tweet& tw = tweets[tw_work.tweet_index];
    TweetContext& ctx = task.tweets[k];
    ctx.content = extractor.TweetContentFeatures(tw);
    ctx.embedding = extractor.TweetEmbedding(tw);
    ctx.news_window = extractor.NewsEmbeddingWindow(tw.time);
    ctx.news_tfidf = extractor.NewsTfIdfAverage(tw.time);

    // One BFS from the author, shared across candidates.
    const std::vector<int> dist =
        world.network().BfsDistances(tw.author, kPeerPathCutoff);
    for (size_t i = tw_work.train_begin; i < tw_work.train_end; ++i) {
      RetweetCandidate& cand = task.train[i];
      cand.user_features =
          extractor.RetweetUserFeatures(tw, cand.user, dist[cand.user]);
    }
    for (size_t i = tw_work.test_begin; i < tw_work.test_end; ++i) {
      RetweetCandidate& cand = task.test[i];
      cand.user_features =
          extractor.RetweetUserFeatures(tw, cand.user, dist[cand.user]);
    }
  });
  if (task.train.empty() || task.test.empty()) {
    return Status::FailedPrecondition("BuildRetweetTask: empty split");
  }
  return task;
}

BinaryEval EvaluateBinary(const std::vector<RetweetCandidate>& candidates,
                          const Vec& scores) {
  std::vector<int> y(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) y[i] = candidates[i].label;
  BinaryEval eval;
  const std::vector<int> pred = ml::Threshold(scores);
  eval.macro_f1 = ml::MacroF1(y, pred);
  eval.accuracy = ml::Accuracy(y, pred);
  eval.auc = ml::RocAuc(y, scores);
  return eval;
}

std::vector<ml::RankingQuery> MakeRankingQueries(
    const RetweetTask& task,
    const std::vector<RetweetCandidate>& candidates, const Vec& scores,
    int hate_filter) {
  // Group by tweet_pos preserving candidate order.
  std::vector<ml::RankingQuery> queries(task.tweets.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const size_t t = candidates[i].tweet_pos;
    if (hate_filter >= 0 &&
        static_cast<int>(task.tweets[t].hateful) != hate_filter) {
      continue;
    }
    queries[t].scores.push_back(scores[i]);
    queries[t].relevant.push_back(candidates[i].label);
  }
  // Drop empty queries.
  std::vector<ml::RankingQuery> out;
  for (auto& q : queries) {
    if (!q.scores.empty()) out.push_back(std::move(q));
  }
  return out;
}

}  // namespace retina::core
