#include "ml/preprocess.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace retina::ml {

namespace {

// Modified Gram-Schmidt orthonormalization of the columns of A (d x k),
// in place. Near-zero columns are replaced with zeros.
void Orthonormalize(Matrix* A) {
  const size_t d = A->rows(), k = A->cols();
  for (size_t j = 0; j < k; ++j) {
    for (size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (size_t i = 0; i < d; ++i) dot += (*A)(i, j) * (*A)(i, prev);
      for (size_t i = 0; i < d; ++i) (*A)(i, j) -= dot * (*A)(i, prev);
    }
    double norm = 0.0;
    for (size_t i = 0; i < d; ++i) norm += (*A)(i, j) * (*A)(i, j);
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (size_t i = 0; i < d; ++i) (*A)(i, j) /= norm;
    } else {
      for (size_t i = 0; i < d; ++i) (*A)(i, j) = 0.0;
    }
  }
}

// Jacobi eigendecomposition of a small symmetric matrix S (k x k).
// Returns eigenvalues (descending) and fills V with matching eigenvectors
// as columns.
Vec JacobiEigen(Matrix S, Matrix* V) {
  const size_t k = S.rows();
  *V = Matrix(k, k);
  for (size_t i = 0; i < k; ++i) (*V)(i, i) = 1.0;
  for (int sweep = 0; sweep < 60; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < k; ++p)
      for (size_t q = p + 1; q < k; ++q) off += S(p, q) * S(p, q);
    if (off < 1e-18) break;
    for (size_t p = 0; p < k; ++p) {
      for (size_t q = p + 1; q < k; ++q) {
        if (std::abs(S(p, q)) < 1e-15) continue;
        const double theta = (S(q, q) - S(p, p)) / (2.0 * S(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t i = 0; i < k; ++i) {
          const double sip = S(i, p), siq = S(i, q);
          S(i, p) = c * sip - s * siq;
          S(i, q) = s * sip + c * siq;
        }
        for (size_t i = 0; i < k; ++i) {
          const double spi = S(p, i), sqi = S(q, i);
          S(p, i) = c * spi - s * sqi;
          S(q, i) = s * spi + c * sqi;
        }
        for (size_t i = 0; i < k; ++i) {
          const double vip = (*V)(i, p), viq = (*V)(i, q);
          (*V)(i, p) = c * vip - s * viq;
          (*V)(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  Vec eig(k);
  for (size_t i = 0; i < k; ++i) eig[i] = S(i, i);
  // Sort descending, permuting V columns.
  std::vector<size_t> order(k);
  for (size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return eig[a] > eig[b]; });
  Vec sorted_eig(k);
  Matrix sorted_v(k, k);
  for (size_t j = 0; j < k; ++j) {
    sorted_eig[j] = eig[order[j]];
    for (size_t i = 0; i < k; ++i) sorted_v(i, j) = (*V)(i, order[j]);
  }
  *V = std::move(sorted_v);
  return sorted_eig;
}

}  // namespace

Status Pca::Fit(const Matrix& X) {
  const size_t n = X.rows(), d = X.cols();
  const size_t k = options_.n_components;
  if (k == 0 || k > std::min(n, d)) {
    return Status::InvalidArgument("Pca::Fit: bad n_components");
  }
  mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = X.Row(i);
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  const size_t kk = std::min(d, k + options_.oversample);
  Rng rng(options_.seed);
  // Q: d x kk random start.
  Matrix Q(d, kk);
  for (double& v : Q.data()) v = rng.Normal();
  Orthonormalize(&Q);

  // Subspace iteration: Q <- orth(C * Q) where C = Xc^T Xc / n applied
  // implicitly (two passes over X per iteration).
  auto apply_cov = [&](const Matrix& Qin) {
    Matrix out(d, kk);
    // tmp = Xc * Qin (n x kk), accumulate out = Xc^T * tmp.
    for (size_t i = 0; i < n; ++i) {
      const double* row = X.Row(i);
      Vec proj(kk, 0.0);
      for (size_t j = 0; j < d; ++j) {
        const double c = row[j] - mean_[j];
        if (c == 0.0) continue;
        for (size_t l = 0; l < kk; ++l) proj[l] += c * Qin(j, l);
      }
      for (size_t j = 0; j < d; ++j) {
        const double c = row[j] - mean_[j];
        if (c == 0.0) continue;
        for (size_t l = 0; l < kk; ++l) out(j, l) += c * proj[l];
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (double& v : out.data()) v *= inv_n;
    return out;
  };

  for (int it = 0; it < options_.power_iterations; ++it) {
    Q = apply_cov(Q);
    Orthonormalize(&Q);
  }

  // Small projected covariance S = Q^T C Q (kk x kk).
  const Matrix CQ = apply_cov(Q);
  Matrix S(kk, kk);
  for (size_t a = 0; a < kk; ++a) {
    for (size_t b = 0; b < kk; ++b) {
      double acc = 0.0;
      for (size_t i = 0; i < d; ++i) acc += Q(i, a) * CQ(i, b);
      S(a, b) = acc;
    }
  }
  // Symmetrize numerical noise.
  for (size_t a = 0; a < kk; ++a) {
    for (size_t b = a + 1; b < kk; ++b) {
      const double v = 0.5 * (S(a, b) + S(b, a));
      S(a, b) = S(b, a) = v;
    }
  }
  Matrix V;
  const Vec eig = JacobiEigen(std::move(S), &V);

  components_ = Matrix(k, d);
  explained_variance_.assign(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    explained_variance_[c] = std::max(0.0, eig[c]);
    for (size_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (size_t l = 0; l < kk; ++l) acc += Q(j, l) * V(l, c);
      components_(c, j) = acc;
    }
  }
  return Status::OK();
}

Vec Pca::Transform(const Vec& x) const {
  const size_t k = components_.rows(), d = components_.cols();
  Vec out(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const double* row = components_.Row(c);
    double acc = 0.0;
    const size_t dd = std::min(d, x.size());
    for (size_t j = 0; j < dd; ++j) acc += row[j] * (x[j] - mean_[j]);
    out[c] = acc;
  }
  return out;
}

Matrix Pca::TransformBatch(const Matrix& X) const {
  Matrix out(X.rows(), components_.rows());
  for (size_t i = 0; i < X.rows(); ++i) out.SetRow(i, Transform(X.RowVec(i)));
  return out;
}

Status KBestMutualInfo::Fit(const Matrix& X, const std::vector<int>& y) {
  const size_t n = X.rows(), d = X.cols();
  if (n == 0 || n != y.size()) {
    return Status::InvalidArgument("KBestMutualInfo::Fit: bad shapes");
  }
  scores_.assign(d, 0.0);
  size_t n_pos = 0;
  for (int v : y) n_pos += (v == 1);
  const double py1 = static_cast<double>(n_pos) / static_cast<double>(n);
  const double py0 = 1.0 - py1;

  std::vector<double> col(n);
  std::vector<size_t> order(n);
  for (size_t f = 0; f < d; ++f) {
    for (size_t i = 0; i < n; ++i) col[i] = X(i, f);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return col[a] < col[b]; });
    // Equal-frequency bins (ties stay in one bin via value boundaries).
    std::vector<double> joint(bins_ * 2, 0.0);
    size_t start = 0;
    size_t bin = 0;
    while (start < n && bin < bins_) {
      size_t end = std::min(n, start + (n - start) / (bins_ - bin));
      if (end <= start) end = start + 1;
      // Extend over ties.
      while (end < n && col[order[end]] == col[order[end - 1]]) ++end;
      for (size_t i = start; i < end; ++i) {
        joint[bin * 2 + static_cast<size_t>(y[order[i]] == 1)] += 1.0;
      }
      start = end;
      ++bin;
    }
    double mi = 0.0;
    for (size_t b = 0; b < bins_; ++b) {
      const double pb =
          (joint[b * 2] + joint[b * 2 + 1]) / static_cast<double>(n);
      if (pb <= 0.0) continue;
      for (int c = 0; c < 2; ++c) {
        const double pbc = joint[b * 2 + static_cast<size_t>(c)] /
                           static_cast<double>(n);
        if (pbc <= 0.0) continue;
        const double pc = c == 1 ? py1 : py0;
        if (pc <= 0.0) continue;
        mi += pbc * std::log(pbc / (pb * pc));
      }
    }
    scores_[f] = mi;
  }

  selected_.resize(d);
  for (size_t f = 0; f < d; ++f) selected_[f] = f;
  std::sort(selected_.begin(), selected_.end(), [&](size_t a, size_t b) {
    if (scores_[a] != scores_[b]) return scores_[a] > scores_[b];
    return a < b;
  });
  if (selected_.size() > k_) selected_.resize(k_);
  std::sort(selected_.begin(), selected_.end());
  return Status::OK();
}

Vec KBestMutualInfo::Transform(const Vec& x) const {
  Vec out(selected_.size(), 0.0);
  for (size_t i = 0; i < selected_.size(); ++i) {
    if (selected_[i] < x.size()) out[i] = x[selected_[i]];
  }
  return out;
}

Matrix KBestMutualInfo::TransformBatch(const Matrix& X) const {
  Matrix out(X.rows(), selected_.size());
  for (size_t i = 0; i < X.rows(); ++i) out.SetRow(i, Transform(X.RowVec(i)));
  return out;
}

}  // namespace retina::ml
