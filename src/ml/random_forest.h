// Random forest: bagged CART trees with sqrt(d) feature subsampling.
// Table VI's Random Forest baseline uses 50 estimators.

#ifndef RETINA_ML_RANDOM_FOREST_H_
#define RETINA_ML_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace retina::ml {

struct RandomForestOptions {
  size_t n_estimators = 50;
  int max_depth = 10;
  size_t min_samples_leaf = 2;
  bool balanced_class_weight = true;
  uint64_t seed = 17;
};

/// \brief Bootstrap-aggregated decision trees.
class RandomForest : public BinaryClassifier {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "Random Forest"; }

  size_t NumTrees() const { return trees_.size(); }

  /// Writes every fitted tree under `prefix` ("tree<i>/" scopes).
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this forest with the one saved under `prefix`.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  RandomForestOptions options_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace retina::ml

#endif  // RETINA_ML_RANDOM_FOREST_H_
