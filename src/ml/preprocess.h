// Dimensionality reduction: PCA (randomized subspace iteration) and
// K-best feature selection by mutual information — the "Proc." variants of
// Table IV (PCA with 50 components; top-K with K=50).

#ifndef RETINA_ML_PREPROCESS_H_
#define RETINA_ML_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/vec.h"

namespace retina::ml {

struct PcaOptions {
  size_t n_components = 50;
  /// Subspace (power) iterations for the randomized range finder.
  int power_iterations = 4;
  /// Oversampling columns beyond n_components.
  size_t oversample = 10;
  uint64_t seed = 5;
};

/// \brief Principal component analysis via randomized subspace iteration.
///
/// Exact eigendecomposition of the 3645 x 3645 covariance the paper's
/// feature space induces is avoided; randomized range finding with a few
/// power iterations recovers the leading 50 components to working accuracy.
class Pca {
 public:
  explicit Pca(PcaOptions options = {}) : options_(options) {}

  /// Fits components on X (rows = samples). Returns InvalidArgument when
  /// n_components exceeds min(rows, cols).
  Status Fit(const Matrix& X);

  /// Projects one centered sample onto the components.
  Vec Transform(const Vec& x) const;

  /// Projects every row of X.
  Matrix TransformBatch(const Matrix& X) const;

  /// Explained variance per component (descending).
  const Vec& explained_variance() const { return explained_variance_; }

  size_t NumComponents() const { return components_.rows(); }

 private:
  PcaOptions options_;
  Vec mean_;
  Matrix components_;  // n_components x d
  Vec explained_variance_;
};

/// \brief Select the K features with the highest mutual information with
/// the binary label (features discretized into equal-frequency bins).
class KBestMutualInfo {
 public:
  explicit KBestMutualInfo(size_t k, size_t bins = 8) : k_(k), bins_(bins) {}

  Status Fit(const Matrix& X, const std::vector<int>& y);

  /// Indices of the selected features (descending MI).
  const std::vector<size_t>& selected() const { return selected_; }

  /// Keeps only the selected columns of x.
  Vec Transform(const Vec& x) const;

  Matrix TransformBatch(const Matrix& X) const;

  /// MI score per original feature.
  const Vec& scores() const { return scores_; }

 private:
  size_t k_;
  size_t bins_;
  std::vector<size_t> selected_;
  Vec scores_;
};

}  // namespace retina::ml

#endif  // RETINA_ML_PREPROCESS_H_
