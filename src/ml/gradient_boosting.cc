#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

namespace retina::ml {

namespace {
// L1 soft-thresholding of the gradient sum (xgboost reg_alpha).
double ThresholdedG(double g, double alpha) {
  if (g > alpha) return g - alpha;
  if (g < -alpha) return g + alpha;
  return 0.0;
}
}  // namespace

Status GradientBoosting::Fit(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("GradientBoosting::Fit: bad shapes");
  }
  trees_.clear();
  const size_t n = X.rows();

  // Base score = prior log-odds.
  size_t n_pos = 0;
  for (int v : y) n_pos += (v == 1);
  const double p0 = std::clamp(
      static_cast<double>(n_pos) / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p0 / (1.0 - p0));

  Vec margin(n, base_score_);
  for (size_t m = 0; m < options_.n_estimators; ++m) {
    // Second-order logistic gradients.
    Vec grad(n), hess(n);
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-12, p * (1.0 - p));
    }
    Tree tree;
    std::vector<size_t> indices(n);
    for (size_t i = 0; i < n; ++i) indices[i] = i;
    BuildNode(X, grad, hess, &indices, 0, &tree);
    for (size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * PredictTree(tree, X.RowVec(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

int GradientBoosting::BuildNode(const Matrix& X, const Vec& grad,
                                const Vec& hess,
                                std::vector<size_t>* indices, int depth,
                                Tree* tree) const {
  const int node_id = static_cast<int>(tree->size());
  tree->emplace_back();

  double g_sum = 0.0, h_sum = 0.0;
  for (size_t i : *indices) {
    g_sum += grad[i];
    h_sum += hess[i];
  }
  const double lambda = options_.reg_lambda;
  (*tree)[node_id].value =
      -ThresholdedG(g_sum, options_.reg_alpha) / (h_sum + lambda);

  if (depth >= options_.max_depth ||
      indices->size() < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  auto leaf_score = [&](double g, double h) {
    const double gt = ThresholdedG(g, options_.reg_alpha);
    return gt * gt / (h + lambda);
  };
  const double parent_score = leaf_score(g_sum, h_sum);

  int best_feature = -1;
  double best_threshold = 0.0, best_gain = options_.min_gain;
  std::vector<size_t> sorted = *indices;
  for (size_t f = 0; f < X.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return X(a, f) < X(b, f);
    });
    double gl = 0.0, hl = 0.0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      const size_t i = sorted[k];
      gl += grad[i];
      hl += hess[i];
      const double v = X(i, f), v_next = X(sorted[k + 1], f);
      if (v == v_next) continue;
      if (k + 1 < options_.min_samples_leaf ||
          sorted.size() - (k + 1) < options_.min_samples_leaf) {
        continue;
      }
      const double gain = 0.5 * (leaf_score(gl, hl) +
                                 leaf_score(g_sum - gl, h_sum - hl) -
                                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<size_t> left, right;
  for (size_t i : *indices) {
    (X(i, static_cast<size_t>(best_feature)) <= best_threshold ? left : right)
        .push_back(i);
  }
  if (left.empty() || right.empty()) return node_id;

  (*tree)[node_id].feature = best_feature;
  (*tree)[node_id].threshold = best_threshold;
  indices->clear();
  indices->shrink_to_fit();
  const int l = BuildNode(X, grad, hess, &left, depth + 1, tree);
  const int r = BuildNode(X, grad, hess, &right, depth + 1, tree);
  (*tree)[node_id].feature = best_feature;  // survives vector reallocation
  (*tree)[node_id].threshold = best_threshold;
  (*tree)[node_id].left = l;
  (*tree)[node_id].right = r;
  return node_id;
}

double GradientBoosting::PredictTree(const Tree& tree, const Vec& x) const {
  if (tree.empty()) return 0.0;
  int cur = 0;
  for (;;) {
    const Node& node = tree[static_cast<size_t>(cur)];
    if (node.feature < 0) return node.value;
    const size_t f = static_cast<size_t>(node.feature);
    const double v = f < x.size() ? x[f] : 0.0;
    cur = v <= node.threshold ? node.left : node.right;
    if (cur < 0) return node.value;
  }
}

void GradientBoosting::SaveTo(io::Checkpoint* ckpt,
                              const std::string& prefix) const {
  ckpt->PutF64(prefix + "base_score", base_score_);
  // learning_rate scales every tree's contribution inside PredictProba, so
  // it is model state, not just a fit-time knob.
  ckpt->PutF64(prefix + "learning_rate", options_.learning_rate);
  ckpt->PutI64(prefix + "n_trees", static_cast<int64_t>(trees_.size()));
  for (size_t t = 0; t < trees_.size(); ++t) {
    const Tree& tree = trees_[t];
    const std::string scope = prefix + "tree" + std::to_string(t) + "/";
    const size_t n = tree.size();
    std::vector<int64_t> feature(n), left(n), right(n);
    Vec threshold(n), value(n);
    for (size_t i = 0; i < n; ++i) {
      feature[i] = tree[i].feature;
      threshold[i] = tree[i].threshold;
      left[i] = tree[i].left;
      right[i] = tree[i].right;
      value[i] = tree[i].value;
    }
    ckpt->PutI64List(scope + "feature", feature);
    ckpt->PutVec(scope + "threshold", threshold);
    ckpt->PutI64List(scope + "left", left);
    ckpt->PutI64List(scope + "right", right);
    ckpt->PutVec(scope + "value", value);
  }
}

Status GradientBoosting::LoadFrom(const io::Checkpoint& ckpt,
                                  const std::string& prefix) {
  double base_score = 0.0, learning_rate = 0.0;
  int64_t n_trees = 0;
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "base_score", &base_score));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "learning_rate", &learning_rate));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "n_trees", &n_trees));
  if (n_trees < 0) {
    return Status::InvalidArgument("gradient boosting: negative tree count");
  }
  std::vector<Tree> trees;
  trees.reserve(static_cast<size_t>(n_trees));
  for (int64_t t = 0; t < n_trees; ++t) {
    const std::string scope = prefix + "tree" + std::to_string(t) + "/";
    std::vector<int64_t> feature, left, right;
    Vec threshold, value;
    RETINA_RETURN_NOT_OK(ckpt.GetI64List(scope + "feature", &feature));
    RETINA_RETURN_NOT_OK(ckpt.GetVec(scope + "threshold", &threshold));
    RETINA_RETURN_NOT_OK(ckpt.GetI64List(scope + "left", &left));
    RETINA_RETURN_NOT_OK(ckpt.GetI64List(scope + "right", &right));
    RETINA_RETURN_NOT_OK(ckpt.GetVec(scope + "value", &value));
    const size_t n = feature.size();
    if (threshold.size() != n || left.size() != n || right.size() != n ||
        value.size() != n) {
      return Status::InvalidArgument(
          "corrupt boosted tree: node array sizes disagree under '" + scope +
          "'");
    }
    const int64_t limit = static_cast<int64_t>(n);
    Tree tree(n);
    for (size_t i = 0; i < n; ++i) {
      if (feature[i] < -1 || left[i] < -1 || left[i] >= limit ||
          right[i] < -1 || right[i] >= limit) {
        return Status::InvalidArgument(
            "corrupt boosted tree: node index out of range under '" + scope +
            "'");
      }
      tree[i].feature = static_cast<int>(feature[i]);
      tree[i].threshold = threshold[i];
      tree[i].left = static_cast<int>(left[i]);
      tree[i].right = static_cast<int>(right[i]);
      tree[i].value = value[i];
    }
    trees.push_back(std::move(tree));
  }
  base_score_ = base_score;
  options_.learning_rate = learning_rate;
  trees_ = std::move(trees);
  return Status::OK();
}

double GradientBoosting::PredictProba(const Vec& x) const {
  double margin = base_score_;
  for (const Tree& tree : trees_) {
    margin += options_.learning_rate * PredictTree(tree, x);
  }
  return Sigmoid(margin);
}

}  // namespace retina::ml
