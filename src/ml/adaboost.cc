#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace retina::ml {

Status AdaBoost::Fit(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("AdaBoost::Fit: bad shapes");
  }
  stumps_.clear();
  alphas_.clear();
  const size_t n = X.rows();
  Vec w(n, 1.0 / static_cast<double>(n));
  Rng rng(options_.seed);

  for (size_t m = 0; m < options_.n_estimators; ++m) {
    DecisionTreeOptions topts;
    topts.max_depth = options_.base_depth;
    topts.min_samples_leaf = 1;
    topts.min_samples_split = 2;
    topts.balanced_class_weight = false;  // boosting handles the weighting
    topts.seed = rng.NextU64();
    auto stump = std::make_unique<DecisionTree>(topts);
    RETINA_RETURN_NOT_OK(stump->FitWeighted(X, y, w));

    // Weighted error.
    double err = 0.0;
    std::vector<int> pred(n);
    for (size_t i = 0; i < n; ++i) {
      pred[i] = stump->PredictProba(X.RowVec(i)) >= 0.5 ? 1 : 0;
      if (pred[i] != y[i]) err += w[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5 && m > 0) break;  // no better than chance — stop

    const double alpha =
        options_.learning_rate * 0.5 * std::log((1.0 - err) / err);
    stumps_.push_back(std::move(stump));
    alphas_.push_back(alpha);

    // Re-weight and normalize.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      w[i] *= std::exp(pred[i] != y[i] ? alpha : -alpha);
      total += w[i];
    }
    for (double& v : w) v /= total;
  }
  if (stumps_.empty()) {
    return Status::Internal("AdaBoost::Fit: no usable stump");
  }
  return Status::OK();
}

void AdaBoost::SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const {
  ckpt->PutVec(prefix + "alphas", alphas_);
  ckpt->PutI64(prefix + "n_stumps", static_cast<int64_t>(stumps_.size()));
  for (size_t i = 0; i < stumps_.size(); ++i) {
    stumps_[i]->SaveTo(ckpt, prefix + "stump" + std::to_string(i) + "/");
  }
}

Status AdaBoost::LoadFrom(const io::Checkpoint& ckpt,
                          const std::string& prefix) {
  Vec alphas;
  int64_t n_stumps = 0;
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "alphas", &alphas));
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "n_stumps", &n_stumps));
  if (n_stumps < 0 || alphas.size() != static_cast<size_t>(n_stumps)) {
    return Status::InvalidArgument(
        "adaboost: stump count does not match alpha weights");
  }
  std::vector<std::unique_ptr<DecisionTree>> stumps;
  stumps.reserve(static_cast<size_t>(n_stumps));
  for (int64_t i = 0; i < n_stumps; ++i) {
    auto stump = std::make_unique<DecisionTree>();
    RETINA_RETURN_NOT_OK(
        stump->LoadFrom(ckpt, prefix + "stump" + std::to_string(i) + "/"));
    stumps.push_back(std::move(stump));
  }
  stumps_ = std::move(stumps);
  alphas_ = std::move(alphas);
  return Status::OK();
}

double AdaBoost::PredictProba(const Vec& x) const {
  if (stumps_.empty()) return 0.5;
  double score = 0.0, total_alpha = 0.0;
  for (size_t m = 0; m < stumps_.size(); ++m) {
    const double vote = stumps_[m]->PredictProba(x) >= 0.5 ? 1.0 : -1.0;
    score += alphas_[m] * vote;
    total_alpha += std::abs(alphas_[m]);
  }
  if (total_alpha <= 0.0) return 0.5;
  // Squash the normalized margin to (0, 1).
  return Sigmoid(2.0 * score / total_alpha * 3.0);
}

}  // namespace retina::ml
