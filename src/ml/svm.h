// Support vector machines.
//
// LinearSVM: L2-regularized hinge loss trained with Pegasos-style SGD
// (scikit-learn LinearSVC / SVM-l analogue; Table III uses penalty=l2,
// class_weight=balanced). Probabilities come from a logistic squashing of
// the margin (Platt-style with fixed slope).
//
// KernelSVM: RBF-kernel SVM approximated with Random Fourier Features
// (Rahimi & Recht) feeding a LinearSVM. Exact kernel SVM on the paper's
// 15k x 3645 "None" setting is quadratic in samples; RFF keeps the Table IV
// sweep tractable while preserving the RBF decision family. Documented as a
// substitution in DESIGN.md.

#ifndef RETINA_ML_SVM_H_
#define RETINA_ML_SVM_H_

#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"

namespace retina::ml {

struct LinearSVMOptions {
  double lambda = 1e-4;  ///< L2 regularization strength.
  int epochs = 40;
  bool balanced_class_weight = true;  // Table III
  /// Slope of the probability squashing applied to the margin.
  double platt_scale = 2.0;
  uint64_t seed = 7;
};

/// \brief Linear SVM (hinge loss, Pegasos SGD).
class LinearSVM : public BinaryClassifier {
 public:
  explicit LinearSVM(LinearSVMOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "SVM-l"; }

  /// Signed margin w.x + b.
  double DecisionFunction(const Vec& x) const;

  /// Writes weights, bias, and the predict-time Platt slope under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this model with the one saved under `prefix`.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  LinearSVMOptions options_;
  Vec w_;
  double b_ = 0.0;
};

struct KernelSVMOptions {
  /// RBF bandwidth gamma; <= 0 selects 1/num_features ("scale"-like).
  double gamma = -1.0;
  /// Number of random Fourier features.
  size_t n_components = 256;
  LinearSVMOptions linear;
  uint64_t seed = 13;
};

/// \brief RBF-kernel SVM via random Fourier features + LinearSVM.
class KernelSVM : public BinaryClassifier {
 public:
  explicit KernelSVM(KernelSVMOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "SVM-r"; }

  /// Writes the Fourier-feature map (projection, phases, scale) and the
  /// nested linear SVM under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this model with the one saved under `prefix`; validates
  /// projection/phase shape consistency.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  Vec MapFeatures(const Vec& x) const;

  KernelSVMOptions options_;
  Matrix proj_;   // n_components x d random projection
  Vec phase_;     // n_components random phases
  LinearSVM svm_;
  double scale_ = 1.0;
};

}  // namespace retina::ml

#endif  // RETINA_ML_SVM_H_
