// Gradient-boosted trees with the XGBoost second-order logistic objective:
// per-leaf weight -G/(H + lambda) with L1 soft-thresholding of G by
// reg_alpha, shrinkage eta, and gain-based greedy splits.
//
// Table III configures the paper's XGBoost run with eta=0.4,
// learning_rate=0.0001 (the alias that actually takes effect in xgboost),
// objective=binary:logistic and reg_alpha=0.9 — the tiny learning rate is
// why XGBoost underperforms in Table IV, and the bench reproduces exactly
// that configuration.

#ifndef RETINA_ML_GRADIENT_BOOSTING_H_
#define RETINA_ML_GRADIENT_BOOSTING_H_

#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"

namespace retina::ml {

struct GradientBoostingOptions {
  size_t n_estimators = 100;
  int max_depth = 4;
  /// Shrinkage applied to each tree's contribution (xgboost's
  /// eta/learning_rate alias — the paper effectively ran with 1e-4).
  double learning_rate = 0.1;
  /// L1 regularization on leaf gradients (Table III: 0.9).
  double reg_alpha = 0.0;
  /// L2 regularization on leaf weights.
  double reg_lambda = 1.0;
  /// Minimum gain to accept a split.
  double min_gain = 1e-6;
  size_t min_samples_leaf = 2;
  uint64_t seed = 29;
};

/// \brief XGBoost-style gradient boosting for binary classification.
class GradientBoosting : public BinaryClassifier {
 public:
  explicit GradientBoosting(GradientBoostingOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "XGB"; }

  size_t NumTrees() const { return trees_.size(); }

  /// Writes the ensemble (base score, predict-time shrinkage, per-tree
  /// node arrays) under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this ensemble with the one saved under `prefix`.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1, right = -1;
    double value = 0.0;  // leaf weight
  };
  using Tree = std::vector<Node>;

  int BuildNode(const Matrix& X, const Vec& grad, const Vec& hess,
                std::vector<size_t>* indices, int depth, Tree* tree) const;
  double PredictTree(const Tree& tree, const Vec& x) const;

  GradientBoostingOptions options_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;  // log-odds prior
};

}  // namespace retina::ml

#endif  // RETINA_ML_GRADIENT_BOOSTING_H_
