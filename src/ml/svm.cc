#include "ml/svm.h"

#include <cmath>

#include "common/rng.h"

namespace retina::ml {

Status LinearSVM::Fit(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("LinearSVM::Fit: bad shapes");
  }
  const size_t n = X.rows(), d = X.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  double w_pos = 1.0, w_neg = 1.0;
  if (options_.balanced_class_weight) {
    size_t n_pos = 0;
    for (int v : y) n_pos += (v == 1);
    const size_t n_neg = n - n_pos;
    if (n_pos > 0 && n_neg > 0) {
      w_pos = static_cast<double>(n) / (2.0 * static_cast<double>(n_pos));
      w_neg = static_cast<double>(n) / (2.0 * static_cast<double>(n_neg));
    }
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // Pegasos: step 1/(lambda * t).
  size_t t = 1;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t k = 0; k < n; ++k, ++t) {
      const size_t i = order[k];
      const double* row = X.Row(i);
      const double lr =
          1.0 / (options_.lambda * static_cast<double>(t));
      const double target = y[i] == 1 ? 1.0 : -1.0;
      double z = b_;
      for (size_t j = 0; j < d; ++j) z += w_[j] * row[j];
      // L2 shrinkage.
      const double shrink = 1.0 - lr * options_.lambda;
      for (size_t j = 0; j < d; ++j) w_[j] *= shrink;
      if (target * z < 1.0) {
        const double cw = y[i] == 1 ? w_pos : w_neg;
        const double step = lr * cw * target;
        for (size_t j = 0; j < d; ++j) w_[j] += step * row[j];
        b_ += step;
      }
    }
  }
  return Status::OK();
}

double LinearSVM::DecisionFunction(const Vec& x) const {
  double z = b_;
  const size_t d = std::min(x.size(), w_.size());
  for (size_t j = 0; j < d; ++j) z += w_[j] * x[j];
  return z;
}

double LinearSVM::PredictProba(const Vec& x) const {
  return Sigmoid(options_.platt_scale * DecisionFunction(x));
}

Status KernelSVM::Fit(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("KernelSVM::Fit: bad shapes");
  }
  const size_t d = X.cols();
  const size_t m = options_.n_components;
  double gamma = options_.gamma;
  if (gamma <= 0.0) gamma = 1.0 / static_cast<double>(d);

  Rng rng(options_.seed);
  proj_ = Matrix(m, d);
  const double sigma = std::sqrt(2.0 * gamma);
  for (double& v : proj_.data()) v = rng.Normal(0.0, sigma);
  phase_.resize(m);
  for (double& p : phase_) p = rng.Uniform(0.0, 2.0 * M_PI);
  scale_ = std::sqrt(2.0 / static_cast<double>(m));

  Matrix Z(X.rows(), m);
  for (size_t i = 0; i < X.rows(); ++i) Z.SetRow(i, MapFeatures(X.RowVec(i)));
  svm_ = LinearSVM(options_.linear);
  return svm_.Fit(Z, y);
}

Vec KernelSVM::MapFeatures(const Vec& x) const {
  const size_t m = proj_.rows();
  Vec z(m);
  for (size_t k = 0; k < m; ++k) {
    const double* row = proj_.Row(k);
    double dot = phase_[k];
    const size_t d = std::min(x.size(), proj_.cols());
    for (size_t j = 0; j < d; ++j) dot += row[j] * x[j];
    z[k] = scale_ * std::cos(dot);
  }
  return z;
}

double KernelSVM::PredictProba(const Vec& x) const {
  return svm_.PredictProba(MapFeatures(x));
}

void LinearSVM::SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const {
  ckpt->PutVec(prefix + "w", w_);
  ckpt->PutF64(prefix + "b", b_);
  // platt_scale shapes PredictProba, so it travels with the weights.
  ckpt->PutF64(prefix + "platt_scale", options_.platt_scale);
}

Status LinearSVM::LoadFrom(const io::Checkpoint& ckpt,
                           const std::string& prefix) {
  Vec w;
  double b = 0.0, platt_scale = 0.0;
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "w", &w));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "b", &b));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "platt_scale", &platt_scale));
  w_ = std::move(w);
  b_ = b;
  options_.platt_scale = platt_scale;
  return Status::OK();
}

void KernelSVM::SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const {
  ckpt->PutTensor(prefix + "proj", proj_);
  ckpt->PutVec(prefix + "phase", phase_);
  ckpt->PutF64(prefix + "scale", scale_);
  svm_.SaveTo(ckpt, prefix + "svm/");
}

Status KernelSVM::LoadFrom(const io::Checkpoint& ckpt,
                           const std::string& prefix) {
  Matrix proj;
  Vec phase;
  double scale = 0.0;
  RETINA_RETURN_NOT_OK(ckpt.GetTensor(prefix + "proj", &proj));
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "phase", &phase));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "scale", &scale));
  if (phase.size() != proj.rows()) {
    return Status::InvalidArgument(
        "kernel svm: phase vector does not match projection rows");
  }
  RETINA_RETURN_NOT_OK(svm_.LoadFrom(ckpt, prefix + "svm/"));
  proj_ = std::move(proj);
  phase_ = std::move(phase);
  scale_ = scale;
  return Status::OK();
}

}  // namespace retina::ml
