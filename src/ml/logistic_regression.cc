#include "ml/logistic_regression.h"

#include <cmath>

#include "common/rng.h"

namespace retina::ml {

Status LogisticRegression::Fit(const Matrix& X, const std::vector<int>& y) {
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("LogisticRegression::Fit: bad shapes");
  }
  const size_t n = X.rows(), d = X.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Class weights.
  double w_pos = 1.0, w_neg = 1.0;
  if (options_.balanced_class_weight) {
    size_t n_pos = 0;
    for (int v : y) n_pos += (v == 1);
    const size_t n_neg = n - n_pos;
    if (n_pos > 0 && n_neg > 0) {
      w_pos = static_cast<double>(n) / (2.0 * static_cast<double>(n_pos));
      w_neg = static_cast<double>(n) / (2.0 * static_cast<double>(n_neg));
    }
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  Vec vw(d, 0.0);  // momentum
  double vb = 0.0;
  const double beta = 0.9;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      Vec grad(d, 0.0);
      double gb = 0.0;
      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        const double* row = X.Row(i);
        double z = b_;
        for (size_t j = 0; j < d; ++j) z += w_[j] * row[j];
        const double p = Sigmoid(z);
        const double cw = y[i] == 1 ? w_pos : w_neg;
        const double err = cw * (p - static_cast<double>(y[i]));
        for (size_t j = 0; j < d; ++j) grad[j] += err * row[j];
        gb += err;
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      for (size_t j = 0; j < d; ++j) {
        const double g = grad[j] * inv + options_.l2 * w_[j];
        vw[j] = beta * vw[j] - lr * g;
        w_[j] += vw[j];
      }
      vb = beta * vb - lr * gb * inv;
      b_ += vb;
    }
  }
  return Status::OK();
}

double LogisticRegression::DecisionFunction(const Vec& x) const {
  double z = b_;
  const size_t d = std::min(x.size(), w_.size());
  for (size_t j = 0; j < d; ++j) z += w_[j] * x[j];
  return z;
}

double LogisticRegression::PredictProba(const Vec& x) const {
  return Sigmoid(DecisionFunction(x));
}

void LogisticRegression::SaveTo(io::Checkpoint* ckpt,
                                const std::string& prefix) const {
  ckpt->PutVec(prefix + "w", w_);
  ckpt->PutF64(prefix + "b", b_);
}

Status LogisticRegression::LoadFrom(const io::Checkpoint& ckpt,
                                    const std::string& prefix) {
  Vec w;
  double b = 0.0;
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "w", &w));
  RETINA_RETURN_NOT_OK(ckpt.GetF64(prefix + "b", &b));
  w_ = std::move(w);
  b_ = b;
  return Status::OK();
}

}  // namespace retina::ml
