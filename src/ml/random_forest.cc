#include "ml/random_forest.h"

#include <cmath>

#include "common/obs.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace retina::ml {

Status RandomForest::Fit(const Matrix& X, const std::vector<int>& y) {
  RETINA_OBS_SPAN("ml.random_forest.fit");
  if (X.rows() == 0 || X.rows() != y.size()) {
    return Status::InvalidArgument("RandomForest::Fit: bad shapes");
  }
  const size_t n = X.rows();
  const size_t max_features = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(X.cols()))));

  // Trees fit independently: tree t draws its bootstrap and split
  // randomness from Rng::Stream(seed, t), a pure function of (seed, t), so
  // the forest is identical at any thread count.
  trees_.clear();
  trees_.resize(options_.n_estimators);
  std::vector<Status> statuses(options_.n_estimators);
  par::ParallelFor(options_.n_estimators, 1, [&](size_t t) {
    Rng rng = Rng::Stream(options_.seed, t);
    Matrix bx(n, X.cols());
    std::vector<int> by(n);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = static_cast<size_t>(rng.UniformInt(n));
      bx.SetRow(i, X.RowVec(j));
      by[i] = y[j];
    }
    DecisionTreeOptions topts;
    topts.max_depth = options_.max_depth;
    topts.min_samples_leaf = options_.min_samples_leaf;
    topts.balanced_class_weight = options_.balanced_class_weight;
    topts.max_features = max_features;
    topts.seed = rng.NextU64();
    auto tree = std::make_unique<DecisionTree>(topts);
    statuses[t] = tree->Fit(bx, by);
    if (statuses[t].ok()) trees_[t] = std::move(tree);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) {
      trees_.clear();
      return s;
    }
  }
  if (obs::Enabled()) {
    static obs::Counter* trees_fit =
        obs::Registry::Global().GetCounter("ml.trees_fit");
    trees_fit->Add(trees_.size());
  }
  return Status::OK();
}

void RandomForest::SaveTo(io::Checkpoint* ckpt,
                          const std::string& prefix) const {
  ckpt->PutI64(prefix + "n_trees", static_cast<int64_t>(trees_.size()));
  for (size_t i = 0; i < trees_.size(); ++i) {
    trees_[i]->SaveTo(ckpt, prefix + "tree" + std::to_string(i) + "/");
  }
}

Status RandomForest::LoadFrom(const io::Checkpoint& ckpt,
                              const std::string& prefix) {
  int64_t n_trees = 0;
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "n_trees", &n_trees));
  if (n_trees < 0) {
    return Status::InvalidArgument("random forest: negative tree count");
  }
  std::vector<std::unique_ptr<DecisionTree>> trees;
  trees.reserve(static_cast<size_t>(n_trees));
  for (int64_t i = 0; i < n_trees; ++i) {
    auto tree = std::make_unique<DecisionTree>();
    RETINA_RETURN_NOT_OK(
        tree->LoadFrom(ckpt, prefix + "tree" + std::to_string(i) + "/"));
    trees.push_back(std::move(tree));
  }
  trees_ = std::move(trees);
  return Status::OK();
}

double RandomForest::PredictProba(const Vec& x) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  for (const auto& tree : trees_) total += tree->PredictProba(x);
  return total / static_cast<double>(trees_.size());
}

}  // namespace retina::ml
