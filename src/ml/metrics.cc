#include "ml/metrics.h"

#include <algorithm>
#include <cassert>

namespace retina::ml {

Confusion Confusion::FromPredictions(const std::vector<int>& y_true,
                                     const std::vector<int>& y_pred) {
  assert(y_true.size() == y_pred.size());
  Confusion c;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      if (y_pred[i] == 1) {
        ++c.tp;
      } else {
        ++c.fn;
      }
    } else {
      if (y_pred[i] == 1) {
        ++c.fp;
      } else {
        ++c.tn;
      }
    }
  }
  return c;
}

double Confusion::Accuracy() const {
  const size_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0
                    : static_cast<double>(tp + tn) / static_cast<double>(total);
}

double Confusion::Precision() const {
  return tp + fp == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double Confusion::Recall() const {
  return tp + fn == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double Confusion::F1() const {
  const double p = Precision(), r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double MacroF1(const std::vector<int>& y_true,
               const std::vector<int>& y_pred) {
  const Confusion c = Confusion::FromPredictions(y_true, y_pred);
  const double f1_pos = c.F1();
  // F1 of the negative class = F1 with labels swapped.
  Confusion neg;
  neg.tp = c.tn;
  neg.tn = c.tp;
  neg.fp = c.fn;
  neg.fn = c.fp;
  return 0.5 * (f1_pos + neg.F1());
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  return Confusion::FromPredictions(y_true, y_pred).Accuracy();
}

double RocAuc(const std::vector<int>& y_true, const Vec& scores) {
  assert(y_true.size() == scores.size());
  const size_t n = y_true.size();
  size_t n_pos = 0;
  for (int v : y_true) n_pos += (v == 1);
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // Average ranks with tie handling.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  Vec rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true[k] == 1) rank_sum_pos += rank[k];
  }
  const double np = static_cast<double>(n_pos), nn = static_cast<double>(n_neg);
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

std::vector<int> Threshold(const Vec& scores, double threshold) {
  std::vector<int> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] >= threshold ? 1 : 0;
  }
  return out;
}

namespace {

// Candidate indices of `q` sorted by descending score (stable for ties).
std::vector<size_t> RankOrder(const RankingQuery& q) {
  std::vector<size_t> order(q.scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return q.scores[a] > q.scores[b];
  });
  return order;
}

size_t NumRelevant(const RankingQuery& q) {
  size_t n = 0;
  for (int r : q.relevant) n += (r == 1);
  return n;
}

}  // namespace

double MeanAveragePrecisionAtK(const std::vector<RankingQuery>& queries,
                               size_t k) {
  double total = 0.0;
  size_t n_queries = 0;
  for (const RankingQuery& q : queries) {
    const size_t n_rel = NumRelevant(q);
    if (n_rel == 0 || q.scores.empty()) continue;
    ++n_queries;
    const std::vector<size_t> order = RankOrder(q);
    const size_t depth = std::min(k, order.size());
    double ap = 0.0;
    size_t hits = 0;
    for (size_t i = 0; i < depth; ++i) {
      if (q.relevant[order[i]] == 1) {
        ++hits;
        ap += static_cast<double>(hits) / static_cast<double>(i + 1);
      }
    }
    ap /= static_cast<double>(std::min(n_rel, k));
    total += ap;
  }
  return n_queries == 0 ? 0.0 : total / static_cast<double>(n_queries);
}

double HitsAtK(const std::vector<RankingQuery>& queries, size_t k) {
  double total = 0.0;
  size_t n_queries = 0;
  for (const RankingQuery& q : queries) {
    const size_t n_rel = NumRelevant(q);
    if (n_rel == 0 || q.scores.empty()) continue;
    ++n_queries;
    const std::vector<size_t> order = RankOrder(q);
    const size_t depth = std::min(k, order.size());
    size_t hits = 0;
    for (size_t i = 0; i < depth; ++i) hits += (q.relevant[order[i]] == 1);
    total += static_cast<double>(hits) /
             static_cast<double>(std::min(n_rel, k));
  }
  return n_queries == 0 ? 0.0 : total / static_cast<double>(n_queries);
}

}  // namespace retina::ml
