// Labeled dataset container plus split / resampling utilities.

#ifndef RETINA_ML_DATASET_H_
#define RETINA_ML_DATASET_H_

#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace retina::ml {

/// \brief Dense feature matrix with binary labels (1 = positive class).
struct Dataset {
  Matrix X;
  std::vector<int> y;

  size_t NumRows() const { return X.rows(); }
  size_t NumFeatures() const { return X.cols(); }
  size_t NumPositives() const;

  /// Subset by row indices.
  Dataset Select(const std::vector<size_t>& rows) const;
};

/// Shuffled train/test split with `test_fraction` rows held out.
void TrainTestSplit(const Dataset& data, double test_fraction, Rng* rng,
                    Dataset* train, Dataset* test);

/// Downsamples the majority class to the minority count (paper's "DS").
Dataset DownsampleMajority(const Dataset& data, Rng* rng);

/// Upsamples the minority class (with replacement) to `ratio` times its
/// size, capped at the majority count.
Dataset UpsampleMinority(const Dataset& data, double ratio, Rng* rng);

/// The paper's "US+DS": both classes resampled to the geometric mean of
/// the class counts (upsampling the dominated class, downsampling the
/// dominant one).
Dataset UpDownsample(const Dataset& data, Rng* rng);

/// \brief Per-feature standardization (zero mean, unit variance), fit on
/// train and applied to both splits.
class StandardScaler {
 public:
  void Fit(const Matrix& X);
  void Transform(Matrix* X) const;
  Vec TransformRow(const Vec& row) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  Vec mean_, inv_std_;
};

}  // namespace retina::ml

#endif  // RETINA_ML_DATASET_H_
