// CART decision tree (gini impurity) with class weights, sample weights,
// and optional per-node feature subsampling (used by RandomForest).
// Table III configures the hate-generation tree with class_weight=balanced
// and max_depth=5.

#ifndef RETINA_ML_DECISION_TREE_H_
#define RETINA_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"

namespace retina::ml {

struct DecisionTreeOptions {
  int max_depth = 5;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  bool balanced_class_weight = true;
  /// Features examined per node; 0 = all (RandomForest passes sqrt(d)).
  size_t max_features = 0;
  uint64_t seed = 0;
};

/// \brief Binary CART classifier.
class DecisionTree : public BinaryClassifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;

  /// Fit with per-sample weights (AdaBoost re-weighting).
  Status FitWeighted(const Matrix& X, const std::vector<int>& y,
                     const Vec& sample_weights);

  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "Dec-Tree"; }

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t NumNodes() const { return nodes_.size(); }

  /// Writes the fitted tree as flattened node arrays under `prefix`.
  /// PredictProba is a pure function of the node table, so fit-time
  /// options are not persisted.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this tree with the one saved under `prefix`; validates
  /// array sizes and child-index ranges before accepting.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    int left = -1, right = -1;
    double prob = 0.5;  // weighted P(y=1) at this node
  };

  int BuildNode(const Matrix& X, const std::vector<int>& y, const Vec& w,
                std::vector<size_t>* indices, int depth, void* rng);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace retina::ml

#endif  // RETINA_ML_DECISION_TREE_H_
