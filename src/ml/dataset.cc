#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace retina::ml {

size_t Dataset::NumPositives() const {
  size_t n = 0;
  for (int v : y) n += (v == 1);
  return n;
}

Dataset Dataset::Select(const std::vector<size_t>& rows) const {
  Dataset out;
  out.X = Matrix(rows.size(), X.cols());
  out.y.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < X.rows());
    out.X.SetRow(i, X.RowVec(rows[i]));
    out.y[i] = y[rows[i]];
  }
  return out;
}

void TrainTestSplit(const Dataset& data, double test_fraction, Rng* rng,
                    Dataset* train, Dataset* test) {
  std::vector<size_t> idx(data.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  const size_t n_test =
      static_cast<size_t>(std::llround(test_fraction * idx.size()));
  std::vector<size_t> test_rows(idx.begin(), idx.begin() + n_test);
  std::vector<size_t> train_rows(idx.begin() + n_test, idx.end());
  *train = data.Select(train_rows);
  *test = data.Select(test_rows);
}

namespace {
void SplitByClass(const Dataset& data, std::vector<size_t>* pos,
                  std::vector<size_t>* neg) {
  for (size_t i = 0; i < data.y.size(); ++i) {
    (data.y[i] == 1 ? pos : neg)->push_back(i);
  }
}
}  // namespace

Dataset DownsampleMajority(const Dataset& data, Rng* rng) {
  std::vector<size_t> pos, neg;
  SplitByClass(data, &pos, &neg);
  std::vector<size_t>* majority = pos.size() > neg.size() ? &pos : &neg;
  std::vector<size_t>* minority = pos.size() > neg.size() ? &neg : &pos;
  std::vector<size_t> keep = *minority;
  for (size_t j : rng->SampleWithoutReplacement(majority->size(),
                                                minority->size())) {
    keep.push_back((*majority)[j]);
  }
  rng->Shuffle(&keep);
  return data.Select(keep);
}

Dataset UpsampleMinority(const Dataset& data, double ratio, Rng* rng) {
  std::vector<size_t> pos, neg;
  SplitByClass(data, &pos, &neg);
  std::vector<size_t>* majority = pos.size() > neg.size() ? &pos : &neg;
  std::vector<size_t>* minority = pos.size() > neg.size() ? &neg : &pos;
  const size_t target = std::min(
      majority->size(),
      static_cast<size_t>(std::llround(ratio * minority->size())));
  std::vector<size_t> keep = *majority;
  keep.insert(keep.end(), minority->begin(), minority->end());
  while (minority->size() > 0 &&
         keep.size() < majority->size() + target) {
    keep.push_back((*minority)[rng->UniformInt(minority->size())]);
  }
  rng->Shuffle(&keep);
  return data.Select(keep);
}

Dataset UpDownsample(const Dataset& data, Rng* rng) {
  std::vector<size_t> pos, neg;
  SplitByClass(data, &pos, &neg);
  std::vector<size_t>* majority = pos.size() > neg.size() ? &pos : &neg;
  std::vector<size_t>* minority = pos.size() > neg.size() ? &neg : &pos;
  if (minority->empty()) return data;
  const size_t target = static_cast<size_t>(std::llround(std::sqrt(
      static_cast<double>(majority->size()) *
      static_cast<double>(minority->size()))));
  std::vector<size_t> keep;
  // Downsample the dominant class to `target`.
  for (size_t j :
       rng->SampleWithoutReplacement(majority->size(), target)) {
    keep.push_back((*majority)[j]);
  }
  // Upsample the dominated class (with replacement) to `target`.
  for (size_t i = 0; i < target; ++i) {
    keep.push_back((*minority)[rng->UniformInt(minority->size())]);
  }
  rng->Shuffle(&keep);
  return data.Select(keep);
}

void StandardScaler::Fit(const Matrix& X) {
  const size_t n = X.rows(), d = X.cols();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (n == 0) return;
  for (size_t i = 0; i < n; ++i) {
    const double* row = X.Row(i);
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  Vec var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = X.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double c = row[j] - mean_[j];
      var[j] += c * c;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

void StandardScaler::Transform(Matrix* X) const {
  assert(X->cols() == mean_.size());
  for (size_t i = 0; i < X->rows(); ++i) {
    double* row = X->Row(i);
    for (size_t j = 0; j < X->cols(); ++j) {
      row[j] = (row[j] - mean_[j]) * inv_std_[j];
    }
  }
}

Vec StandardScaler::TransformRow(const Vec& row) const {
  assert(row.size() == mean_.size());
  Vec out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

}  // namespace retina::ml
