// AdaBoost (discrete SAMME) over depth-1 decision stumps
// (scikit-learn AdaBoostClassifier analogue; Table III: random_state=1).

#ifndef RETINA_ML_ADABOOST_H_
#define RETINA_ML_ADABOOST_H_

#include <memory>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace retina::ml {

struct AdaBoostOptions {
  size_t n_estimators = 50;
  double learning_rate = 1.0;
  /// Depth of the boosted base trees (1 = classic stumps). Symmetric
  /// parity problems like XOR need depth >= 2 to make boosting progress.
  int base_depth = 1;
  uint64_t seed = 1;  // Table III: random state = 1
};

/// \brief Boosted decision stumps.
class AdaBoost : public BinaryClassifier {
 public:
  explicit AdaBoost(AdaBoostOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "AdaBoost"; }

  size_t NumStumps() const { return stumps_.size(); }

  /// Writes stump weights and per-stump trees under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this ensemble with the one saved under `prefix`.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  AdaBoostOptions options_;
  std::vector<std::unique_ptr<DecisionTree>> stumps_;
  Vec alphas_;
};

}  // namespace retina::ml

#endif  // RETINA_ML_ADABOOST_H_
