// L2-regularized logistic regression trained by mini-batch SGD with
// momentum (scikit-learn LogisticRegression analogue, Table III).

#ifndef RETINA_ML_LOGISTIC_REGRESSION_H_
#define RETINA_ML_LOGISTIC_REGRESSION_H_

#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "ml/classifier.h"

namespace retina::ml {

struct LogisticRegressionOptions {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 60;
  size_t batch_size = 64;
  /// Reweight classes inversely to frequency ("balanced").
  bool balanced_class_weight = false;
  uint64_t seed = 0;  // Table III: random state = 0
};

/// \brief Binary logistic regression.
class LogisticRegression : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y) override;
  double PredictProba(const Vec& x) const override;
  std::string Name() const override { return "LogReg"; }

  /// Raw decision value w.x + b.
  double DecisionFunction(const Vec& x) const;

  const Vec& weights() const { return w_; }
  double bias() const { return b_; }

  /// Writes the fitted weights and bias under `prefix`.
  void SaveTo(io::Checkpoint* ckpt, const std::string& prefix) const;

  /// Replaces this model with the one saved under `prefix`.
  Status LoadFrom(const io::Checkpoint& ckpt, const std::string& prefix);

 private:
  LogisticRegressionOptions options_;
  Vec w_;
  double b_ = 0.0;
};

}  // namespace retina::ml

#endif  // RETINA_ML_LOGISTIC_REGRESSION_H_
