// Abstract binary classifier interface shared by the hate-generation model
// zoo (Table IV) and the feature-engineered retweet baselines (Table VI).

#ifndef RETINA_ML_CLASSIFIER_H_
#define RETINA_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "ml/dataset.h"

namespace retina::ml {

/// \brief Interface for binary classifiers with probabilistic outputs.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on X (rows = samples) with labels y in {0, 1}.
  virtual Status Fit(const Matrix& X, const std::vector<int>& y) = 0;

  /// P(y = 1 | x) for one row.
  virtual double PredictProba(const Vec& x) const = 0;

  /// Display name (Table IV / VI row label).
  virtual std::string Name() const = 0;

  /// Probability for each row of X.
  Vec PredictProbaBatch(const Matrix& X) const {
    Vec out(X.rows());
    for (size_t i = 0; i < X.rows(); ++i) out[i] = PredictProba(X.RowVec(i));
    return out;
  }

  /// 0/1 prediction at threshold 0.5.
  std::vector<int> PredictBatch(const Matrix& X) const {
    const Vec p = PredictProbaBatch(X);
    std::vector<int> out(p.size());
    for (size_t i = 0; i < p.size(); ++i) out[i] = p[i] >= 0.5 ? 1 : 0;
    return out;
  }

  Status FitDataset(const Dataset& data) { return Fit(data.X, data.y); }
};

}  // namespace retina::ml

#endif  // RETINA_ML_CLASSIFIER_H_
