#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace retina::ml {

Status DecisionTree::Fit(const Matrix& X, const std::vector<int>& y) {
  return FitWeighted(X, y, Vec(X.rows(), 1.0));
}

Status DecisionTree::FitWeighted(const Matrix& X, const std::vector<int>& y,
                                 const Vec& sample_weights) {
  if (X.rows() == 0 || X.rows() != y.size() ||
      sample_weights.size() != y.size()) {
    return Status::InvalidArgument("DecisionTree::Fit: bad shapes");
  }
  nodes_.clear();

  Vec w = sample_weights;
  if (options_.balanced_class_weight) {
    double pos_w = 0.0, neg_w = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      (y[i] == 1 ? pos_w : neg_w) += sample_weights[i];
    }
    const double total = pos_w + neg_w;
    if (pos_w > 0.0 && neg_w > 0.0) {
      for (size_t i = 0; i < y.size(); ++i) {
        w[i] *= y[i] == 1 ? total / (2.0 * pos_w) : total / (2.0 * neg_w);
      }
    }
  }

  std::vector<size_t> indices(X.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(options_.seed);
  BuildNode(X, y, w, &indices, 0, &rng);
  return Status::OK();
}

int DecisionTree::BuildNode(const Matrix& X, const std::vector<int>& y,
                            const Vec& w, std::vector<size_t>* indices,
                            int depth, void* rng_ptr) {
  Rng* rng = static_cast<Rng*>(rng_ptr);
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double pos_w = 0.0, total_w = 0.0;
  for (size_t i : *indices) {
    total_w += w[i];
    if (y[i] == 1) pos_w += w[i];
  }
  nodes_[node_id].prob = total_w > 0.0 ? pos_w / total_w : 0.5;

  const bool pure = pos_w <= 1e-12 || pos_w >= total_w - 1e-12;
  if (depth >= options_.max_depth || pure ||
      indices->size() < options_.min_samples_split) {
    return node_id;
  }

  // Candidate features.
  const size_t d = X.cols();
  std::vector<size_t> features;
  if (options_.max_features > 0 && options_.max_features < d) {
    features = rng->SampleWithoutReplacement(d, options_.max_features);
  } else {
    features.resize(d);
    for (size_t j = 0; j < d; ++j) features[j] = j;
  }

  // Parent gini (weighted).
  auto gini = [](double pos, double tot) {
    if (tot <= 0.0) return 0.0;
    const double p = pos / tot;
    return 2.0 * p * (1.0 - p);
  };
  const double parent_impurity = gini(pos_w, total_w);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-9;

  std::vector<size_t> sorted = *indices;
  for (size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return X(a, f) < X(b, f);
    });
    double left_pos = 0.0, left_tot = 0.0;
    size_t n_left = 0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      const size_t i = sorted[k];
      left_tot += w[i];
      if (y[i] == 1) left_pos += w[i];
      ++n_left;
      const double v = X(i, f), v_next = X(sorted[k + 1], f);
      if (v == v_next) continue;
      if (n_left < options_.min_samples_leaf ||
          sorted.size() - n_left < options_.min_samples_leaf) {
        continue;
      }
      const double right_tot = total_w - left_tot;
      const double right_pos = pos_w - left_pos;
      const double child_impurity =
          (left_tot * gini(left_pos, left_tot) +
           right_tot * gini(right_pos, right_tot)) /
          total_w;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<size_t> left, right;
  for (size_t i : *indices) {
    (X(i, static_cast<size_t>(best_feature)) <= best_threshold ? left : right)
        .push_back(i);
  }
  if (left.empty() || right.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  indices->clear();  // free before recursion
  indices->shrink_to_fit();
  const int l = BuildNode(X, y, w, &left, depth + 1, rng);
  const int r = BuildNode(X, y, w, &right, depth + 1, rng);
  nodes_[node_id].left = l;
  nodes_[node_id].right = r;
  return node_id;
}

void DecisionTree::SaveTo(io::Checkpoint* ckpt,
                          const std::string& prefix) const {
  const size_t n = nodes_.size();
  std::vector<int64_t> feature(n), left(n), right(n);
  Vec threshold(n), prob(n);
  for (size_t i = 0; i < n; ++i) {
    feature[i] = nodes_[i].feature;
    threshold[i] = nodes_[i].threshold;
    left[i] = nodes_[i].left;
    right[i] = nodes_[i].right;
    prob[i] = nodes_[i].prob;
  }
  ckpt->PutI64List(prefix + "feature", feature);
  ckpt->PutVec(prefix + "threshold", threshold);
  ckpt->PutI64List(prefix + "left", left);
  ckpt->PutI64List(prefix + "right", right);
  ckpt->PutVec(prefix + "prob", prob);
}

Status DecisionTree::LoadFrom(const io::Checkpoint& ckpt,
                              const std::string& prefix) {
  std::vector<int64_t> feature, left, right;
  Vec threshold, prob;
  RETINA_RETURN_NOT_OK(ckpt.GetI64List(prefix + "feature", &feature));
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "threshold", &threshold));
  RETINA_RETURN_NOT_OK(ckpt.GetI64List(prefix + "left", &left));
  RETINA_RETURN_NOT_OK(ckpt.GetI64List(prefix + "right", &right));
  RETINA_RETURN_NOT_OK(ckpt.GetVec(prefix + "prob", &prob));
  const size_t n = feature.size();
  if (threshold.size() != n || left.size() != n || right.size() != n ||
      prob.size() != n) {
    return Status::InvalidArgument(
        "corrupt decision tree: node array sizes disagree under '" + prefix +
        "'");
  }
  const int64_t limit = static_cast<int64_t>(n);
  std::vector<Node> nodes(n);
  for (size_t i = 0; i < n; ++i) {
    if (feature[i] < -1 || left[i] < -1 || left[i] >= limit ||
        right[i] < -1 || right[i] >= limit) {
      return Status::InvalidArgument(
          "corrupt decision tree: node index out of range under '" + prefix +
          "'");
    }
    nodes[i].feature = static_cast<int>(feature[i]);
    nodes[i].threshold = threshold[i];
    nodes[i].left = static_cast<int>(left[i]);
    nodes[i].right = static_cast<int>(right[i]);
    nodes[i].prob = prob[i];
  }
  nodes_ = std::move(nodes);
  return Status::OK();
}

double DecisionTree::PredictProba(const Vec& x) const {
  if (nodes_.empty()) return 0.5;
  int cur = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    if (node.feature < 0) return node.prob;
    const size_t f = static_cast<size_t>(node.feature);
    const double v = f < x.size() ? x[f] : 0.0;
    cur = v <= node.threshold ? node.left : node.right;
    if (cur < 0) return node.prob;
  }
}

}  // namespace retina::ml
