// Evaluation metrics of Section VIII: macro-F1, binary accuracy, ROC-AUC
// for classification; MAP@k and HITS@k for the ranking view of retweeter
// prediction.

#ifndef RETINA_ML_METRICS_H_
#define RETINA_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/vec.h"

namespace retina::ml {

/// Binary confusion counts at a fixed threshold.
struct Confusion {
  size_t tp = 0, fp = 0, tn = 0, fn = 0;

  static Confusion FromPredictions(const std::vector<int>& y_true,
                                   const std::vector<int>& y_pred);

  double Accuracy() const;
  double Precision() const;  ///< positive-class precision
  double Recall() const;     ///< positive-class recall
  double F1() const;         ///< positive-class F1
};

/// Macro-averaged F1 over both classes (the paper's primary metric for
/// imbalanced data).
double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Binary accuracy.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Area under the ROC curve from scores, computed by the rank statistic
/// (ties get averaged ranks). Returns 0.5 when a class is absent.
double RocAuc(const std::vector<int>& y_true, const Vec& scores);

/// Thresholds scores at `threshold` into 0/1 predictions.
std::vector<int> Threshold(const Vec& scores, double threshold = 0.5);

/// One ranking query: candidate scores with binary relevance.
struct RankingQuery {
  Vec scores;
  std::vector<int> relevant;  ///< parallel to scores, 1 = true retweeter
};

/// Mean average precision at k over queries. Queries without any relevant
/// candidate are skipped.
double MeanAveragePrecisionAtK(const std::vector<RankingQuery>& queries,
                               size_t k);

/// Mean of per-query HITS@k: the fraction of the query's relevant
/// candidates that appear in the top-k (recall@k), the convention used by
/// the microscopic-diffusion baselines the paper compares against.
double HitsAtK(const std::vector<RankingQuery>& queries, size_t k);

}  // namespace retina::ml

#endif  // RETINA_ML_METRICS_H_
