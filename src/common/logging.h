// Minimal leveled logging to stderr. Benches lower the level to keep their
// stdout a clean reproduction of the paper's tables.

#ifndef RETINA_COMMON_LOGGING_H_
#define RETINA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace retina {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction if `level` passes the filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define RETINA_LOG(level)                                          \
  ::retina::internal::LogMessage(::retina::LogLevel::k##level,     \
                                 __FILE__, __LINE__)

}  // namespace retina

#endif  // RETINA_COMMON_LOGGING_H_
