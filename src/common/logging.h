// Minimal leveled logging to stderr. Benches lower the level to keep their
// stdout a clean reproduction of the paper's tables.
//
// Two sink formats:
//   - text (default):  [LEVEL file:line] message
//   - structured JSONL (RETINA_LOG_JSON=1 in the environment, or
//     SetJsonLogging(true)): one JSON object per line with level, file,
//     line, the current timeline trace id (0 when no trace session /
//     request is active — see common/trace.h), and the message. Lets a log
//     pipeline join log lines against the exported trace by trace_id.

#ifndef RETINA_COMMON_LOGGING_H_
#define RETINA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace retina {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warn" / "warning" / "error" (case-sensitive)
/// into *level. Returns false on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Switches the sink between text (false) and JSONL (true). The initial
/// value honors RETINA_LOG_JSON=1 at process start.
void SetJsonLogging(bool enabled);

/// True when the JSONL sink is active.
bool JsonLogging();

namespace internal {

/// Stream-style log sink; emits on destruction if `level` passes the filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define RETINA_LOG(level)                                          \
  ::retina::internal::LogMessage(::retina::LogLevel::k##level,     \
                                 __FILE__, __LINE__)

}  // namespace retina

#endif  // RETINA_COMMON_LOGGING_H_
