// Per-request bump allocator for the scoring hot path.
//
// A serving request needs a handful of short-lived buffers (feature rows,
// attention keys/values, hidden activations, logits) whose sizes repeat
// from request to request. ScratchArena hands them out by bumping a
// pointer into a reserved block and recycles the whole epoch with Reset().
// After a warm-up request has established the high-water mark, Reset()
// consolidates to a single block and steady-state requests perform zero
// heap allocations — the property the serving allocation-regression test
// pins.
//
// Lifetime contract: every pointer returned by Allocate*/AllocDoubles* is
// valid until the next Reset(). The arena never runs destructors — only
// trivially-destructible payloads belong here.
//
// Not thread-safe. The scoring path uses one arena per thread via
// TlsScratchArena(); the outermost request entry point resets it, nested
// callees keep bumping.

#ifndef RETINA_COMMON_ARENA_H_
#define RETINA_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

namespace retina {

/// \brief Bump allocator with epoch reset and high-water tracking.
class ScratchArena {
 public:
  ScratchArena() = default;
  /// Pre-reserves `initial_bytes` so the first epoch can run
  /// allocation-free if the caller knows its footprint.
  explicit ScratchArena(size_t initial_bytes);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two, at most kMaxAlign).
  void* Allocate(size_t bytes, size_t align = alignof(double));

  /// `n` uninitialized doubles.
  double* AllocDoubles(size_t n) {
    return static_cast<double*>(Allocate(n * sizeof(double)));
  }

  /// `n` zeroed doubles.
  double* AllocDoublesZeroed(size_t n) {
    double* p = AllocDoubles(n);
    std::memset(p, 0, n * sizeof(double));
    return p;
  }

  /// Ends the epoch: records the high-water mark, rewinds the bump
  /// pointer, and — when the epoch spilled into overflow blocks —
  /// consolidates into one block sized to the high-water mark so the next
  /// epoch of the same shape allocates nothing.
  void Reset();

  /// Total heap bytes currently reserved across blocks.
  size_t bytes_reserved() const { return reserved_; }
  /// Bytes handed out in the current epoch (including alignment padding).
  size_t bytes_used() const { return used_; }
  /// Largest bytes_used() observed at any Reset() (or now, if larger).
  size_t high_water_bytes() const {
    return used_ > high_water_ ? used_ : high_water_;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t offset = 0;
  };

  static constexpr size_t kMaxAlign = 64;
  static constexpr size_t kMinBlockBytes = 4096;

  Block* GrowFor(size_t bytes);

  std::vector<Block> blocks_;
  size_t reserved_ = 0;
  size_t used_ = 0;
  size_t high_water_ = 0;
};

/// The calling thread's scratch arena. One per thread so batched forwards
/// running under ParallelFor never share an epoch.
ScratchArena& TlsScratchArena();

}  // namespace retina

#endif  // RETINA_COMMON_ARENA_H_
