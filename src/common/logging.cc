#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

#include "common/trace.h"

namespace retina {

namespace {
LogLevel g_level = LogLevel::kInfo;

bool JsonFromEnv() {
  const char* env = std::getenv("RETINA_LOG_JSON");
  return env != nullptr && std::string(env) == "1";
}

bool g_json = JsonFromEnv();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn" || name == "warning") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetJsonLogging(bool enabled) { g_json = enabled; }
bool JsonLogging() { return g_json; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  if (g_json) {
    // One self-contained JSON object per line; trace_id joins the line
    // against the exported timeline trace of the active request/run.
    std::fprintf(stderr,
                 "{\"level\":\"%s\",\"file\":\"%s\",\"line\":%d,"
                 "\"trace_id\":%llu,\"msg\":\"%s\"}\n",
                 LevelName(level_), JsonEscape(file_).c_str(), line_,
                 static_cast<unsigned long long>(obs::CurrentTraceId()),
                 JsonEscape(stream_.str()).c_str());
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace retina
