// End-of-run observability exports shared by every front end.
//
// The CLI, the serving daemon, and the load driver all finish a run the
// same way: sample the process gauges, dump the obs registry as JSON to
// `--metrics-out`, and (when tracing was started) stop the session and
// write the Chrome trace to `--trace-out`. This header is that shared
// tail, extracted from tools/retina_cli.cc so the daemon's SIGTERM drain
// path and the driver's per-sweep export cannot drift from the CLI's
// behavior.
//
// Both functions are quiescent-point operations like the exports they
// wrap: call them after all instrumented work has finished.

#ifndef RETINA_COMMON_RUN_EXPORT_H_
#define RETINA_COMMON_RUN_EXPORT_H_

#include <string>

#include "common/status.h"

namespace retina::obs {

/// Samples process gauges (peak RSS, SIMD dispatch), writes the full
/// registry JSON to `path`, and — when `print_summary` — prints the
/// human-readable summary table plus a "metrics written to" line on
/// stdout. No-op returning OK when `path` is empty.
Status ExportMetricsJson(const std::string& path, bool print_summary = true);

/// Stops the active trace session and writes it as Chrome trace JSON to
/// `path`; when `print_summary`, reports the event and dropped-event
/// counts so a truncated timeline is never mistaken for a complete one.
/// No-op returning OK when `path` is empty.
Status ExportChromeTrace(const std::string& path, bool print_summary = true);

/// Writes the registry's Prometheus text exposition to `path` via a
/// temp-file-then-rename, so a concurrent scraper never reads a torn file.
/// Unlike the two exports above this is NOT a quiescent-point operation:
/// the serving daemon refreshes it on its metrics cadence while traffic is
/// live. No-op returning OK when `path` is empty.
Status ExportPrometheus(const std::string& path);

}  // namespace retina::obs

#endif  // RETINA_COMMON_RUN_EXPORT_H_
