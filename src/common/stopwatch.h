// Wall-clock stopwatch for coarse timing in benches and examples.

#ifndef RETINA_COMMON_STOPWATCH_H_
#define RETINA_COMMON_STOPWATCH_H_

#include <chrono>

namespace retina {

/// \brief Monotonic wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace retina

#endif  // RETINA_COMMON_STOPWATCH_H_
