// Small string helpers used by the text pipeline and the table writer.

#ifndef RETINA_COMMON_STRING_UTIL_H_
#define RETINA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace retina {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins parts with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` fractional digits (fixed notation).
std::string FormatDouble(double v, int digits);

}  // namespace retina

#endif  // RETINA_COMMON_STRING_UTIL_H_
