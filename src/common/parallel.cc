#include "common/parallel.h"

#include <algorithm>
#include <chrono>

#include "common/obs.h"
#include "common/trace.h"

namespace retina::par {

std::vector<ChunkRange> MakeChunks(size_t n, size_t grain) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (grain == 0) grain = 1;
  const size_t ceil_div = (n + kMaxChunksPerLoop - 1) / kMaxChunksPerLoop;
  const size_t chunk_size = std::max(grain, ceil_div);
  chunks.reserve((n + chunk_size - 1) / chunk_size);
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    ChunkRange chunk;
    chunk.index = chunks.size();
    chunk.begin = begin;
    chunk.end = std::min(n, begin + chunk_size);
    chunks.push_back(chunk);
  }
  return chunks;
}

namespace {

// Hot-path instruments, resolved once. Observers only: recording chunk
// timings never alters chunk layout or execution order, so the
// bit-exactness contract of the layer is untouched.
struct ParMetrics {
  obs::Counter* loops;
  obs::Counter* chunks;
  obs::Histogram* chunk_ns;

  static const ParMetrics& Get() {
    static const ParMetrics m = {
        obs::Registry::Global().GetCounter("par.loops"),
        obs::Registry::Global().GetCounter("par.chunks"),
        obs::Registry::Global().GetHistogram("par.chunk_ns"),
    };
    return m;
  }
};

}  // namespace

void ParallelForChunks(size_t n, size_t grain,
                       const std::function<void(const ChunkRange&)>& body,
                       ThreadPool* pool) {
  const std::vector<ChunkRange> chunks = MakeChunks(n, grain);
  if (chunks.empty()) return;
  if (pool == nullptr) pool = GlobalPool();
  if (!obs::Enabled()) {
    if (chunks.size() == 1) {
      // Avoid dispatch overhead (and pool traffic) for degenerate loops.
      body(chunks[0]);
      return;
    }
    pool->Run(chunks.size(), [&](size_t c) { body(chunks[c]); });
    return;
  }

  const ParMetrics& m = ParMetrics::Get();
  m.loops->Add(1);
  m.chunks->Add(chunks.size());
  const auto timed_body = [&](const ChunkRange& chunk) {
    // Timeline event per chunk; the worker inherited the submitting
    // thread's trace context from the pool, so the event nests under the
    // span that issued this loop.
    obs::TraceSpan trace_span("par.chunk");
    const auto start = std::chrono::steady_clock::now();
    body(chunk);
    m.chunk_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  };
  if (chunks.size() == 1) {
    timed_body(chunks[0]);
    return;
  }
  pool->Run(chunks.size(), [&](size_t c) { timed_body(chunks[c]); });
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t)>& body, ThreadPool* pool) {
  ParallelForChunks(
      n, grain,
      [&](const ChunkRange& chunk) {
        for (size_t i = chunk.begin; i < chunk.end; ++i) body(i);
      },
      pool);
}

}  // namespace retina::par
