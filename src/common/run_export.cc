#include "common/run_export.h"

#include <cstdio>

#include "common/obs.h"
#include "common/simd.h"
#include "common/trace.h"

namespace retina::obs {

namespace {

Status WriteWholeFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status ExportMetricsJson(const std::string& path, bool print_summary) {
  if (path.empty()) return Status::OK();
  Registry& reg = Registry::Global();
  reg.SampleProcessGauges();     // process.peak_rss_bytes at export time
  simd::PublishDispatchGauge();  // survives any Registry::Reset()
  RETINA_RETURN_NOT_OK(WriteWholeFile(path, reg.ToJson()));
  if (print_summary) {
    const std::string table = reg.SummaryTable();
    if (!table.empty()) std::printf("\n%s", table.c_str());
    std::printf("metrics written to %s\n", path.c_str());
  }
  return Status::OK();
}

Status ExportPrometheus(const std::string& path) {
  if (path.empty()) return Status::OK();
  // Write-then-rename keeps the published file whole at every instant: a
  // scraper opening `path` sees either the previous exposition or the new
  // one, never a prefix.
  const std::string tmp = path + ".tmp";
  RETINA_RETURN_NOT_OK(
      WriteWholeFile(tmp, Registry::Global().ToPrometheus()));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status ExportChromeTrace(const std::string& path, bool print_summary) {
  if (path.empty()) return Status::OK();
  StopTracing();
  RETINA_RETURN_NOT_OK(WriteWholeFile(path, TraceToChromeJson()));
  if (print_summary) {
    std::printf("trace written to %s (%zu events, %llu dropped)\n",
                path.c_str(), TraceBufferedEvents(),
                static_cast<unsigned long long>(TraceDroppedEvents()));
  }
  return Status::OK();
}

}  // namespace retina::obs
