#include "common/thread_pool.h"

#include <cstdlib>

#include "common/obs.h"

namespace retina::par {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    uint64_t seen_epoch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || job_fn_ != nullptr; });
      if (stop_) return;
      seen_epoch = job_epoch_;
    }
    DrainTasks();
    // Wait for the job to be retired before re-arming, so a worker never
    // spins on the same job twice.
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this, seen_epoch] {
      return stop_ || job_epoch_ != seen_epoch || job_fn_ == nullptr;
    });
    if (stop_) return;
  }
}

void ThreadPool::DrainTasks() {
  t_in_parallel_region = true;
  // Trace-context adoption: the first task this thread picks up installs
  // the submitting thread's context so any event emitted inside the tasks
  // (chunk spans, instants) nests under the submitting span. Restored on
  // exit; a pure observer — task selection and execution are unchanged.
  bool trace_ctx_adopted = false;
  obs::TraceContext saved_trace_ctx;
  for (;;) {
    size_t task;
    const std::function<void(size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_fn_ == nullptr || next_task_ >= job_size_) break;
      task = next_task_++;
      fn = job_fn_;
      if (!trace_ctx_adopted && obs::TraceEnabled()) {
        saved_trace_ctx = obs::CurrentTraceContext();
        obs::SetCurrentTraceContext(job_trace_ctx_);
        trace_ctx_adopted = true;
      }
    }
    try {
      (*fn)(task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_exception_ == nullptr || task < first_exception_task_) {
        first_exception_ = std::current_exception();
        first_exception_task_ = task;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_tasks_ == 0) done_cv_.notify_all();
    }
  }
  if (trace_ctx_adopted) obs::SetCurrentTraceContext(saved_trace_ctx);
  t_in_parallel_region = false;
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  // Nested or single-threaded: run inline. Exceptions propagate naturally
  // (fn(0) throws first by construction of the serial order).
  if (t_in_parallel_region || workers_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  if (obs::Enabled()) {
    // Observers only: dispatch order and task contents are unaffected.
    static obs::Counter* jobs =
        obs::Registry::Global().GetCounter("par.pool.jobs");
    static obs::Counter* tasks =
        obs::Registry::Global().GetCounter("par.pool.tasks");
    static obs::Gauge* peak_depth =
        obs::Registry::Global().GetGauge("par.pool.peak_queue_depth");
    jobs->Add(1);
    tasks->Add(num_tasks);
    peak_depth->UpdateMax(static_cast<int64_t>(num_tasks));
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    // Capture the submitting thread's trace context for the workers; zeros
    // when no trace session is active (one relaxed load on that path).
    job_trace_ctx_ = obs::TraceEnabled() ? obs::CurrentTraceContext()
                                         : obs::TraceContext{};
    job_size_ = num_tasks;
    next_task_ = 0;
    pending_tasks_ = num_tasks;
    first_exception_ = nullptr;
    first_exception_task_ = 0;
    ++job_epoch_;
  }
  work_cv_.notify_all();

  // The caller participates as one of the workers.
  DrainTasks();

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_tasks_ == 0; });
    job_fn_ = nullptr;
    err = first_exception_;
  }
  // Release workers parked on the job-retired wait.
  work_cv_.notify_all();
  if (err != nullptr) std::rethrow_exception(err);
}

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("RETINA_NUM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {
std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;
}  // namespace

ThreadPool* GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) g_pool = new ThreadPool(DefaultNumThreads());
  return g_pool;
}

size_t NumThreads() { return GlobalPool()->num_threads(); }

void SetNumThreads(size_t n) {
  if (n == 0) n = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  delete g_pool;
  g_pool = new ThreadPool(n);
}

}  // namespace retina::par
