#include "common/arena.h"

#include <cassert>
#include <cstdint>

namespace retina {

ScratchArena::ScratchArena(size_t initial_bytes) {
  if (initial_bytes > 0) GrowFor(initial_bytes);
}

ScratchArena::Block* ScratchArena::GrowFor(size_t bytes) {
  size_t cap = kMinBlockBytes;
  // Double the total reservation so a growing request converges in
  // O(log n) blocks; Reset() consolidates them afterwards.
  if (cap < reserved_) cap = reserved_;
  if (cap < bytes) cap = bytes;
  Block b;
  b.data = std::make_unique<std::byte[]>(cap);
  b.capacity = cap;
  reserved_ += cap;
  blocks_.push_back(std::move(b));
  return &blocks_.back();
}

void* ScratchArena::Allocate(size_t bytes, size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0 && align <= kMaxAlign);
  if (bytes == 0) bytes = 1;  // keep returned pointers distinct
  Block* b = blocks_.empty() ? nullptr : &blocks_.back();
  size_t offset = 0;
  if (b != nullptr) {
    const uintptr_t base = reinterpret_cast<uintptr_t>(b->data.get());
    offset = (base + b->offset + align - 1) / align * align - base;
  }
  if (b == nullptr || offset + bytes > b->capacity) {
    b = GrowFor(bytes + align);
    const uintptr_t base = reinterpret_cast<uintptr_t>(b->data.get());
    offset = (base + align - 1) / align * align - base;
  }
  void* p = b->data.get() + offset;
  used_ += (offset - b->offset) + bytes;
  b->offset = offset + bytes;
  return p;
}

void ScratchArena::Reset() {
  if (used_ > high_water_) high_water_ = used_;
  used_ = 0;
  if (blocks_.size() > 1) {
    // The epoch spilled across blocks: replace them with one block big
    // enough for the whole observed footprint (padding slack for
    // per-allocation alignment) so the next epoch stays in-block.
    const size_t want = high_water_ + kMaxAlign;
    blocks_.clear();
    reserved_ = 0;
    GrowFor(want);
  }
  for (Block& b : blocks_) b.offset = 0;
}

ScratchArena& TlsScratchArena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace retina
