// Console table writer used by the benchmark harnesses to print
// paper-style tables (aligned columns) and optional CSV dumps.

#ifndef RETINA_COMMON_TABLE_H_
#define RETINA_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace retina {

/// \brief Accumulates rows and renders them as an aligned console table.
///
/// Used by every bench binary so that reproduced tables read like the
/// paper's. Cells are free-form strings; numeric formatting is the caller's
/// job (see FormatDouble).
class TableWriter {
 public:
  /// \param title Caption printed above the table.
  /// \param header Column names.
  TableWriter(std::string title, std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the aligned table to a string.
  std::string Render() const;

  /// Renders to stdout.
  void Print() const;

  /// Writes the table as CSV to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace retina

#endif  // RETINA_COMMON_TABLE_H_
