// Dense vector / matrix math kernels shared by the ML and NN libraries.
//
// Vectors are plain std::vector<double>; Matrix is a row-major dense matrix.
// Kernels stay easy to audit: MatVec blocks four rows per pass and MatMul
// switches to a transposed-B register-blocked form for larger products, but
// both keep each output entry's accumulation order ascending in k, so
// results are identical to the naive loops.

#ifndef RETINA_COMMON_VEC_H_
#define RETINA_COMMON_VEC_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace retina {

using Vec = std::vector<double>;

/// \brief Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Row r as a span — the no-copy accessor hot loops should prefer over
  /// RowVec.
  std::span<double> RowSpan(size_t r) {
    assert(r < rows_);
    return {Row(r), cols_};
  }
  std::span<const double> RowSpan(size_t r) const {
    assert(r < rows_);
    return {Row(r), cols_};
  }

  /// Copies row r into a Vec.
  Vec RowVec(size_t r) const {
    assert(r < rows_);
    Vec out(cols_);
    std::copy(Row(r), Row(r) + cols_, out.begin());
    return out;
  }

  /// Overwrites row r with v (sizes must match).
  void SetRow(size_t r, const Vec& v) {
    assert(r < rows_ && v.size() == cols_);
    std::copy(v.begin(), v.end(), Row(r));
  }

  /// Overwrites row r from a raw span of cols() entries.
  void SetRow(size_t r, std::span<const double> v) {
    assert(r < rows_ && v.size() == cols_);
    std::copy(v.begin(), v.end(), Row(r));
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// C = this * other. Dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  /// C = this * bt^T without materializing the transpose: bt is the
  /// right-hand operand stored row-major in its transposed form, so
  /// C(i, j) = dot(row i of this, row j of bt). This is the natural layout
  /// for batched layer forwards (bt = the weight matrix W, rows = output
  /// units): each output entry accumulates in ascending k exactly like
  /// MatVec, so a batched forward is bit-identical to the row-at-a-time
  /// path.
  Matrix MatMulTransposedB(const Matrix& bt) const;

  /// C = this^T as a new matrix.
  Matrix Transpose() const;

  /// y = this * x (matrix-vector product).
  Vec MatVec(const Vec& x) const;

  /// y = this^T * x without materializing the transpose.
  Vec TransposeMatVec(const Vec& x) const;

  /// this += alpha * other (element-wise). Dimensions must agree.
  void Axpy(double alpha, const Matrix& other);

  /// Fills every element with `value`.
  void Fill(double value);

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Dot product. Sizes must match.
double Dot(const Vec& a, const Vec& b);

/// y += alpha * x. Sizes must match.
void Axpy(double alpha, const Vec& x, Vec* y);

/// In-place scale: x *= alpha.
void Scale(double alpha, Vec* x);

/// Euclidean norm.
double Norm2(const Vec& a);

/// Sum of elements.
double Sum(const Vec& a);

/// Arithmetic mean (0 for empty).
double Mean(const Vec& a);

/// Population variance: mean((a_i - mean(a))^2) over all elements.
/// Returns 0 for vectors with fewer than two elements (empty or singleton).
double Variance(const Vec& a);

/// Cosine similarity; 0 when either vector is all-zero.
double CosineSimilarity(const Vec& a, const Vec& b);

/// Numerically stable in-place softmax.
void SoftmaxInPlace(Vec* v);

/// Raw-buffer overload (same arithmetic) for arena-backed scratch.
void SoftmaxInPlace(double* v, size_t n);

/// Logistic sigmoid with clamping to avoid overflow.
double Sigmoid(double x);

/// Element-wise a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Element-wise a + b.
Vec Add(const Vec& a, const Vec& b);

/// Concatenates b onto a copy of a.
Vec Concat(const Vec& a, const Vec& b);

/// Min-max normalizes v in place to [0,1] per element range of the vector;
/// no-op when the range is degenerate.
void MinMaxNormalizeInPlace(Vec* v);

/// L2-normalizes v in place; no-op on the zero vector.
void L2NormalizeInPlace(Vec* v);

}  // namespace retina

#endif  // RETINA_COMMON_VEC_H_
