// Deterministic, splittable random number generation.
//
// Every stochastic component of the library takes an explicit seed. Rng is a
// SplitMix64/xoshiro256** generator with a Split() operation that derives an
// independent child stream, so adding draws to one subsystem never perturbs
// the stream seen by another — a property the synthetic-world generator
// (src/datagen) relies on for reproducible experiments.

#ifndef RETINA_COMMON_RNG_H_
#define RETINA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace retina {

/// \brief Deterministic splittable pseudo-random generator.
///
/// Not thread-safe; split one child per thread instead.
class Rng {
 public:
  /// Seeds the stream. Two Rng objects with equal seeds produce identical
  /// sequences on all platforms (no std:: distribution objects are used).
  explicit Rng(uint64_t seed);

  /// Derives an independent child stream. The child's sequence is a pure
  /// function of (parent seed, number of prior Split calls), not of how many
  /// variates the parent has drawn.
  Rng Split();

  /// Indexed-stream derivation for parallel loops: Stream(seed, i) is the
  /// stream the (i+1)-th Split() of Rng(seed) would produce, computed
  /// without touching any parent state. Workers processing item/chunk i of
  /// a parallel loop draw from Stream(seed, i), which makes the randomness
  /// a pure function of (caller seed, index) — bit-identical at any thread
  /// count and under any scheduling order (the retina::par contract).
  static Rng Stream(uint64_t seed, uint64_t stream_id);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal variate (Box–Muller, deterministic).
  double Normal();

  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev);

  /// Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Gamma(shape, scale=1) via Marsaglia–Tsang. Requires shape > 0.
  double Gamma(double shape);

  /// Poisson variate with the given mean (inversion for small, PTRS-free
  /// normal approximation for large means).
  int Poisson(double mean);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index proportionally to non-negative `weights`.
  /// Returns weights.size()-1 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Symmetric Dirichlet sample of dimension k with concentration alpha.
  std::vector<double> Dirichlet(size_t k, double alpha);

  /// Dirichlet sample with per-component concentrations.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir if k << n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  Rng(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3);

  uint64_t s_[4];
  uint64_t split_counter_ = 0;
  uint64_t seed_;
  // Cached second Box–Muller variate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace retina

#endif  // RETINA_COMMON_RNG_H_
