// Fixed-size worker pool behind the retina::par execution layer.
//
// The pool is a plain task-index dispatcher: Run(num_tasks, fn) executes
// fn(0) .. fn(num_tasks-1) across the workers plus the calling thread and
// blocks until every task finished. Scheduling order is unspecified, so
// callers that need determinism must make each task independent and combine
// task outputs in index order (see common/parallel.h, which layers a
// deterministic chunking contract on top).
//
// Exceptions thrown inside a task are captured; after all tasks drain, the
// one from the lowest task index is rethrown in the caller.

#ifndef RETINA_COMMON_THREAD_POOL_H_
#define RETINA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace retina::par {

/// \brief Fixed-size thread pool; workers live for the pool's lifetime.
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the calling thread participates in
  /// every Run, so `num_threads` is the total concurrency). num_threads == 1
  /// creates no workers and Run degenerates to an inline loop.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, num_tasks). Blocks until all tasks have
  /// completed. Concurrent Run calls from different threads serialize; a
  /// nested Run from inside a task executes inline on the calling thread
  /// (so parallel callees inside parallel callers cannot deadlock).
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn);

  /// True while the current thread is executing a task of some Run.
  static bool InParallelRegion();

 private:
  void WorkerLoop();
  // Pulls and executes tasks of the active job until exhausted.
  void DrainTasks();

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job posted / stop
  std::condition_variable done_cv_;   // signals caller: job finished
  const std::function<void(size_t)>* job_fn_ = nullptr;
  // Trace context of the submitting thread, captured at enqueue when a
  // trace session is active so worker-side events nest under the
  // submitting span (zeros otherwise). Guarded by mu_.
  obs::TraceContext job_trace_ctx_;
  size_t job_size_ = 0;
  size_t next_task_ = 0;
  size_t pending_tasks_ = 0;
  uint64_t job_epoch_ = 0;
  bool stop_ = false;

  // First (lowest task index) exception of the active job.
  std::exception_ptr first_exception_;
  size_t first_exception_task_ = 0;

  std::mutex run_mu_;  // serializes concurrent Run callers
};

/// Number of threads the global pool uses: the RETINA_NUM_THREADS
/// environment variable when set to a positive integer, else
/// std::thread::hardware_concurrency() (min 1).
size_t DefaultNumThreads();

/// Process-wide shared pool, created on first use with DefaultNumThreads().
ThreadPool* GlobalPool();

/// Current global pool size.
size_t NumThreads();

/// Replaces the global pool with one of `n` threads (n >= 1). Intended for
/// tests and benchmarks; must not be called while parallel work is running.
void SetNumThreads(size_t n);

}  // namespace retina::par

#endif  // RETINA_COMMON_THREAD_POOL_H_
