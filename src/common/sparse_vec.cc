#include "common/sparse_vec.h"

#include <cmath>

#include "common/simd.h"

namespace retina {

SparseVec SparseVec::FromDense(const Vec& dense, double tol) {
  SparseVec out(dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    if (std::abs(dense[i]) > tol) out.PushBack(i, dense[i]);
  }
  return out;
}

Vec SparseVec::ToDense() const {
  Vec out(dim_, 0.0);
  ScatterInto(out.data());
  return out;
}

void SparseVec::ScatterInto(double* dst) const {
  for (size_t k = 0; k < indices_.size(); ++k) {
    dst[indices_[k]] = values_[k];
  }
}

double SparseVec::Norm2() const {
  return std::sqrt(simd::Norm2Sq(values_.data(), values_.size()));
}

void SparseVec::Scale(double alpha) {
  simd::Scale(alpha, values_.data(), values_.size());
}

double Dot(const SparseVec& x, const Vec& y) {
  assert(x.dim() == y.size());
  return simd::SparseDot(x.values().data(), x.indices().data(), x.nnz(),
                         y.data());
}

double Dot(const SparseVec& x, const SparseVec& y) {
  assert(x.dim() == y.dim());
  double acc = 0.0;
  const auto& xi = x.indices();
  const auto& yi = y.indices();
  size_t a = 0, b = 0;
  while (a < xi.size() && b < yi.size()) {
    if (xi[a] < yi[b]) {
      ++a;
    } else if (xi[a] > yi[b]) {
      ++b;
    } else {
      acc += x.values()[a] * y.values()[b];
      ++a;
      ++b;
    }
  }
  return acc;
}

void Axpy(double alpha, const SparseVec& x, Vec* y) {
  assert(x.dim() == y->size());
  simd::SparseAxpy(alpha, x.values().data(), x.indices().data(), x.nnz(),
                   y->data());
}

}  // namespace retina
