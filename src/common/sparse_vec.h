// Sparse vector over a fixed dense dimensionality.
//
// The tf-idf feature blocks that dominate RETINA's input vectors are ~95%
// zeros (three 300-dim blocks with a few dozen active tokens each), so the
// scoring path keeps them as sorted (index, value) pairs until the first
// dense layer. All kernels walk the stored indices in ascending order, so a
// sparse accumulation visits exactly the nonzero terms of the matching
// dense loop in the same order — under the scalar kernel backend results
// are identical to the dense kernels (zero terms contribute nothing to an
// accumulation). Under a SIMD backend (common/simd.h) the sparse and dense
// reductions partition terms across lanes differently, so sparse-vs-dense
// agreement is within 1e-12 relative tolerance instead of bitwise; forcing
// RETINA_SIMD=scalar restores the bitwise guarantee.

#ifndef RETINA_COMMON_SPARSE_VEC_H_
#define RETINA_COMMON_SPARSE_VEC_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "common/vec.h"

namespace retina {

/// \brief Fixed-dimension sparse vector of sorted (index, value) pairs.
class SparseVec {
 public:
  SparseVec() = default;
  explicit SparseVec(size_t dim) : dim_(dim) {}

  /// Gathers the nonzeros of `dense` (entries with |v| > tol kept).
  static SparseVec FromDense(const Vec& dense, double tol = 0.0);

  /// Appends a nonzero entry; indices must arrive in strictly ascending
  /// order and below dim().
  void PushBack(size_t index, double value) {
    assert(index < dim_);
    assert(indices_.empty() || index > indices_.back());
    indices_.push_back(static_cast<uint32_t>(index));
    values_.push_back(value);
  }

  size_t dim() const { return dim_; }
  size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  const std::vector<uint32_t>& indices() const { return indices_; }
  const Vec& values() const { return values_; }
  Vec& mutable_values() { return values_; }

  /// Scatters into a fresh dense vector of dim() entries.
  Vec ToDense() const;

  /// Writes the nonzeros at their indices into `dst` (a caller-zeroed span
  /// of at least dim() entries). Raw pointer so callers can scatter into an
  /// offset slice of a larger feature row.
  void ScatterInto(double* dst) const;

  /// Euclidean norm over the stored entries.
  double Norm2() const;

  /// In-place scale of the stored values.
  void Scale(double alpha);

 private:
  size_t dim_ = 0;
  std::vector<uint32_t> indices_;
  Vec values_;
};

/// dot(x, y) over x's nonzeros in ascending index order. y must have
/// x.dim() entries.
double Dot(const SparseVec& x, const Vec& y);

/// Sparse-sparse dot via an ascending two-pointer merge.
double Dot(const SparseVec& x, const SparseVec& y);

/// y += alpha * x over x's nonzeros. y must have x.dim() entries.
void Axpy(double alpha, const SparseVec& x, Vec* y);

}  // namespace retina

#endif  // RETINA_COMMON_SPARSE_VEC_H_
