#include "common/vec.h"

#include <algorithm>
#include <cmath>

namespace retina {

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const size_t N = other.cols_, K = cols_;
  // Small products keep the original k-outer loop; the transpose pays off
  // only once B no longer fits comfortably in cache lines per row.
  if (rows_ * N * K < 16 * 1024) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* arow = Row(i);
      double* orow = out.Row(i);
      for (size_t k = 0; k < K; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = other.Row(k);
        for (size_t j = 0; j < N; ++j) orow[j] += aik * brow[j];
      }
    }
    return out;
  }
  // Transposed-B form: C(i,j) = dot(A row i, B^T row j) streams both
  // operands contiguously. The j-loop is register-blocked four wide so each
  // pass over A's row feeds four independent accumulators. Per-entry
  // k-order is ascending either way, so results match the naive kernel
  // bit-for-bit.
  const Matrix bt = other.Transpose();
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = Row(i);
    double* orow = out.Row(i);
    size_t j = 0;
    for (; j + 4 <= N; j += 4) {
      const double* b0 = bt.Row(j);
      const double* b1 = bt.Row(j + 1);
      const double* b2 = bt.Row(j + 2);
      const double* b3 = bt.Row(j + 3);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t k = 0; k < K; ++k) {
        const double a = arow[k];
        acc0 += a * b0[k];
        acc1 += a * b1[k];
        acc2 += a * b2[k];
        acc3 += a * b3[k];
      }
      orow[j] = acc0;
      orow[j + 1] = acc1;
      orow[j + 2] = acc2;
      orow[j + 3] = acc3;
    }
    for (; j < N; ++j) {
      const double* brow = bt.Row(j);
      double acc = 0.0;
      for (size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposedB(const Matrix& bt) const {
  assert(cols_ == bt.cols_);
  Matrix out(rows_, bt.rows_);
  const size_t N = bt.rows_, K = cols_;
  // Same register-blocked form as MatMul's transposed-B path: four
  // independent accumulators per pass over A's row, each a plain ascending
  // dot product.
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = Row(i);
    double* orow = out.Row(i);
    size_t j = 0;
    for (; j + 4 <= N; j += 4) {
      const double* b0 = bt.Row(j);
      const double* b1 = bt.Row(j + 1);
      const double* b2 = bt.Row(j + 2);
      const double* b3 = bt.Row(j + 3);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t k = 0; k < K; ++k) {
        const double a = arow[k];
        acc0 += a * b0[k];
        acc1 += a * b1[k];
        acc2 += a * b2[k];
        acc3 += a * b3[k];
      }
      orow[j] = acc0;
      orow[j + 1] = acc1;
      orow[j + 2] = acc2;
      orow[j + 3] = acc3;
    }
    for (; j < N; ++j) {
      const double* brow = bt.Row(j);
      double acc = 0.0;
      for (size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vec Matrix::MatVec(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  const double* xp = x.data();
  // Four rows per pass share each load of x, turning the kernel from one
  // dot product at a time into a 4-row block with independent accumulators.
  // Each row's own k-order stays ascending, so per-entry results are
  // unchanged.
  size_t i = 0;
  for (; i + 4 <= rows_; i += 4) {
    const double* r0 = Row(i);
    const double* r1 = Row(i + 1);
    const double* r2 = Row(i + 2);
    const double* r3 = Row(i + 3);
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    for (size_t j = 0; j < cols_; ++j) {
      const double xj = xp[j];
      acc0 += r0[j] * xj;
      acc1 += r1[j] * xj;
      acc2 += r2[j] * xj;
      acc3 += r3[j] * xj;
    }
    y[i] = acc0;
    y[i + 1] = acc1;
    y[i + 2] = acc2;
    y[i + 3] = acc3;
  }
  for (; i < rows_; ++i) {
    const double* row = Row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * xp[j];
    y[i] = acc;
  }
  return y;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) y[j] += xi * row[j];
  }
  return y;
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Sum(const Vec& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

double Mean(const Vec& a) {
  return a.empty() ? 0.0 : Sum(a) / static_cast<double>(a.size());
}

double Variance(const Vec& a) {
  if (a.empty()) return 0.0;
  const double mu = Mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(a.size());
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(Vec* v) {
  if (v->empty()) return;
  const double mx = *std::max_element(v->begin(), v->end());
  double total = 0.0;
  for (double& x : *v) {
    x = std::exp(x - mx);
    total += x;
  }
  for (double& x : *v) x /= total;
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-std::min(x, 500.0));
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(std::max(x, -500.0));
  return z / (1.0 + z);
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void MinMaxNormalizeInPlace(Vec* v) {
  if (v->empty()) return;
  const auto [mn_it, mx_it] = std::minmax_element(v->begin(), v->end());
  const double mn = *mn_it, mx = *mx_it;
  if (mx - mn < 1e-12) return;
  for (double& x : *v) x = (x - mn) / (mx - mn);
}

void L2NormalizeInPlace(Vec* v) {
  const double n = Norm2(*v);
  if (n < 1e-12) return;
  for (double& x : *v) x /= n;
}

}  // namespace retina
