#include "common/vec.h"

#include <algorithm>
#include <cmath>

namespace retina {

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = Row(i);
    double* orow = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = other.Row(k);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vec Matrix::MatVec(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) y[j] += xi * row[j];
  }
  return y;
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Sum(const Vec& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

double Mean(const Vec& a) {
  return a.empty() ? 0.0 : Sum(a) / static_cast<double>(a.size());
}

double Variance(const Vec& a) {
  if (a.empty()) return 0.0;
  const double mu = Mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(a.size());
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(Vec* v) {
  if (v->empty()) return;
  const double mx = *std::max_element(v->begin(), v->end());
  double total = 0.0;
  for (double& x : *v) {
    x = std::exp(x - mx);
    total += x;
  }
  for (double& x : *v) x /= total;
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-std::min(x, 500.0));
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(std::max(x, -500.0));
  return z / (1.0 + z);
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void MinMaxNormalizeInPlace(Vec* v) {
  if (v->empty()) return;
  const auto [mn_it, mx_it] = std::minmax_element(v->begin(), v->end());
  const double mn = *mn_it, mx = *mx_it;
  if (mx - mn < 1e-12) return;
  for (double& x : *v) x = (x - mn) / (mx - mn);
}

void L2NormalizeInPlace(Vec* v) {
  const double n = Norm2(*v);
  if (n < 1e-12) return;
  for (double& x : *v) x /= n;
}

}  // namespace retina
