#include "common/vec.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace retina {

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const size_t N = other.cols_, K = cols_;
  // Small products keep the original k-outer loop; the transpose pays off
  // only once B no longer fits comfortably in cache lines per row. The
  // inner accumulation is axpy-shaped, so it routes through the dispatched
  // element-wise axpy kernel (bit-identical to the scalar loop on x86).
  if (rows_ * N * K < 16 * 1024) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* arow = Row(i);
      double* orow = out.Row(i);
      for (size_t k = 0; k < K; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        simd::Axpy(aik, other.Row(k), orow, N);
      }
    }
    return out;
  }
  // Transposed-B form: C(i,j) = dot(A row i, B^T row j) streams both
  // operands contiguously through the dispatched dot kernel. Per-entry
  // k-order is ascending either way, so under the scalar backend results
  // match the naive kernel bit-for-bit.
  const Matrix bt = other.Transpose();
  simd::MatMulTransposedB(data_.data(), rows_, K, bt.data_.data(), N,
                          out.data_.data());
  return out;
}

Matrix Matrix::MatMulTransposedB(const Matrix& bt) const {
  assert(cols_ == bt.cols_);
  Matrix out(rows_, bt.rows_);
  // Each output entry is one dispatched dot over the shared k extent —
  // the identical kernel call MatVec makes for the matching row, which is
  // what keeps batched forwards bit-identical to the per-row path at any
  // dispatch choice.
  simd::MatMulTransposedB(data_.data(), rows_, cols_, bt.data_.data(),
                          bt.rows_, out.data_.data());
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vec Matrix::MatVec(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  simd::MatVec(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  simd::TransposeMatVecAcc(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  simd::Axpy(alpha, other.data_.data(), data_.data(), data_.size());
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  return simd::Dot(a.data(), b.data(), a.size());
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  assert(x.size() == y->size());
  simd::Axpy(alpha, x.data(), y->data(), x.size());
}

void Scale(double alpha, Vec* x) {
  simd::Scale(alpha, x->data(), x->size());
}

double Norm2(const Vec& a) {
  return std::sqrt(simd::Norm2Sq(a.data(), a.size()));
}

double Sum(const Vec& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

double Mean(const Vec& a) {
  return a.empty() ? 0.0 : Sum(a) / static_cast<double>(a.size());
}

double Variance(const Vec& a) {
  if (a.empty()) return 0.0;
  const double mu = Mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(a.size());
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(double* v, size_t n) {
  if (n == 0) return;
  const double mx = *std::max_element(v, v + n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::exp(v[i] - mx);
    total += v[i];
  }
  for (size_t i = 0; i < n; ++i) v[i] /= total;
}

void SoftmaxInPlace(Vec* v) { SoftmaxInPlace(v->data(), v->size()); }

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-std::min(x, 500.0));
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(std::max(x, -500.0));
  return z / (1.0 + z);
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void MinMaxNormalizeInPlace(Vec* v) {
  if (v->empty()) return;
  const auto [mn_it, mx_it] = std::minmax_element(v->begin(), v->end());
  const double mn = *mn_it, mx = *mx_it;
  if (mx - mn < 1e-12) return;
  for (double& x : *v) x = (x - mn) / (mx - mn);
}

void L2NormalizeInPlace(Vec* v) {
  const double n = Norm2(*v);
  if (n < 1e-12) return;
  simd::DivInPlace(n, v->data(), v->size());
}

}  // namespace retina
