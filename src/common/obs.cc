#include "common/obs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "common/table.h"
#include "common/trace.h"

namespace retina::obs {

namespace internal {

namespace {
bool EnabledFromEnv() {
  const char* env = std::getenv("RETINA_OBS");
  return env == nullptr || std::string(env) != "0";
}
}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  if constexpr (!kCompiledIn) return;
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t b = 0;
  while (value != 0) {
    value >>= 1;
    ++b;
  }
  // 1 + floor(log2(v)); the top bucket absorbs the overflow range.
  return std::min(b, kBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kBuckets - 1) return ~uint64_t{0};  // overflow bucket
  return (uint64_t{1} << bucket) - 1;
}

uint64_t Histogram::QuantileFromBuckets(const uint64_t* buckets,
                                        uint64_t count, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Smallest bucket whose cumulative count covers a q-fraction of samples.
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (static_cast<double>(cum) >= target && cum > 0) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0;
  uint64_t buckets[kBuckets];
  for (size_t b = 0; b < kBuckets; ++b) buckets[b] = BucketCount(b);
  return QuantileFromBuckets(buckets, n, q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---- WindowedHistogram -----------------------------------------------------

void WindowedHistogram::Tick() {
  if (!Enabled()) return;
  // fetch_add hands each concurrent ticker a distinct slot to recycle, so
  // racing ticks never scribble on the same sub-histogram.
  const uint64_t next = ticks_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ring_[next % kRingSize].Reset();
}

WindowSnapshot WindowedHistogram::SnapshotWindow(size_t last_n) const {
  WindowSnapshot snap;
  const uint64_t t = ticks_.load(std::memory_order_acquire);
  snap.ticks = t;
  // Slots that hold data: the current one plus at most t rotated ones,
  // capped by the ring size and the caller's window.
  const uint64_t avail = std::min<uint64_t>(t + 1, kRingSize);
  const uint64_t n =
      std::min<uint64_t>(last_n == 0 ? uint64_t{1} : last_n, avail);
  uint64_t buckets[Histogram::kBuckets] = {};
  for (uint64_t i = 0; i < n; ++i) {
    const Histogram& h = ring_[(t - i) % kRingSize];
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      buckets[b] += h.BucketCount(b);
    }
    snap.window.count += h.Count();
    snap.window.sum += h.Sum();
  }
  snap.slots = n;
  snap.window.p50 =
      Histogram::QuantileFromBuckets(buckets, snap.window.count, 0.5);
  snap.window.p95 =
      Histogram::QuantileFromBuckets(buckets, snap.window.count, 0.95);
  snap.window.p99 =
      Histogram::QuantileFromBuckets(buckets, snap.window.count, 0.99);
  return snap;
}

void WindowedHistogram::Reset() {
  for (Histogram& h : ring_) h.Reset();
  ticks_.store(0, std::memory_order_relaxed);
}

// ---- Series ----------------------------------------------------------------

void Series::Append(double v) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(v);
}

std::vector<double> Series::Values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t Series::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

// ---- Span ------------------------------------------------------------------

namespace {
thread_local Span* t_current_span = nullptr;
}  // namespace

Span::Span(ScopeStats* scope, const char* name)
    : scope_(Enabled() ? scope : nullptr) {
  if (scope_ == nullptr) return;
  parent_ = t_current_span;
  t_current_span = this;
  if (name != nullptr && TraceEnabled()) {
    trace_name_ = name;
    trace_span_id_ = internal::TraceBeginSpan(name, &trace_saved_trace_id_,
                                              &trace_saved_span_id_);
  }
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (scope_ == nullptr) return;
  const uint64_t elapsed =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start_)
                                .count());
  scope_->total_ns.fetch_add(elapsed, std::memory_order_relaxed);
  // Same-thread children accumulated into child_ns_; their sum cannot
  // exceed this span's elapsed time on a monotonic clock.
  scope_->self_ns.fetch_add(elapsed >= child_ns_ ? elapsed - child_ns_ : 0,
                            std::memory_order_relaxed);
  scope_->count.fetch_add(1, std::memory_order_relaxed);
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
  if (trace_span_id_ != 0) {
    internal::TraceEndSpan(trace_name_, trace_span_id_, trace_saved_trace_id_,
                           trace_saved_span_id_);
  }
}

// ---- Registry --------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windows;
  std::map<std::string, std::unique_ptr<Series>> series;
  std::map<std::string, std::unique_ptr<ScopeStats>> scopes;
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {
template <typename T>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* m, std::mutex* mu,
               const std::string& name) {
  std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*m)[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return slot.get();
}
}  // namespace

Counter* Registry::GetCounter(const std::string& name) {
  return GetOrCreate(&impl().counters, &impl().mu, name);
}
Gauge* Registry::GetGauge(const std::string& name) {
  return GetOrCreate(&impl().gauges, &impl().mu, name);
}
Histogram* Registry::GetHistogram(const std::string& name) {
  return GetOrCreate(&impl().histograms, &impl().mu, name);
}
Series* Registry::GetSeries(const std::string& name) {
  return GetOrCreate(&impl().series, &impl().mu, name);
}
ScopeStats* Registry::GetScope(const std::string& name) {
  return GetOrCreate(&impl().scopes, &impl().mu, name);
}

WindowedHistogram* Registry::GetWindowedHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.windows[name];
  if (slot == nullptr) {
    // The windowed view shares its cumulative side with the plain histogram
    // of the same name, so exports and GetHistogram callers agree.
    auto& hist = im.histograms[name];
    if (hist == nullptr) hist = std::make_unique<Histogram>();
    slot = std::make_unique<WindowedHistogram>(hist.get());
  }
  return slot.get();
}

void Registry::TickWindows() {
  if (!Enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, w] : im.windows) w->Tick();
}

namespace {

// Peak resident set size in bytes, from /proc/self/status VmHWM. Returns 0
// when the file or the field is unavailable (non-Linux).
int64_t PeakRssBytes() {
  int64_t bytes = 0;
#ifdef __linux__
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      // "VmHWM:   123456 kB"
      bytes = static_cast<int64_t>(std::atoll(line + 6)) * 1024;
      break;
    }
  }
  std::fclose(f);
#endif
  return bytes;
}

}  // namespace

void Registry::SampleProcessGauges() {
  GetGauge("process.peak_rss_bytes")->Set(PeakRssBytes());
}

void Registry::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, g] : im.gauges) g->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
  for (auto& [name, w] : im.windows) w->Reset();
  for (auto& [name, s] : im.series) s->Reset();
  for (auto& [name, sc] : im.scopes) sc->Reset();
}

namespace {

HistogramSnapshot SnapshotOf(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.Count();
  snap.sum = h.Sum();
  snap.p50 = h.Quantile(0.5);
  snap.p95 = h.Quantile(0.95);
  snap.p99 = h.Quantile(0.99);
  return snap;
}

}  // namespace

RegistrySnapshot Registry::TakeSnapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  RegistrySnapshot snap;
  for (const auto& [name, c] : im.counters) snap.counters[name] = c->Get();
  for (const auto& [name, g] : im.gauges) snap.gauges[name] = g->Get();
  for (const auto& [name, h] : im.histograms) {
    snap.histograms[name] = SnapshotOf(*h);
  }
  for (const auto& [name, w] : im.windows) {
    snap.windows[name] = w->SnapshotWindow();
  }
  return snap;
}

RegistrySnapshot Registry::SnapshotDelta(const RegistrySnapshot& before,
                                         const RegistrySnapshot& after) {
  RegistrySnapshot delta;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const uint64_t prev = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = v >= prev ? v - prev : 0;
  }
  // Counters present before but gone after (Reset never erases names, but
  // be defensive): report them as zero.
  for (const auto& kv : before.counters) delta.counters.emplace(kv.first, 0);
  for (const auto& [name, v] : after.gauges) {
    const auto it = before.gauges.find(name);
    const int64_t prev = it == before.gauges.end() ? 0 : it->second;
    delta.gauges[name] = v - prev;
  }
  for (const auto& kv : before.gauges) delta.gauges.emplace(kv.first, 0);
  delta.histograms = after.histograms;
  delta.windows = after.windows;
  return delta;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatG17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string Registry::ToJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;
  os << "{\n  \"enabled\": " << (Enabled() ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << c->Get();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << g->Get();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h->Count() << ", \"sum\": " << h->Sum()
       << ", \"mean\": " << FormatG17(h->Mean())
       << ", \"p50\": " << h->Quantile(0.5)
       << ", \"p95\": " << h->Quantile(0.95)
       << ", \"p99\": " << h->Quantile(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t n = h->BucketCount(b);
      if (n == 0) continue;
      os << (first_bucket ? "" : ", ") << "["
         << Histogram::BucketLowerBound(b) << ", " << n << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"windows\": {";
  first = true;
  for (const auto& [name, w] : im.windows) {
    const WindowSnapshot snap = w->SnapshotWindow();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
       << "\"ticks\": " << snap.ticks << ", \"slots\": " << snap.slots
       << ", \"count\": " << snap.window.count
       << ", \"sum\": " << snap.window.sum << ", \"p50\": " << snap.window.p50
       << ", \"p95\": " << snap.window.p95 << ", \"p99\": " << snap.window.p99
       << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"series\": {";
  first = true;
  for (const auto& [name, s] : im.series) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": [";
    const std::vector<double> values = s->Values();
    for (size_t i = 0; i < values.size(); ++i) {
      os << (i == 0 ? "" : ", ") << FormatG17(values[i]);
    }
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"scopes\": {";
  first = true;
  for (const auto& [name, sc] : im.scopes) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << sc->count.load(std::memory_order_relaxed)
       << ", \"total_ms\": "
       << FormatG17(NsToMs(sc->total_ns.load(std::memory_order_relaxed)))
       << ", \"self_ms\": "
       << FormatG17(NsToMs(sc->self_ns.load(std::memory_order_relaxed)))
       << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:]; everything else (registry
// names use '.') maps to '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out += "retina_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string Registry::ToPrometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  // family name -> exposition block; the map both sorts and dedups (first
  // writer wins if two registry names sanitize to the same family).
  std::map<std::string, std::string> families;

  for (const auto& [name, c] : im.counters) {
    const std::string fam = PromName(name);
    if (families.count(fam) != 0) continue;
    std::ostringstream os;
    os << "# TYPE " << fam << " counter\n" << fam << " " << c->Get() << "\n";
    families[fam] = os.str();
  }
  for (const auto& [name, g] : im.gauges) {
    const std::string fam = PromName(name);
    if (families.count(fam) != 0) continue;
    std::ostringstream os;
    os << "# TYPE " << fam << " gauge\n" << fam << " " << g->Get() << "\n";
    families[fam] = os.str();
  }
  for (const auto& [name, h] : im.histograms) {
    const std::string fam = PromName(name);
    if (families.count(fam) != 0) continue;
    std::ostringstream os;
    os << "# TYPE " << fam << " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t n = h->BucketCount(b);
      if (n == 0) continue;
      cum += n;
      // The overflow bucket has no finite upper bound; +Inf below covers it.
      if (b >= Histogram::kBuckets - 1) continue;
      os << fam << "_bucket{le=\"" << Histogram::BucketUpperBound(b) << "\"} "
         << cum << "\n";
    }
    // A racing Record bumps buckets before count, so pin +Inf/_count to the
    // larger of the two reads — cumulative buckets must never decrease.
    const uint64_t total = std::max(cum, h->Count());
    os << fam << "_bucket{le=\"+Inf\"} " << total << "\n"
       << fam << "_sum " << h->Sum() << "\n"
       << fam << "_count " << total << "\n";
    families[fam] = os.str();
  }
  for (const auto& [name, w] : im.windows) {
    const WindowSnapshot snap = w->SnapshotWindow();
    const struct {
      const char* suffix;
      uint64_t value;
    } quantiles[] = {{"_window_p50", snap.window.p50},
                     {"_window_p95", snap.window.p95},
                     {"_window_p99", snap.window.p99}};
    for (const auto& q : quantiles) {
      const std::string fam = PromName(name) + q.suffix;
      if (families.count(fam) != 0) continue;
      std::ostringstream os;
      os << "# TYPE " << fam << " gauge\n" << fam << " " << q.value << "\n";
      families[fam] = os.str();
    }
  }

  std::string out;
  for (const auto& [fam, block] : families) out += block;
  return out;
}

std::string Registry::SummaryTable() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;

  auto format_ms = [](uint64_t ns) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", NsToMs(ns));
    return std::string(buf);
  };

  bool any_counter = false;
  TableWriter counters("observability — counters & gauges",
                       {"metric", "value"});
  for (const auto& [name, c] : im.counters) {
    if (c->Get() == 0) continue;
    counters.AddRow({name, std::to_string(c->Get())});
    any_counter = true;
  }
  for (const auto& [name, g] : im.gauges) {
    if (g->Get() == 0) continue;
    counters.AddRow({name, std::to_string(g->Get())});
    any_counter = true;
  }
  if (any_counter) os << counters.Render() << "\n";

  bool any_hist = false;
  TableWriter hists("observability — histograms (ns)",
                    {"metric", "count", "mean", "p50", "p95", "p99"});
  for (const auto& [name, h] : im.histograms) {
    if (h->Count() == 0) continue;
    char mean[64];
    std::snprintf(mean, sizeof(mean), "%.0f", h->Mean());
    hists.AddRow({name, std::to_string(h->Count()), mean,
                  std::to_string(h->Quantile(0.5)),
                  std::to_string(h->Quantile(0.95)),
                  std::to_string(h->Quantile(0.99))});
    any_hist = true;
  }
  if (any_hist) os << hists.Render() << "\n";

  bool any_scope = false;
  TableWriter scopes("observability — trace scopes",
                     {"scope", "count", "total ms", "self ms"});
  for (const auto& [name, sc] : im.scopes) {
    const uint64_t n = sc->count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    scopes.AddRow({name, std::to_string(n),
                   format_ms(sc->total_ns.load(std::memory_order_relaxed)),
                   format_ms(sc->self_ns.load(std::memory_order_relaxed))});
    any_scope = true;
  }
  if (any_scope) os << scopes.Render() << "\n";

  bool any_series = false;
  TableWriter series("observability — series",
                     {"series", "points", "first", "last"});
  for (const auto& [name, s] : im.series) {
    const std::vector<double> values = s->Values();
    if (values.empty()) continue;
    series.AddRow({name, std::to_string(values.size()),
                   FormatG17(values.front()), FormatG17(values.back())});
    any_series = true;
  }
  if (any_series) os << series.Render();

  return os.str();
}

}  // namespace retina::obs
