#include "common/simd.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/obs.h"

#if defined(__x86_64__) || defined(__i386__)
#define RETINA_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define RETINA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace retina::simd {

// ---------------------------------------------------------------------------
// Scalar backend: the original loops from vec.cc / sparse_vec.cc, verbatim.
// Forcing RETINA_SIMD=scalar must reproduce pre-dispatch results
// bit-for-bit, so nothing here may be "improved".

namespace {

double DotScalar(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void DivScalar(double denom, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] /= denom;
}

double SparseDotScalar(const double* val, const uint32_t* idx, size_t nnz,
                       const double* y) {
  double acc = 0.0;
  for (size_t k = 0; k < nnz; ++k) acc += val[k] * y[idx[k]];
  return acc;
}

void SparseAxpyScalar(double alpha, const double* val, const uint32_t* idx,
                      size_t nnz, double* y) {
  for (size_t k = 0; k < nnz; ++k) y[idx[k]] += alpha * val[k];
}

void SparseMatVecScalar(const double* w, size_t rows, size_t cols,
                        const double* val, const uint32_t* idx, size_t nnz,
                        double* y) {
  for (size_t r = 0; r < rows; ++r) {
    y[r] = SparseDotScalar(val, idx, nnz, w + r * cols);
  }
}

constexpr KernelTable kScalarTable = {
    DotScalar,       AxpyScalar,       ScaleScalar,     DivScalar,
    SparseDotScalar, SparseAxpyScalar, SparseMatVecScalar,
};

// ---------------------------------------------------------------------------
// AVX2+FMA backend. Compiled with per-function target attributes so the
// rest of the translation unit (and the library) stays baseline x86-64;
// these bodies only ever execute after __builtin_cpu_supports said yes.
//
// Reductions use a FIXED pattern — four 4-lane FMA accumulators over
// 16-element blocks, a 4-lane block tail, one fixed horizontal reduction,
// then a scalar remainder — so results are deterministic run-to-run.
// Element-wise kernels use unfused multiply+add to stay bit-identical to
// the scalar reference (the scalar loops compile without FMA at baseline
// x86-64, so fusing here would diverge in the last ulp).

#if RETINA_SIMD_X86

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                    _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum =
      _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha, const double* x,
                                              double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void ScaleAvx2(double alpha, double* x,
                                               size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) void DivAvx2(double denom, double* x,
                                             size_t n) {
  const __m256d vd = _mm256_set1_pd(denom);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), vd));
  }
  for (; i < n; ++i) x[i] /= denom;
}

__attribute__((target("avx2,fma"))) double SparseDotAvx2(const double* val,
                                                         const uint32_t* idx,
                                                         size_t nnz,
                                                         const double* y) {
  // Four independent gather+fma chains (16 terms per iteration) so the
  // gathers' latency overlaps; the fixed tails reuse acc0/acc1 only.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 16 <= nnz; k += 16) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 4));
    const __m128i i2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 8));
    const __m128i i3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 12));
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k),
                           _mm256_i32gather_pd(y, i0, 8), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k + 4),
                           _mm256_i32gather_pd(y, i1, 8), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k + 8),
                           _mm256_i32gather_pd(y, i2, 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k + 12),
                           _mm256_i32gather_pd(y, i3, 8), acc3);
  }
  for (; k + 8 <= nnz; k += 8) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 4));
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k),
                           _mm256_i32gather_pd(y, i0, 8), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k + 4),
                           _mm256_i32gather_pd(y, i1, 8), acc1);
  }
  for (; k + 4 <= nnz; k += 4) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(val + k),
                           _mm256_i32gather_pd(y, i0, 8), acc0);
  }
  const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                    _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum =
      _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; k < nnz; ++k) sum += val[k] * y[idx[k]];
  return sum;
}

__attribute__((target("avx2"))) void SparseAxpyAvx2(double alpha,
                                                    const double* val,
                                                    const uint32_t* idx,
                                                    size_t nnz, double* y) {
  // Element-wise: each target entry receives exactly one unfused
  // multiply+add (indices are strictly ascending, hence unique), so this
  // matches the scalar loop bit-for-bit. Gather vectorizes the loads; the
  // stores stay scalar (no scatter below AVX-512).
  const __m256d va = _mm256_set1_pd(alpha);
  size_t k = 0;
  double lanes[4];
  for (; k + 4 <= nnz; k += 4) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(val + k));
    const __m256d sum = _mm256_add_pd(_mm256_i32gather_pd(y, i0, 8), prod);
    _mm256_storeu_pd(lanes, sum);
    y[idx[k]] = lanes[0];
    y[idx[k + 1]] = lanes[1];
    y[idx[k + 2]] = lanes[2];
    y[idx[k + 3]] = lanes[3];
  }
  for (; k < nnz; ++k) y[idx[k]] += alpha * val[k];
}

__attribute__((target("avx2,fma"))) void SparseMatVecAvx2(
    const double* w, size_t rows, size_t cols, const double* val,
    const uint32_t* idx, size_t nnz, double* y) {
  // Row pairs share each iteration's index and value loads and run two
  // sets of gather+fma chains, which hides more of the gathers' latency
  // than one row alone can. Each row's accumulator/tail/reduction pattern
  // is exactly SparseDotAvx2's, so every output stays bit-identical to a
  // per-row sparse_dot call.
  size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* w0 = w + r * cols;
    const double* w1 = w0 + cols;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    __m256d b0 = _mm256_setzero_pd();
    __m256d b1 = _mm256_setzero_pd();
    __m256d b2 = _mm256_setzero_pd();
    __m256d b3 = _mm256_setzero_pd();
    size_t k = 0;
    for (; k + 16 <= nnz; k += 16) {
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
      const __m128i i1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 4));
      const __m128i i2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 8));
      const __m128i i3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 12));
      const __m256d v0 = _mm256_loadu_pd(val + k);
      const __m256d v1 = _mm256_loadu_pd(val + k + 4);
      const __m256d v2 = _mm256_loadu_pd(val + k + 8);
      const __m256d v3 = _mm256_loadu_pd(val + k + 12);
      a0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w0, i0, 8), a0);
      b0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w1, i0, 8), b0);
      a1 = _mm256_fmadd_pd(v1, _mm256_i32gather_pd(w0, i1, 8), a1);
      b1 = _mm256_fmadd_pd(v1, _mm256_i32gather_pd(w1, i1, 8), b1);
      a2 = _mm256_fmadd_pd(v2, _mm256_i32gather_pd(w0, i2, 8), a2);
      b2 = _mm256_fmadd_pd(v2, _mm256_i32gather_pd(w1, i2, 8), b2);
      a3 = _mm256_fmadd_pd(v3, _mm256_i32gather_pd(w0, i3, 8), a3);
      b3 = _mm256_fmadd_pd(v3, _mm256_i32gather_pd(w1, i3, 8), b3);
    }
    for (; k + 8 <= nnz; k += 8) {
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
      const __m128i i1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k + 4));
      const __m256d v0 = _mm256_loadu_pd(val + k);
      const __m256d v1 = _mm256_loadu_pd(val + k + 4);
      a0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w0, i0, 8), a0);
      b0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w1, i0, 8), b0);
      a1 = _mm256_fmadd_pd(v1, _mm256_i32gather_pd(w0, i1, 8), a1);
      b1 = _mm256_fmadd_pd(v1, _mm256_i32gather_pd(w1, i1, 8), b1);
    }
    for (; k + 4 <= nnz; k += 4) {
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
      const __m256d v0 = _mm256_loadu_pd(val + k);
      a0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w0, i0, 8), a0);
      b0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(w1, i0, 8), b0);
    }
    const __m256d acca =
        _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    const __m256d accb =
        _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3));
    const __m128d pa = _mm_add_pd(_mm256_castpd256_pd128(acca),
                                  _mm256_extractf128_pd(acca, 1));
    const __m128d pb = _mm_add_pd(_mm256_castpd256_pd128(accb),
                                  _mm256_extractf128_pd(accb, 1));
    double sum0 = _mm_cvtsd_f64(_mm_add_sd(pa, _mm_unpackhi_pd(pa, pa)));
    double sum1 = _mm_cvtsd_f64(_mm_add_sd(pb, _mm_unpackhi_pd(pb, pb)));
    for (; k < nnz; ++k) {
      sum0 += val[k] * w0[idx[k]];
      sum1 += val[k] * w1[idx[k]];
    }
    y[r] = sum0;
    y[r + 1] = sum1;
  }
  for (; r < rows; ++r) y[r] = SparseDotAvx2(val, idx, nnz, w + r * cols);
}

constexpr KernelTable kAvx2Table = {
    DotAvx2,       AxpyAvx2,       ScaleAvx2,     DivAvx2,
    SparseDotAvx2, SparseAxpyAvx2, SparseMatVecAvx2,
};

#endif  // RETINA_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend (aarch64; NEON is baseline there, no runtime probe needed).
// Same fixed-pattern discipline: four 2-lane FMA accumulators over 8-wide
// blocks, one fixed reduction, scalar remainder. aarch64 compilers contract
// scalar multiply+add into fused ops by default, so the element-wise
// kernels use vfmaq to match; the bit-exact-vs-scalar guarantee of the
// element-wise kernels is therefore x86-specific (the tolerance contract
// covers NEON).

#if RETINA_SIMD_NEON

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  const float64x2_t acc =
      vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3));
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyNeon(double alpha, const double* x, double* y, size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), va, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleNeon(double alpha, double* x, size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vmulq_f64(va, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void DivNeon(double denom, double* x, size_t n) {
  const float64x2_t vd = vdupq_n_f64(denom);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vdivq_f64(vld1q_f64(x + i), vd));
  }
  for (; i < n; ++i) x[i] /= denom;
}

double SparseDotNeon(const double* val, const uint32_t* idx, size_t nnz,
                     const double* y) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + 4 <= nnz; k += 4) {
    const float64x2_t g0 = {y[idx[k]], y[idx[k + 1]]};
    const float64x2_t g1 = {y[idx[k + 2]], y[idx[k + 3]]};
    acc0 = vfmaq_f64(acc0, vld1q_f64(val + k), g0);
    acc1 = vfmaq_f64(acc1, vld1q_f64(val + k + 2), g1);
  }
  const float64x2_t acc = vaddq_f64(acc0, acc1);
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; k < nnz; ++k) sum += val[k] * y[idx[k]];
  return sum;
}

void SparseAxpyNeon(double alpha, const double* val, const uint32_t* idx,
                    size_t nnz, double* y) {
  for (size_t k = 0; k < nnz; ++k) y[idx[k]] += alpha * val[k];
}

void SparseMatVecNeon(const double* w, size_t rows, size_t cols,
                      const double* val, const uint32_t* idx, size_t nnz,
                      double* y) {
  for (size_t r = 0; r < rows; ++r) {
    y[r] = SparseDotNeon(val, idx, nnz, w + r * cols);
  }
}

constexpr KernelTable kNeonTable = {
    DotNeon,       AxpyNeon,       ScaleNeon,     DivNeon,
    SparseDotNeon, SparseAxpyNeon, SparseMatVecNeon,
};

#endif  // RETINA_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.

obs::Gauge* DispatchGauge() {
  return obs::Registry::Global().GetGauge("simd.dispatch");
}

void LogAndPublish(Backend b, const char* origin) {
  RETINA_LOG(Info) << "simd dispatch: " << BackendName(b) << " (" << origin
                   << ")";
  DispatchGauge()->Set(static_cast<int64_t>(b));
}

Backend ResolveFromEnv() {
  const char* env = std::getenv("RETINA_SIMD");
  const std::string requested = env != nullptr ? env : "auto";
  Backend b;
  if (!ParseBackend(requested, &b)) {
    b = Detect();
    RETINA_LOG(Warning) << "RETINA_SIMD=" << requested
                        << " not recognized (want auto|avx2|neon|scalar); "
                        << "using " << BackendName(b);
  } else if (!BackendAvailable(b)) {
    const Backend fallback = Detect();
    RETINA_LOG(Warning) << "RETINA_SIMD=" << requested
                        << " unavailable on this CPU; using "
                        << BackendName(fallback);
    b = fallback;
  }
  LogAndPublish(b, env != nullptr ? "RETINA_SIMD" : "auto-detected");
  return b;
}

Backend& ActiveSlot() {
  static Backend active = ResolveFromEnv();
  return active;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if RETINA_SIMD_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if RETINA_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend Detect() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendAvailable(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

bool ParseBackend(const std::string& name, Backend* out) {
  if (name == "auto") {
    *out = Detect();
  } else if (name == "scalar") {
    *out = Backend::kScalar;
  } else if (name == "avx2") {
    *out = Backend::kAvx2;
  } else if (name == "neon") {
    *out = Backend::kNeon;
  } else {
    return false;
  }
  return true;
}

Backend Active() { return ActiveSlot(); }

const KernelTable& KernelsFor(Backend b) {
  switch (b) {
#if RETINA_SIMD_X86
    case Backend::kAvx2:
      if (BackendAvailable(Backend::kAvx2)) return kAvx2Table;
      break;
#endif
#if RETINA_SIMD_NEON
    case Backend::kNeon:
      return kNeonTable;
#endif
    default:
      break;
  }
  return kScalarTable;
}

const KernelTable& Kernels() { return KernelsFor(ActiveSlot()); }

Status ForceBackend(Backend b) {
  if (!BackendAvailable(b)) {
    return Status::InvalidArgument(
        std::string("simd backend '") + BackendName(b) +
        "' is not available on this CPU");
  }
  ActiveSlot() = b;
  LogAndPublish(b, "forced");
  return Status::OK();
}

void PublishDispatchGauge() {
  DispatchGauge()->Set(static_cast<int64_t>(ActiveSlot()));
}

// ---------------------------------------------------------------------------
// Matrix drivers. Deliberately generic: per-output-entry work goes through
// the dispatched dot/axpy, so a serial MatVec row and the matching row of
// a batched MatMulTransposedB are produced by the identical instruction
// sequence.

void MatVec(const double* w, size_t rows, size_t cols, const double* x,
            double* y) {
  const KernelTable& k = Kernels();
  for (size_t r = 0; r < rows; ++r) y[r] = k.dot(w + r * cols, x, cols);
}

void MatMulTransposedB(const double* a, size_t rows_a, size_t k,
                       const double* bt, size_t rows_b, double* c) {
  const KernelTable& kt = Kernels();
  for (size_t i = 0; i < rows_a; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * rows_b;
    for (size_t j = 0; j < rows_b; ++j) {
      crow[j] = kt.dot(arow, bt + j * k, k);
    }
  }
}

void TransposeMatVecAcc(const double* w, size_t rows, size_t cols,
                        const double* x, double* y) {
  const KernelTable& k = Kernels();
  for (size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    k.axpy(xr, w + r * cols, y, cols);
  }
}

void SparseMatVec(const double* w, size_t rows, size_t cols,
                  const double* val, const uint32_t* idx, size_t nnz,
                  double* y) {
  Kernels().sparse_matvec(w, rows, cols, val, idx, nnz, y);
}

}  // namespace retina::simd
