#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace retina {

TableWriter::TableWriter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  const std::string rule(total, '-');

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule + "\n";
  out += render_row(header_);
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  out += rule + "\n";
  return out;
}

void TableWriter::Print() const { std::fputs(Render().c_str(), stdout); }

Status TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  auto write_row = [&f](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      // Quote cells containing commas or quotes.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        f << '"';
        for (char ch : row[c]) {
          if (ch == '"') f << '"';
          f << ch;
        }
        f << '"';
      } else {
        f << row[c];
      }
    }
    f << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return f.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace retina
