// Status / Result error handling in the RocksDB/Arrow idiom: no exceptions
// across public API boundaries; fallible operations return Status (or
// Result<T> when they produce a value).

#ifndef RETINA_COMMON_STATUS_H_
#define RETINA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace retina {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message. Statuses are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: dimension mismatch".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. `ValueOrDie()` asserts on error paths that the
/// caller has already checked `ok()`.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::move(*value_);
  }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

// Propagates a non-OK status to the caller.
#define RETINA_RETURN_NOT_OK(expr)           \
  do {                                       \
    ::retina::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace retina

#endif  // RETINA_COMMON_STATUS_H_
