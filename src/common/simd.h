// Runtime-dispatched SIMD kernels for the dense/sparse math hot path.
//
// One audited seam: every dot/axpy-shaped inner loop in the library
// (common/vec.cc, common/sparse_vec.cc, nn/layers.cc, nn/attention.cc,
// text/tfidf.cc) routes through the kernel table returned by Kernels().
// The table is resolved once per process from the best instruction set the
// CPU offers (AVX2+FMA on x86-64, NEON on aarch64) or from an explicit
// RETINA_SIMD={auto,avx2,neon,scalar} override (environment variable, or
// the CLI's --simd= flag via ForceBackend). The choice is logged once and
// exported as the `simd.dispatch` obs gauge.
//
// Numerical contract (see DESIGN.md §10):
//   - The scalar backend is the original loops verbatim — forcing
//     RETINA_SIMD=scalar reproduces pre-dispatch results bit-for-bit.
//   - Element-wise kernels (Axpy, Scale, DivInPlace, SparseAxpy) perform
//     one unfused multiply+add per element on x86, so their AVX2 variants
//     are bit-identical to scalar at any n.
//   - Reduction kernels (Dot, Norm2Sq, SparseDot) partition terms across
//     lanes, so SIMD sums differ from scalar in rounding; they agree
//     within 1e-12 relative tolerance and are bit-identical run-to-run at
//     a fixed dispatch choice (every backend uses one fixed
//     lane/unroll/horizontal-reduction pattern).
//   - All call sites that must stay mutually bit-identical (serial vs
//     batched forwards) share the same kernel per logical output, so the
//     cross-path pins hold at ANY dispatch choice.

#ifndef RETINA_COMMON_SIMD_H_
#define RETINA_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace retina::simd {

/// Kernel backend identifier. Values are stable — they are exported via
/// the `simd.dispatch` obs gauge (0 is reserved for "not yet resolved").
enum class Backend : int {
  kScalar = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Resolved kernel entry points. All pointers are always non-null.
struct KernelTable {
  /// sum_i a[i] * b[i].
  double (*dot)(const double* a, const double* b, size_t n);
  /// y[i] += alpha * x[i].
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  /// x[i] *= alpha.
  void (*scale)(double alpha, double* x, size_t n);
  /// x[i] /= denom (kept as a division — dividing differs from
  /// multiplying by the reciprocal in the last ulp, and the tf-idf
  /// normalizer pins the division form).
  void (*div_inplace)(double denom, double* x, size_t n);
  /// sum_k val[k] * y[idx[k]] over a sparse vector's nonzeros.
  double (*sparse_dot)(const double* val, const uint32_t* idx, size_t nnz,
                       const double* y);
  /// y[idx[k]] += alpha * val[k]; indices must be strictly ascending.
  void (*sparse_axpy)(double alpha, const double* val, const uint32_t* idx,
                      size_t nnz, double* y);
  /// y[r] = sparse_dot(W row r, x) for a row-major rows x cols W. Every
  /// entry is bit-identical to calling this table's sparse_dot on that
  /// row — the batched variant may only amortize index/value loads across
  /// rows, never change a row's reduction pattern.
  void (*sparse_matvec)(const double* w, size_t rows, size_t cols,
                        const double* val, const uint32_t* idx, size_t nnz,
                        double* y);
};

/// Human-readable backend name ("scalar", "avx2", "neon").
const char* BackendName(Backend b);

/// True when this build + CPU can run backend `b`.
bool BackendAvailable(Backend b);

/// Best available backend for this CPU (what RETINA_SIMD=auto picks).
Backend Detect();

/// Parses "auto" / "avx2" / "neon" / "scalar". "auto" resolves through
/// Detect(). Returns false on any other string.
bool ParseBackend(const std::string& name, Backend* out);

/// The active backend. First call resolves RETINA_SIMD from the
/// environment (default auto), logs the decision, and publishes the
/// `simd.dispatch` gauge.
Backend Active();

/// Kernel table of the active backend.
const KernelTable& Kernels();

/// Kernel table for a specific backend regardless of dispatch — the
/// scalar table is the bit-exactness reference the tests compare against.
/// Asking for an unavailable backend returns the scalar table.
const KernelTable& KernelsFor(Backend b);

/// Overrides the dispatch choice (CLI --simd=, tests). Returns
/// InvalidArgument when the backend is not available on this CPU. Not
/// thread-safe against concurrent kernel calls — call at startup or from
/// single-threaded test code.
Status ForceBackend(Backend b);

/// Re-publishes the `simd.dispatch` gauge (obs Registry::Reset() zeroes
/// gauges; export paths call this so the dispatch survives a reset).
void PublishDispatchGauge();

// ---------------------------------------------------------------------------
// Convenience wrappers over the active table.

inline double Dot(const double* a, const double* b, size_t n) {
  return Kernels().dot(a, b, n);
}
inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  Kernels().axpy(alpha, x, y, n);
}
inline void Scale(double alpha, double* x, size_t n) {
  Kernels().scale(alpha, x, n);
}
inline void DivInPlace(double denom, double* x, size_t n) {
  Kernels().div_inplace(denom, x, n);
}
inline double Norm2Sq(const double* a, size_t n) {
  return Kernels().dot(a, a, n);
}
inline double SparseDot(const double* val, const uint32_t* idx, size_t nnz,
                        const double* y) {
  return Kernels().sparse_dot(val, idx, nnz, y);
}
inline void SparseAxpy(double alpha, const double* val, const uint32_t* idx,
                       size_t nnz, double* y) {
  Kernels().sparse_axpy(alpha, val, idx, nnz, y);
}

// ---------------------------------------------------------------------------
// Matrix drivers. Generic loops over the dispatched kernels: every output
// entry is produced by the same dot/axpy routine at every call site, which
// is what keeps serial and batched forwards bit-identical per entry.

/// y[r] = dot(W row r, x) for a row-major rows x cols matrix.
void MatVec(const double* w, size_t rows, size_t cols, const double* x,
            double* y);

/// C(i, j) = dot(A row i, Bt row j); A is rows_a x k, Bt is rows_b x k,
/// C is rows_a x rows_b, all row-major.
void MatMulTransposedB(const double* a, size_t rows_a, size_t k,
                       const double* bt, size_t rows_b, double* c);

/// y[0..cols) += sum_r x[r] * (W row r) — the transposed mat-vec in its
/// axpy form (skips zero x entries like the original kernel). `y` is
/// accumulated into, not overwritten.
void TransposeMatVecAcc(const double* w, size_t rows, size_t cols,
                        const double* x, double* y);

/// y[r] = sparse_dot(W row r, x) for a sparse x over W's columns. Routed
/// through the table's sparse_matvec, whose entries are bit-identical to
/// per-row sparse_dot calls at every backend.
void SparseMatVec(const double* w, size_t rows, size_t cols,
                  const double* val, const uint32_t* idx, size_t nnz,
                  double* y);

}  // namespace retina::simd

#endif  // RETINA_COMMON_SIMD_H_
